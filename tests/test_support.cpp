// Unit tests for the support library: RNG, statistics, fitting,
// interpolation, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "support/error.h"
#include "support/fit.h"
#include "support/interp.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace swapp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, SplitDecorrelates) {
  Rng a(99);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
}

TEST(Stats, PercentErrors) {
  EXPECT_DOUBLE_EQ(percent_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(signed_percent_error(90.0, 100.0), -10.0);
  EXPECT_THROW(percent_error(1.0, 0.0), InvalidArgument);
}

TEST(Stats, FractionAbove) {
  const std::vector<double> proj = {1.0, 3.0, 2.0, 5.0};
  const std::vector<double> act = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(fraction_above(proj, act), 0.5);
}

TEST(Stats, SummarizeErrors) {
  const std::vector<double> errs = {-10.0, 10.0, 20.0};
  const ErrorSummary s = summarize_errors(errs);
  EXPECT_NEAR(s.mean_abs_error, 40.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 20.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Fit, LinearRecoversLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double v : x) y.push_back(3.0 * v - 2.0);
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -2.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(Fit, PowerRecoversPowerLaw) {
  const std::vector<double> x = {1, 2, 4, 8, 16};
  std::vector<double> y;
  for (const double v : x) y.push_back(5.0 * std::pow(v, -0.7));
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.a, 5.0, 1e-9);
  EXPECT_NEAR(f.b, -0.7, 1e-9);
}

TEST(Fit, ScalingRecoversAmdahlLikeCurve) {
  // T(C) = 100/C + 2.
  const std::vector<double> cores = {1, 2, 4, 8, 16, 32};
  std::vector<double> time;
  for (const double c : cores) time.push_back(100.0 / c + 2.0);
  const ScalingFit f = fit_scaling(cores, time);
  EXPECT_NEAR(f.b, 1.0, 0.02);
  EXPECT_NEAR(f.a, 100.0, 2.0);
  EXPECT_NEAR(f.c, 2.0, 0.5);
  EXPECT_NEAR(f(64.0), 100.0 / 64.0 + 2.0, 0.5);
}

TEST(Fit, ScalingFactorBetweenCounts) {
  const std::vector<double> cores = {16, 32, 64};
  std::vector<double> time;
  for (const double c : cores) time.push_back(640.0 / c);
  const ScalingFit f = fit_scaling(cores, time);
  EXPECT_NEAR(f.scale_factor(16, 128), 16.0 / 128.0, 0.02);
}

TEST(Fit, ZeroCrossingExtrapolation) {
  // m(C) = 10·C^(-1): crosses 0.15 ≈ 5% of peak(16-sample max 0.625)… use
  // threshold directly: m(C) = threshold at C = 10/threshold.
  const std::vector<double> cores = {16, 32, 64};
  const std::vector<double> metric = {10.0 / 16, 10.0 / 32, 10.0 / 64};
  const double c = extrapolate_zero_crossing(cores, metric, 0.05);
  EXPECT_NEAR(c, 200.0, 1.0);
}

TEST(Fit, NoCrossingForFlatMetric) {
  const std::vector<double> cores = {16, 32, 64};
  const std::vector<double> metric = {1.0, 1.0, 1.0};
  EXPECT_TRUE(std::isinf(extrapolate_zero_crossing(cores, metric, 0.01)));
}

TEST(Interp, LogLogExactAtKnots) {
  const std::vector<double> x = {1, 10, 100};
  const std::vector<double> y = {2, 20, 200};
  const LogLogInterpolator f(x, y);
  EXPECT_NEAR(f(1), 2, 1e-12);
  EXPECT_NEAR(f(10), 20, 1e-12);
  EXPECT_NEAR(f(100), 200, 1e-12);
  // Linear in log-log: y = 2x everywhere.
  EXPECT_NEAR(f(31.6227766), 2 * 31.6227766, 1e-6);
  // Extrapolation continues the end segment.
  EXPECT_NEAR(f(1000), 2000, 1e-6);
}

TEST(Interp, CoreSizeTableBilinear) {
  CoreSizeTable t;
  for (const int c : {16, 64}) {
    for (const double b : {1024.0, 65536.0}) {
      t.insert(c, b, 1e-6 * c * b / 1024.0);
    }
  }
  // Exact at corners.
  EXPECT_NEAR(t.lookup(16, 1024), 16e-6, 1e-12);
  EXPECT_NEAR(t.lookup(64, 65536), 64e-6 * 64, 1e-9);
  // Monotone in both dimensions between corners.
  EXPECT_GT(t.lookup(32, 1024), t.lookup(16, 1024));
  EXPECT_GT(t.lookup(16, 4096), t.lookup(16, 1024));
}

TEST(Interp, EmptyTableThrows) {
  CoreSizeTable t;
  EXPECT_THROW(t.lookup(16, 1024), NotFound);
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("| value"), std::string::npos);
}

TEST(Table, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvEscapes) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "plain"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

}  // namespace
}  // namespace swapp
