// Tests for the SoA GA evaluation engine (core/ga_eval.h): the bit-identity
// contract between the reference objective and every faster kernel —
// `fitness_fused`, the sparse SoA path, and the batched population path —
// across genome shapes (all-zero, single-term, dense, randomized sparse),
// plus the metric-major transpose itself and the contract's zero-weight
// clause (extra zero positions in `nz` must not change a single bit).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/ga.h"
#include "core/ga_eval.h"
#include "core/ranking.h"
#include "machine/counters.h"

namespace swapp {
namespace {

machine::PmuCounters counters_with(double stall, double l3, double mem) {
  machine::PmuCounters c;
  c.instructions = 1e9;
  c.cycles = 1e9;
  c.seconds = 1.0;
  c.cpi_completion = 0.3;
  c.cpi_stall_fp = 0.2;
  c.cpi_stall_mem = stall;
  c.fp_per_instr = 0.4;
  c.data_from_l2_per_instr = 0.002;
  c.data_from_l3_per_instr = l3;
  c.data_from_local_mem_per_instr = mem;
  c.memory_bandwidth_gbs = mem * 50.0;
  return c;
}

/// Ten benchmarks with spread-out signatures and runtimes: enough terms for
/// dense genomes to exercise the SIMD kernels' main loops and for odd
/// nonzero counts to exercise their scalar tails.
core::SpecData synthetic_spec() {
  core::SpecData spec;
  for (int k = 0; k < 10; ++k) {
    const double stall = 0.1 + 0.45 * k;
    machine::PmuCounters st =
        counters_with(stall, 0.001 * (k + 1), 0.0005 * (k + 1));
    machine::PmuCounters smt = st;
    smt.cpi_completion *= 1.4;
    smt.cpi_stall_mem *= 1.2;
    const std::string name = "bench" + std::to_string(k);
    spec.names.push_back(name);
    spec.base_counters_st.emplace(name, st);
    spec.base_counters_smt.emplace(name, smt);
    spec.base_runtime.emplace(name, 40.0 + 17.0 * k);
  }
  return spec;
}

class GaEvalBitIdentity : public ::testing::Test {
 protected:
  GaEvalBitIdentity()
      : spec_(synthetic_spec()),
        app_st_(counters_with(1.7, 0.004, 0.002)),
        app_smt_(counters_with(2.1, 0.005, 0.0025)) {
    weights_.weight.fill(1.0 / machine::kMetricGroupCount);
    prober_ = std::make_unique<core::GaFitnessProber>(app_st_, app_smt_,
                                                      weights_, spec_, 100.0);
  }

  /// Runs the probe through all four kernels and asserts exact (bitwise)
  /// agreement with the reference.  `iters` > 1 also covers the probe's
  /// nudged genome variants.
  void expect_kernels_agree(const std::vector<double>& genome, int iters) {
    const double ref = prober_->run(genome, iters, core::GaKernel::kReference);
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kFused));
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kSoaSparse));
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kSoaBatch));
  }

  core::SpecData spec_;
  machine::PmuCounters app_st_;
  machine::PmuCounters app_smt_;
  core::GroupWeights weights_;
  std::unique_ptr<core::GaFitnessProber> prober_;
};

TEST_F(GaEvalBitIdentity, AllZeroGenome) {
  // Degenerate share total: every kernel must take the same 1e18 penalty
  // branch, not divide by zero.
  const std::vector<double> zero(spec_.names.size(), 0.0);
  expect_kernels_agree(zero, 1);
  expect_kernels_agree(zero, 8);
}

TEST_F(GaEvalBitIdentity, SingleTermGenomes) {
  for (std::size_t k = 0; k < spec_.names.size(); ++k) {
    std::vector<double> genome(spec_.names.size(), 0.0);
    genome[k] = 0.25 + 0.5 * static_cast<double>(k);
    expect_kernels_agree(genome, 6);
  }
}

TEST_F(GaEvalBitIdentity, DenseGenome) {
  std::vector<double> genome(spec_.names.size());
  for (std::size_t k = 0; k < genome.size(); ++k) {
    genome[k] = 0.05 + 0.11 * static_cast<double>(k);
  }
  expect_kernels_agree(genome, 12);
}

TEST_F(GaEvalBitIdentity, RandomizedSparseGenomes) {
  std::mt19937_64 rng(0xb17b17);
  std::uniform_real_distribution<double> weight(0.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<double> genome(spec_.names.size(), 0.0);
    for (double& g : genome) {
      if (coin(rng) < 0.5) g = weight(rng);
    }
    expect_kernels_agree(genome, 4);
  }
}

// ---------------------------------------------------------------------------
// Direct engine tests
// ---------------------------------------------------------------------------

struct EngineFixture {
  std::vector<machine::MetricVector> st;
  std::vector<machine::MetricVector> smt;
  std::vector<double> base_time;
  machine::MetricVector app_st;
  machine::MetricVector app_smt;
  core::GaEvalEngine engine;

  explicit EngineFixture(std::size_t n) {
    std::array<double, machine::kMetricCount> scale{};
    std::array<double, machine::kMetricCount> metric_weight{};
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      scale[i] = 0.5 + 0.1 * static_cast<double>(i);
      metric_weight[i] = 1.0 / (1.0 + static_cast<double>(i));
      app_st.values[i] = 0.3 + 0.07 * static_cast<double>(i);
      app_smt.values[i] = 0.4 + 0.05 * static_cast<double>(i);
    }
    for (std::size_t k = 0; k < n; ++k) {
      machine::MetricVector v_st;
      machine::MetricVector v_smt;
      for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
        v_st.values[i] = 0.01 * static_cast<double>(k * 37 + i * 11 + 1);
        v_smt.values[i] = 0.01 * static_cast<double>(k * 53 + i * 7 + 2);
      }
      st.push_back(v_st);
      smt.push_back(v_smt);
      base_time.push_back(10.0 + 3.0 * static_cast<double>(k));
    }
    engine.build(st, smt, base_time, app_st, app_smt, scale, metric_weight,
                 75.0, 2.0);
  }
};

TEST(GaEvalEngine, MetricMajorTransposeMatchesAoS) {
  const EngineFixture fx(7);
  ASSERT_EQ(fx.engine.size(), 7u);
  const std::vector<double>& mm_st = fx.engine.metric_major_st();
  const std::vector<double>& mm_smt = fx.engine.metric_major_smt();
  ASSERT_EQ(mm_st.size(), machine::kMetricCount * 7u);
  for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
    for (std::size_t k = 0; k < 7u; ++k) {
      EXPECT_EQ(mm_st[i * 7 + k], fx.st[k].values[i]);
      EXPECT_EQ(mm_smt[i * 7 + k], fx.smt[k].values[i]);
    }
  }
}

TEST(GaEvalEngine, ExtraZeroPositionsInNzAreBitInvisible) {
  // The contract's zero-weight clause: an nz list padded with zero-weight
  // positions must produce bit-identical fitness to the minimal list.
  const EngineFixture fx(9);
  std::vector<double> genome(9, 0.0);
  genome[1] = 0.8;
  genome[4] = 1.3;
  genome[7] = 0.2;
  const std::vector<std::size_t> minimal = {1, 4, 7};
  std::vector<std::size_t> padded(9);
  for (std::size_t k = 0; k < 9; ++k) padded[k] = k;

  core::GaEvalScratch scratch;
  double d_min = 0.0;
  double r_min = 0.0;
  const double f_min = fx.engine.fitness_sparse(
      genome.data(), minimal.data(), minimal.size(), scratch, &d_min, &r_min);
  double d_pad = 0.0;
  double r_pad = 0.0;
  const double f_pad = fx.engine.fitness_sparse(
      genome.data(), padded.data(), padded.size(), scratch, &d_pad, &r_pad);
  EXPECT_EQ(f_min, f_pad);
  EXPECT_EQ(d_min, d_pad);
  EXPECT_EQ(r_min, r_pad);
}

TEST(GaEvalEngine, BatchMatchesSparseCalls) {
  const EngineFixture fx(8);
  std::mt19937_64 rng(0x5eed);
  std::uniform_real_distribution<double> weight(0.0, 1.5);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  constexpr std::size_t kPop = 24;
  std::vector<std::vector<double>> genomes(kPop, std::vector<double>(8, 0.0));
  std::vector<std::vector<std::size_t>> nz(kPop);
  std::vector<core::GenomeRef> refs(kPop);
  for (std::size_t b = 0; b < kPop; ++b) {
    for (std::size_t k = 0; k < 8; ++k) {
      if (coin(rng) < 0.6) {
        genomes[b][k] = weight(rng);
        nz[b].push_back(k);
      }
    }
    refs[b] = {genomes[b].data(), nz[b].data(), nz[b].size()};
  }

  core::GaEvalScratch scratch;
  std::vector<double> batch_fitness(kPop, 0.0);
  fx.engine.evaluate_population(refs.data(), kPop, scratch,
                                batch_fitness.data());
  for (std::size_t b = 0; b < kPop; ++b) {
    core::GaEvalScratch fresh;
    const double one = fx.engine.fitness_sparse(genomes[b].data(),
                                                nz[b].data(), nz[b].size(),
                                                fresh);
    EXPECT_EQ(batch_fitness[b], one) << "genome " << b;
  }
}

}  // namespace
}  // namespace swapp
