// Tests for the SoA GA evaluation engine (core/ga_eval.h): the bit-identity
// contract between the reference objective and every faster kernel —
// `fitness_fused`, the sparse SoA path, and the batched population path —
// across genome shapes (all-zero, single-term, dense, randomized sparse),
// plus the metric-major transpose itself and the contract's zero-weight
// clause (extra zero positions in `nz` must not change a single bit).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/ga.h"
#include "core/ga_eval.h"
#include "core/ranking.h"
#include "machine/counters.h"
#include "support/parallel.h"

namespace swapp {
namespace {

machine::PmuCounters counters_with(double stall, double l3, double mem) {
  machine::PmuCounters c;
  c.instructions = 1e9;
  c.cycles = 1e9;
  c.seconds = 1.0;
  c.cpi_completion = 0.3;
  c.cpi_stall_fp = 0.2;
  c.cpi_stall_mem = stall;
  c.fp_per_instr = 0.4;
  c.data_from_l2_per_instr = 0.002;
  c.data_from_l3_per_instr = l3;
  c.data_from_local_mem_per_instr = mem;
  c.memory_bandwidth_gbs = mem * 50.0;
  return c;
}

/// Ten benchmarks with spread-out signatures and runtimes: enough terms for
/// dense genomes to exercise the SIMD kernels' main loops and for odd
/// nonzero counts to exercise their scalar tails.
core::SpecData synthetic_spec() {
  core::SpecData spec;
  for (int k = 0; k < 10; ++k) {
    const double stall = 0.1 + 0.45 * k;
    machine::PmuCounters st =
        counters_with(stall, 0.001 * (k + 1), 0.0005 * (k + 1));
    machine::PmuCounters smt = st;
    smt.cpi_completion *= 1.4;
    smt.cpi_stall_mem *= 1.2;
    const std::string name = "bench" + std::to_string(k);
    spec.names.push_back(name);
    spec.base_counters_st.emplace(name, st);
    spec.base_counters_smt.emplace(name, smt);
    spec.base_runtime.emplace(name, 40.0 + 17.0 * k);
  }
  return spec;
}

class GaEvalBitIdentity : public ::testing::Test {
 protected:
  GaEvalBitIdentity()
      : spec_(synthetic_spec()),
        app_st_(counters_with(1.7, 0.004, 0.002)),
        app_smt_(counters_with(2.1, 0.005, 0.0025)) {
    weights_.weight.fill(1.0 / machine::kMetricGroupCount);
    prober_ = std::make_unique<core::GaFitnessProber>(app_st_, app_smt_,
                                                      weights_, spec_, 100.0);
  }

  /// Runs the probe through all four kernels and asserts exact (bitwise)
  /// agreement with the reference.  `iters` > 1 also covers the probe's
  /// nudged genome variants.
  void expect_kernels_agree(const std::vector<double>& genome, int iters) {
    const double ref = prober_->run(genome, iters, core::GaKernel::kReference);
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kFused));
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kSoaSparse));
    EXPECT_EQ(ref, prober_->run(genome, iters, core::GaKernel::kSoaBatch));
  }

  core::SpecData spec_;
  machine::PmuCounters app_st_;
  machine::PmuCounters app_smt_;
  core::GroupWeights weights_;
  std::unique_ptr<core::GaFitnessProber> prober_;
};

TEST_F(GaEvalBitIdentity, AllZeroGenome) {
  // Degenerate share total: every kernel must take the same 1e18 penalty
  // branch, not divide by zero.
  const std::vector<double> zero(spec_.names.size(), 0.0);
  expect_kernels_agree(zero, 1);
  expect_kernels_agree(zero, 8);
}

TEST_F(GaEvalBitIdentity, SingleTermGenomes) {
  for (std::size_t k = 0; k < spec_.names.size(); ++k) {
    std::vector<double> genome(spec_.names.size(), 0.0);
    genome[k] = 0.25 + 0.5 * static_cast<double>(k);
    expect_kernels_agree(genome, 6);
  }
}

TEST_F(GaEvalBitIdentity, DenseGenome) {
  std::vector<double> genome(spec_.names.size());
  for (std::size_t k = 0; k < genome.size(); ++k) {
    genome[k] = 0.05 + 0.11 * static_cast<double>(k);
  }
  expect_kernels_agree(genome, 12);
}

TEST_F(GaEvalBitIdentity, RandomizedSparseGenomes) {
  std::mt19937_64 rng(0xb17b17);
  std::uniform_real_distribution<double> weight(0.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<double> genome(spec_.names.size(), 0.0);
    for (double& g : genome) {
      if (coin(rng) < 0.5) g = weight(rng);
    }
    expect_kernels_agree(genome, 4);
  }
}

// ---------------------------------------------------------------------------
// Direct engine tests
// ---------------------------------------------------------------------------

struct EngineFixture {
  std::vector<machine::MetricVector> st;
  std::vector<machine::MetricVector> smt;
  std::vector<double> base_time;
  machine::MetricVector app_st;
  machine::MetricVector app_smt;
  core::GaEvalEngine engine;

  explicit EngineFixture(std::size_t n) {
    std::array<double, machine::kMetricCount> scale{};
    std::array<double, machine::kMetricCount> metric_weight{};
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      scale[i] = 0.5 + 0.1 * static_cast<double>(i);
      metric_weight[i] = 1.0 / (1.0 + static_cast<double>(i));
      app_st.values[i] = 0.3 + 0.07 * static_cast<double>(i);
      app_smt.values[i] = 0.4 + 0.05 * static_cast<double>(i);
    }
    for (std::size_t k = 0; k < n; ++k) {
      machine::MetricVector v_st;
      machine::MetricVector v_smt;
      for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
        v_st.values[i] = 0.01 * static_cast<double>(k * 37 + i * 11 + 1);
        v_smt.values[i] = 0.01 * static_cast<double>(k * 53 + i * 7 + 2);
      }
      st.push_back(v_st);
      smt.push_back(v_smt);
      base_time.push_back(10.0 + 3.0 * static_cast<double>(k));
    }
    engine.build(st, smt, base_time, app_st, app_smt, scale, metric_weight,
                 75.0, 2.0);
  }
};

TEST(GaEvalEngine, MetricMajorTransposeMatchesAoS) {
  const EngineFixture fx(7);
  ASSERT_EQ(fx.engine.size(), 7u);
  const std::vector<double>& mm_st = fx.engine.metric_major_st();
  const std::vector<double>& mm_smt = fx.engine.metric_major_smt();
  ASSERT_EQ(mm_st.size(), machine::kMetricCount * 7u);
  for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
    for (std::size_t k = 0; k < 7u; ++k) {
      EXPECT_EQ(mm_st[i * 7 + k], fx.st[k].values[i]);
      EXPECT_EQ(mm_smt[i * 7 + k], fx.smt[k].values[i]);
    }
  }
}

TEST(GaEvalEngine, ExtraZeroPositionsInNzAreBitInvisible) {
  // The contract's zero-weight clause: an nz list padded with zero-weight
  // positions must produce bit-identical fitness to the minimal list.
  const EngineFixture fx(9);
  std::vector<double> genome(9, 0.0);
  genome[1] = 0.8;
  genome[4] = 1.3;
  genome[7] = 0.2;
  const std::vector<std::size_t> minimal = {1, 4, 7};
  std::vector<std::size_t> padded(9);
  for (std::size_t k = 0; k < 9; ++k) padded[k] = k;

  core::GaEvalScratch scratch;
  double d_min = 0.0;
  double r_min = 0.0;
  const double f_min = fx.engine.fitness_sparse(
      genome.data(), minimal.data(), minimal.size(), scratch, &d_min, &r_min);
  double d_pad = 0.0;
  double r_pad = 0.0;
  const double f_pad = fx.engine.fitness_sparse(
      genome.data(), padded.data(), padded.size(), scratch, &d_pad, &r_pad);
  EXPECT_EQ(f_min, f_pad);
  EXPECT_EQ(d_min, d_pad);
  EXPECT_EQ(r_min, r_pad);
}

TEST(GaEvalEngine, BatchMatchesSparseCalls) {
  const EngineFixture fx(8);
  std::mt19937_64 rng(0x5eed);
  std::uniform_real_distribution<double> weight(0.0, 1.5);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  constexpr std::size_t kPop = 24;
  std::vector<std::vector<double>> genomes(kPop, std::vector<double>(8, 0.0));
  std::vector<std::vector<std::size_t>> nz(kPop);
  std::vector<core::GenomeRef> refs(kPop);
  for (std::size_t b = 0; b < kPop; ++b) {
    for (std::size_t k = 0; k < 8; ++k) {
      if (coin(rng) < 0.6) {
        genomes[b][k] = weight(rng);
        nz[b].push_back(k);
      }
    }
    refs[b] = {genomes[b].data(), nz[b].data(), nz[b].size()};
  }

  core::GaEvalScratch scratch;
  std::vector<double> batch_fitness(kPop, 0.0);
  fx.engine.evaluate_population(refs.data(), kPop, scratch,
                                batch_fitness.data());
  for (std::size_t b = 0; b < kPop; ++b) {
    core::GaEvalScratch fresh;
    const double one = fx.engine.fitness_sparse(genomes[b].data(),
                                                nz[b].data(), nz[b].size(),
                                                fresh);
    EXPECT_EQ(batch_fitness[b], one) << "genome " << b;
  }
}

// ---------------------------------------------------------------------------
// Delta evaluation
// ---------------------------------------------------------------------------

/// Restores the automatic delta-tier selection (and the default pool size)
/// when a sweep ends.
struct DeltaSweepGuard {
  ~DeltaSweepGuard() {
    core::set_ga_delta_tier("");
    set_thread_count(0);
  }
};

/// Exact fitness of `genome` with its j-th nz term scaled by `factor` and
/// the whole genome renormalised to the fixture's runtime target (75.0) —
/// the quantity `fitness_delta_scale1` screens for.
double exact_rescaled_fitness(const EngineFixture& fx,
                              const std::vector<double>& genome,
                              const std::vector<std::size_t>& nz,
                              std::size_t j, double factor) {
  std::vector<double> cand = genome;
  cand[nz[j]] *= factor;
  double total = 0.0;
  for (const std::size_t k : nz) total += cand[k] * fx.base_time[k];
  const double scale = 75.0 / total;
  for (const std::size_t k : nz) cand[k] *= scale;
  core::GaEvalScratch scratch;
  return fx.engine.fitness_sparse(cand.data(), nz.data(), nz.size(), scratch);
}

TEST(GaDeltaEval, SupportedTiersStartWithGeneric) {
  const std::vector<std::string> tiers = core::ga_delta_supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), "generic");
  EXPECT_FALSE(core::set_ga_delta_tier("no-such-isa"));
  DeltaSweepGuard guard;
  for (const std::string& tier : tiers) {
    EXPECT_TRUE(core::set_ga_delta_tier(tier)) << tier;
  }
}

TEST(GaDeltaEval, Scale1ScreenTracksExactFitnessOnEveryTier) {
  const EngineFixture fx(10);
  std::vector<double> genome(10, 0.0);
  genome[0] = 0.7;
  genome[3] = 1.1;
  genome[5] = 0.4;
  genome[8] = 0.9;
  const std::vector<std::size_t> nz = {0, 3, 5, 8};
  core::GaBlendState blend;
  fx.engine.bind_blend(blend, genome.data(), nz.data(), nz.size());
  ASSERT_TRUE(blend.bound());
  EXPECT_EQ(blend.term_count(), nz.size());

  DeltaSweepGuard guard;
  for (const std::string& tier : core::ga_delta_supported_tiers()) {
    ASSERT_TRUE(core::set_ga_delta_tier(tier));
    for (std::size_t j = 0; j < nz.size(); ++j) {
      for (const double factor : {0.8, 1.25, 0.95, 1.05}) {
        const double screen =
            fx.engine.fitness_delta_scale1(blend, j, factor);
        const double exact = exact_rescaled_fitness(fx, genome, nz, j,
                                                    factor);
        // The polish margin (1e-9 relative) must dominate the screen error
        // on every tier, or screened polish could diverge from exact.
        EXPECT_NEAR(screen, exact, 1e-9 * (1.0 + std::abs(exact)))
            << tier << " j=" << j << " factor=" << factor;
      }
    }
  }
}

TEST(GaDeltaEval, ChangeSetScreenHandlesAddsRemovesAndRescales) {
  const EngineFixture fx(12);
  std::vector<double> genome(12, 0.0);
  const std::vector<std::size_t> nz = {1, 4, 6, 9};
  genome[1] = 0.6;
  genome[4] = 1.2;
  genome[6] = 0.3;
  genome[9] = 0.8;
  core::GaBlendState blend;
  fx.engine.bind_blend(blend, genome.data(), nz.data(), nz.size());

  std::mt19937_64 rng(0xde17a);
  std::uniform_real_distribution<double> delta(0.05, 0.5);
  std::uniform_int_distribution<std::size_t> pick_nz(0, nz.size() - 1);
  std::uniform_int_distribution<std::size_t> any_slot(0, 11);
  std::uniform_int_distribution<int> count_dist(1, 3);
  core::GaEvalScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    std::array<core::GaWeightChange, core::kMaxDeltaChanges> changes{};
    const int count = count_dist(rng);
    std::vector<double> cand = genome;
    for (int c = 0; c < count; ++c) {
      // Mix edits of existing terms with add-mutations on empty slots.
      const std::size_t slot =
          (trial + c) % 3 == 0 ? any_slot(rng) : nz[pick_nz(rng)];
      const double dw = cand[slot] > delta(rng) && (trial & 1) != 0
                            ? -0.5 * cand[slot]   // shrink (stay positive)
                            : delta(rng);         // grow or add
      changes[static_cast<std::size_t>(c)] = {slot, dw};
      cand[slot] += dw;
    }
    const double screen = fx.engine.fitness_delta_changes(
        blend, changes.data(), static_cast<std::size_t>(count));

    // Exact: renormalise the edited genome over the union support.
    std::vector<std::size_t> support;
    for (std::size_t k = 0; k < cand.size(); ++k) {
      if (cand[k] != 0.0) support.push_back(k);
    }
    double total = 0.0;
    for (const std::size_t k : support) total += cand[k] * fx.base_time[k];
    ASSERT_GT(total, 0.0);
    const double scale = 75.0 / total;
    for (const std::size_t k : support) cand[k] *= scale;
    const double exact = fx.engine.fitness_sparse(
        cand.data(), support.data(), support.size(), scratch);
    EXPECT_NEAR(screen, exact, 1e-9 * (1.0 + std::abs(exact)))
        << "trial " << trial;
  }
}

TEST(GaDeltaEval, CommittedUpdatesStayWithinTheRefreshDriftBound) {
  const EngineFixture fx(10);
  std::vector<double> genome(10, 0.0);
  std::vector<std::size_t> nz = {0, 2, 4, 5, 7, 9};
  for (const std::size_t k : nz) {
    genome[k] = 0.4 + 0.1 * static_cast<double>(k);
  }
  core::GaBlendState blend;
  fx.engine.bind_blend(blend, genome.data(), nz.data(), nz.size());

  std::mt19937_64 rng(0xd21f7);
  std::uniform_int_distribution<std::size_t> pick(0, nz.size() - 1);
  const double factors[4] = {0.8, 1.25, 0.95, 1.05};
  std::uint32_t max_updates_seen = 0;
  for (int iter = 0; iter < 512; ++iter) {
    const std::size_t j = pick(rng);
    const double factor = factors[iter & 3];
    fx.engine.apply_scale1(blend, j, factor);
    genome[nz[j]] *= factor;
    max_updates_seen = std::max(max_updates_seen, blend.updates());
    if (blend.needs_refresh()) {
      fx.engine.bind_blend(blend, genome.data(), nz.data(), nz.size());
    }

    // A factor-1 screen is the blended fitness of the live genome: compare
    // the drifted accumulators against a freshly bound state.
    const double drifted = fx.engine.fitness_delta_scale1(blend, 0, 1.0);
    core::GaBlendState fresh;
    fx.engine.bind_blend(fresh, genome.data(), nz.data(), nz.size());
    const double reference = fx.engine.fitness_delta_scale1(fresh, 0, 1.0);
    ASSERT_NEAR(drifted, reference, 1e-10 * (1.0 + std::abs(reference)))
        << "iter " << iter << " updates " << blend.updates();
  }
  // The refresh policy actually engaged (and never overshot the interval).
  EXPECT_EQ(max_updates_seen, core::GaBlendState::kRefreshInterval);
}

TEST_F(GaEvalBitIdentity, PolishModesAgreeBitwise) {
  std::vector<double> genome(spec_.names.size(), 0.0);
  genome[1] = 0.9;
  genome[3] = 0.5;
  genome[6] = 1.4;
  genome[8] = 0.2;
  DeltaSweepGuard guard;
  const double full = prober_->run_polish(genome, 4, core::PolishMode::kFullEval);
  for (const std::string& tier : core::ga_delta_supported_tiers()) {
    ASSERT_TRUE(core::set_ga_delta_tier(tier));
    EXPECT_EQ(full,
              prober_->run_polish(genome, 4, core::PolishMode::kDeltaScreened))
        << tier;
  }
}

/// Everything the GA returns, flattened for exact comparison.
void expect_surrogates_identical(const core::Surrogate& a,
                                 const core::Surrogate& b,
                                 const std::string& label) {
  EXPECT_EQ(a.fitness, b.fitness) << label;
  EXPECT_EQ(a.metric_distance, b.metric_distance) << label;
  EXPECT_EQ(a.runtime_error, b.runtime_error) << label;
  ASSERT_EQ(a.terms.size(), b.terms.size()) << label;
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].benchmark, b.terms[i].benchmark) << label;
    EXPECT_EQ(a.terms[i].weight, b.terms[i].weight) << label;
    EXPECT_EQ(a.terms[i].slot, b.terms[i].slot) << label;
  }
}

TEST_F(GaEvalBitIdentity, ScreenedSearchIsBitIdenticalAcrossThreadsAndTiers) {
  core::GaOptions options;
  options.population = 32;
  options.generations = 30;
  options.restarts = 2;

  // Ground truth: the pre-delta polish path, single-threaded.
  set_thread_count(1);
  options.polish = core::PolishMode::kFullEval;
  const core::Surrogate reference = core::find_surrogate(
      app_st_, app_smt_, weights_, spec_, 100.0, options);
  ASSERT_FALSE(reference.terms.empty());

  DeltaSweepGuard guard;
  options.polish = core::PolishMode::kDeltaScreened;
  for (const int threads : {1, 4}) {
    set_thread_count(threads);
    for (const std::string& tier : core::ga_delta_supported_tiers()) {
      ASSERT_TRUE(core::set_ga_delta_tier(tier));
      const core::Surrogate screened = core::find_surrogate(
          app_st_, app_smt_, weights_, spec_, 100.0, options);
      expect_surrogates_identical(
          reference, screened,
          "threads=" + std::to_string(threads) + " tier=" + tier);
    }
  }
}

TEST_F(GaEvalBitIdentity, MutationScreeningProducesAValidSurrogate) {
  core::GaOptions options;
  options.population = 32;
  options.generations = 40;
  options.restarts = 2;
  const core::Surrogate exact = core::find_surrogate(
      app_st_, app_smt_, weights_, spec_, 100.0, options);

  options.screen_mutations = true;
  const core::Surrogate screened = core::find_surrogate(
      app_st_, app_smt_, weights_, spec_, 100.0, options);
  ASSERT_FALSE(screened.terms.empty());
  EXPECT_LE(screened.terms.size(), 6u);
  for (const core::SurrogateTerm& term : screened.terms) {
    EXPECT_GT(term.weight, 0.0);
    EXPECT_NE(term.slot, core::SurrogateTerm::kNoSlot);
  }
  EXPECT_TRUE(std::isfinite(screened.fitness));
  // Approximate population scoring may change the search trajectory, but
  // the final surrogate is exact-scored and must stay in the same quality
  // regime as the exact search.
  EXPECT_LT(std::abs(screened.runtime_error), 0.05);
  EXPECT_LT(screened.fitness, 20.0 * exact.fitness + 1e-9);
}

}  // namespace
}  // namespace swapp
