// Tests for the projection server: flag parsing, frame round-trips over a
// socketpair (truncation, oversize, garbage payloads), and a live server —
// admission backpressure, error containment on a shared connection,
// cross-client coalescing (one planned run, deduplicated GA searches), and
// graceful shutdown that drains in-flight work.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/options.h"
#include "server/protocol.h"
#include "server/server.h"
#include "service/batch_format.h"
#include "service/service.h"
#include "support/error.h"
#include "sweep/result.h"
#include "sweep/runner.h"
#include "sweep/sweep.h"

namespace swapp {
namespace {

using experiments::collect_base_data;
using experiments::collect_spec_library;

const std::vector<int> kCounts = {8, 16, 32};
const std::vector<Bytes> kSizes = {512, 16_KiB, 256_KiB};

// --- options ---------------------------------------------------------------

TEST(ServerOptionsTest, QueueDepthAcceptsPositiveIntegers) {
  EXPECT_EQ(server::parse_queue_depth("1"), 1u);
  EXPECT_EQ(server::parse_queue_depth("64"), 64u);
}

TEST(ServerOptionsTest, QueueDepthRejectsWithOffendingTextQuoted) {
  for (const std::string bad : {"0", "-3", "abc", "12x", "", "4.5"}) {
    try {
      server::parse_queue_depth(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("'" + bad + "'"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ServerOptionsTest, CoalesceWindowAcceptsZeroAndPositive) {
  EXPECT_EQ(server::parse_coalesce_window("0"),
            std::chrono::milliseconds(0));
  EXPECT_EQ(server::parse_coalesce_window("250"),
            std::chrono::milliseconds(250));
}

TEST(ServerOptionsTest, CoalesceWindowRejectsWithOffendingTextQuoted) {
  for (const std::string bad : {"-1", "abc", "", "1.5", "10ms"}) {
    try {
      server::parse_coalesce_window(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("'" + bad + "'"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ServerOptionsTest, ByteSizeAcceptsSuffixes) {
  EXPECT_EQ(server::parse_byte_size("512"), 512u);
  EXPECT_EQ(server::parse_byte_size("64k"), 64u * 1024);
  EXPECT_EQ(server::parse_byte_size("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(server::parse_byte_size("1g"), 1024ull * 1024 * 1024);
}

TEST(ServerOptionsTest, ByteSizeRejectsWithOffendingTextQuoted) {
  for (const std::string bad : {"0", "-1", "k", "10t", "", "1.5m"}) {
    try {
      server::parse_byte_size(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("'" + bad + "'"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ServerOptionsTest, SocketPathRejectsEmptyAndOverlong) {
  EXPECT_EQ(server::parse_socket_path("/tmp/x.sock"),
            std::filesystem::path("/tmp/x.sock"));
  EXPECT_THROW(server::parse_socket_path(""), InvalidArgument);
  const std::string longpath(server::kMaxSocketPath + 1, 'a');
  try {
    server::parse_socket_path(longpath);
    FAIL() << "accepted an overlong path";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(longpath), std::string::npos);
  }
}

// --- framing ---------------------------------------------------------------

/// A connected AF_UNIX socket pair for driving frames without a server.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  void close_writer() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(ProtocolTest, FrameRoundTripsIncludingEmptyPayload) {
  SocketPair pair;
  for (const std::string& payload : {std::string("hello frames"),
                                     std::string(), std::string(5000, 'x')}) {
    server::write_frame(pair.fds[0], payload);
    const server::Frame frame = server::read_frame(pair.fds[1], 1 << 20);
    ASSERT_EQ(frame.status, server::FrameStatus::kOk);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(ProtocolTest, CleanCloseReadsAsEof) {
  SocketPair pair;
  pair.close_writer();
  EXPECT_EQ(server::read_frame(pair.fds[1], 1024).status,
            server::FrameStatus::kEof);
}

TEST(ProtocolTest, MidHeaderCloseReadsAsTruncated) {
  SocketPair pair;
  const char partial[2] = {0, 0};
  ASSERT_EQ(::send(pair.fds[0], partial, sizeof partial, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof partial));
  pair.close_writer();
  EXPECT_EQ(server::read_frame(pair.fds[1], 1024).status,
            server::FrameStatus::kTruncated);
}

TEST(ProtocolTest, MidPayloadCloseReadsAsTruncated) {
  SocketPair pair;
  const unsigned char header[4] = {0, 0, 0, 100};  // announces 100 bytes
  ASSERT_EQ(::send(pair.fds[0], header, sizeof header, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof header));
  ASSERT_EQ(::send(pair.fds[0], "short", 5, MSG_NOSIGNAL), 5);
  pair.close_writer();
  EXPECT_EQ(server::read_frame(pair.fds[1], 1024).status,
            server::FrameStatus::kTruncated);
}

TEST(ProtocolTest, OversizedFrameIsDrainedAndNextFrameReadable) {
  SocketPair pair;
  server::write_frame(pair.fds[0], std::string(2048, 'z'));
  server::write_frame(pair.fds[0], "after");
  const server::Frame big = server::read_frame(pair.fds[1], 1024);
  EXPECT_EQ(big.status, server::FrameStatus::kOversized);
  const server::Frame next = server::read_frame(pair.fds[1], 1024);
  ASSERT_EQ(next.status, server::FrameStatus::kOk);
  EXPECT_EQ(next.payload, "after");
}

TEST(ProtocolTest, ResponseDocumentRoundTrips) {
  server::Response response;
  response.ok = true;
  response.results.push_back(
      server::ResultRow{"LU/C", "IBM POWER6 575", 16, 1.25, 0.5, 1.75});
  response.phases.push_back(server::PhaseRow{"plan", 0.001});
  response.artifacts.push_back(server::ArtifactRow{"spec-library", "disk"});
  const server::Response back =
      server::decode_response(server::encode_response(response));
  ASSERT_TRUE(back.ok);
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].app, "LU/C");
  EXPECT_EQ(back.results[0].tasks, 16);
  EXPECT_EQ(back.results[0].compute_s, 1.25);  // exact double round-trip
  EXPECT_EQ(back.results[0].total_s, 1.75);
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_EQ(back.phases[0].phase, "plan");
  ASSERT_EQ(back.artifacts.size(), 1u);
  EXPECT_EQ(back.artifacts[0].source, "disk");
}

TEST(ProtocolTest, ErrorDocumentRoundTrips) {
  const server::Response back = server::decode_response(server::encode_response(
      server::Response::failure(server::ErrorCode::kBusy, "queue full")));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, server::ErrorCode::kBusy);
  EXPECT_EQ(back.message, "queue full");
}

TEST(ProtocolTest, GarbageResponseThrows) {
  EXPECT_THROW(server::decode_response("not a record document"), Error);
}

// --- live server -----------------------------------------------------------

/// Polls `done` for up to five seconds.
template <typename Predicate>
bool eventually(Predicate done) {
  for (int i = 0; i < 500; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// Live-server fixture: one cache directory per suite, so the first test
/// collects the (small-grid) artifacts cold and every later test runs warm
/// through each server's resident cache over the same directory — which also
/// exercises the cache sharing the daemon exists for.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Keyed by pid, not gtest's random seed: ctest -j runs every test in its
    // own process with the default seed 0, and suites sharing one directory
    // remove_all each other's live sockets.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("swapp-server-test-" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  /// Cheap per-batch service setup: small measurement grids, LU/C only.
  static server::Server::ServiceSetup cheap_setup() {
    const machine::Machine base = machine::make_power5_hydra();
    return [base](service::ProjectionService& svc,
                  const std::vector<service::BatchRow>& rows) {
      (void)rows;
      svc.set_spec_collector(
          [](const machine::Machine& b,
             const std::vector<machine::Machine>& t,
             const std::vector<int>& counts) {
            return collect_spec_library(b, t, counts);
          });
      svc.set_imb_collector([](const machine::Machine& m) {
        return imb::measure_database(m, kCounts, kSizes);
      });
      svc.add_app("LU/C",
                  service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                               {4, 8, 16}),
                  [base] {
                    return collect_base_data(
                        nas::NasApp(nas::Benchmark::kLU,
                                    nas::ProblemClass::kC),
                        base, {4, 8, 16}, {4, 8, 16});
                  });
    };
  }

  static std::string only_lu(const service::BatchRow& row) {
    if (row.app != "LU/C") {
      return "this server only serves LU/C, got " + row.app;
    }
    return {};
  }

  static server::ServerConfig config(const std::string& socket_name) {
    server::ServerConfig cfg;
    cfg.socket_path = *dir_ / socket_name;
    cfg.service.cache_dir = *dir_ / "cache";
    // Fixed SPEC grid: every batch mix shares one library artifact.
    cfg.service.spec_task_counts = {4, 8, 16};
    return cfg;
  }

  static std::string lu_request(int tasks, int reference) {
    service::BatchRow row;
    row.app = "LU/C";
    row.target = machine::make_power6_575().name;
    row.tasks = tasks;
    row.reference = reference;
    std::ostringstream payload;
    service::write_batch_requests(payload, {row});
    return payload.str();
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* ServerTest::dir_ = nullptr;

TEST_F(ServerTest, ServesARequestAndDrainsOnStop) {
  server::Server srv(machine::make_power5_hydra(), config("round.sock"),
                     cheap_setup(), &only_lu);
  srv.start();
  {
    server::Client client(*dir_ / "round.sock");
    const server::Response response = client.call(lu_request(8, 16));
    ASSERT_TRUE(response.ok) << response.message;
    ASSERT_EQ(response.results.size(), 1u);
    // Results carry the profile's app name, exactly as `swapp batch` prints.
    EXPECT_EQ(response.results[0].app, "LU-MZ.C");
    EXPECT_EQ(response.results[0].tasks, 8);
    EXPECT_GT(response.results[0].total_s, 0.0);
    EXPECT_FALSE(response.phases.empty());
    EXPECT_FALSE(response.artifacts.empty());
  }
  srv.request_stop();
  srv.wait();
  EXPECT_EQ(srv.requests_served(), 1u);
  EXPECT_EQ(srv.batches_run(), 1u);
  EXPECT_EQ(srv.connections_accepted(), 1u);
  // The socket file is gone after a graceful exit.
  EXPECT_FALSE(std::filesystem::exists(*dir_ / "round.sock"));
}

TEST_F(ServerTest, GarbagePayloadGetsTypedErrorAndConnectionSurvives) {
  server::Server srv(machine::make_power5_hydra(), config("bad.sock"),
                     cheap_setup(), &only_lu);
  srv.start();
  {
    server::Client client(*dir_ / "bad.sock");
    const server::Response bad = client.call("definitely not a record doc");
    ASSERT_FALSE(bad.ok);
    EXPECT_EQ(bad.error, server::ErrorCode::kBadRequest);

    // Same connection, unknown target: still a typed rejection.
    service::BatchRow row;
    row.app = "LU/C";
    row.target = "No Such Machine";
    row.tasks = 8;
    std::ostringstream payload;
    service::write_batch_requests(payload, {row});
    const server::Response unknown = client.call(payload.str());
    ASSERT_FALSE(unknown.ok);
    EXPECT_EQ(unknown.error, server::ErrorCode::kBadRequest);
    EXPECT_NE(unknown.message.find("No Such Machine"), std::string::npos);

    // A validator rejection quotes its own message.
    service::BatchRow sp = row;
    sp.app = "SP/C";
    sp.target = machine::make_power6_575().name;
    std::ostringstream payload2;
    service::write_batch_requests(payload2, {sp});
    const server::Response refused = client.call(payload2.str());
    ASSERT_FALSE(refused.ok);
    EXPECT_EQ(refused.error, server::ErrorCode::kBadRequest);
    EXPECT_NE(refused.message.find("only serves LU/C"), std::string::npos);

    // And after all of that the connection still serves real work.
    const server::Response good = client.call(lu_request(8, 16));
    EXPECT_TRUE(good.ok) << good.message;
  }
  EXPECT_GE(srv.protocol_errors(), 3u);
  srv.request_stop();
  srv.wait();
}

TEST_F(ServerTest, OversizedFrameGetsTypedErrorAndConnectionSurvives) {
  server::ServerConfig cfg = config("oversize.sock");
  cfg.max_request_bytes = 4096;
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();
  const int fd = server::connect_unix(cfg.socket_path);
  server::write_frame(fd, std::string(10000, 'x'));
  const server::Frame reply = server::read_frame(fd, 1 << 20);
  ASSERT_EQ(reply.status, server::FrameStatus::kOk);
  const server::Response response = server::decode_response(reply.payload);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.error, server::ErrorCode::kOversized);

  server::write_frame(fd, lu_request(8, 16));
  const server::Frame reply2 = server::read_frame(fd, 1 << 20);
  ASSERT_EQ(reply2.status, server::FrameStatus::kOk);
  EXPECT_TRUE(server::decode_response(reply2.payload).ok);
  ::close(fd);
  srv.request_stop();
  srv.wait();
}

TEST_F(ServerTest, TruncatedFrameClosesConnectionButServerSurvives) {
  server::Server srv(machine::make_power5_hydra(), config("trunc.sock"),
                     cheap_setup(), &only_lu);
  srv.start();
  {
    const int fd = server::connect_unix(*dir_ / "trunc.sock");
    const unsigned char header[4] = {0, 0, 1, 0};  // announces 256 bytes
    ASSERT_EQ(::send(fd, header, sizeof header, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof header));
    ::close(fd);  // vanish mid-frame
  }
  ASSERT_TRUE(eventually([&] { return srv.protocol_errors() >= 1; }));

  // A fresh connection is served normally.
  server::Client client(*dir_ / "trunc.sock");
  EXPECT_TRUE(client.call(lu_request(8, 16)).ok);
  srv.request_stop();
  srv.wait();
}

TEST_F(ServerTest, FullQueueRejectsWithBusy) {
  server::ServerConfig cfg = config("busy.sock");
  cfg.max_queue = 1;
  // The scheduler holds out for three queued batches (which never arrive),
  // so the first admitted batch parks in the queue deterministically.
  cfg.coalesce_min = 3;
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();

  server::Response first;
  std::thread admitted([&] {
    server::Client client(cfg.socket_path);
    first = client.call(lu_request(8, 16));
  });
  // Wait until that batch occupies the queue's only slot, then overflow it.
  ASSERT_TRUE(eventually([&] { return srv.queue_depth() == 1; }));
  {
    server::Client overflow(cfg.socket_path);
    const server::Response r = overflow.call(lu_request(16, 16));
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error, server::ErrorCode::kBusy);
    EXPECT_NE(r.message.find("retry"), std::string::npos);
  }
  EXPECT_EQ(srv.busy_rejections(), 1u);

  // Shutdown drains the parked batch: its client still gets an answer.
  srv.request_stop();
  srv.wait();
  admitted.join();
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.results.size(), 1u);
}

TEST_F(ServerTest, CoalescesConcurrentClientsIntoOnePlannedRun) {
  obs::reset_metrics();
  obs::set_metrics_enabled(true);
  server::ServerConfig cfg = config("coalesce.sock");
  cfg.coalesce_min = 2;  // force the two clients into one run
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();

  server::Response r1, r2;
  std::thread a([&] {
    server::Client client(cfg.socket_path);
    r1 = client.call(lu_request(8, 16));
  });
  std::thread b([&] {
    server::Client client(cfg.socket_path);
    r2 = client.call(lu_request(16, 16));
  });
  a.join();
  b.join();
  srv.request_stop();
  srv.wait();

  ASSERT_TRUE(r1.ok) << r1.message;
  ASSERT_TRUE(r2.ok) << r2.message;
  ASSERT_EQ(r1.results.size(), 1u);
  ASSERT_EQ(r2.results.size(), 1u);
  EXPECT_EQ(r1.results[0].tasks, 8);
  EXPECT_EQ(r2.results[0].tasks, 16);
  // One coalesced run served both clients...
  EXPECT_EQ(srv.batches_run(), 1u);
  EXPECT_EQ(srv.requests_served(), 2u);
  // ...and the planner deduplicated the shared GA search: both rows ask for
  // the same (app, target) group at reference 16, so two naive searches
  // collapse into one.
  const obs::MetricsSnapshot snapshot = obs::metrics_snapshot();
  const obs::CounterValue* searches = snapshot.counter("planner.searches");
  const obs::CounterValue* naive = snapshot.counter("planner.naive_searches");
  ASSERT_NE(searches, nullptr);
  ASSERT_NE(naive, nullptr);
  EXPECT_EQ(searches->value, 1u);
  EXPECT_EQ(naive->value, 2u);
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}

TEST_F(ServerTest, CoalesceWindowCatchesNearSimultaneousClients) {
  server::ServerConfig cfg = config("window.sock");
  // coalesce_min stays 1: only the linger window holds the drain open long
  // enough for the second client to join the first client's run.
  cfg.coalesce_window = std::chrono::milliseconds(2000);
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();

  server::Response r1, r2;
  std::thread a([&] {
    server::Client client(cfg.socket_path);
    r1 = client.call(lu_request(8, 16));
  });
  // Admit the second batch only once the first occupies the queue, so it
  // lands squarely inside the scheduler's window.
  ASSERT_TRUE(eventually([&] { return srv.queue_depth() == 1; }));
  std::thread b([&] {
    server::Client client(cfg.socket_path);
    r2 = client.call(lu_request(16, 16));
  });
  a.join();
  b.join();
  srv.request_stop();
  srv.wait();

  ASSERT_TRUE(r1.ok) << r1.message;
  ASSERT_TRUE(r2.ok) << r2.message;
  EXPECT_EQ(srv.batches_run(), 1u);
  EXPECT_EQ(srv.requests_served(), 2u);
}

TEST_F(ServerTest, ShutdownCutsTheCoalesceWindowShort) {
  server::ServerConfig cfg = config("window-stop.sock");
  // A window far longer than the test budget: only the shutdown wakeup can
  // end the linger, so a prompt answer proves the cut-short path.
  cfg.coalesce_window = std::chrono::minutes(5);
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();

  server::Response r;
  std::thread a([&] {
    server::Client client(cfg.socket_path);
    r = client.call(lu_request(8, 16));
  });
  ASSERT_TRUE(eventually([&] { return srv.queue_depth() == 1; }));
  srv.request_stop();
  srv.wait();
  a.join();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(srv.batches_run(), 1u);
}

TEST_F(ServerTest, DrainingServerAnswersShuttingDown) {
  server::Server srv(machine::make_power5_hydra(), config("drain.sock"),
                     cheap_setup(), &only_lu);
  srv.start();
  server::Client client(*dir_ / "drain.sock");
  EXPECT_TRUE(client.call(lu_request(8, 16)).ok);

  srv.request_stop();
  ASSERT_TRUE(eventually([&] { return srv.draining(); }));
  const server::Response refused = client.call(lu_request(16, 16));
  ASSERT_FALSE(refused.ok);
  EXPECT_EQ(refused.error, server::ErrorCode::kShuttingDown);
  srv.wait();
}

TEST_F(ServerTest, LiveSocketIsRefusedStaleSocketIsReplaced) {
  server::Server first(machine::make_power5_hydra(), config("twice.sock"),
                       cheap_setup(), &only_lu);
  first.start();
  {
    server::Server second(machine::make_power5_hydra(), config("twice.sock"),
                          cheap_setup(), &only_lu);
    EXPECT_THROW(second.start(), Error);
  }
  first.request_stop();
  first.wait();

  // A stale socket file (no listener behind it) is silently replaced.
  { std::ofstream stale(*dir_ / "twice.sock"); }
  server::Server third(machine::make_power5_hydra(), config("twice.sock"),
                       cheap_setup(), &only_lu);
  third.start();
  server::Client client(*dir_ / "twice.sock");
  EXPECT_TRUE(client.call(lu_request(8, 16)).ok);
  third.request_stop();
  third.wait();
}

// --- stats / health introspection -------------------------------------------

TEST(StatsProtocolTest, ReportEncodeDecodeRoundTripsEveryField) {
  server::StatsReport report;
  report.draining = true;
  report.uptime_s = 12.5;
  report.queue_depth = 3;
  report.queue_capacity = 64;
  report.inflight_batches = 1;
  report.inflight_rows = 7;
  report.connections = 11;
  report.requests = 42;
  report.batches = 9;
  report.busy_rejections = 2;
  report.protocol_errors = 1;
  report.stats_requests = 5;
  server::StatsScope scope;
  scope.name = "10s";
  scope.seconds = 9.75;
  scope.metrics.counters.push_back(obs::CounterValue{"server.requests", 42});
  scope.metrics.gauges.push_back(obs::GaugeValue{"server.queue_depth", 3.0});
  obs::HistogramValue h;
  h.name = "server.request_us";
  h.count = 10;
  h.sum = 1000.0;
  h.min = 50.0;
  h.max = 200.0;
  h.buckets[7] = 10;
  scope.metrics.histograms.push_back(h);
  report.scopes.push_back(scope);

  const server::StatsReport back =
      server::decode_stats_report(server::encode_stats_report(report));
  EXPECT_EQ(back.draining, true);
  EXPECT_DOUBLE_EQ(back.uptime_s, 12.5);
  EXPECT_EQ(back.queue_depth, 3u);
  EXPECT_EQ(back.queue_capacity, 64u);
  EXPECT_EQ(back.inflight_batches, 1u);
  EXPECT_EQ(back.inflight_rows, 7u);
  EXPECT_EQ(back.connections, 11u);
  EXPECT_EQ(back.requests, 42u);
  EXPECT_EQ(back.batches, 9u);
  EXPECT_EQ(back.busy_rejections, 2u);
  EXPECT_EQ(back.protocol_errors, 1u);
  EXPECT_EQ(back.stats_requests, 5u);
  ASSERT_EQ(back.scopes.size(), 1u);
  EXPECT_EQ(back.scopes[0].name, "10s");
  EXPECT_DOUBLE_EQ(back.scopes[0].seconds, 9.75);
  ASSERT_EQ(back.scopes[0].metrics.counters.size(), 1u);
  EXPECT_EQ(back.scopes[0].metrics.counters[0].value, 42u);
  ASSERT_EQ(back.scopes[0].metrics.histograms.size(), 1u);
  EXPECT_EQ(back.scopes[0].metrics.histograms[0].buckets, h.buckets);
  EXPECT_DOUBLE_EQ(back.scopes[0].metrics.histograms[0].sum, 1000.0);
}

TEST(StatsProtocolTest, ClassifierSeparatesStatsFromBatchAndRejectsMalformed) {
  const server::StatsRequest stats = server::classify_stats_request(
      server::encode_stats_request(server::StatsKind::kStats));
  EXPECT_TRUE(stats.is_stats);
  EXPECT_EQ(stats.kind, server::StatsKind::kStats);
  const server::StatsRequest health = server::classify_stats_request(
      server::encode_stats_request(server::StatsKind::kHealth));
  EXPECT_TRUE(health.is_stats);
  EXPECT_EQ(health.kind, server::StatsKind::kHealth);

  // A batch document (or garbage) is simply "not a stats request".
  EXPECT_FALSE(server::classify_stats_request("#swapp \"swapp-batch\" v1\n")
                   .is_stats);
  EXPECT_FALSE(server::classify_stats_request("garbage").is_stats);
  // But a document that *claims* to be swapp-stats must be well-formed.
  EXPECT_THROW(
      server::classify_stats_request("#swapp \"swapp-stats\" v1\nbogus\n"),
      Error);
}

TEST_F(ServerTest, StatsEndpointReportsQueueInflightAndWindowedLatency) {
  // A tiny slot keeps the ticker rotating fast enough that the 1s window
  // demonstrably covers the request served below.
  server::ServerConfig cfg = config("stats.sock");
  cfg.stats_slot = std::chrono::milliseconds(50);
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  // Sampled always-on recording, exactly as `swapp serve` configures it.
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(1.0 / 64.0);
  obs::set_metrics_sampling("server.", 1.0);
  srv.start();

  // Cold probe before any work: sane head, empty-but-present window scopes.
  const server::StatsReport cold = srv.stats_report(server::StatsKind::kStats);
  EXPECT_FALSE(cold.draining);
  EXPECT_GE(cold.uptime_s, 0.0);
  EXPECT_EQ(cold.queue_depth, 0u);
  EXPECT_EQ(cold.queue_capacity, cfg.max_queue);
  EXPECT_EQ(cold.inflight_batches, 0u);
  ASSERT_EQ(cold.scopes.size(), 4u);
  EXPECT_EQ(cold.scopes[0].name, "1s");
  EXPECT_EQ(cold.scopes[1].name, "10s");
  EXPECT_EQ(cold.scopes[2].name, "60s");
  EXPECT_EQ(cold.scopes[3].name, "lifetime");

  {
    server::Client client(*dir_ / "stats.sock");
    ASSERT_TRUE(client.call(lu_request(8, 16)).ok);
    // The stats answer travels the wire like any other response, but is
    // served inline on the connection thread.
    const server::StatsReport live = server::decode_stats_report(
        client.call_raw(server::encode_stats_request(
            server::StatsKind::kStats)));
    EXPECT_EQ(live.requests, 1u);
    EXPECT_EQ(live.batches, 1u);
    EXPECT_EQ(live.inflight_batches, 0u);
    EXPECT_EQ(live.stats_requests, 1u);
    ASSERT_EQ(live.scopes.size(), 4u);
    const server::StatsScope& lifetime = live.scopes.back();
    const obs::HistogramValue* request_us =
        lifetime.metrics.histogram("server.request_us");
    ASSERT_NE(request_us, nullptr);
    EXPECT_EQ(request_us->count, 1u);
    EXPECT_GT(request_us->quantile(0.5), 0.0);
    EXPECT_LE(request_us->quantile(0.5), request_us->quantile(0.99));
    // The request just ran, so the trailing 1s window must show it too —
    // scopes diff against the live snapshot, not the last rotation.
    const obs::HistogramValue* windowed =
        live.scopes[0].metrics.histogram("server.request_us");
    ASSERT_NE(windowed, nullptr);
    EXPECT_EQ(windowed->count, 1u);

    // Health: same head, no metric scopes.
    const server::StatsReport health = server::decode_stats_report(
        client.call_raw(server::encode_stats_request(
            server::StatsKind::kHealth)));
    EXPECT_EQ(health.requests, 1u);
    EXPECT_GE(health.stats_requests, 1u);
    EXPECT_TRUE(health.scopes.empty());
  }
  srv.request_stop();
  srv.wait();
  obs::set_metrics_enabled(false);
  obs::reset_metrics_sampling();
  obs::reset_metrics();
}

TEST_F(ServerTest, StatsRequestsBypassTheAdmissionQueue) {
  // Fill the scheduler with a linger window so the queue stays occupied,
  // then show a stats probe answers while the batch is still pending.
  server::ServerConfig cfg = config("stats-busy.sock");
  cfg.coalesce_min = 2;  // scheduler waits for a second batch that never comes
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu);
  srv.start();
  std::thread rider([&] {
    server::Client client(*dir_ / "stats-busy.sock");
    (void)client.call(lu_request(8, 16));
  });
  // Wait until the batch is queued (the scheduler is holding out for more).
  ASSERT_TRUE(eventually([&] { return srv.queue_depth() == 1; }));
  server::Client probe(*dir_ / "stats-busy.sock");
  const server::StatsReport report = server::decode_stats_report(
      probe.call_raw(server::encode_stats_request(server::StatsKind::kStats)));
  EXPECT_EQ(report.queue_depth, 1u);  // answered while work sat queued
  srv.request_stop();  // drain cuts coalesce_min short and serves the rider
  rider.join();
  srv.wait();
}

/// Sweep-side mirror of cheap_setup: same small grids, same LU/C app.
server::Server::SweepSetup cheap_sweep_setup() {
  const machine::Machine base = machine::make_power5_hydra();
  return [base](sweep::SweepRunner& runner, const sweep::SweepSpec& spec) {
    (void)spec;
    runner.set_spec_collector(
        [](const machine::Machine& b, const std::vector<machine::Machine>& t,
           const std::vector<int>& counts) {
          return collect_spec_library(b, t, counts);
        });
    runner.set_imb_collector([](const machine::Machine& m) {
      return imb::measure_database(m, kCounts, kSizes);
    });
    runner.add_app("LU/C",
                   service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                                {4, 8, 16}),
                   [base] {
                     return collect_base_data(
                         nas::NasApp(nas::Benchmark::kLU,
                                     nas::ProblemClass::kC),
                         base, {4, 8, 16}, {4, 8, 16});
                   });
  };
}

sweep::SweepSpec bandwidth_sweep_spec() {
  sweep::SweepSpec spec;
  spec.app = "LU/C";
  spec.target = machine::make_power6_575().name;
  spec.tasks = 8;
  spec.reference = 16;
  spec.options.compute.surrogate_reference_cores = 16;
  spec.axes.push_back({"network.link_bandwidth_gbs", sweep::AxisMode::kScale,
                       {0.5, 1.0, 2.0}});
  return spec;
}

std::string sweep_request(const sweep::SweepSpec& spec) {
  std::ostringstream payload;
  sweep::write_sweep_spec(payload, spec);
  return payload.str();
}

TEST_F(ServerTest, ServedSweepMatchesALocalRunExactly) {
  const sweep::SweepSpec spec = bandwidth_sweep_spec();
  server::Server srv(machine::make_power5_hydra(), config("sweep.sock"),
                     cheap_setup(), &only_lu, cheap_sweep_setup());
  srv.start();
  std::string payload;
  {
    server::Client client(*dir_ / "sweep.sock");
    payload = client.call_raw(sweep_request(spec));
  }
  ASSERT_TRUE(sweep::is_sweep_result(payload))
      << server::decode_response(payload).message;
  std::istringstream is(payload);
  const sweep::SweepResultDoc served = sweep::read_sweep_result(is);
  EXPECT_EQ(served.points, 3u);
  EXPECT_EQ(served.compute_classes, 1u);
  EXPECT_EQ(served.searches, 1u);
  EXPECT_EQ(served.comm_classes, 3u);

  // A standalone runner with the same collectors must agree row for row —
  // the served path adds transport and a resident cache, never arithmetic.
  sweep::SweepRunner local(machine::make_power5_hydra(),
                           {machine::make_power6_575()}, {});
  cheap_sweep_setup()(local, spec);
  const sweep::SweepResultDoc direct =
      sweep::make_sweep_result(spec, local.run(spec));
  ASSERT_EQ(served.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < served.rows.size(); ++i) {
    EXPECT_EQ(served.rows[i].machine, direct.rows[i].machine);
    EXPECT_EQ(served.rows[i].tasks, direct.rows[i].tasks);
    EXPECT_EQ(served.rows[i].compute_s, direct.rows[i].compute_s);
    EXPECT_EQ(served.rows[i].comm_s, direct.rows[i].comm_s);
    EXPECT_EQ(served.rows[i].total_s, direct.rows[i].total_s);
  }
  srv.request_stop();
  srv.wait();
  // A sweep counts its points as served requests, like a batch of rows.
  EXPECT_EQ(srv.requests_served(), 3u);
  EXPECT_EQ(srv.batches_run(), 1u);
}

TEST_F(ServerTest, SweepAdmissionRejectsBadSpecsAndOversizedSweeps) {
  server::ServerConfig cfg = config("sweep-adm.sock");
  cfg.max_sweep_points = 2;
  server::Server srv(machine::make_power5_hydra(), cfg, cheap_setup(),
                     &only_lu, cheap_sweep_setup());
  srv.start();
  server::Client client(*dir_ / "sweep-adm.sock");

  // Malformed document: admission answers bad-request, connection survives.
  const server::Response malformed = server::decode_response(
      client.call_raw("#swapp \"swapp-sweep\" v1\nbase \"LU/C\"\n"));
  EXPECT_FALSE(malformed.ok);
  EXPECT_EQ(malformed.error, server::ErrorCode::kBadRequest);

  // Three points against a two-point cap: rejected before any expansion
  // work is queued.
  const server::Response oversized = server::decode_response(
      client.call_raw(sweep_request(bandwidth_sweep_spec())));
  EXPECT_FALSE(oversized.ok);
  EXPECT_EQ(oversized.error, server::ErrorCode::kBadRequest);

  // The row validator vets the synthesized base row too.
  sweep::SweepSpec wrong_app = bandwidth_sweep_spec();
  wrong_app.app = "BT/C";
  wrong_app.axes.clear();
  const server::Response vetoed = server::decode_response(
      client.call_raw(sweep_request(wrong_app)));
  EXPECT_FALSE(vetoed.ok);
  EXPECT_EQ(vetoed.error, server::ErrorCode::kBadRequest);
  EXPECT_NE(vetoed.message.find("BT/C"), std::string::npos);

  // Ordinary batch traffic still works on the same connection.
  const std::string batch = client.call_raw(lu_request(8, 16));
  EXPECT_TRUE(server::decode_response(batch).ok);
  srv.request_stop();
  srv.wait();
}

TEST_F(ServerTest, ServersWithoutASweepSetupRejectSweeps) {
  server::Server srv(machine::make_power5_hydra(), config("no-sweep.sock"),
                     cheap_setup(), &only_lu);
  srv.start();
  server::Client client(*dir_ / "no-sweep.sock");
  const server::Response r = server::decode_response(
      client.call_raw(sweep_request(bandwidth_sweep_spec())));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, server::ErrorCode::kBadRequest);
  srv.request_stop();
  srv.wait();
}

TEST_F(ServerTest, ConstructorRejectsBadConfiguration) {
  server::ServerConfig cfg = config("cfg.sock");
  EXPECT_THROW(server::Server(machine::make_power5_hydra(), cfg, nullptr),
               Error);
  cfg.max_queue = 0;
  EXPECT_THROW(server::Server(machine::make_power5_hydra(), cfg,
                              cheap_setup()),
               Error);
  cfg.max_queue = 64;
  cfg.coalesce_window = std::chrono::milliseconds(-1);
  EXPECT_THROW(server::Server(machine::make_power5_hydra(), cfg,
                              cheap_setup()),
               Error);
}

}  // namespace
}  // namespace swapp
