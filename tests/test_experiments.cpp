// Tests for the experiment harness (Lab): caching, figure structure, error
// accounting, and the information hygiene between projection and truth.
#include <gtest/gtest.h>

#include "experiments/lab.h"
#include "support/error.h"

namespace swapp::experiments {
namespace {

// One Lab for the whole file: construction is cheap, databases are lazy.
Lab& lab() {
  static Lab* instance = new Lab({Lab::power6_name()});
  return *instance;
}

TEST(Lab, TargetsArePrepared) {
  EXPECT_EQ(lab().target_names().size(), 1u);
  EXPECT_EQ(lab().target(Lab::power6_name()).cores_per_node, 32);
  EXPECT_THROW(lab().target("unknown"), NotFound);
  EXPECT_EQ(lab().base().name, "TAMU Hydra (POWER5+)");
}

TEST(Lab, BaseDataCachedAndConsistent) {
  const core::AppBaseData& a =
      lab().base_data(nas::Benchmark::kLU, nas::ProblemClass::kC);
  const core::AppBaseData& b =
      lab().base_data(nas::Benchmark::kLU, nas::ProblemClass::kC);
  EXPECT_EQ(&a, &b);  // cached, not re-collected
  EXPECT_EQ(a.app, "LU-MZ.C");
  EXPECT_EQ(a.profiled_core_counts(), lu_core_counts());
  // Counters exist at every LU counter count, both SMT modes.
  for (const int c : lu_core_counts()) {
    EXPECT_TRUE(a.counters_st.count(c));
    EXPECT_TRUE(a.counters_smt.count(c));
  }
}

TEST(Lab, ActualRunsCachedPerConfiguration) {
  const ActualRun& a =
      lab().actual(nas::Benchmark::kLU, nas::ProblemClass::kC,
                   Lab::power6_name(), 16);
  const ActualRun& b =
      lab().actual(nas::Benchmark::kLU, nas::ProblemClass::kC,
                   Lab::power6_name(), 16);
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.wall, 0.0);
  EXPECT_NEAR(a.wall, a.mean_compute + a.mean_comm, a.wall * 1e-6);
}

TEST(Lab, ErrorRowFieldsAreConsistent) {
  const ErrorRow row = lab().error_row(
      nas::Benchmark::kLU, nas::ProblemClass::kC, Lab::power6_name(), 16);
  EXPECT_GE(row.p2p_nb, 0.0);
  EXPECT_GE(row.collectives, 0.0);
  EXPECT_GE(row.combined, 0.0);
  // Magnitude of the signed error equals the unsigned error.
  EXPECT_NEAR(std::abs(row.combined_signed), row.combined, 1e-9);
  // LU has no blocking p2p: the component error defaults to 0.
  EXPECT_DOUBLE_EQ(row.p2p_b, 0.0);
}

TEST(Lab, FigureHasLuShape) {
  const FigureData fig =
      lab().figure(nas::Benchmark::kLU, Lab::power6_name());
  // LU runs only at 16 tasks: one row per class.
  ASSERT_EQ(fig.rows.size(), 2u);
  EXPECT_EQ(fig.rows[0].cores, 16);
  EXPECT_EQ(fig.rows[1].cores, 16);
  EXPECT_EQ(fig.rows[0].cls, nas::ProblemClass::kC);
  EXPECT_EQ(fig.rows[1].cls, nas::ProblemClass::kD);
  const TextTable table = fig.to_table();
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Lab, ProjectionIsDeterministicThroughTheHarness) {
  const core::ProjectionResult a = lab().project(
      nas::Benchmark::kLU, nas::ProblemClass::kC, Lab::power6_name(), 16);
  const core::ProjectionResult b = lab().project(
      nas::Benchmark::kLU, nas::ProblemClass::kC, Lab::power6_name(), 16);
  EXPECT_DOUBLE_EQ(a.total_target(), b.total_target());
}

TEST(Lab, CoreCountGridsMatchThePaper) {
  EXPECT_EQ(bt_sp_core_counts(), (std::vector<int>{16, 32, 64, 128}));
  EXPECT_EQ(lu_core_counts(), (std::vector<int>{4, 8, 16}));
  // Counter counts are a strict subset ending below 128, so projecting at
  // 128 exercises the ACSM extrapolation path.
  for (const int c : bt_sp_counter_counts()) EXPECT_LT(c, 128);
}

TEST(Lab, SpecLibraryCoversNeededOccupancies) {
  const core::SpecLibrary& spec = lab().projector().spec();
  // Base is a 16-core node: occupancies {4, 8, 16} arise from the grids.
  EXPECT_TRUE(spec.base_runtime.count(16));
  EXPECT_TRUE(spec.base_runtime.count(4));
  // Target (32-core nodes): 16 and 32 arise.
  const auto& info = spec.targets.at(Lab::power6_name());
  EXPECT_TRUE(info.runtime.count(16));
  EXPECT_TRUE(info.runtime.count(32));
}

}  // namespace
}  // namespace swapp::experiments
