// Tests for the persistence layer: record format and round-tripping of
// benchmark databases and application profiles.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "experiments/lab.h"
#include "imb/suite.h"
#include "io/persist.h"
#include "io/record.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/error.h"

namespace swapp::io {
namespace {

TEST(Record, QuoteRoundTrip) {
  for (const std::string s :
       {"plain", "with spaces", "quo\"te", "back\\slash", "new\nline", ""}) {
    EXPECT_EQ(unquote(quote(s)), s);
  }
}

TEST(Record, WriterReaderRoundTrip) {
  std::ostringstream os;
  {
    RecordWriter w(os, "demo", 3);
    w.row("alpha").field("IBM POWER6 575").field(42).field(2.5);
    w.row("beta").field(std::uint64_t{18446744073709551615ULL});
  }
  std::istringstream is(os.str());
  RecordReader reader(is, "demo", 3);
  Record r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.tag, "alpha");
  EXPECT_EQ(r.str(0), "IBM POWER6 575");
  EXPECT_EQ(r.integer(1), 42);
  EXPECT_DOUBLE_EQ(r.num(2), 2.5);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.tag, "beta");
  EXPECT_FALSE(reader.next(r));
}

TEST(Record, RejectsWrongKindAndVersion) {
  std::ostringstream os;
  { RecordWriter w(os, "demo", 1); }
  {
    std::istringstream is(os.str());
    EXPECT_THROW(RecordReader(is, "other", 1), InvalidArgument);
  }
  {
    std::istringstream is(os.str());
    EXPECT_THROW(RecordReader(is, "demo", 2), InvalidArgument);
  }
}

TEST(Record, DoubleRoundTripsExactly) {
  std::ostringstream os;
  const double value = 0.1234567890123456789;
  {
    RecordWriter w(os, "demo", 1);
    w.row("x").field(value);
  }
  std::istringstream is(os.str());
  RecordReader reader(is, "demo", 1);
  Record r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.num(0), value);  // bit-exact via max_digits10
}

TEST(Persist, ImbDatabaseRoundTrip) {
  const machine::Machine m = machine::make_power5_hydra();
  const imb::ImbDatabase original =
      imb::measure_database(m, {16, 32}, {512, 32_KiB});

  std::stringstream buffer;
  write_imb_database(buffer, original);
  const imb::ImbDatabase restored = read_imb_database(buffer);

  EXPECT_EQ(restored.machine_name, original.machine_name);
  EXPECT_EQ(restored.cores_per_node, original.cores_per_node);
  // Identical lookups everywhere, including interpolated points.
  for (const auto routine :
       {mpi::Routine::kBcast, mpi::Routine::kAllreduce, mpi::Routine::kSend}) {
    for (const int c : {16, 24, 32}) {
      for (const Bytes b : {512u, 4096u, 32768u}) {
        EXPECT_DOUBLE_EQ(restored.lookup(routine, b, c),
                         original.lookup(routine, b, c));
      }
    }
  }
  EXPECT_DOUBLE_EQ(restored.multi_sendrecv_time(4.0, 8192, 24, 0.5),
                   original.multi_sendrecv_time(4.0, 8192, 24, 0.5));
}

TEST(Persist, SpecLibraryRoundTrip) {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_bluegene_p();
  const core::SpecLibrary original =
      experiments::collect_spec_library(base, {target}, {16});

  std::stringstream buffer;
  write_spec_library(buffer, original);
  const core::SpecLibrary restored = read_spec_library(buffer);

  EXPECT_EQ(restored.names, original.names);
  EXPECT_EQ(restored.base_cores_per_node, original.base_cores_per_node);
  const core::SpecData a = original.view(16, target.name, 4);
  const core::SpecData b = restored.view(16, target.name, 4);
  for (const std::string& name : original.names) {
    EXPECT_DOUBLE_EQ(a.base_runtime.at(name), b.base_runtime.at(name));
    EXPECT_DOUBLE_EQ(a.runtime_on(target.name, name),
                     b.runtime_on(target.name, name));
    EXPECT_DOUBLE_EQ(a.base_counters_st.at(name).cpi_stall_mem,
                     b.base_counters_st.at(name).cpi_stall_mem);
  }
}

TEST(Persist, AppDataRoundTripPreservesProjectionInputs) {
  const machine::Machine base = machine::make_power5_hydra();
  const nas::NasApp app(nas::Benchmark::kLU, nas::ProblemClass::kC);
  const core::AppBaseData original =
      experiments::collect_base_data(app, base, {8, 16}, {8, 16});

  std::stringstream buffer;
  write_app_data(buffer, original);
  const core::AppBaseData restored = read_app_data(buffer);

  EXPECT_EQ(restored.app, original.app);
  EXPECT_EQ(restored.profiled_core_counts(), original.profiled_core_counts());
  EXPECT_DOUBLE_EQ(restored.mean_compute.at(16), original.mean_compute.at(16));
  EXPECT_DOUBLE_EQ(restored.counters_st.at(16).cpi_stall_mem,
                   original.counters_st.at(16).cpi_stall_mem);
  // Profile buckets round-trip: same Waitall structure.
  const auto& wa_a =
      original.profile_at(16).routines.at(mpi::Routine::kWaitall);
  const auto& wa_b =
      restored.profile_at(16).routines.at(mpi::Routine::kWaitall);
  EXPECT_EQ(wa_a.total_calls, wa_b.total_calls);
  EXPECT_DOUBLE_EQ(wa_a.total_elapsed, wa_b.total_elapsed);
  EXPECT_EQ(wa_a.by_size.size(), wa_b.by_size.size());
  // Per-task breakdown preserved.
  ASSERT_EQ(restored.profile_at(16).per_task.size(),
            original.profile_at(16).per_task.size());
  EXPECT_DOUBLE_EQ(restored.profile_at(16).per_task[3].compute,
                   original.profile_at(16).per_task[3].compute);
}

TEST(Persist, FileHelpersAndErrors) {
  const auto dir = std::filesystem::temp_directory_path() / "swapp_io_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "db.swapp";

  const machine::Machine m = machine::make_power6_575();
  const imb::ImbDatabase db = imb::measure_database(m, {16}, {4_KiB});
  save_imb_database(path, db);
  const imb::ImbDatabase loaded = load_imb_database(path);
  EXPECT_EQ(loaded.machine_name, db.machine_name);

  EXPECT_THROW(load_imb_database(dir / "missing.swapp"), NotFound);
  // Loading the wrong kind fails cleanly.
  EXPECT_THROW(load_spec_library(path), InvalidArgument);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace swapp::io
