// Unit and property tests for the compute model.
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "support/error.h"
#include "workload/compute_model.h"
#include "workload/kernel.h"

namespace swapp::workload {
namespace {

Kernel stencil_kernel() {
  Kernel k;
  k.name = "stencil";
  k.fp_fraction = 0.4;
  k.load_fraction = 0.3;
  k.store_fraction = 0.12;
  k.bytes_per_point = 150;
  k.locality_theta = 0.5;
  k.streaming_fraction = 0.8;
  k.instructions_per_point = 2000;
  return k;
}

ComputeContext st_context(int active = 1) {
  return ComputeContext{.active_cores_per_node = active,
                        .smt = machine::SmtMode::kSingleThread};
}

TEST(ComputeModel, TimeScalesWithPoints) {
  const machine::Machine m = machine::make_power5_hydra();
  const Kernel k = stencil_kernel();
  const ComputeSample one = evaluate(k, 1e5, m, st_context());
  const ComputeSample ten = evaluate(k, 1e6, m, st_context());
  EXPECT_GT(ten.seconds, one.seconds);
  // At least linear (cache effects make large problems superlinear).
  EXPECT_GE(ten.seconds, 9.0 * one.seconds);
}

TEST(ComputeModel, CountersAreConsistent) {
  const machine::Machine m = machine::make_power5_hydra();
  const ComputeSample s = evaluate(stencil_kernel(), 1e6, m, st_context());
  EXPECT_DOUBLE_EQ(s.counters.instructions, 2000.0 * 1e6);
  EXPECT_NEAR(s.counters.cycles * m.cycle_time(), s.seconds, 1e-9);
  // Total CPI equals cycles per instruction.
  EXPECT_NEAR(s.counters.total_cpi(),
              s.counters.cycles / s.counters.instructions, 1e-9);
  EXPECT_GT(s.counters.cpi_completion, 0.0);
}

TEST(ComputeModel, FasterClockIsFasterForCacheResidentWork) {
  Kernel k = stencil_kernel();
  k.bytes_per_point = 16;  // tiny footprint: CPU-bound
  const ComputeSample p5 =
      evaluate(k, 1e5, machine::make_power5_hydra(), st_context());
  const ComputeSample p6 =
      evaluate(k, 1e5, machine::make_power6_575(), st_context());
  EXPECT_LT(p6.seconds, p5.seconds);  // 4.7 GHz vs 1.9 GHz
}

TEST(ComputeModel, BandwidthCeilingBindsStreamingKernels) {
  const machine::Machine m = machine::make_power5_hydra();
  Kernel k = stencil_kernel();
  k.bytes_per_point = 400;
  k.locality_theta = 0.95;
  k.streaming_fraction = 0.97;
  k.instructions_per_point = 500;  // very low arithmetic intensity
  // Alone on the node vs sharing with 15 other copies.
  const ComputeSample alone = evaluate(k, 4e6, m, st_context(1));
  const ComputeSample crowded = evaluate(k, 4e6, m, st_context(16));
  EXPECT_GT(crowded.seconds, 2.0 * alone.seconds);
  // Per-core bandwidth observed shrinks when the node is crowded.
  EXPECT_LT(crowded.counters.memory_bandwidth_gbs,
            alone.counters.memory_bandwidth_gbs);
}

TEST(ComputeModel, CacheFitReducesReloads) {
  const machine::Machine m = machine::make_power5_hydra();
  const Kernel k = stencil_kernel();
  // 1e4 points = 1.5 MB (fits L2/L3); 1e7 points = 1.5 GB (memory).
  const ComputeSample small = evaluate(k, 1e4, m, st_context());
  const ComputeSample large = evaluate(k, 1e7, m, st_context());
  EXPECT_LT(small.counters.data_from_local_mem_per_instr,
            large.counters.data_from_local_mem_per_instr);
}

TEST(ComputeModel, SmtSlowsPerThreadExecution) {
  const machine::Machine m = machine::make_power5_hydra();
  const Kernel k = stencil_kernel();
  const ComputeSample st = evaluate(k, 1e6, m, st_context(16));
  const ComputeSample smt =
      evaluate(k, 1e6, m,
               ComputeContext{.active_cores_per_node = 16,
                              .smt = machine::SmtMode::kSmt});
  EXPECT_GT(smt.seconds, st.seconds);
}

TEST(ComputeModel, PointerChasingHurtsMore) {
  const machine::Machine m = machine::make_power5_hydra();
  Kernel regular = stencil_kernel();
  Kernel chasing = stencil_kernel();
  chasing.pointer_chasing = 0.3;
  const ComputeSample r = evaluate(regular, 1e6, m, st_context());
  const ComputeSample c = evaluate(chasing, 1e6, m, st_context());
  EXPECT_GT(c.seconds, r.seconds);
  EXPECT_GT(c.counters.cpi_stall_mem, r.counters.cpi_stall_mem);
}

TEST(ComputeModel, EratOnlyOnPowerMachines) {
  Kernel k = stencil_kernel();
  k.tlb_hostility = 0.1;
  const ComputeSample power =
      evaluate(k, 1e7, machine::make_power5_hydra(), st_context());
  const ComputeSample x86 =
      evaluate(k, 1e7, machine::make_westmere_x5670(), st_context());
  EXPECT_GT(power.counters.erat_miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(x86.counters.erat_miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(x86.counters.slb_miss_rate, 0.0);
}

TEST(ComputeModel, RejectsBadArguments) {
  const machine::Machine m = machine::make_power5_hydra();
  EXPECT_THROW(evaluate(stencil_kernel(), 0.0, m, st_context()),
               InvalidArgument);
  EXPECT_THROW(evaluate(stencil_kernel(), 1e5, m, st_context(64)),
               InvalidArgument);  // more active cores than the node has
}

// Property sweep: invariants across machines and occupancies.
class ComputeModelProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ComputeModelProperty, SaneAcrossMachinesAndOccupancy) {
  const auto [machine_index, active] = GetParam();
  const machine::Machine m = machine::all_machines()[
      static_cast<std::size_t>(machine_index)];
  if (active > m.cores_per_node) GTEST_SKIP();
  const ComputeSample s =
      evaluate(stencil_kernel(), 5e5, m, st_context(active));
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.counters.total_cpi(), 0.0);
  EXPECT_LT(s.counters.total_cpi(), 200.0);
  EXPECT_GE(s.counters.data_from_l2_per_instr, 0.0);
  EXPECT_GE(s.counters.memory_bandwidth_gbs, 0.0);
  EXPECT_LE(s.counters.memory_bandwidth_gbs,
            m.caches.memory().node_bandwidth_gbs + 1e-9);
  // Determinism: the model is a pure function.
  const ComputeSample again =
      evaluate(stencil_kernel(), 5e5, m, st_context(active));
  EXPECT_DOUBLE_EQ(s.seconds, again.seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, ComputeModelProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4, 12, 16)));

}  // namespace
}  // namespace swapp::workload
