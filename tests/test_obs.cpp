// Tests for the observability layer (src/obs): metrics registry shard
// merging, span tracer well-formedness across thread-pool fan-out, and the
// JSONL/Chrome exporters' round trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "support/error.h"
#include "support/obs_report.h"
#include "support/parallel.h"

namespace swapp {
namespace {

/// Leaves the global obs switches off and the registries empty on both sides
/// of a test (the registry and trace buffers are process-wide).
struct ObsGuard {
  ObsGuard() { reset(); }
  ~ObsGuard() {
    reset();
    set_thread_count(0);
  }
  static void reset() {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset_metrics_sampling();
    obs::reset_metrics();
    obs::drain_trace();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, DisabledMacrosRecordNothing) {
  ObsGuard guard;
  SWAPP_COUNT("obs_test.off_counter", 5);
  SWAPP_OBSERVE("obs_test.off_hist", 1.0);
  SWAPP_GAUGE_SET("obs_test.off_gauge", 3.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counter("obs_test.off_counter"), nullptr);
  EXPECT_EQ(snap.histogram("obs_test.off_hist"), nullptr);
  EXPECT_EQ(snap.gauge("obs_test.off_gauge"), nullptr);
}

TEST(Metrics, MacrosRecordWhenEnabled) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.on_counter", 2);
  SWAPP_COUNT("obs_test.on_counter", 3);
  SWAPP_GAUGE_SET("obs_test.on_gauge", 2.0);
  SWAPP_GAUGE_SET("obs_test.on_gauge", 7.0);  // last write wins
  SWAPP_OBSERVE("obs_test.on_hist", 10.0);
  SWAPP_OBSERVE("obs_test.on_hist", 30.0);

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.on_counter"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.on_counter")->value, 5u);
  ASSERT_NE(snap.gauge("obs_test.on_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("obs_test.on_gauge")->value, 7.0);
  const obs::HistogramValue* h = snap.histogram("obs_test.on_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 40.0);
  EXPECT_DOUBLE_EQ(h->min, 10.0);
  EXPECT_DOUBLE_EQ(h->max, 30.0);
  EXPECT_DOUBLE_EQ(h->mean(), 20.0);
  EXPECT_LE(h->quantile(0.5), h->quantile(1.0));
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 30.0);  // capped at the observed max
}

TEST(Metrics, ShardsMergeAcrossThreadsIncludingExitedOnes) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::Counter counter("obs_test.merge");
  const obs::Histogram hist("obs_test.merge_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        hist.observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The recording threads are gone; their shards must still be in the merge.
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.merge"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.merge")->value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_NE(snap.histogram("obs_test.merge_us"), nullptr);
  EXPECT_EQ(snap.histogram("obs_test.merge_us")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.reset_me", 9);
  obs::reset_metrics();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.reset_me"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.reset_me")->value, 0u);
}

TEST(Metrics, SnapshotIsSortedByName) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.zz", 1);
  SWAPP_COUNT("obs_test.aa", 1);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

// ---------------------------------------------------------------------------
// Span tracer across parallel_for fan-out
// ---------------------------------------------------------------------------

/// Runs a traced two-level fan-out at `threads` pool threads and checks the
/// drained trace is well formed: every span closed, every parent resolvable,
/// every item span stitched to the dispatching root.
void expect_well_formed_fanout(std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  set_thread_count(threads);
  obs::set_tracing_enabled(true);
  constexpr std::size_t kItems = 64;
  {
    SWAPP_SPAN("obs_test.root");
    parallel_for(kItems, [&](std::size_t i) {
      SWAPP_SPAN("obs_test.item");
      SWAPP_TRACE_COUNTER("obs_test.progress", static_cast<double>(i));
    });
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::open_span_count(), 0u);

  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  std::set<std::uint64_t> span_ids;
  std::uint64_t root_id = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceEvent::Kind::kSpan) continue;
    EXPECT_TRUE(span_ids.insert(e.id).second) << "duplicate span id " << e.id;
    if (e.name == "obs_test.root") root_id = e.id;
  }
  ASSERT_NE(root_id, 0u);

  std::size_t items = 0;
  std::size_t counters = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::TraceEvent::Kind::kCounter) {
      EXPECT_EQ(e.name, "obs_test.progress");
      ++counters;
      continue;
    }
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_TRUE(e.parent == 0 || span_ids.count(e.parent) != 0)
        << e.name << " has unresolved parent " << e.parent;
    if (e.name == "obs_test.item") {
      // Worker- and caller-side items alike hang off the dispatching span.
      EXPECT_EQ(e.parent, root_id);
      ++items;
    }
  }
  EXPECT_EQ(items, kItems);
  EXPECT_EQ(counters, kItems);
}

TEST(Trace, FanOutWellFormedAtOneThread) {
  ObsGuard guard;
  expect_well_formed_fanout(1);
}

TEST(Trace, FanOutWellFormedAtFourThreads) {
  ObsGuard guard;
  expect_well_formed_fanout(4);
}

TEST(Trace, FanOutWellFormedAtSixteenThreads) {
  ObsGuard guard;
  expect_well_formed_fanout(16);
}

TEST(Trace, NestingFollowsScopeOnOneThread) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  {
    SWAPP_SPAN("obs_test.outer");
    const std::uint64_t outer = obs::current_span_id();
    EXPECT_NE(outer, 0u);
    {
      SWAPP_SPAN("obs_test.inner");
      EXPECT_NE(obs::current_span_id(), outer);
    }
    EXPECT_EQ(obs::current_span_id(), outer);
  }
  obs::set_tracing_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 2u);
  // Drain sorts by start time: outer opened first.
  EXPECT_EQ(events[0].name, "obs_test.outer");
  EXPECT_EQ(events[1].name, "obs_test.inner");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, events[0].id);
  // The inner span nests inside the outer one in time as well.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(Trace, DisabledRecordsNothing) {
  ObsGuard guard;
  {
    SWAPP_SPAN("obs_test.invisible");
    SWAPP_TRACE_COUNTER("obs_test.invisible_counter", 1.0);
  }
  EXPECT_EQ(obs::open_span_count(), 0u);
  EXPECT_TRUE(obs::drain_trace().empty());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<obs::TraceEvent> sample_trace() {
  ObsGuard::reset();
  obs::set_tracing_enabled(true);
  {
    SWAPP_SPAN("obs_test.export_root");
    SWAPP_TRACE_COUNTER("obs_test.export_counter", 42.5);
    { SWAPP_SPAN("obs_test.export_child"); }
  }
  obs::set_tracing_enabled(false);
  return obs::drain_trace();
}

TEST(TraceExport, JsonlRoundTripPreservesEveryField) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  ASSERT_EQ(events.size(), 3u);

  std::ostringstream os;
  obs::write_trace_jsonl(os, events);
  std::istringstream is(os.str());
  const std::vector<obs::TraceEvent> back = obs::read_trace_jsonl(is);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind);
    EXPECT_EQ(back[i].name, events[i].name);
    EXPECT_EQ(back[i].id, events[i].id);
    EXPECT_EQ(back[i].parent, events[i].parent);
    EXPECT_EQ(back[i].tid, events[i].tid);
    EXPECT_NEAR(back[i].start_us, events[i].start_us, 1e-3);
    EXPECT_NEAR(back[i].dur_us, events[i].dur_us, 1e-3);
    EXPECT_NEAR(back[i].value, events[i].value, 1e-9);
  }
}

TEST(TraceExport, ChromeFormatCarriesSpansAndCounters) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  std::ostringstream os;
  obs::write_trace_chrome(os, events);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("obs_test.export_root"), std::string::npos);
  EXPECT_NE(text.find("obs_test.export_child"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceExport, ReaderRejectsMalformedLines) {
  std::istringstream is("{\"not\":\"a trace event\"}\n");
  EXPECT_THROW(obs::read_trace_jsonl(is), InvalidArgument);
}

TEST(MetricsExport, JsonlRoundTrip) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.export_count", 11);
  SWAPP_GAUGE_SET("obs_test.export_gauge", 2.25);
  SWAPP_OBSERVE("obs_test.export_hist", 5.0);
  SWAPP_OBSERVE("obs_test.export_hist", 500.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();

  std::ostringstream os;
  obs::write_metrics_jsonl(os, snap);
  std::istringstream is(os.str());
  const obs::MetricsSnapshot back = obs::read_metrics_jsonl(is);

  ASSERT_NE(back.counter("obs_test.export_count"), nullptr);
  EXPECT_EQ(back.counter("obs_test.export_count")->value, 11u);
  ASSERT_NE(back.gauge("obs_test.export_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(back.gauge("obs_test.export_gauge")->value, 2.25);
  const obs::HistogramValue* h = back.histogram("obs_test.export_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 505.0);
  EXPECT_DOUBLE_EQ(h->min, 5.0);
  EXPECT_DOUBLE_EQ(h->max, 500.0);
  const obs::HistogramValue* original = snap.histogram("obs_test.export_hist");
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(h->buckets, original->buckets);
}

TEST(MetricsReport, PrintsTablesAndHonoursFilter) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.report_a", 1);
  SWAPP_COUNT("other.report_b", 1);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();

  std::ostringstream all;
  print_metrics(all, snap);
  EXPECT_NE(all.str().find("obs_test.report_a"), std::string::npos);
  EXPECT_NE(all.str().find("other.report_b"), std::string::npos);

  std::ostringstream filtered;
  print_metrics(filtered, snap, "obs_test.");
  EXPECT_NE(filtered.str().find("obs_test.report_a"), std::string::npos);
  EXPECT_EQ(filtered.str().find("other.report_b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span rollups
// ---------------------------------------------------------------------------

obs::TraceEvent span_event(const std::string& name, std::uint64_t id,
                           std::uint64_t parent, double dur_us) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kSpan;
  e.name = name;
  e.id = id;
  e.parent = parent;
  e.dur_us = dur_us;
  return e;
}

TEST(SpanRollupTest, SelfTimeSubtractsDirectChildrenOnly) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("root", 1, 0, 100.0));
  events.push_back(span_event("child", 2, 1, 30.0));
  events.push_back(span_event("leaf", 3, 1, 50.0));
  events.push_back(span_event("grand", 4, 2, 10.0));  // under "child" only
  events.push_back(span_event("child", 5, 0, 20.0));  // second instance
  obs::TraceEvent counter;  // ignored by the rollup
  counter.kind = obs::TraceEvent::Kind::kCounter;
  counter.name = "ignored";
  counter.value = 7.0;
  events.push_back(counter);

  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 4u);
  // Descending self-time: leaf 50, child (30-10)+20=40, root 100-80=20,
  // grand 10.
  EXPECT_EQ(rollups[0].name, "leaf");
  EXPECT_DOUBLE_EQ(rollups[0].self_us, 50.0);
  EXPECT_EQ(rollups[1].name, "child");
  EXPECT_EQ(rollups[1].count, 2u);
  EXPECT_DOUBLE_EQ(rollups[1].total_us, 50.0);
  EXPECT_DOUBLE_EQ(rollups[1].self_us, 40.0);
  EXPECT_DOUBLE_EQ(rollups[1].max_us, 30.0);
  EXPECT_EQ(rollups[2].name, "root");
  EXPECT_DOUBLE_EQ(rollups[2].total_us, 100.0);
  EXPECT_DOUBLE_EQ(rollups[2].self_us, 20.0);
  EXPECT_EQ(rollups[3].name, "grand");
  EXPECT_DOUBLE_EQ(rollups[3].self_us, 10.0);
}

TEST(SpanRollupTest, ConcurrentChildrenClampSelfTimeAtZero) {
  // Pool fan-out: workers' spans stitch onto the dispatching caller, so
  // their summed wall time can exceed the parent's duration.
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("dispatch", 1, 0, 10.0));
  events.push_back(span_event("worker", 2, 1, 8.0));
  events.push_back(span_event("worker", 3, 1, 8.0));
  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 2u);
  EXPECT_EQ(rollups[0].name, "worker");
  EXPECT_DOUBLE_EQ(rollups[0].self_us, 16.0);
  EXPECT_EQ(rollups[1].name, "dispatch");
  EXPECT_DOUBLE_EQ(rollups[1].self_us, 0.0);  // clamped, not -6
}

TEST(SpanRollupTest, PrinterRendersOneRowPerName) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("alpha", 1, 0, 3000.0));
  events.push_back(span_event("beta", 2, 1, 1000.0));
  std::ostringstream os;
  print_span_rollup(os, rollup_spans(events));
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
  EXPECT_NE(os.str().find("Self"), std::string::npos);
}

TEST(SpanRollupTest, RollsUpARealDrainedTrace) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 2u);  // counter sample ignored
  double root_self = 0.0, child_total = 0.0;
  for (const SpanRollup& r : rollups) {
    if (r.name == "obs_test.export_root") root_self = r.self_us;
    if (r.name == "obs_test.export_child") child_total = r.total_us;
  }
  EXPECT_GT(root_self, 0.0);
  EXPECT_GT(child_total, 0.0);
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(MetricsSampling, SampledCounterReinflatesToExpectedTotal) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(0.25);
  constexpr int kN = 40000;
  const obs::Counter counter("obs_test.sampled_counter");
  for (int i = 0; i < kN; ++i) counter.increment();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.sampled_counter"), nullptr);
  // Binomial(40000, 0.25) re-inflated by 4: stddev of the estimate is
  // 4*sqrt(n*p*(1-p)) ~ 346, so 5 sigma ~ 1733 — test at 5%.
  const double value =
      static_cast<double>(snap.counter("obs_test.sampled_counter")->value);
  EXPECT_NEAR(value, kN, kN * 0.05);
  EXPECT_NE(static_cast<std::uint64_t>(value), 0u);
}

TEST(MetricsSampling, PrefixRuleKeepsOperatorMetricsExact) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(0.125);
  obs::set_metrics_sampling("server.", 1.0);
  EXPECT_DOUBLE_EQ(obs::metrics_sampling("server.queue_wait_us"), 1.0);
  EXPECT_DOUBLE_EQ(obs::metrics_sampling("planner.dedup"), 0.125);

  constexpr int kN = 5000;
  const obs::Counter exact("server.sampling_exact");
  const obs::Counter sampled("hot.sampling_decimated");
  for (int i = 0; i < kN; ++i) {
    exact.increment();
    sampled.increment();
  }
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("server.sampling_exact"), nullptr);
  EXPECT_EQ(snap.counter("server.sampling_exact")->value,
            static_cast<std::uint64_t>(kN));  // exact, not statistical
  ASSERT_NE(snap.counter("hot.sampling_decimated"), nullptr);
  EXPECT_NEAR(
      static_cast<double>(snap.counter("hot.sampling_decimated")->value), kN,
      kN * 0.15);
}

TEST(MetricsSampling, SampledHistogramReinflatesCountAndSum) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(0.5);
  constexpr int kN = 20000;
  const obs::Histogram hist("obs_test.sampled_hist");
  for (int i = 0; i < kN; ++i) hist.observe(100.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::HistogramValue* h = snap.histogram("obs_test.sampled_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(static_cast<double>(h->count), kN, kN * 0.05);
  EXPECT_NEAR(h->sum, 100.0 * kN, 100.0 * kN * 0.05);
  // min/max come from genuinely sampled values, never inflated.
  EXPECT_DOUBLE_EQ(h->min, 100.0);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  // The snapshot count is the sum of the (rounded) buckets, so quantile
  // ranks always land inside a bucket.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(h->count, bucket_total);
}

TEST(MetricsSampling, RateOneStaysExactAfterRuntimeRateChanges) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(0.25);
  obs::set_metrics_sampling(1.0);  // back to exact before recording
  constexpr int kN = 1000;
  const obs::Counter counter("obs_test.rate_flip");
  for (int i = 0; i < kN; ++i) counter.increment();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.rate_flip"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.rate_flip")->value,
            static_cast<std::uint64_t>(kN));
}

TEST(MetricsSampling, RejectsRatesOutsideZeroOne) {
  ObsGuard guard;
  EXPECT_THROW(obs::set_metrics_sampling(0.0), InvalidArgument);
  EXPECT_THROW(obs::set_metrics_sampling(1.5), InvalidArgument);
  EXPECT_THROW(obs::set_metrics_sampling(-0.25), InvalidArgument);
  EXPECT_THROW(obs::set_metrics_sampling("", 0.5), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Interpolated quantiles
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinABucketAgainstExactQuantiles) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  // 1024 uniform values covering bucket [1024, 2048): the exact quantile of
  // the data is q -> 1024 + q*1024, and linear interpolation inside the
  // bucket should land within one step of it.
  const obs::Histogram hist("obs_test.quantile_uniform");
  for (int v = 1024; v < 2048; ++v) hist.observe(static_cast<double>(v));
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::HistogramValue* h = snap.histogram("obs_test.quantile_uniform");
  ASSERT_NE(h, nullptr);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = 1024.0 + q * 1024.0;
    EXPECT_NEAR(h->quantile(q), exact, 16.0) << "q=" << q;
  }
  // The endpoints are exact, not bucket bounds.
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 1024.0);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 2047.0);
}

TEST(HistogramQuantile, BimodalDistributionSplitsAcrossBuckets) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::Histogram hist("obs_test.quantile_bimodal");
  for (int i = 0; i < 100; ++i) hist.observe(10.0);    // bucket [8, 16)
  for (int i = 0; i < 100; ++i) hist.observe(700.0);   // bucket [512, 1024)
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::HistogramValue* h = snap.histogram("obs_test.quantile_bimodal");
  ASSERT_NE(h, nullptr);
  // p25 lives in the low mode, p75 in the high one; both inside their
  // bucket's bounds and clamped into [min, max].
  const double p25 = h->quantile(0.25);
  EXPECT_GE(p25, 10.0);  // clamped at the observed min
  EXPECT_LT(p25, 16.0);
  const double p75 = h->quantile(0.75);
  EXPECT_GE(p75, 512.0);
  EXPECT_LE(p75, 700.0);  // clamped at the observed max
  EXPECT_LT(h->quantile(0.25), h->quantile(0.75));
}

// ---------------------------------------------------------------------------
// Snapshot deltas and the metrics window
// ---------------------------------------------------------------------------

TEST(MetricsWindow, SnapshotDeltaSubtractsCountersHistogramsKeepsGauges) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.delta_count", 3);
  SWAPP_OBSERVE("obs_test.delta_hist", 50.0);
  SWAPP_GAUGE_SET("obs_test.delta_gauge", 1.0);
  const obs::MetricsSnapshot older = obs::metrics_snapshot();
  SWAPP_COUNT("obs_test.delta_count", 2);
  SWAPP_OBSERVE("obs_test.delta_hist", 200.0);
  SWAPP_OBSERVE("obs_test.delta_hist", 210.0);
  SWAPP_GAUGE_SET("obs_test.delta_gauge", 9.0);
  SWAPP_COUNT("obs_test.delta_new", 7);  // born after `older`
  const obs::MetricsSnapshot newer = obs::metrics_snapshot();

  const obs::MetricsSnapshot d = obs::snapshot_delta(newer, older);
  ASSERT_NE(d.counter("obs_test.delta_count"), nullptr);
  EXPECT_EQ(d.counter("obs_test.delta_count")->value, 2u);
  ASSERT_NE(d.counter("obs_test.delta_new"), nullptr);
  EXPECT_EQ(d.counter("obs_test.delta_new")->value, 7u);  // full value
  ASSERT_NE(d.gauge("obs_test.delta_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(d.gauge("obs_test.delta_gauge")->value, 9.0);  // newest
  const obs::HistogramValue* h = d.histogram("obs_test.delta_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);  // only the two observations after `older`
  EXPECT_DOUBLE_EQ(h->sum, 410.0);
  // The window's min/max are bucket-bound estimates clamped into the
  // cumulative range: both deltas landed in [128, 256).
  EXPECT_GE(h->min, 50.0);
  EXPECT_LE(h->max, 256.0);
  EXPECT_LE(h->min, h->max);
}

TEST(MetricsWindow, DeltaOverPicksTheSlotCoveringTheAskedSpan) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::MetricsWindow window(8);
  const obs::Counter counter("obs_test.window_count");

  // Synthetic clock: one rotation per "second", 5 increments per second.
  double now_us = 0.0;
  window.rotate(obs::metrics_snapshot(), now_us);
  for (int second = 1; second <= 5; ++second) {
    for (int i = 0; i < 5; ++i) counter.increment();
    now_us = second * 1e6;
    window.rotate(obs::metrics_snapshot(), now_us);
  }
  const obs::MetricsSnapshot current = obs::metrics_snapshot();

  const obs::MetricsWindow::Delta last2 =
      window.delta_over(2.0, current, now_us);
  EXPECT_NEAR(last2.seconds, 2.0, 1e-9);
  ASSERT_NE(last2.metrics.counter("obs_test.window_count"), nullptr);
  EXPECT_EQ(last2.metrics.counter("obs_test.window_count")->value, 10u);

  // Asking for more history than the ring holds falls back to the oldest
  // entry and reports the span it actually covers.
  const obs::MetricsWindow::Delta all =
      window.delta_over(60.0, current, now_us);
  EXPECT_NEAR(all.seconds, 5.0, 1e-9);
  ASSERT_NE(all.metrics.counter("obs_test.window_count"), nullptr);
  EXPECT_EQ(all.metrics.counter("obs_test.window_count")->value, 25u);
}

TEST(MetricsWindow, RingEvictsOldestPastCapacity) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::MetricsWindow window(3);
  EXPECT_EQ(window.capacity(), 3u);
  const obs::Counter counter("obs_test.window_evict");
  for (int second = 0; second < 10; ++second) {
    counter.increment();
    window.rotate(obs::metrics_snapshot(), second * 1e6);
  }
  EXPECT_EQ(window.size(), 3u);
  // Oldest surviving slot is t=7s with 8 increments recorded; the ring can
  // answer at most the last two seconds of history.
  const obs::MetricsSnapshot current = obs::metrics_snapshot();
  const obs::MetricsWindow::Delta all =
      window.delta_over(60.0, current, 9e6);
  EXPECT_NEAR(all.seconds, 2.0, 1e-9);
  ASSERT_NE(all.metrics.counter("obs_test.window_evict"), nullptr);
  EXPECT_EQ(all.metrics.counter("obs_test.window_evict")->value, 2u);
}

TEST(MetricsWindow, EmptyWindowAnswersZeroDelta) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::MetricsWindow window(4);
  const obs::MetricsWindow::Delta d =
      window.delta_over(10.0, obs::metrics_snapshot(), 1e6);
  EXPECT_DOUBLE_EQ(d.seconds, 0.0);
  EXPECT_TRUE(d.metrics.counters.empty());
}

// ---------------------------------------------------------------------------
// Concurrent snapshotting (primary targets of tools/check_tsan.sh)
// ---------------------------------------------------------------------------

TEST(MetricsConcurrency, SnapshotRacesRecordersWithoutLosingFinalTotals) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  const obs::Counter counter("obs_test.race_count");
  const obs::Histogram hist("obs_test.race_hist");
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    // Snapshots taken mid-recording see arbitrary partial totals; they must
    // merely be internally consistent and race-free.
    while (!stop.load()) {
      const obs::MetricsSnapshot snap = obs::metrics_snapshot();
      const obs::HistogramValue* h = snap.histogram("obs_test.race_hist");
      if (h != nullptr) {
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t b : h->buckets) bucket_total += b;
        EXPECT_EQ(h->count, bucket_total);
      }
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        hist.observe(static_cast<double>(i % 1024));
      }
    });
  }
  for (std::thread& t : recorders) t.join();
  stop.store(true);
  snapshotter.join();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.race_count"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.race_count")->value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_NE(snap.histogram("obs_test.race_hist"), nullptr);
  EXPECT_EQ(snap.histogram("obs_test.race_hist")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, WindowRotationRacesRecording) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::MetricsWindow window(16);
  const obs::Counter counter("obs_test.race_window");
  std::atomic<bool> stop{false};
  std::thread rotator([&] {
    double now_us = 0.0;
    while (!stop.load()) {
      now_us += 1e4;
      window.rotate(obs::metrics_snapshot(), now_us);
      const obs::MetricsWindow::Delta d =
          window.delta_over(0.01, obs::metrics_snapshot(), now_us);
      EXPECT_GE(d.seconds, 0.0);
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) counter.increment();
    });
  }
  for (std::thread& t : recorders) t.join();
  stop.store(true);
  rotator.join();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.race_window"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.race_window")->value, 80000u);
}

// ---------------------------------------------------------------------------
// Lenient trace reading, writability probes, Prometheus exposition
// ---------------------------------------------------------------------------

TEST(TraceExport, LenientReaderSkipsMalformedLinesWithWarnings) {
  std::istringstream is(
      "{\"name\":\"good\",\"ph\":\"X\",\"ts\":1.0,\"dur\":2.0,"
      "\"tid\":1,\"args\":{\"id\":1,\"parent\":0}}\n"
      "this line is not json\n"
      "{\"name\":\"bad_phase\",\"ph\":\"Q\",\"ts\":1.0,\"tid\":1}\n"
      "{\"name\":\"also_good\",\"ph\":\"X\",\"ts\":5.0,\"dur\":1.0,"
      "\"tid\":2,\"args\":{\"id\":2,\"parent\":0}}\n");
  std::ostringstream warn;
  const obs::TraceReadReport report = obs::read_trace_jsonl_lenient(is, warn);
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.events[0].name, "good");
  EXPECT_EQ(report.events[1].name, "also_good");
  EXPECT_EQ(report.skipped_lines, 2u);
  // The warnings name the offending lines.
  EXPECT_NE(warn.str().find("line 2"), std::string::npos);
  EXPECT_NE(warn.str().find("line 3"), std::string::npos);
  EXPECT_EQ(warn.str().find("line 1"), std::string::npos);
}

TEST(TraceExport, LenientReaderHandlesEmptyInput) {
  std::istringstream is("");
  std::ostringstream warn;
  const obs::TraceReadReport report = obs::read_trace_jsonl_lenient(is, warn);
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(report.skipped_lines, 0u);
  EXPECT_TRUE(warn.str().empty());
}

TEST(FileErrors, RequireWritableThrowsTypedErrorWithOffendingPath) {
  const std::string bad = "/nonexistent-swapp-dir/out.json";
  try {
    obs::require_writable(bad);
    FAIL() << "accepted an unwritable path";
  } catch (const FileError& e) {
    EXPECT_EQ(e.path(), bad);
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
  }
}

TEST(FileErrors, RequireWritableLeavesNoFileBehindAndKeepsContent) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "swapp-obs-test-writable";
  std::filesystem::create_directories(dir);
  const std::filesystem::path fresh = dir / "fresh.json";
  std::filesystem::remove(fresh);
  obs::require_writable(fresh);
  EXPECT_FALSE(std::filesystem::exists(fresh));  // probe left nothing
  const std::filesystem::path existing = dir / "existing.json";
  {
    std::ofstream os(existing);
    os << "precious";
  }
  obs::require_writable(existing);
  std::ifstream is(existing);
  std::string content;
  std::getline(is, content);
  EXPECT_EQ(content, "precious");  // probe did not truncate
  std::filesystem::remove_all(dir);
}

TEST(FileErrors, WriteTraceFileThrowsFileErrorForBadPath) {
  try {
    obs::write_trace_file("/nonexistent-swapp-dir/trace.jsonl", {});
    FAIL() << "accepted an unwritable path";
  } catch (const FileError& e) {
    EXPECT_EQ(e.path(), "/nonexistent-swapp-dir/trace.jsonl");
  }
}

TEST(MetricsExport, PrometheusExpositionCarriesAllKinds) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.prom_count", 11);
  SWAPP_GAUGE_SET("obs_test.prom_gauge", 2.5);
  for (int i = 0; i < 10; ++i) SWAPP_OBSERVE("obs_test.prom_hist", 100.0);
  std::ostringstream os;
  obs::write_metrics_prometheus(os, obs::metrics_snapshot());
  const std::string text = os.str();
  // Names are sanitized (dots to underscores) and prefixed.
  EXPECT_NE(text.find("swapp_obs_test_prom_count_total 11"),
            std::string::npos);
  EXPECT_NE(text.find("swapp_obs_test_prom_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("swapp_obs_test_prom_hist_bucket{le=\"128\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("swapp_obs_test_prom_hist_bucket{le=\"+Inf\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("swapp_obs_test_prom_hist_sum 1000"),
            std::string::npos);
  EXPECT_NE(text.find("swapp_obs_test_prom_hist_count 10"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE swapp_obs_test_prom_hist histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace swapp
