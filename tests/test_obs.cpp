// Tests for the observability layer (src/obs): metrics registry shard
// merging, span tracer well-formedness across thread-pool fan-out, and the
// JSONL/Chrome exporters' round trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/obs_report.h"
#include "support/parallel.h"

namespace swapp {
namespace {

/// Leaves the global obs switches off and the registries empty on both sides
/// of a test (the registry and trace buffers are process-wide).
struct ObsGuard {
  ObsGuard() { reset(); }
  ~ObsGuard() {
    reset();
    set_thread_count(0);
  }
  static void reset() {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset_metrics();
    obs::drain_trace();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, DisabledMacrosRecordNothing) {
  ObsGuard guard;
  SWAPP_COUNT("obs_test.off_counter", 5);
  SWAPP_OBSERVE("obs_test.off_hist", 1.0);
  SWAPP_GAUGE_SET("obs_test.off_gauge", 3.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counter("obs_test.off_counter"), nullptr);
  EXPECT_EQ(snap.histogram("obs_test.off_hist"), nullptr);
  EXPECT_EQ(snap.gauge("obs_test.off_gauge"), nullptr);
}

TEST(Metrics, MacrosRecordWhenEnabled) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.on_counter", 2);
  SWAPP_COUNT("obs_test.on_counter", 3);
  SWAPP_GAUGE_SET("obs_test.on_gauge", 2.0);
  SWAPP_GAUGE_SET("obs_test.on_gauge", 7.0);  // last write wins
  SWAPP_OBSERVE("obs_test.on_hist", 10.0);
  SWAPP_OBSERVE("obs_test.on_hist", 30.0);

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.on_counter"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.on_counter")->value, 5u);
  ASSERT_NE(snap.gauge("obs_test.on_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(snap.gauge("obs_test.on_gauge")->value, 7.0);
  const obs::HistogramValue* h = snap.histogram("obs_test.on_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 40.0);
  EXPECT_DOUBLE_EQ(h->min, 10.0);
  EXPECT_DOUBLE_EQ(h->max, 30.0);
  EXPECT_DOUBLE_EQ(h->mean(), 20.0);
  EXPECT_LE(h->quantile(0.5), h->quantile(1.0));
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 30.0);  // capped at the observed max
}

TEST(Metrics, ShardsMergeAcrossThreadsIncludingExitedOnes) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::Counter counter("obs_test.merge");
  const obs::Histogram hist("obs_test.merge_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        hist.observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The recording threads are gone; their shards must still be in the merge.
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.merge"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.merge")->value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_NE(snap.histogram("obs_test.merge_us"), nullptr);
  EXPECT_EQ(snap.histogram("obs_test.merge_us")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.reset_me", 9);
  obs::reset_metrics();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  ASSERT_NE(snap.counter("obs_test.reset_me"), nullptr);
  EXPECT_EQ(snap.counter("obs_test.reset_me")->value, 0u);
}

TEST(Metrics, SnapshotIsSortedByName) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.zz", 1);
  SWAPP_COUNT("obs_test.aa", 1);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

// ---------------------------------------------------------------------------
// Span tracer across parallel_for fan-out
// ---------------------------------------------------------------------------

/// Runs a traced two-level fan-out at `threads` pool threads and checks the
/// drained trace is well formed: every span closed, every parent resolvable,
/// every item span stitched to the dispatching root.
void expect_well_formed_fanout(std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  set_thread_count(threads);
  obs::set_tracing_enabled(true);
  constexpr std::size_t kItems = 64;
  {
    SWAPP_SPAN("obs_test.root");
    parallel_for(kItems, [&](std::size_t i) {
      SWAPP_SPAN("obs_test.item");
      SWAPP_TRACE_COUNTER("obs_test.progress", static_cast<double>(i));
    });
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::open_span_count(), 0u);

  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  std::set<std::uint64_t> span_ids;
  std::uint64_t root_id = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceEvent::Kind::kSpan) continue;
    EXPECT_TRUE(span_ids.insert(e.id).second) << "duplicate span id " << e.id;
    if (e.name == "obs_test.root") root_id = e.id;
  }
  ASSERT_NE(root_id, 0u);

  std::size_t items = 0;
  std::size_t counters = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::TraceEvent::Kind::kCounter) {
      EXPECT_EQ(e.name, "obs_test.progress");
      ++counters;
      continue;
    }
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_TRUE(e.parent == 0 || span_ids.count(e.parent) != 0)
        << e.name << " has unresolved parent " << e.parent;
    if (e.name == "obs_test.item") {
      // Worker- and caller-side items alike hang off the dispatching span.
      EXPECT_EQ(e.parent, root_id);
      ++items;
    }
  }
  EXPECT_EQ(items, kItems);
  EXPECT_EQ(counters, kItems);
}

TEST(Trace, FanOutWellFormedAtOneThread) {
  ObsGuard guard;
  expect_well_formed_fanout(1);
}

TEST(Trace, FanOutWellFormedAtFourThreads) {
  ObsGuard guard;
  expect_well_formed_fanout(4);
}

TEST(Trace, FanOutWellFormedAtSixteenThreads) {
  ObsGuard guard;
  expect_well_formed_fanout(16);
}

TEST(Trace, NestingFollowsScopeOnOneThread) {
  ObsGuard guard;
  obs::set_tracing_enabled(true);
  {
    SWAPP_SPAN("obs_test.outer");
    const std::uint64_t outer = obs::current_span_id();
    EXPECT_NE(outer, 0u);
    {
      SWAPP_SPAN("obs_test.inner");
      EXPECT_NE(obs::current_span_id(), outer);
    }
    EXPECT_EQ(obs::current_span_id(), outer);
  }
  obs::set_tracing_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 2u);
  // Drain sorts by start time: outer opened first.
  EXPECT_EQ(events[0].name, "obs_test.outer");
  EXPECT_EQ(events[1].name, "obs_test.inner");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, events[0].id);
  // The inner span nests inside the outer one in time as well.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
}

TEST(Trace, DisabledRecordsNothing) {
  ObsGuard guard;
  {
    SWAPP_SPAN("obs_test.invisible");
    SWAPP_TRACE_COUNTER("obs_test.invisible_counter", 1.0);
  }
  EXPECT_EQ(obs::open_span_count(), 0u);
  EXPECT_TRUE(obs::drain_trace().empty());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<obs::TraceEvent> sample_trace() {
  ObsGuard::reset();
  obs::set_tracing_enabled(true);
  {
    SWAPP_SPAN("obs_test.export_root");
    SWAPP_TRACE_COUNTER("obs_test.export_counter", 42.5);
    { SWAPP_SPAN("obs_test.export_child"); }
  }
  obs::set_tracing_enabled(false);
  return obs::drain_trace();
}

TEST(TraceExport, JsonlRoundTripPreservesEveryField) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  ASSERT_EQ(events.size(), 3u);

  std::ostringstream os;
  obs::write_trace_jsonl(os, events);
  std::istringstream is(os.str());
  const std::vector<obs::TraceEvent> back = obs::read_trace_jsonl(is);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind);
    EXPECT_EQ(back[i].name, events[i].name);
    EXPECT_EQ(back[i].id, events[i].id);
    EXPECT_EQ(back[i].parent, events[i].parent);
    EXPECT_EQ(back[i].tid, events[i].tid);
    EXPECT_NEAR(back[i].start_us, events[i].start_us, 1e-3);
    EXPECT_NEAR(back[i].dur_us, events[i].dur_us, 1e-3);
    EXPECT_NEAR(back[i].value, events[i].value, 1e-9);
  }
}

TEST(TraceExport, ChromeFormatCarriesSpansAndCounters) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  std::ostringstream os;
  obs::write_trace_chrome(os, events);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("obs_test.export_root"), std::string::npos);
  EXPECT_NE(text.find("obs_test.export_child"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceExport, ReaderRejectsMalformedLines) {
  std::istringstream is("{\"not\":\"a trace event\"}\n");
  EXPECT_THROW(obs::read_trace_jsonl(is), InvalidArgument);
}

TEST(MetricsExport, JsonlRoundTrip) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.export_count", 11);
  SWAPP_GAUGE_SET("obs_test.export_gauge", 2.25);
  SWAPP_OBSERVE("obs_test.export_hist", 5.0);
  SWAPP_OBSERVE("obs_test.export_hist", 500.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();

  std::ostringstream os;
  obs::write_metrics_jsonl(os, snap);
  std::istringstream is(os.str());
  const obs::MetricsSnapshot back = obs::read_metrics_jsonl(is);

  ASSERT_NE(back.counter("obs_test.export_count"), nullptr);
  EXPECT_EQ(back.counter("obs_test.export_count")->value, 11u);
  ASSERT_NE(back.gauge("obs_test.export_gauge"), nullptr);
  EXPECT_DOUBLE_EQ(back.gauge("obs_test.export_gauge")->value, 2.25);
  const obs::HistogramValue* h = back.histogram("obs_test.export_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 505.0);
  EXPECT_DOUBLE_EQ(h->min, 5.0);
  EXPECT_DOUBLE_EQ(h->max, 500.0);
  const obs::HistogramValue* original = snap.histogram("obs_test.export_hist");
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(h->buckets, original->buckets);
}

TEST(MetricsReport, PrintsTablesAndHonoursFilter) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  SWAPP_COUNT("obs_test.report_a", 1);
  SWAPP_COUNT("other.report_b", 1);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();

  std::ostringstream all;
  print_metrics(all, snap);
  EXPECT_NE(all.str().find("obs_test.report_a"), std::string::npos);
  EXPECT_NE(all.str().find("other.report_b"), std::string::npos);

  std::ostringstream filtered;
  print_metrics(filtered, snap, "obs_test.");
  EXPECT_NE(filtered.str().find("obs_test.report_a"), std::string::npos);
  EXPECT_EQ(filtered.str().find("other.report_b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span rollups
// ---------------------------------------------------------------------------

obs::TraceEvent span_event(const std::string& name, std::uint64_t id,
                           std::uint64_t parent, double dur_us) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kSpan;
  e.name = name;
  e.id = id;
  e.parent = parent;
  e.dur_us = dur_us;
  return e;
}

TEST(SpanRollupTest, SelfTimeSubtractsDirectChildrenOnly) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("root", 1, 0, 100.0));
  events.push_back(span_event("child", 2, 1, 30.0));
  events.push_back(span_event("leaf", 3, 1, 50.0));
  events.push_back(span_event("grand", 4, 2, 10.0));  // under "child" only
  events.push_back(span_event("child", 5, 0, 20.0));  // second instance
  obs::TraceEvent counter;  // ignored by the rollup
  counter.kind = obs::TraceEvent::Kind::kCounter;
  counter.name = "ignored";
  counter.value = 7.0;
  events.push_back(counter);

  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 4u);
  // Descending self-time: leaf 50, child (30-10)+20=40, root 100-80=20,
  // grand 10.
  EXPECT_EQ(rollups[0].name, "leaf");
  EXPECT_DOUBLE_EQ(rollups[0].self_us, 50.0);
  EXPECT_EQ(rollups[1].name, "child");
  EXPECT_EQ(rollups[1].count, 2u);
  EXPECT_DOUBLE_EQ(rollups[1].total_us, 50.0);
  EXPECT_DOUBLE_EQ(rollups[1].self_us, 40.0);
  EXPECT_DOUBLE_EQ(rollups[1].max_us, 30.0);
  EXPECT_EQ(rollups[2].name, "root");
  EXPECT_DOUBLE_EQ(rollups[2].total_us, 100.0);
  EXPECT_DOUBLE_EQ(rollups[2].self_us, 20.0);
  EXPECT_EQ(rollups[3].name, "grand");
  EXPECT_DOUBLE_EQ(rollups[3].self_us, 10.0);
}

TEST(SpanRollupTest, ConcurrentChildrenClampSelfTimeAtZero) {
  // Pool fan-out: workers' spans stitch onto the dispatching caller, so
  // their summed wall time can exceed the parent's duration.
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("dispatch", 1, 0, 10.0));
  events.push_back(span_event("worker", 2, 1, 8.0));
  events.push_back(span_event("worker", 3, 1, 8.0));
  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 2u);
  EXPECT_EQ(rollups[0].name, "worker");
  EXPECT_DOUBLE_EQ(rollups[0].self_us, 16.0);
  EXPECT_EQ(rollups[1].name, "dispatch");
  EXPECT_DOUBLE_EQ(rollups[1].self_us, 0.0);  // clamped, not -6
}

TEST(SpanRollupTest, PrinterRendersOneRowPerName) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event("alpha", 1, 0, 3000.0));
  events.push_back(span_event("beta", 2, 1, 1000.0));
  std::ostringstream os;
  print_span_rollup(os, rollup_spans(events));
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("beta"), std::string::npos);
  EXPECT_NE(os.str().find("Self"), std::string::npos);
}

TEST(SpanRollupTest, RollsUpARealDrainedTrace) {
  ObsGuard guard;
  const std::vector<obs::TraceEvent> events = sample_trace();
  const std::vector<SpanRollup> rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 2u);  // counter sample ignored
  double root_self = 0.0, child_total = 0.0;
  for (const SpanRollup& r : rollups) {
    if (r.name == "obs_test.export_root") root_self = r.self_us;
    if (r.name == "obs_test.export_child") child_total = r.total_us;
  }
  EXPECT_GT(root_self, 0.0);
  EXPECT_GT(child_total, 0.0);
}

}  // namespace
}  // namespace swapp
