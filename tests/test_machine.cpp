// Unit tests for the machine models: cache hierarchy, PMU counters, machine
// configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "machine/cache.h"
#include "machine/counters.h"
#include "machine/machine.h"
#include "machine/overrides.h"
#include "support/error.h"

namespace swapp::machine {
namespace {

TEST(HitFraction, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(hit_fraction(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(hit_fraction(1.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(hit_fraction(2.0, 0.5), 1.0);
  EXPECT_LT(hit_fraction(0.1, 0.5), hit_fraction(0.2, 0.5));
  // Smaller θ = stronger reuse concentration = higher hit rate at the same
  // coverage.
  EXPECT_GT(hit_fraction(0.1, 0.2), hit_fraction(0.1, 0.8));
}

CacheHierarchy test_hierarchy() {
  return CacheHierarchy(
      {
          {.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
           .latency_cycles = 4.0, .line_bytes = 64},
          {.name = "L2", .capacity = 1_MiB, .shared_by_cores = 2,
           .latency_cycles = 12.0, .line_bytes = 64},
          {.name = "L3", .capacity = 16_MiB, .shared_by_cores = 4,
           .latency_cycles = 40.0, .line_bytes = 64},
      },
      MemoryConfig{.latency_cycles = 200.0,
                   .remote_latency_cycles = 300.0,
                   .node_bandwidth_gbs = 20.0,
                   .sockets = 2});
}

TEST(CacheHierarchy, EffectiveCapacityDividesSharedLevels) {
  const CacheHierarchy h = test_hierarchy();
  EXPECT_EQ(h.effective_capacity(0, 8), 32_KiB);      // private
  EXPECT_EQ(h.effective_capacity(1, 1), 1_MiB);       // alone
  EXPECT_EQ(h.effective_capacity(1, 8), 512_KiB);     // 2-way shared
  EXPECT_EQ(h.effective_capacity(2, 8), 4_MiB);       // 4-way shared
}

TEST(CacheHierarchy, ReloadFractionsSumToOne) {
  const CacheHierarchy h = test_hierarchy();
  for (const Bytes ws : {64_KiB, 4_MiB, 256_MiB}) {
    const ReloadBreakdown rb = h.reloads(ws, 0.5, 4, 0.2);
    double sum = rb.local_mem_fraction + rb.remote_mem_fraction;
    for (const double f : rb.cache_fraction) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(CacheHierarchy, LargerFootprintGoesDeeper) {
  const CacheHierarchy h = test_hierarchy();
  const ReloadBreakdown small = h.reloads(64_KiB, 0.5, 1, 0.0);
  const ReloadBreakdown big = h.reloads(512_MiB, 0.5, 1, 0.0);
  EXPECT_GT(big.local_mem_fraction, small.local_mem_fraction);
  EXPECT_GT(big.average_latency_cycles, small.average_latency_cycles);
}

TEST(CacheHierarchy, MoreActiveCoresShrinkEffectiveCache) {
  const CacheHierarchy h = test_hierarchy();
  const ReloadBreakdown alone = h.reloads(8_MiB, 0.5, 1, 0.0);
  const ReloadBreakdown crowded = h.reloads(8_MiB, 0.5, 8, 0.0);
  EXPECT_GE(crowded.local_mem_fraction, alone.local_mem_fraction);
}

TEST(CacheHierarchy, RemoteTrafficOnlyOnMultiSocketNodes) {
  CacheHierarchy single(
      {{.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
        .latency_cycles = 4.0, .line_bytes = 64}},
      MemoryConfig{.latency_cycles = 100.0,
                   .remote_latency_cycles = 200.0,
                   .node_bandwidth_gbs = 10.0,
                   .sockets = 1});
  const ReloadBreakdown rb = single.reloads(1_GiB, 0.9, 1, 0.5);
  EXPECT_DOUBLE_EQ(rb.remote_mem_fraction, 0.0);
}

TEST(CacheHierarchy, RejectsBadConfigs) {
  EXPECT_THROW(CacheHierarchy({}, MemoryConfig{}), InvalidArgument);
  EXPECT_THROW(
      CacheHierarchy({{.name = "L1", .capacity = 1_MiB, .shared_by_cores = 1,
                       .latency_cycles = 4.0, .line_bytes = 64},
                      {.name = "L2", .capacity = 32_KiB,  // smaller than L1
                       .shared_by_cores = 1, .latency_cycles = 12.0,
                       .line_bytes = 64}},
                     MemoryConfig{}),
      InvalidArgument);
}

TEST(PmuCounters, AccumulateWeightsByInstructions) {
  PmuCounters a;
  a.instructions = 100.0;
  a.cycles = 100.0;
  a.seconds = 1.0;
  a.cpi_completion = 1.0;
  a.fp_per_instr = 0.2;
  PmuCounters b;
  b.instructions = 300.0;
  b.cycles = 600.0;
  b.seconds = 3.0;
  b.cpi_completion = 2.0;
  b.fp_per_instr = 0.6;
  a.accumulate(b);
  EXPECT_DOUBLE_EQ(a.instructions, 400.0);
  EXPECT_DOUBLE_EQ(a.cycles, 700.0);
  EXPECT_DOUBLE_EQ(a.cpi_completion, 1.75);  // (100·1 + 300·2)/400
  EXPECT_DOUBLE_EQ(a.fp_per_instr, 0.5);
}

TEST(MetricVector, GroupsPartitionAllMetrics) {
  std::array<int, kMetricGroupCount> counts{};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    counts[static_cast<std::size_t>(MetricVector::group_of(i))] += 1;
  }
  int total = 0;
  for (const int c : counts) {
    EXPECT_GT(c, 0);
    total += c;
  }
  EXPECT_EQ(total, static_cast<int>(kMetricCount));
}

TEST(MetricVector, NamesAreUnique) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    names.insert(MetricVector::name_of(i));
  }
  EXPECT_EQ(names.size(), kMetricCount);
}

TEST(Machines, Table2Geometry) {
  // The paper's Table 2.
  const Machine hydra = make_power5_hydra();
  EXPECT_EQ(hydra.cores_per_node, 16);
  EXPECT_EQ(hydra.total_cores, 832);
  EXPECT_EQ(hydra.memory_per_core, 2_GiB);
  EXPECT_EQ(hydra.network.kind, net::TopologyKind::kFederation);

  const Machine p6 = make_power6_575();
  EXPECT_EQ(p6.cores_per_node, 32);
  EXPECT_EQ(p6.total_cores, 128);
  EXPECT_EQ(p6.memory_per_core, 4_GiB);
  EXPECT_EQ(p6.network.kind, net::TopologyKind::kFatTree);

  const Machine bgp = make_bluegene_p();
  EXPECT_EQ(bgp.cores_per_node, 4);  // virtual-node mode
  EXPECT_EQ(bgp.total_cores, 4096);
  EXPECT_TRUE(bgp.network.has_collective_tree);
  EXPECT_EQ(bgp.network.kind, net::TopologyKind::kTorus3D);

  const Machine wm = make_westmere_x5670();
  EXPECT_EQ(wm.cores_per_node, 12);
  EXPECT_EQ(wm.total_cores, 768);
  EXPECT_EQ(wm.processor.isa, "x86");
}

TEST(Machines, LookupByName) {
  for (const Machine& m : all_machines()) {
    EXPECT_EQ(machine_by_name(m.name).name, m.name);
  }
  EXPECT_THROW(machine_by_name("Cray XT5"), NotFound);
}

TEST(Machines, NodePlacementHelpers) {
  const Machine hydra = make_power5_hydra();
  EXPECT_EQ(hydra.node_of_rank(0), 0);
  EXPECT_EQ(hydra.node_of_rank(15), 0);
  EXPECT_EQ(hydra.node_of_rank(16), 1);
  EXPECT_EQ(hydra.nodes_for_ranks(16), 1);
  EXPECT_EQ(hydra.nodes_for_ranks(17), 2);
}

TEST(Overrides, RegistryLookupIsStrictAndNamesAreUnique) {
  std::set<std::string> names;
  for (const OverrideField& f : override_fields()) {
    EXPECT_TRUE(names.insert(f.name).second) << f.name;
    EXPECT_LT(f.min_value, f.max_value) << f.name;
    EXPECT_EQ(override_field(f.name).name, f.name);
  }
  EXPECT_THROW(override_field("no.such.field"), InvalidArgument);
  EXPECT_THROW(read_field(make_power6_575(), "no.such.field"),
               InvalidArgument);
}

TEST(Overrides, ReadFieldMatchesTheStructValues) {
  const Machine m = make_power6_575();
  EXPECT_DOUBLE_EQ(read_field(m, "processor.frequency_ghz"),
                   m.processor.frequency_ghz);
  EXPECT_DOUBLE_EQ(read_field(m, "cores_per_node"), m.cores_per_node);
  EXPECT_DOUBLE_EQ(read_field(m, "memory.node_bandwidth_gbs"),
                   m.caches.memory().node_bandwidth_gbs);
  EXPECT_DOUBLE_EQ(read_field(m, "network.link_bandwidth_gbs"),
                   m.network.link_bandwidth_gbs);
  // µs fields store Seconds; the registry exposes them in µs.
  EXPECT_DOUBLE_EQ(read_field(m, "mpi.send_overhead_us"),
                   m.mpi.send_overhead * 1e6);
}

TEST(Overrides, SetAndScaleComposeInOrder) {
  const Machine m = make_power6_575();
  const Machine out = apply_overrides(
      m, {{"network.link_bandwidth_gbs", OverrideKind::kSet, 10.0},
          {"network.link_bandwidth_gbs", OverrideKind::kScale, 2.0},
          {"os_jitter", OverrideKind::kScale, 0.5}});
  EXPECT_DOUBLE_EQ(out.network.link_bandwidth_gbs, 20.0);
  EXPECT_DOUBLE_EQ(out.os_jitter, m.os_jitter * 0.5);
  EXPECT_EQ(out.name, m.name);  // renaming is the caller's concern
  // The input machine is never mutated.
  EXPECT_DOUBLE_EQ(m.network.link_bandwidth_gbs,
                   make_power6_575().network.link_bandwidth_gbs);
}

TEST(Overrides, OutOfRangeResolvedValuesThrow) {
  const Machine m = make_power6_575();
  // os_jitter caps at 0.5: a direct set and a scale that lands beyond the
  // bound both refuse — nothing is silently clamped.
  EXPECT_THROW(apply_overrides(m, {{"os_jitter", OverrideKind::kSet, 0.9}}),
               InvalidArgument);
  EXPECT_THROW(
      apply_overrides(m, {{"processor.frequency_ghz", OverrideKind::kScale,
                           0.0}}),
      InvalidArgument);
  EXPECT_THROW(apply_overrides(m, {{"cores_per_node", OverrideKind::kSet,
                                    0.4}}),  // rounds to 0 < min 1
               InvalidArgument);
}

TEST(Overrides, IntegralFieldsRoundBeforeValidation) {
  const Machine m = make_power6_575();
  const double scaled = m.cores_per_node * 1.1;
  const Machine out = apply_overrides(
      m, {{"cores_per_node", OverrideKind::kScale, 1.1}});
  EXPECT_EQ(out.cores_per_node, static_cast<int>(std::llround(scaled)));
}

TEST(Overrides, CacheFieldsAddressOneLevelOnly) {
  const Machine m = make_power6_575();
  const double l1 = read_field(m, "cache.L1.capacity_kib");
  const Machine out = apply_overrides(
      m, {{"cache.L2.capacity_kib", OverrideKind::kScale, 2.0}});
  EXPECT_DOUBLE_EQ(read_field(out, "cache.L2.capacity_kib"),
                   read_field(m, "cache.L2.capacity_kib") * 2.0);
  EXPECT_DOUBLE_EQ(read_field(out, "cache.L1.capacity_kib"), l1);
}

TEST(Overrides, SettingTheCurrentValueIsAnIdentity) {
  const Machine m = make_power6_575();
  const std::string config = describe_machine_config(m);
  for (const OverrideField& f : override_fields()) {
    double current = 0.0;
    try {
      current = read_field(m, f.name);
    } catch (const InvalidArgument&) {
      continue;  // machine lacks this knob (absent cache level)
    }
    const Machine out =
        apply_overrides(m, {{f.name, OverrideKind::kSet, current}});
    EXPECT_EQ(describe_machine_config(out), config) << f.name;
  }
}

TEST(Overrides, SideDescriptionsSplitTheConfiguration) {
  const Machine m = make_power6_575();
  // The name is excluded from every description.
  Machine renamed = m;
  renamed.name = "somewhere else";
  EXPECT_EQ(describe_compute_side(renamed), describe_compute_side(m));
  EXPECT_EQ(describe_comm_side(renamed), describe_comm_side(m));
  EXPECT_EQ(config_fingerprint(renamed), config_fingerprint(m));

  // A comm-side change leaves the compute description untouched.
  const Machine comm = apply_overrides(
      m, {{"network.link_bandwidth_gbs", OverrideKind::kScale, 2.0}});
  EXPECT_EQ(describe_compute_side(comm), describe_compute_side(m));
  EXPECT_NE(describe_comm_side(comm), describe_comm_side(m));

  // A compute-side change leaves the comm description untouched.
  const Machine compute = apply_overrides(
      m, {{"cache.L3.capacity_kib", OverrideKind::kScale, 0.5}});
  EXPECT_NE(describe_compute_side(compute), describe_compute_side(m));
  EXPECT_EQ(describe_comm_side(compute), describe_comm_side(m));

  // kBoth fields perturb both pipelines.
  const Machine both =
      apply_overrides(m, {{"os_jitter", OverrideKind::kScale, 2.0}});
  EXPECT_NE(describe_compute_side(both), describe_compute_side(m));
  EXPECT_NE(describe_comm_side(both), describe_comm_side(m));
}

TEST(Overrides, FingerprintIsSixteenHexDigitsKeyedOnTheConfig) {
  const Machine m = make_power6_575();
  const std::string fp = config_fingerprint(m);
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  const Machine other = apply_overrides(
      m, {{"memory.node_bandwidth_gbs", OverrideKind::kScale, 1.5}});
  EXPECT_NE(config_fingerprint(other), fp);
}

}  // namespace
}  // namespace swapp::machine
