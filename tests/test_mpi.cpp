// Unit and integration tests for the simulated MPI runtime.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "machine/machine.h"
#include "mpi/collectives.h"
#include "mpi/world.h"

namespace swapp::mpi {
namespace {

machine::Machine test_machine() { return machine::make_power5_hydra(); }

TEST(MpiWorld, PingPongCompletesAndTakesTime) {
  World world(test_machine(), 2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1024);
      ctx.recv(1, 1024);
    } else {
      ctx.recv(0, 1024);
      ctx.send(0, 1024);
    }
  });
  EXPECT_GT(world.wall_time(), 0.0);
  // Two eager messages within a node: microseconds, not milliseconds.
  EXPECT_LT(world.wall_time(), 1e-3);
}

TEST(MpiWorld, MessageOrderIsFifoPerSourceAndTag) {
  // Two messages with the same tag must match posted receives in order.
  World world(test_machine(), 2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 100);
      ctx.send(1, 200);
    } else {
      ctx.recv(0, 100);
      ctx.recv(0, 200);
    }
  });
  const auto& recv = world.profile().routines.at(Routine::kRecv);
  EXPECT_EQ(recv.total_calls, 2u);
}

TEST(MpiWorld, RendezvousLargerThanEagerWorks) {
  const machine::Machine m = test_machine();
  World world(m, 2);
  const Bytes big = m.mpi.eager_threshold * 8;
  world.run([big](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, big);
    } else {
      ctx.compute_for(1e-3);  // sender must wait for this late recv
      ctx.recv(0, big);
    }
  });
  // The sender is held by the rendezvous until the receiver posts at 1 ms.
  EXPECT_GT(world.wall_time(), 1e-3);
}

TEST(MpiWorld, LargerMessagesTakeLonger) {
  const auto time_for = [](Bytes bytes) {
    World world(test_machine(), 2);
    world.run([bytes](RankCtx& ctx) {
      if (ctx.rank() == 0) ctx.send(1, bytes);
      else ctx.recv(0, bytes);
    });
    return world.wall_time();
  };
  EXPECT_LT(time_for(1024), time_for(512 * 1024));
  EXPECT_LT(time_for(512 * 1024), time_for(4 * 1024 * 1024));
}

TEST(MpiWorld, InterNodeSlowerThanIntraNode) {
  const machine::Machine m = test_machine();
  const auto pingpong = [&](int peer) {
    World world(m, peer + 1);
    world.run([peer](RankCtx& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(peer, 8192);
        ctx.recv(peer, 8192);
      } else if (ctx.rank() == peer) {
        ctx.recv(0, 8192);
        ctx.send(0, 8192);
      }
    });
    return world.wall_time();
  };
  // Rank 1 shares the node with rank 0; rank 16 is on the next node.
  EXPECT_LT(pingpong(1), pingpong(16));
}

TEST(MpiWorld, NonblockingExchangeCompletes) {
  World world(test_machine(), 4);
  world.run([](RankCtx& ctx) {
    const int left = (ctx.rank() + ctx.size() - 1) % ctx.size();
    const int right = (ctx.rank() + 1) % ctx.size();
    std::array<Request, 4> reqs = {
        ctx.irecv(left, 4096, 7),
        ctx.irecv(right, 4096, 7),
        ctx.isend(right, 4096, 7),
        ctx.isend(left, 4096, 7),
    };
    ctx.waitall(reqs);
  });
  const auto& waitall = world.profile().routines.at(Routine::kWaitall);
  EXPECT_EQ(waitall.total_calls, 4u);
  // Two receives were in flight per waitall.
  EXPECT_NEAR(waitall.by_size.begin()->second.avg_in_flight, 2.0, 1e-9);
}

TEST(MpiWorld, WaitallCapturesImbalanceWait) {
  // Rank 1 computes 10 ms before sending; rank 0 waits in Waitall.
  World world(test_machine(), 2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::array<Request, 1> reqs = {ctx.irecv(1, 2048)};
      ctx.waitall(reqs);
    } else {
      ctx.compute_for(10e-3);
      ctx.send(0, 2048);
    }
  });
  const auto& profile = world.profile();
  const Seconds waitall_time =
      profile.routines.at(Routine::kWaitall).total_elapsed;
  EXPECT_GT(waitall_time, 9e-3);  // nearly all of the 10 ms imbalance
  // Rank 0's breakdown shows it as communication, not compute.
  EXPECT_GT(profile.per_task[0].communication, 9e-3);
  EXPECT_LT(profile.per_task[0].compute, 1e-3);
}

TEST(MpiWorld, BarrierSynchronisesRanks) {
  World world(test_machine(), 8);
  std::vector<double> after(8, 0.0);
  world.run([&after](RankCtx& ctx) {
    ctx.compute_for(0.001 * (ctx.rank() + 1));
    ctx.barrier();
    after[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  // Everyone leaves the barrier at the same instant.
  for (int r = 1; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(after[static_cast<std::size_t>(r)], after[0]);
  }
  // Which is after the slowest rank's 8 ms of compute.
  EXPECT_GE(after[0], 0.008);
}

TEST(MpiWorld, CollectivesRecordProfiles) {
  World world(test_machine(), 16);
  world.run([](RankCtx& ctx) {
    ctx.bcast(0, 4096);
    ctx.reduce(0, 1024);
    ctx.allreduce(64);
  });
  const auto& profile = world.profile();
  EXPECT_EQ(profile.routines.at(Routine::kBcast).total_calls, 16u);
  EXPECT_EQ(profile.routines.at(Routine::kReduce).total_calls, 16u);
  EXPECT_EQ(profile.routines.at(Routine::kAllreduce).total_calls, 16u);
}

TEST(MpiWorld, ProfileConservation) {
  // compute + communication per task ≈ task finish time.
  World world(test_machine(), 4);
  world.run([](RankCtx& ctx) {
    ctx.compute_for(0.01);
    ctx.barrier();
    ctx.compute_for(0.005);
    ctx.allreduce(4096);
  });
  const auto& profile = world.profile();
  for (const auto& task : profile.per_task) {
    EXPECT_NEAR(task.total(), profile.wall_time, 1e-9);
  }
}

TEST(MpiWorld, DeterministicAcrossRuns) {
  const auto run_once = [] {
    World world(test_machine(), 32);
    world.run([](RankCtx& ctx) {
      const int right = (ctx.rank() + 1) % ctx.size();
      const int left = (ctx.rank() + ctx.size() - 1) % ctx.size();
      for (int step = 0; step < 5; ++step) {
        ctx.compute_for(1e-4 * (1 + ctx.rank() % 3));
        std::array<Request, 2> reqs = {ctx.irecv(left, 8192, step),
                                       ctx.isend(right, 8192, step)};
        ctx.waitall(reqs);
      }
      ctx.allreduce(64);
    });
    return world.wall_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Collectives, CostGrowsWithRanksAndBytes) {
  const machine::Machine m = test_machine();
  const net::Network net(m.network, 8);
  const Seconds small = collective_cost(m, net, Routine::kBcast, 64, 16);
  const Seconds more_ranks = collective_cost(m, net, Routine::kBcast, 64, 128);
  const Seconds more_bytes =
      collective_cost(m, net, Routine::kBcast, 1_MiB, 16);
  EXPECT_LT(small, more_ranks);
  EXPECT_LT(small, more_bytes);
}

TEST(Collectives, BgpTreeBeatsTorusP2PBcast) {
  const machine::Machine bgp = machine::make_bluegene_p();
  const net::Network net(bgp.network, 32);
  const Seconds with_tree =
      collective_cost(bgp, net, Routine::kBcast, 1024, 128);
  machine::Machine no_tree = bgp;
  no_tree.mpi.use_collective_tree = false;
  const Seconds without_tree =
      collective_cost(no_tree, net, Routine::kBcast, 1024, 128);
  EXPECT_LT(with_tree, without_tree);
}


TEST(MpiWorld, RendezvousBothOrders) {
  // Sender first, then receiver — and the reverse — both complete with the
  // same payload and deterministic times.
  const machine::Machine m = test_machine();
  const Bytes big = m.mpi.eager_threshold * 4;
  const auto run_order = [&](bool sender_first) {
    World world(m, 2);
    world.run([&, big](RankCtx& ctx) {
      if (ctx.rank() == 0) {
        if (!sender_first) ctx.compute_for(1e-3);
        ctx.send(1, big);
      } else {
        if (sender_first) ctx.compute_for(1e-3);
        ctx.recv(0, big);
      }
    });
    return world.wall_time();
  };
  EXPECT_GT(run_order(true), 1e-3);
  EXPECT_GT(run_order(false), 1e-3);
}

TEST(MpiWorld, TagsDisambiguateConcurrentMessages) {
  // Two different-size messages between the same pair, matched by tag in
  // the opposite order they were sent.
  World world(test_machine(), 2);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 100, /*tag=*/1);
      ctx.send(1, 20000, /*tag=*/2);
    } else {
      ctx.recv(0, 20000, /*tag=*/2);
      ctx.recv(0, 100, /*tag=*/1);
    }
  });
  EXPECT_EQ(world.profile().routines.at(Routine::kRecv).total_calls, 2u);
}

TEST(MpiWorld, SendrecvRing) {
  World world(test_machine(), 8);
  world.run([](RankCtx& ctx) {
    const int right = (ctx.rank() + 1) % ctx.size();
    const int left = (ctx.rank() + ctx.size() - 1) % ctx.size();
    for (int i = 0; i < 3; ++i) ctx.sendrecv(right, 4096, left, 4096);
  });
  const auto& sr = world.profile().routines.at(Routine::kSendrecv);
  EXPECT_EQ(sr.total_calls, 24u);
}

TEST(MpiWorld, WaitallRecordsPeerDistance) {
  // Rank 0 exchanges with rank 1 (distance 1) — recorded in the bucket.
  World world(test_machine(), 4);
  world.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::array<Request, 2> reqs = {ctx.irecv(1, 512, 0),
                                     ctx.isend(1, 512, 1)};
      ctx.waitall(reqs);
    } else if (ctx.rank() == 1) {
      std::array<Request, 2> reqs = {ctx.irecv(0, 512, 1),
                                     ctx.isend(0, 512, 0)};
      ctx.waitall(reqs);
    }
  });
  const auto& wa = world.profile().routines.at(Routine::kWaitall);
  EXPECT_NEAR(wa.by_size.begin()->second.avg_rank_distance, 1.0, 1e-9);
}

TEST(MpiWorld, EmptyWaitallIsHarmless) {
  World world(test_machine(), 2);
  world.run([](RankCtx& ctx) {
    std::vector<Request> none;
    ctx.waitall(none);
    ctx.barrier();
  });
  EXPECT_GT(world.wall_time(), 0.0);
}

TEST(MpiWorld, AlltoallSlowerThanAllgatherPerByte) {
  // Pairwise all-to-all pays contention that the ring allgather does not.
  const machine::Machine m = test_machine();
  const auto coll_time = [&](bool alltoall) {
    World world(m, 64);
    world.run([alltoall](RankCtx& ctx) {
      if (alltoall) ctx.alltoall(64_KiB);
      else ctx.allgather(64_KiB);
    });
    return world.wall_time();
  };
  EXPECT_GT(coll_time(true), coll_time(false) * 0.5);  // same order at least
}

TEST(MpiWorld, NicSharingSlowsConcurrentSenders) {
  // 8 ranks on one node all sending to the next node serialise on the NIC;
  // a single sender does not.
  const machine::Machine m = test_machine();
  const auto exchange_time = [&](int senders) {
    World world(m, 32);
    world.run([senders](RankCtx& ctx) {
      const Bytes bytes = 256_KiB;
      if (ctx.rank() < senders) {
        ctx.send(16 + ctx.rank(), bytes);
      } else if (ctx.rank() >= 16 && ctx.rank() < 16 + senders) {
        ctx.recv(ctx.rank() - 16, bytes);
      }
    });
    return world.wall_time();
  };
  EXPECT_GT(exchange_time(8), 4.0 * exchange_time(1));
}

TEST(MpiWorld, SmtModeChangesComputeOnly) {
  workload::Kernel k;
  k.instructions_per_point = 500.0;
  const auto run_mode = [&](machine::SmtMode mode) {
    World world(test_machine(), 2,
                World::Options{.smt = mode, .app_name = "smt-test"});
    world.run([&k](RankCtx& ctx) {
      ctx.compute(k, 1e5);
      ctx.barrier();
    });
    return world.profile().mean_compute();
  };
  EXPECT_GT(run_mode(machine::SmtMode::kSmt),
            run_mode(machine::SmtMode::kSingleThread));
}

TEST(MpiWorld, ComputeAccruesCounters) {
  workload::Kernel k;
  k.name = "stencil";
  k.instructions_per_point = 100.0;
  World world(test_machine(), 4);
  world.run([&k](RankCtx& ctx) { ctx.compute(k, 1e5); });
  EXPECT_GT(world.counters().instructions, 0.0);
  EXPECT_GT(world.counters().cycles, 0.0);
  EXPECT_GT(world.wall_time(), 0.0);
}

}  // namespace
}  // namespace swapp::mpi
