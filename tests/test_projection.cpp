// Integration tests: the full SWAPP pipeline — base profiling, benchmark
// databases, compute + communication projection — on reduced grids so the
// whole file runs in seconds.
#include <gtest/gtest.h>

#include "core/comm_projection.h"
#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "spec/suite.h"
#include "support/error.h"
#include "support/stats.h"

namespace swapp {
namespace {

using experiments::collect_base_data;
using experiments::collect_spec_library;
using experiments::run_actual;

/// Shared fixture: one base machine, one target, small grids.
class ProjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new machine::Machine(machine::make_power5_hydra());
    target_ = new machine::Machine(machine::make_power6_575());
    const std::vector<int> counts = {8, 16, 32};
    auto spec = collect_spec_library(*base_, {*target_}, counts);
    const std::vector<Bytes> sizes = {512, 16_KiB, 256_KiB};
    auto base_imb = imb::measure_database(*base_, {8, 16, 32}, sizes);
    auto target_imb = imb::measure_database(*target_, {8, 16, 32}, sizes);
    projector_ = new core::Projector(*base_, spec, base_imb);
    projector_->add_target(target_->name, target_imb);

    const nas::NasApp lu(nas::Benchmark::kLU, nas::ProblemClass::kC);
    lu_data_ = new core::AppBaseData(
        collect_base_data(lu, *base_, {4, 8, 16}, {4, 8, 16}));
  }
  static void TearDownTestSuite() {
    delete projector_;
    delete lu_data_;
    delete base_;
    delete target_;
  }

  static machine::Machine* base_;
  static machine::Machine* target_;
  static core::Projector* projector_;
  static core::AppBaseData* lu_data_;
};

machine::Machine* ProjectionTest::base_ = nullptr;
machine::Machine* ProjectionTest::target_ = nullptr;
core::Projector* ProjectionTest::projector_ = nullptr;
core::AppBaseData* ProjectionTest::lu_data_ = nullptr;

TEST_F(ProjectionTest, BaseDataHasExpectedShape) {
  EXPECT_EQ(lu_data_->app, "LU-MZ.C");
  EXPECT_EQ(lu_data_->profiled_core_counts(), (std::vector<int>{4, 8, 16}));
  EXPECT_EQ(lu_data_->counter_core_counts(), (std::vector<int>{4, 8, 16}));
  // ST and SMT counters differ (the paper's dual-mode characterisation).
  EXPECT_NE(lu_data_->counters_st.at(16).cpi_completion,
            lu_data_->counters_smt.at(16).cpi_completion);
}

TEST_F(ProjectionTest, ProjectionIsFinitePositiveAndDecomposed) {
  const core::ProjectionResult r =
      projector_->project(*lu_data_, target_->name, 16);
  EXPECT_GT(r.compute.target_compute, 0.0);
  EXPECT_GE(r.comm.target_total(), 0.0);
  EXPECT_GT(r.total_target(), 0.0);
  EXPECT_FALSE(r.compute.surrogate.terms.empty());
  // Surrogate anchored to the base compute time (Eq. 2 scale).
  EXPECT_NEAR(r.compute.base_compute, lu_data_->mean_compute.at(16), 1e-9);
}

TEST_F(ProjectionTest, ProjectionWithinPaperLikeError) {
  const core::ProjectionResult r =
      projector_->project(*lu_data_, target_->name, 16);
  const experiments::ActualRun truth =
      run_actual(nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC),
                 *target_, 16);
  // The paper's worst per-system average is < 15%; grant integration slack.
  EXPECT_LT(percent_error(r.total_target(), truth.wall), 35.0);
}

TEST_F(ProjectionTest, DeterministicEndToEnd) {
  const core::ProjectionResult a =
      projector_->project(*lu_data_, target_->name, 16);
  const core::ProjectionResult b =
      projector_->project(*lu_data_, target_->name, 16);
  EXPECT_DOUBLE_EQ(a.total_target(), b.total_target());
}

TEST_F(ProjectionTest, UnknownTargetThrows) {
  EXPECT_THROW(projector_->project(*lu_data_, "Cray XT5", 16), NotFound);
}

TEST_F(ProjectionTest, WaitModelAblationLowersCommProjection) {
  core::ProjectionOptions with{};
  core::ProjectionOptions without{};
  without.comm.use_wait_model = false;
  const auto a = projector_->project(*lu_data_, target_->name, 16, with);
  const auto b = projector_->project(*lu_data_, target_->name, 16, without);
  EXPECT_LE(b.comm.target_total(), a.comm.target_total());
}

TEST_F(ProjectionTest, CoupledAblationDiffersFromDecoupled) {
  core::ProjectionOptions coupled{};
  coupled.decouple_components = false;
  const auto a = projector_->project(*lu_data_, target_->name, 16);
  const auto b = projector_->project(*lu_data_, target_->name, 16, coupled);
  EXPECT_NE(a.comm.target_total(), b.comm.target_total());
}

TEST_F(ProjectionTest, SpecViewMatchesOccupancies) {
  // At 16 tasks: full node on the base (16/node), half node on P6 (32/node).
  const core::SpecData view = projector_->spec_view(target_->name, 16);
  EXPECT_EQ(view.names.size(), spec::suite().size());
  EXPECT_GT(view.runtime_on(target_->name, "bwaves"), 0.0);
}

TEST_F(ProjectionTest, CommProjectionClassesCoverProfile) {
  const core::ProjectionResult r =
      projector_->project(*lu_data_, target_->name, 16);
  // LU-MZ has nonblocking p2p and collectives, no blocking p2p.
  EXPECT_GT(r.comm.of(mpi::RoutineClass::kPointToPointNonblocking)
                .base_elapsed, 0.0);
  EXPECT_GT(r.comm.of(mpi::RoutineClass::kCollective).base_elapsed, 0.0);
  EXPECT_DOUBLE_EQ(
      r.comm.of(mpi::RoutineClass::kPointToPointBlocking).base_elapsed, 0.0);
}

TEST(CommProjectionUnit, TransfersScaleWithTables) {
  // Synthetic databases: the target's multi-Sendrecv is exactly 2× the
  // base's, so a wait-free profile projects at 2× the base transfer.
  const machine::Machine base = machine::make_power5_hydra();
  imb::ImbDatabase base_db;
  base_db.machine_name = "base";
  base_db.cores_per_node = 16;
  imb::ImbDatabase target_db;
  target_db.machine_name = "target";
  target_db.cores_per_node = 16;
  for (const int c : {8, 16}) {
    for (const double b : {1024.0, 65536.0}) {
      base_db.multi_sendrecv_x1.insert(c, b, 1e-5);
      base_db.multi_sendrecv_x2.insert(c, b, 1.5e-5);
      target_db.multi_sendrecv_x1.insert(c, b, 2e-5);
      target_db.multi_sendrecv_x2.insert(c, b, 3e-5);
    }
  }
  mpi::MpiProfile profile;
  profile.ranks = 16;
  mpi::RoutineProfile& wa = profile.routines[mpi::Routine::kWaitall];
  wa.routine = mpi::Routine::kWaitall;
  wa.total_calls = 1600;
  wa.total_elapsed = 16 * 100 * 1.5e-5;  // exactly the priced transfer
  mpi::SizeBucket& bucket = wa.by_size[4096];
  bucket.bytes = 4096;
  bucket.calls = 1600;  // 100 per rank
  bucket.elapsed = wa.total_elapsed;
  bucket.avg_in_flight = 2.0;
  bucket.avg_rank_distance = 100.0;  // all inter-node
  profile.per_task.assign(16, {});

  const core::CommProjection p = core::project_communication(
      profile, 16, base_db, target_db, 1.0, core::CommProjectionOptions{});
  const auto& nb = p.of(mpi::RoutineClass::kPointToPointNonblocking);
  // Eq. 1: flight = T(x2) − T(x1), lib = T(x1) − flight, so
  // T(x=2) = lib + 2·flight = 1.5e-5 per call on base, 3e-5 on the target.
  EXPECT_NEAR(nb.base_transfer, 100 * 1.5e-5, 1e-9);
  EXPECT_NEAR(nb.target_transfer, 100 * 3e-5, 1e-9);
  EXPECT_NEAR(nb.base_wait, 0.0, 1e-6);
}

}  // namespace
}  // namespace swapp
