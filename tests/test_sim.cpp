// Unit tests for the discrete-event engine and fibers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "sim/fiber.h"
#include "support/error.h"

namespace swapp::sim {
namespace {

TEST(Fiber, RunsBodyToCompletion) {
  int steps = 0;
  Fiber f([&] {
    ++steps;
    Fiber::yield();
    ++steps;
  });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(steps, 1);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(steps, 2);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, PropagatesExceptions) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, InFiberReflectsContext) {
  EXPECT_FALSE(Fiber::in_fiber());
  bool inside = false;
  Fiber f([&] { inside = Fiber::in_fiber(); });
  f.resume();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(Fiber::in_fiber());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimestampsFireFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(5.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), InvalidArgument);
  });
  e.run();
}

TEST(Engine, ProcessAdvancesClock) {
  Engine e;
  Seconds observed = -1.0;
  e.spawn("p", [&](Process& p) {
    p.advance(1.5);
    p.advance(0.5);
    observed = p.engine().now();
  });
  e.run();
  EXPECT_DOUBLE_EQ(observed, 2.0);
}

TEST(Engine, BlockAndUnblockAt) {
  Engine e;
  Seconds resumed_at = -1.0;
  Process& waiter = e.spawn("waiter", [&](Process& p) {
    p.block();
    resumed_at = p.engine().now();
  });
  e.spawn("waker", [&](Process& p) {
    p.advance(1.0);
    waiter.unblock_at(4.0);
  });
  e.run();
  EXPECT_DOUBLE_EQ(resumed_at, 4.0);
}

TEST(Engine, UnblockInPastClampsToNow) {
  Engine e;
  Seconds resumed_at = -1.0;
  Process& waiter = e.spawn("waiter", [&](Process& p) {
    p.block();
    resumed_at = p.engine().now();
  });
  e.spawn("waker", [&](Process& p) {
    p.advance(3.0);
    waiter.unblock_at(1.0);  // already in the past
  });
  e.run();
  EXPECT_DOUBLE_EQ(resumed_at, 3.0);
}

TEST(Engine, DeadlockDetection) {
  Engine e;
  e.spawn("stuck", [&](Process& p) { p.block(); });
  EXPECT_THROW(e.run(), InternalError);
}

TEST(Engine, ManyProcessesDeterministic) {
  const auto run_once = [] {
    Engine e;
    std::vector<std::uint32_t> finish_order;
    for (int i = 0; i < 64; ++i) {
      e.spawn("p" + std::to_string(i), [&, i](Process& p) {
        p.advance(((i * 7) % 13) * 0.1 + 0.05);
        finish_order.push_back(p.id());
      });
    }
    e.run();
    return finish_order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(Engine, ProcessExceptionPropagates) {
  Engine e;
  e.spawn("bad", [](Process& p) {
    p.advance(1.0);
    throw std::runtime_error("rank failed");
  });
  EXPECT_THROW(e.run(), std::runtime_error);
}

}  // namespace
}  // namespace swapp::sim
