// Tests for the SPEC-style benchmark suite.
#include <gtest/gtest.h>

#include <set>

#include "machine/machine.h"
#include "spec/suite.h"
#include "support/error.h"

namespace swapp::spec {
namespace {

TEST(SpecSuite, HasSeventeenDistinctBenchmarks) {
  // One per CFP2006 component.
  EXPECT_EQ(suite().size(), 17u);
  std::set<std::string> names;
  for (const Benchmark& b : suite()) names.insert(b.name());
  EXPECT_EQ(names.size(), 17u);
}

TEST(SpecSuite, LookupByName) {
  EXPECT_EQ(benchmark_by_name("bwaves").name(), "bwaves");
  EXPECT_THROW(benchmark_by_name("x264"), NotFound);
}

TEST(SpecSuite, SignaturesAreDiverse) {
  // The suite must span distinct microarchitectural behaviours or the
  // surrogate search degenerates.  Check spreads on the key axes.
  double min_ws = 1e18;
  double max_ws = 0.0;
  double min_theta = 1e18;
  double max_theta = 0.0;
  double max_pc = 0.0;
  for (const Benchmark& b : suite()) {
    const double ws = b.points * b.kernel.bytes_per_point;
    min_ws = std::min(min_ws, ws);
    max_ws = std::max(max_ws, ws);
    min_theta = std::min(min_theta, b.kernel.locality_theta);
    max_theta = std::max(max_theta, b.kernel.locality_theta);
    max_pc = std::max(max_pc, b.kernel.pointer_chasing);
  }
  EXPECT_GT(max_ws / min_ws, 50.0);     // footprints span cache → memory
  EXPECT_LT(min_theta, 0.2);            // cache-resident codes present
  EXPECT_GT(max_theta, 0.9);            // streaming codes present
  EXPECT_GT(max_pc, 0.2);               // latency-bound codes present
}

TEST(SpecSuite, RunProducesPositiveResults) {
  const machine::Machine m = machine::make_power5_hydra();
  const BenchmarkRun run = run_benchmark(
      benchmark_by_name("gamess"), m, machine::SmtMode::kSingleThread);
  EXPECT_GT(run.runtime, 0.0);
  EXPECT_GT(run.counters.instructions, 0.0);
  EXPECT_NEAR(run.counters.seconds, run.runtime, 1e-9);
}

TEST(SpecSuite, OccupancyChangesBandwidthBoundResults) {
  const machine::Machine m = machine::make_power5_hydra();
  const Benchmark& lbm = benchmark_by_name("lbm");
  const BenchmarkRun alone =
      run_benchmark(lbm, m, machine::SmtMode::kSingleThread, 1);
  const BenchmarkRun full =
      run_benchmark(lbm, m, machine::SmtMode::kSingleThread, 16);
  EXPECT_GT(full.runtime, 2.0 * alone.runtime);
}

TEST(SpecSuite, OccupancyBarelyAffectsCacheResidentCodes) {
  const machine::Machine m = machine::make_power5_hydra();
  const Benchmark& povray = benchmark_by_name("povray");
  const BenchmarkRun alone =
      run_benchmark(povray, m, machine::SmtMode::kSingleThread, 1);
  const BenchmarkRun full =
      run_benchmark(povray, m, machine::SmtMode::kSingleThread, 16);
  EXPECT_LT(full.runtime, 1.5 * alone.runtime);
}

TEST(SpecSuite, SmtModeChangesBehaviour) {
  const machine::Machine m = machine::make_power5_hydra();
  const Benchmark& gamess = benchmark_by_name("gamess");
  const BenchmarkRun st =
      run_benchmark(gamess, m, machine::SmtMode::kSingleThread, 16);
  const BenchmarkRun smt =
      run_benchmark(gamess, m, machine::SmtMode::kSmt, 16);
  EXPECT_NE(st.runtime, smt.runtime);
}

TEST(SpecSuite, RunSuiteCoversAll) {
  const machine::Machine m = machine::make_bluegene_p();
  const auto runs = run_suite(m, machine::SmtMode::kSingleThread);
  EXPECT_EQ(runs.size(), suite().size());
  for (const BenchmarkRun& r : runs) EXPECT_GT(r.runtime, 0.0);
}

TEST(SpecSuite, RejectsTooManyCopies) {
  const machine::Machine m = machine::make_bluegene_p();  // 4 cores/node
  EXPECT_THROW(run_benchmark(benchmark_by_name("lbm"), m,
                             machine::SmtMode::kSingleThread, 8),
               InvalidArgument);
}

// Property: every benchmark runs deterministically on every machine.
class SpecDeterminism
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(SpecDeterminism, RuntimeIsReproducible) {
  const auto [machine_index, name] = GetParam();
  const machine::Machine m = machine::all_machines()[
      static_cast<std::size_t>(machine_index)];
  const Benchmark& b = benchmark_by_name(name);
  const BenchmarkRun r1 =
      run_benchmark(b, m, machine::SmtMode::kSingleThread);
  const BenchmarkRun r2 =
      run_benchmark(b, m, machine::SmtMode::kSingleThread);
  EXPECT_DOUBLE_EQ(r1.runtime, r2.runtime);
  EXPECT_GT(r1.runtime, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    MachineBenchmarkGrid, SpecDeterminism,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values("bwaves", "gamess", "soplex", "lbm",
                                         "calculix")));

}  // namespace
}  // namespace swapp::spec
