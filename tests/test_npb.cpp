// Tests for the classic NPB skeletons (CG, MG, FT) — the beyond-paper
// workload extension.
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "nas/npb.h"
#include "support/error.h"

namespace swapp::nas {
namespace {

const machine::Machine& base() {
  static const machine::Machine m = machine::make_power5_hydra();
  return m;
}

TEST(Npb, NamesAndRankSupport) {
  const NpbApp cg(NpbBenchmark::kCG, ProblemClass::kC);
  EXPECT_EQ(cg.name(), "CG.C");
  EXPECT_TRUE(cg.supports_ranks(16));
  EXPECT_TRUE(cg.supports_ranks(128));
  EXPECT_FALSE(cg.supports_ranks(12));  // not a power of two
  EXPECT_FALSE(cg.supports_ranks(1));
}

TEST(Npb, CgExercisesAllreduceAndExchange) {
  const NpbApp app(NpbBenchmark::kCG, ProblemClass::kC);
  const auto world = app.run(base(), 16);
  const mpi::MpiProfile& p = world->profile();
  EXPECT_TRUE(p.has_routine(mpi::Routine::kAllreduce));
  EXPECT_TRUE(p.has_routine(mpi::Routine::kWaitall));
  EXPECT_GT(world->wall_time(), 0.0);
  // Two dot products per iteration.
  EXPECT_EQ(p.routines.at(mpi::Routine::kAllreduce).total_calls,
            16u * 38u * 2u);
}

TEST(Npb, MgSpansManyMessageSizes) {
  const NpbApp app(NpbBenchmark::kMG, ProblemClass::kC);
  const auto world = app.run(base(), 16);
  const auto& waitall =
      world->profile().routines.at(mpi::Routine::kWaitall);
  // Faces shrink by ~4x per level: several distinct size buckets appear.
  EXPECT_GE(waitall.by_size.size(), 4u);
  Bytes smallest = ~Bytes{0};
  Bytes largest = 0;
  for (const auto& [bytes, bucket] : waitall.by_size) {
    smallest = std::min(smallest, bytes);
    largest = std::max(largest, bytes);
  }
  EXPECT_GT(largest / std::max<Bytes>(smallest, 1), 50u);
}

TEST(Npb, FtIsAlltoallDominated) {
  const NpbApp app(NpbBenchmark::kFT, ProblemClass::kC);
  const auto world = app.run(base(), 32);
  const mpi::MpiProfile& p = world->profile();
  ASSERT_TRUE(p.has_routine(mpi::Routine::kAlltoall));
  const Seconds alltoall = p.mean_routine_elapsed(mpi::Routine::kAlltoall);
  const Seconds comm = p.mean_communication();
  EXPECT_GT(alltoall, 0.5 * comm);  // the transpose dominates communication
}

TEST(Npb, DeterministicAndScaling) {
  const NpbApp app(NpbBenchmark::kMG, ProblemClass::kC);
  const auto a = app.run(base(), 16);
  const auto b = app.run(base(), 16);
  EXPECT_DOUBLE_EQ(a->wall_time(), b->wall_time());
  // Strong scaling: more ranks, less time.
  const auto wide = app.run(base(), 64);
  EXPECT_LT(wide->wall_time(), a->wall_time());
}

TEST(Npb, RejectsUnsupportedRankCounts) {
  const NpbApp app(NpbBenchmark::kCG, ProblemClass::kC);
  EXPECT_THROW(app.run(base(), 12), InvalidArgument);
}

}  // namespace
}  // namespace swapp::nas
