// Unit tests for the interconnect models.
#include <gtest/gtest.h>

#include "net/network.h"
#include "support/error.h"

namespace swapp::net {
namespace {

NetworkConfig fat_tree_config() {
  NetworkConfig c;
  c.kind = TopologyKind::kFatTree;
  c.link_bandwidth_gbs = 2.0;
  c.base_latency = 2_us;
  c.per_hop_latency = 100_ns;
  c.fat_tree_radix = 4;
  return c;
}

TEST(Network, FatTreeHops) {
  const Network n(fat_tree_config(), 16);
  EXPECT_EQ(n.hops(0, 0), 0);
  EXPECT_EQ(n.hops(0, 3), 2);   // same leaf (radix 4)
  EXPECT_EQ(n.hops(0, 4), 4);   // across the spine
  EXPECT_EQ(n.hops(5, 15), 4);
  EXPECT_EQ(n.diameter(), 4);
}

TEST(Network, TransferTimeComponents) {
  const Network n(fat_tree_config(), 16);
  // Latency part plus serialisation part.
  const Seconds t = n.transfer_time(0, 4, 2000);
  const Seconds expected = 2e-6 + 4 * 100e-9 + 2000.0 / (2.0 * 1e9);
  EXPECT_NEAR(t, expected, 1e-12);
  // Zero-ish payload ≈ pure latency.
  EXPECT_NEAR(n.transfer_time(0, 4, 0), 2e-6 + 4 * 100e-9, 1e-12);
}

TEST(Network, IntraNodeUsesSharedMemoryPath) {
  NetworkConfig c = fat_tree_config();
  c.intra_node_latency = 300_ns;
  c.intra_node_bandwidth_gbs = 8.0;
  const Network n(c, 16);
  EXPECT_NEAR(n.transfer_time(3, 3, 8000), 300e-9 + 8000.0 / 8e9, 1e-12);
  EXPECT_LT(n.transfer_time(3, 3, 8000), n.transfer_time(3, 4, 8000));
}

TEST(Network, CongestedTransferSlower) {
  NetworkConfig c = fat_tree_config();
  c.contention_factor = 2.0;
  const Network n(c, 16);
  EXPECT_GT(n.congested_transfer_time(0, 8, 1_MiB),
            n.transfer_time(0, 8, 1_MiB));
}

TEST(Network, TorusHopsWithWraparound) {
  NetworkConfig c;
  c.kind = TopologyKind::kTorus3D;
  c.torus_dims = {4, 4, 4};
  const Network n(c, 64);
  EXPECT_EQ(n.hops(0, 1), 1);
  // Node 3 is 3 steps away going right but 1 step via the wraparound link.
  EXPECT_EQ(n.hops(0, 3), 1);
  EXPECT_EQ(n.hops(0, 2), 2);
  // Opposite corner: 2 hops per dimension.
  const int far = 2 + 2 * 4 + 2 * 16;
  EXPECT_EQ(n.hops(0, far), 6);
  EXPECT_EQ(n.diameter(), 6);
}

TEST(Network, TorusAutoDimensions) {
  NetworkConfig c;
  c.kind = TopologyKind::kTorus3D;
  const Network n(c, 32);  // should factor into something 3-D
  EXPECT_EQ(n.nodes(), 32);
  EXPECT_GT(n.diameter(), 0);
}

TEST(Network, CollectiveTree) {
  NetworkConfig c;
  c.kind = TopologyKind::kTorus3D;
  c.has_collective_tree = true;
  c.tree_per_hop_latency = 100_ns;
  c.tree_bandwidth_gbs = 1.0;
  const Network n(c, 64);
  EXPECT_GT(n.collective_tree_depth(64), n.collective_tree_depth(8));
  EXPECT_GT(n.collective_tree_time(64, 1_MiB),
            n.collective_tree_time(64, 1_KiB));
}

TEST(Network, NoTreeThrows) {
  const Network n(fat_tree_config(), 16);
  EXPECT_THROW(n.collective_tree_depth(16), InvalidArgument);
}

TEST(Network, FederationBehavesLikeTwoLevelSwitch) {
  NetworkConfig c = fat_tree_config();
  c.kind = TopologyKind::kFederation;
  const Network n(c, 8);
  EXPECT_EQ(n.hops(0, 1), 2);
  EXPECT_EQ(n.hops(0, 5), 4);
}

TEST(Network, RejectsOutOfRangeNodes) {
  const Network n(fat_tree_config(), 4);
  EXPECT_THROW(n.hops(0, 4), InvalidArgument);
  EXPECT_THROW(n.hops(-1, 0), InvalidArgument);
}

// Property: transfer time is monotone in message size for every topology.
class NetworkMonotonicity : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(NetworkMonotonicity, TransferMonotoneInBytes) {
  NetworkConfig c = fat_tree_config();
  c.kind = GetParam();
  const Network n(c, 16);
  Seconds prev = 0.0;
  for (const Bytes b : {64_KiB / 1024, 1_KiB, 32_KiB, 1_MiB}) {
    const Seconds t = n.transfer_time(0, n.nodes() - 1, b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, NetworkMonotonicity,
                         ::testing::Values(TopologyKind::kFatTree,
                                           TopologyKind::kTorus3D,
                                           TopologyKind::kFederation));

}  // namespace
}  // namespace swapp::net
