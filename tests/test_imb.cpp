// Tests for the IMB-style MPI benchmark suite and parameter database.
#include <gtest/gtest.h>

#include "imb/suite.h"
#include "machine/machine.h"
#include "support/error.h"

namespace swapp::imb {
namespace {

const machine::Machine& base_machine() {
  static const machine::Machine m = machine::make_power5_hydra();
  return m;
}

TEST(Imb, PingPongPositiveAndSizeMonotone) {
  Seconds prev = 0.0;
  for (const Bytes b : {64_KiB / 1024, 4_KiB, 256_KiB}) {
    const ImbSample s =
        run_imb(base_machine(), ImbBenchmark::kPingPong, 32, b, 8);
    EXPECT_GT(s.time, prev);
    prev = s.time;
  }
}

TEST(Imb, CollectivesGrowWithRanks) {
  const ImbSample small =
      run_imb(base_machine(), ImbBenchmark::kAllreduce, 16, 4_KiB, 8);
  const ImbSample large =
      run_imb(base_machine(), ImbBenchmark::kAllreduce, 128, 4_KiB, 8);
  EXPECT_GT(large.time, small.time);
}

TEST(Imb, MultiSendrecvGrowsWithSequences) {
  const ImbSample x1 = run_imb(base_machine(), ImbBenchmark::kMultiSendrecv,
                               32, 32_KiB, 8, 1);
  const ImbSample x4 = run_imb(base_machine(), ImbBenchmark::kMultiSendrecv,
                               32, 32_KiB, 8, 4);
  EXPECT_GT(x4.time, x1.time);
}

TEST(Imb, NearPairsCheaperThanFarPairs) {
  // Intra-node exchange avoids the shared NIC and the wire.
  const ImbSample far = run_imb(base_machine(), ImbBenchmark::kMultiSendrecv,
                                32, 32_KiB, 8, 1, /*near_pairs=*/false);
  const ImbSample near = run_imb(base_machine(), ImbBenchmark::kMultiSendrecv,
                                 32, 32_KiB, 8, 1, /*near_pairs=*/true);
  EXPECT_LT(near.time, far.time);
}

TEST(Imb, BarrierIndependentOfPayload) {
  const ImbSample a = run_imb(base_machine(), ImbBenchmark::kBarrier, 32, 8, 8);
  const ImbSample b =
      run_imb(base_machine(), ImbBenchmark::kBarrier, 32, 1024, 8);
  EXPECT_NEAR(a.time, b.time, a.time * 0.01);
}

TEST(Imb, BgpCollectiveTreeGivesFastBcast) {
  const machine::Machine bgp = machine::make_bluegene_p();
  machine::Machine no_tree = bgp;
  no_tree.mpi.use_collective_tree = false;
  const ImbSample with_tree =
      run_imb(bgp, ImbBenchmark::kBcast, 64, 4_KiB, 8);
  const ImbSample without_tree =
      run_imb(no_tree, ImbBenchmark::kBcast, 64, 4_KiB, 8);
  EXPECT_LT(with_tree.time, without_tree.time);
}

TEST(ImbDatabase, MeasuredTablesInterpolate) {
  const ImbDatabase db = measure_database(
      base_machine(), {16, 64}, {512, 32_KiB});
  // Exact grid points and in-between lookups both work.
  EXPECT_GT(db.lookup(mpi::Routine::kBcast, 512, 16), 0.0);
  EXPECT_GT(db.lookup(mpi::Routine::kBcast, 4_KiB, 32), 0.0);
  // Monotone in message size.
  EXPECT_LT(db.lookup(mpi::Routine::kAllreduce, 512, 16),
            db.lookup(mpi::Routine::kAllreduce, 32_KiB, 16));
}

TEST(ImbDatabase, UnknownRoutineThrows) {
  const ImbDatabase db = measure_database(base_machine(), {16}, {512});
  EXPECT_THROW(db.lookup(mpi::Routine::kIsend, 512, 16), NotFound);
}

TEST(ImbDatabase, Eq1SeparatesOverheadFromFlight) {
  const ImbDatabase db =
      measure_database(base_machine(), {32}, {512, 32_KiB});
  const Seconds t1 = db.multi_sendrecv_time(1.0, 32_KiB, 32);
  const Seconds t2 = db.multi_sendrecv_time(2.0, 32_KiB, 32);
  const Seconds t8 = db.multi_sendrecv_time(8.0, 32_KiB, 32);
  // Linear in the in-flight count beyond the library overhead (Eq. 1).
  EXPECT_NEAR(t8 - t2, 6.0 * (t2 - t1), 1e-9);
  EXPECT_GE(t1, t2 - t1);  // overhead is non-negative
}

TEST(ImbDatabase, IntraFractionBlending) {
  const ImbDatabase db =
      measure_database(base_machine(), {32}, {32_KiB});
  const Seconds inter = db.multi_sendrecv_time(4.0, 32_KiB, 32, 0.0);
  const Seconds intra = db.multi_sendrecv_time(4.0, 32_KiB, 32, 1.0);
  const Seconds half = db.multi_sendrecv_time(4.0, 32_KiB, 32, 0.5);
  EXPECT_LT(intra, inter);
  EXPECT_NEAR(half, 0.5 * (intra + inter), 1e-12);
}

TEST(ImbDatabase, IntraNodeFractionFromRankDistance) {
  ImbDatabase db;
  db.cores_per_node = 16;
  EXPECT_NEAR(db.intra_node_fraction(1.0), 15.0 / 16.0, 1e-12);
  EXPECT_NEAR(db.intra_node_fraction(8.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(db.intra_node_fraction(32.0), 0.0);
}

TEST(Imb, AllBenchmarksRunOnAllMachines) {
  for (const machine::Machine& m : machine::all_machines()) {
    for (const ImbBenchmark b : all_benchmarks()) {
      const ImbSample s = run_imb(m, b, 16, 1_KiB, 4);
      EXPECT_GE(s.time, 0.0) << to_string(b) << " on " << m.name;
    }
  }
}

}  // namespace
}  // namespace swapp::imb
