// Tests for the batch projection service: project_many vs sequential
// byte-identity (at several thread counts, with and without a shared
// surrogate search), the content-addressed artifact cache (round-trip,
// corruption fallback, eviction), and the request planner's dedup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "service/artifact_cache.h"
#include "service/planner.h"
#include "service/service.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp {
namespace {

using experiments::collect_base_data;
using experiments::collect_spec_library;

const std::vector<int> kCounts = {8, 16, 32};
const std::vector<Bytes> kSizes = {512, 16_KiB, 256_KiB};

/// Restores the default pool size when a test changes it.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

/// Shared fixture: small grids, one target, an LU profile.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new machine::Machine(machine::make_power5_hydra());
    target_ = new machine::Machine(machine::make_power6_575());
    auto spec = collect_spec_library(*base_, {*target_}, kCounts);
    projector_ = new core::Projector(
        *base_, spec, imb::measure_database(*base_, kCounts, kSizes));
    projector_->add_target(target_->name,
                           imb::measure_database(*target_, kCounts, kSizes));
    const nas::NasApp lu(nas::Benchmark::kLU, nas::ProblemClass::kC);
    lu_data_ = new core::AppBaseData(
        collect_base_data(lu, *base_, {4, 8, 16}, {4, 8, 16}));
  }
  static void TearDownTestSuite() {
    delete projector_;
    delete lu_data_;
    delete base_;
    delete target_;
  }

  static std::vector<core::ProjectionRequest> lu_requests(
      const core::ProjectionOptions& options) {
    std::vector<core::ProjectionRequest> requests;
    for (const int ck : {4, 8, 16}) {
      requests.push_back(
          core::ProjectionRequest{lu_data_, target_->name, ck, options});
    }
    return requests;
  }

  static machine::Machine* base_;
  static machine::Machine* target_;
  static core::Projector* projector_;
  static core::AppBaseData* lu_data_;
};

machine::Machine* ServiceTest::base_ = nullptr;
machine::Machine* ServiceTest::target_ = nullptr;
core::Projector* ServiceTest::projector_ = nullptr;
core::AppBaseData* ServiceTest::lu_data_ = nullptr;

/// Bitwise equality of two projection results (operator== on doubles: the
/// batch engine promises byte-identity, not just closeness).
void expect_identical(const core::ProjectionResult& a,
                      const core::ProjectionResult& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.compute.target_compute, b.compute.target_compute);
  EXPECT_EQ(a.compute.base_compute, b.compute.base_compute);
  EXPECT_EQ(a.compute.gamma, b.compute.gamma);
  EXPECT_EQ(a.compute.hyper_scaling_cores, b.compute.hyper_scaling_cores);
  ASSERT_EQ(a.compute.surrogate.terms.size(),
            b.compute.surrogate.terms.size());
  for (std::size_t i = 0; i < a.compute.surrogate.terms.size(); ++i) {
    EXPECT_EQ(a.compute.surrogate.terms[i].benchmark,
              b.compute.surrogate.terms[i].benchmark);
    EXPECT_EQ(a.compute.surrogate.terms[i].weight,
              b.compute.surrogate.terms[i].weight);
  }
  EXPECT_EQ(a.comm.base_total(), b.comm.base_total());
  EXPECT_EQ(a.comm.target_total(), b.comm.target_total());
  EXPECT_EQ(a.total_target(), b.total_target());
}

TEST_F(ServiceTest, BatchMatchesSequentialAtEveryThreadCount) {
  ThreadCountGuard guard;
  const std::vector<core::ProjectionRequest> requests = lu_requests({});

  std::vector<core::ProjectionResult> reference;
  for (const core::ProjectionRequest& r : requests) {
    reference.push_back(projector_->project(*r.app, r.target, r.cores));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    const std::vector<core::ProjectionResult> batch =
        projector_->project_many(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_identical(batch[i], reference[i]);
    }
  }
}

TEST_F(ServiceTest, SharedSurrogateBatchMatchesSequential) {
  ThreadCountGuard guard;
  core::ProjectionOptions options;
  options.compute.surrogate_reference_cores = 16;
  const std::vector<core::ProjectionRequest> requests = lu_requests(options);

  std::vector<core::ProjectionResult> reference;
  for (const core::ProjectionRequest& r : requests) {
    reference.push_back(
        projector_->project(*r.app, r.target, r.cores, options));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    const std::vector<core::ProjectionResult> batch =
        projector_->project_many(requests);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_identical(batch[i], reference[i]);
    }
  }
  // The shared search pins the surrogate composition: every count selects
  // the same benchmarks, rescaled by the CCSM anchor ratio.
  ASSERT_EQ(reference[0].compute.surrogate.terms.size(),
            reference[2].compute.surrogate.terms.size());
  for (std::size_t t = 0; t < reference[0].compute.surrogate.terms.size();
       ++t) {
    EXPECT_EQ(reference[0].compute.surrogate.terms[t].benchmark,
              reference[2].compute.surrogate.terms[t].benchmark);
  }
}

TEST_F(ServiceTest, SharedSurrogateReferenceCountIsUnscaled) {
  // At the reference count itself the shared search must reproduce the
  // unshared projection exactly (no rescale is applied).
  core::ProjectionOptions options;
  options.compute.surrogate_reference_cores = 16;
  const core::ProjectionResult with_ref =
      projector_->project(*lu_data_, target_->name, 16, options);
  const core::ProjectionResult without =
      projector_->project(*lu_data_, target_->name, 16);
  expect_identical(with_ref, without);
}

TEST(PlannerTest, DedupsSharedArtifacts) {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  std::map<std::string, machine::Machine> targets = {{target.name, target}};

  core::ProjectionOptions shared;
  shared.compute.surrogate_reference_cores = 16;
  std::vector<service::ServiceRequest> requests;
  for (const int ck : {4, 8, 16}) {
    requests.push_back(
        service::ServiceRequest{"LU/C", target.name, ck, 1, shared});
    requests.push_back(
        service::ServiceRequest{"BT/C", target.name, ck, 1, shared});
  }
  requests.push_back(service::ServiceRequest{"LU/C", target.name, 8, 1, {}});

  const service::BatchPlan plan = service::plan_batch(requests, base, targets);
  EXPECT_EQ(plan.requests, 7u);
  EXPECT_EQ(plan.apps, (std::vector<std::string>{"LU/C", "BT/C"}));
  EXPECT_EQ(plan.targets, (std::vector<std::string>{target.name}));
  EXPECT_EQ(plan.task_counts, (std::vector<int>{4, 8, 16}));
  // All six shared-search requests probe at 16 tasks: one occupancy pair,
  // hence one spec index for them; the unshared request at 8 tasks adds a
  // second.  Two apps -> two shared searches; plus the one unshared search.
  EXPECT_EQ(plan.artifact_count("spec-index"), 2u);
  EXPECT_EQ(plan.artifact_count("surrogate-search"), 2u);
  EXPECT_EQ(plan.searches, 3u);
  EXPECT_EQ(plan.naive_searches, 7u);
  EXPECT_NE(plan.describe().find("7 request(s)"), std::string::npos);
}

TEST(PlannerTest, UnknownTargetThrows) {
  const machine::Machine base = machine::make_power5_hydra();
  EXPECT_THROW(
      service::plan_batch({service::ServiceRequest{"LU/C", "Cray XT5", 8}},
                          base, {}),
      NotFound);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("swapp-cache-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static imb::ImbDatabase small_db() {
    return imb::measure_database(machine::make_power5_hydra(), {8, 16},
                                 {512, 16_KiB});
  }

  std::filesystem::path dir_;
};

TEST_F(CacheTest, RoundTripAcrossCacheInstances) {
  const std::string key = "imb-inputs-v1";
  imb::ImbDatabase computed;
  {
    service::ArtifactCache cold(dir_);
    service::ArtifactSource source = service::ArtifactSource::kMemory;
    const auto db = cold.imb_database(key, &small_db, &source);
    EXPECT_EQ(source, service::ArtifactSource::kComputed);
    computed = *db;

    // Second lookup in the same cache: memory tier, no recompute.
    const auto again = cold.imb_database(
        key, [] { ADD_FAILURE() << "recomputed"; return small_db(); },
        &source);
    EXPECT_EQ(source, service::ArtifactSource::kMemory);
    EXPECT_EQ(cold.stats().memory_hits, 1u);
    EXPECT_EQ(cold.stats().misses, 1u);
  }

  // A fresh cache over the same directory loads from disk — zero simulation
  // — and the loaded artifact is value-identical to the computed one.
  service::ArtifactCache warm(dir_);
  service::ArtifactSource source = service::ArtifactSource::kComputed;
  const auto db = warm.imb_database(
      key, [] { ADD_FAILURE() << "recomputed"; return small_db(); }, &source);
  EXPECT_EQ(source, service::ArtifactSource::kDisk);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  EXPECT_EQ(db->machine_name, computed.machine_name);
  const auto computed_samples = computed.multi_sendrecv_x1.samples();
  const auto loaded_samples = db->multi_sendrecv_x1.samples();
  ASSERT_EQ(computed_samples.size(), loaded_samples.size());
  for (std::size_t i = 0; i < computed_samples.size(); ++i) {
    EXPECT_EQ(computed_samples[i].seconds, loaded_samples[i].seconds);
  }
}

TEST_F(CacheTest, CorruptedFileIsRejectedAndRecomputed) {
  const std::string key = "imb-inputs-v1";
  {
    service::ArtifactCache cache(dir_);
    cache.imb_database(key, &small_db);
  }
  // Truncate the stored artifact to garbage.
  bool corrupted = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "#swapp \"imb-database\" 1\ngarbage record here\n";
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);

  service::ArtifactCache cache(dir_);
  service::ArtifactSource source = service::ArtifactSource::kDisk;
  const auto db = cache.imb_database(key, &small_db, &source);
  EXPECT_EQ(source, service::ArtifactSource::kComputed);
  EXPECT_EQ(cache.stats().corrupt_files, 1u);
  EXPECT_EQ(db->machine_name, machine::make_power5_hydra().name);

  // The rewritten file is healthy again.
  service::ArtifactCache after(dir_);
  service::ArtifactSource source2 = service::ArtifactSource::kComputed;
  after.imb_database(key, &small_db, &source2);
  EXPECT_EQ(source2, service::ArtifactSource::kDisk);
}

TEST_F(CacheTest, EvictionKeepsLiveReferencesValid) {
  service::ArtifactCache cache({}, /*capacity_per_kind=*/2);
  // `sleep_ms` controls the observed recompute cost, which drives the
  // eviction policy: "a" is made unambiguously the cheapest entry, so it is
  // the victim when "c" overflows the tier.
  const auto make = [](int occ, int sleep_ms) {
    return [occ, sleep_ms] {
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      core::SpecIndex index;
      index.target_machine = "t";
      index.base_occupancy = occ;
      index.target_occupancy = occ;
      return index;
    };
  };
  const auto first = cache.spec_index("a", make(1, 0));
  cache.spec_index("b", make(2, 20));
  cache.spec_index("c", make(3, 20));  // evicts the cheapest entry ("a")
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(first->base_occupancy, 1);  // held reference survives eviction

  // "a" is gone from the memory tier: a fresh request recomputes.
  service::ArtifactSource source = service::ArtifactSource::kMemory;
  cache.spec_index("a", make(1, 0), &source);
  EXPECT_EQ(source, service::ArtifactSource::kComputed);
}

TEST_F(CacheTest, CostAwareEvictionSparesExpensiveEntries) {
  service::ArtifactCache cache({}, /*capacity_per_kind=*/2);
  const auto make = [](int occ, int sleep_ms) {
    return [occ, sleep_ms] {
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      core::SpecIndex index;
      index.target_machine = "t";
      index.base_occupancy = occ;
      index.target_occupancy = occ;
      return index;
    };
  };
  // "slow" is the oldest entry — the one plain LRU would evict — but it is
  // orders of magnitude costlier to recompute than the quick entries, so
  // the cost-aware policy sacrifices the cheapest entry "quick-1" instead
  // ("quick-2" sleeps just long enough to dominate quick-1's cost).
  cache.spec_index("slow", make(1, 25));
  cache.spec_index("quick-1", make(2, 0));
  cache.spec_index("quick-2", make(3, 5));
  EXPECT_EQ(cache.stats().evictions, 1u);

  service::ArtifactSource source = service::ArtifactSource::kComputed;
  cache.spec_index("slow", make(1, 25), &source);
  EXPECT_EQ(source, service::ArtifactSource::kMemory);  // survived
  source = service::ArtifactSource::kMemory;
  cache.spec_index("quick-1", make(2, 0), &source);
  EXPECT_EQ(source, service::ArtifactSource::kComputed);  // was the victim
}

TEST_F(CacheTest, DiskCapEvictsOldestFileAtWriteTime) {
  const auto file_for = [this](const std::string& key) {
    return dir_ /
           ("imb-" + service::fingerprint_hex(service::fingerprint(key)) +
            ".swapp");
  };
  // Learn the on-disk size of one artifact, then cap the tier so two fit
  // but three do not.
  std::uintmax_t one = 0;
  {
    service::ArtifactCache probe(dir_);
    probe.imb_database("imb\nkey-a", &small_db);
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      // Only the artifact itself: the miss also leaves a 0-byte .lock file.
      if (entry.path().extension() != ".swapp") continue;
      one = std::filesystem::file_size(entry.path());
    }
  }
  ASSERT_GT(one, 0u);
  std::filesystem::remove_all(dir_);

  service::ArtifactCache cache(dir_, /*capacity_per_kind=*/16,
                               /*max_disk_bytes=*/2 * one + one / 2);
  cache.imb_database("imb\nkey-a", &small_db);
  // Pin the eviction order: "a" is unambiguously the oldest file.
  std::filesystem::last_write_time(
      file_for("imb\nkey-a"),
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  cache.imb_database("imb\nkey-b", &small_db);
  EXPECT_EQ(cache.stats().disk_evictions, 0u);  // two files fit the cap

  cache.imb_database("imb\nkey-c", &small_db);  // third save breaks the cap
  EXPECT_EQ(cache.stats().disk_evictions, 1u);
  EXPECT_FALSE(std::filesystem::exists(file_for("imb\nkey-a")));
  EXPECT_TRUE(std::filesystem::exists(file_for("imb\nkey-b")));
  EXPECT_TRUE(std::filesystem::exists(file_for("imb\nkey-c")));

  // A survivor is still loadable from disk by a fresh cache.
  service::ArtifactCache warm(dir_, 16, 2 * one + one / 2);
  service::ArtifactSource source = service::ArtifactSource::kComputed;
  warm.imb_database("imb\nkey-b", &small_db, &source);
  EXPECT_EQ(source, service::ArtifactSource::kDisk);

  // An artifact larger than the cap still persists: the file just written
  // is never the eviction victim, only its elders are.
  service::ArtifactCache tiny(dir_, 16, /*max_disk_bytes=*/1);
  tiny.imb_database("imb\nkey-d", &small_db);
  EXPECT_TRUE(std::filesystem::exists(file_for("imb\nkey-d")));
  EXPECT_EQ(tiny.stats().disk_evictions, 2u);  // both elders ("b" and "c")
}

TEST_F(CacheTest, ConcurrentCachesComputeAPersistentArtifactOnce) {
  // Two cache instances over one directory stand in for two standalone
  // processes: the per-key flock lock file serialises the miss, and the
  // loser of the race re-probes the disk after acquiring the lock and finds
  // the winner's file instead of recomputing.
  const std::string key = "imb\nlock-key";
  std::atomic<int> computed{0};
  const auto slow_make = [&computed] {
    computed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return small_db();
  };
  service::ArtifactCache first(dir_);
  service::ArtifactCache second(dir_);
  std::shared_ptr<const imb::ImbDatabase> a;
  std::shared_ptr<const imb::ImbDatabase> b;
  std::thread winner([&] { a = first.imb_database(key, slow_make); });
  std::thread loser([&] { b = second.imb_database(key, slow_make); });
  winner.join();
  loser.join();
  EXPECT_EQ(computed.load(), 1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->machine_name, b->machine_name);
  EXPECT_EQ(first.stats().lock_waits + second.stats().lock_waits, 1u);
  // Lock files are bookkeeping, not artifacts: never counted against the
  // disk cap, never evicted (enforce_disk_cap only sees ".swapp").
  bool saw_lock = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    saw_lock |= entry.path().extension() == ".lock";
  }
  EXPECT_TRUE(saw_lock);
}

TEST_F(CacheTest, AgeDecayRetiresStaleExpensiveEntries) {
  const auto make = [](int occ, int sleep_ms) {
    return [occ, sleep_ms] {
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      core::SpecIndex index;
      index.target_machine = "t";
      index.base_occupancy = occ;
      index.target_occupancy = occ;
      return index;
    };
  };
  // With a short half-life, an expensive entry left untouched for many
  // half-lives decays below a fresh cheap entry's score, so it is the
  // eviction victim — a long-lived daemon cannot pin a once-expensive
  // artifact forever.
  {
    service::ArtifactCache cache({}, /*capacity_per_kind=*/2);
    cache.set_eviction_half_life(1.0);
    cache.spec_index("slow", make(1, 25));
    cache.debug_age_entries(60.0);  // 60 half-lives: score ~ 0
    cache.spec_index("quick-1", make(2, 5));
    cache.spec_index("quick-2", make(3, 10));  // overflow: evict "slow"
    EXPECT_EQ(cache.stats().evictions, 1u);

    service::ArtifactSource source = service::ArtifactSource::kMemory;
    cache.spec_index("slow", make(1, 25), &source);
    EXPECT_EQ(source, service::ArtifactSource::kComputed);  // was the victim
    // Recomputing "slow" overflowed again and took the cheapest fresh entry;
    // the dearer of the two quick entries is still resident.
    source = service::ArtifactSource::kComputed;
    cache.spec_index("quick-2", make(3, 10), &source);
    EXPECT_EQ(source, service::ArtifactSource::kMemory);
  }
  // Half-life 0 disables decay: the same sequence spares the expensive
  // entry however stale it is (pure cost-aware eviction).
  {
    service::ArtifactCache cache({}, /*capacity_per_kind=*/2);
    cache.set_eviction_half_life(0.0);
    cache.spec_index("slow", make(1, 25));
    cache.debug_age_entries(60.0);
    cache.spec_index("quick-1", make(2, 5));
    cache.spec_index("quick-2", make(3, 10));
    EXPECT_EQ(cache.stats().evictions, 1u);

    service::ArtifactSource source = service::ArtifactSource::kComputed;
    cache.spec_index("slow", make(1, 25), &source);
    EXPECT_EQ(source, service::ArtifactSource::kMemory);  // pinned by cost
  }
}

TEST_F(CacheTest, CoalescedRunMatchesIndependentRunsAndSharesSearches) {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const auto configure = [&](service::ProjectionService& svc) {
    svc.set_spec_collector(
        [](const machine::Machine& b,
           const std::vector<machine::Machine>& t,
           const std::vector<int>& counts) {
          return collect_spec_library(b, t, counts);
        });
    svc.set_imb_collector([](const machine::Machine& m) {
      return imb::measure_database(m, kCounts, kSizes);
    });
    svc.add_app("LU/C",
                service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                             {4, 8, 16}),
                [base] {
                  return collect_base_data(
                      nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC),
                      base, {4, 8, 16}, {4, 8, 16});
                });
  };
  core::ProjectionOptions shared;
  shared.compute.surrogate_reference_cores = 16;
  const std::vector<std::vector<service::ServiceRequest>> batches = {
      {{"LU/C", target.name, 8, 1, shared}, {"LU/C", target.name, 16, 1, shared}},
      {{"LU/C", target.name, 4, 1, shared}},
  };

  service::ProjectionService svc(base, {target}, {});
  configure(svc);
  const auto coalesced = svc.run_coalesced(batches);
  ASSERT_EQ(coalesced.slices.size(), 2u);
  ASSERT_EQ(coalesced.slices[0].size(), 2u);
  ASSERT_EQ(coalesced.slices[1].size(), 1u);
  ASSERT_EQ(coalesced.combined.results.size(), 3u);
  // One shared surrogate search covers all three requests; run separately
  // the two batches would have searched twice (once each).
  EXPECT_EQ(coalesced.combined.plan.searches, 1u);
  EXPECT_EQ(coalesced.combined.plan.naive_searches, 3u);

  // Each slice is byte-identical to running that batch on its own service.
  for (std::size_t b = 0; b < batches.size(); ++b) {
    service::ProjectionService lone(base, {target}, {});
    configure(lone);
    const auto report = lone.run(batches[b]);
    ASSERT_EQ(report.results.size(), coalesced.slices[b].size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      expect_identical(report.results[i], coalesced.slices[b][i]);
    }
  }
}

TEST_F(CacheTest, ServiceWarmRunPerformsNoSimulation) {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const auto configure = [&](service::ProjectionService& svc) {
    svc.set_spec_collector(
        [](const machine::Machine& b,
           const std::vector<machine::Machine>& t,
           const std::vector<int>& counts) {
          return collect_spec_library(b, t, counts);
        });
    svc.set_imb_collector([](const machine::Machine& m) {
      return imb::measure_database(m, kCounts, kSizes);
    });
    svc.add_app("LU/C",
                service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                             {4, 8, 16}),
                [base] {
                  return collect_base_data(
                      nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC),
                      base, {4, 8, 16}, {4, 8, 16});
                });
  };
  service::ServiceConfig config;
  config.cache_dir = dir_;
  const std::vector<service::ServiceRequest> requests = {
      {"LU/C", target.name, 8, 1, {}},
      {"LU/C", target.name, 16, 1, {}},
  };

  service::ProjectionService cold(base, {target}, config);
  configure(cold);
  const auto cold_report = cold.run(requests);
  EXPECT_FALSE(cold_report.warm());
  ASSERT_EQ(cold_report.results.size(), 2u);

  // The report breaks the run down by phase, in execution order, with
  // non-negative wall times.
  ASSERT_EQ(cold_report.phases.size(), 5u);
  EXPECT_EQ(cold_report.phases[0].phase, "plan");
  EXPECT_EQ(cold_report.phases[1].phase, "spec-library");
  EXPECT_EQ(cold_report.phases[2].phase, "imb-databases");
  EXPECT_EQ(cold_report.phases[3].phase, "app-profiles");
  EXPECT_EQ(cold_report.phases[4].phase, "projection");
  for (const auto& p : cold_report.phases) EXPECT_GE(p.seconds, 0.0);

  service::ProjectionService warm(base, {target}, config);
  configure(warm);
  const auto warm_report = warm.run(requests);
  EXPECT_TRUE(warm_report.warm());
  EXPECT_GE(warm_report.cache.disk_hits, 4u);  // spec + 2 IMB + app
  for (std::size_t i = 0; i < warm_report.results.size(); ++i) {
    expect_identical(warm_report.results[i], cold_report.results[i]);
  }
}

}  // namespace
}  // namespace swapp
