// Tests for the sweep subsystem: machine overrides feeding spec expansion,
// the delta-aware planner's equivalence classes (including a randomised
// partition property), the runner's artifact sharing (one GA search for
// comm-only sweeps, warm reruns with zero simulation), byte-identity of an
// identity sweep point against a direct projection, and the result-document
// round trip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "machine/overrides.h"
#include "nas/nas_app.h"
#include "service/artifact_cache.h"
#include "support/error.h"
#include "sweep/planner.h"
#include "sweep/result.h"
#include "sweep/runner.h"
#include "sweep/sweep.h"

namespace swapp {
namespace {

using experiments::collect_base_data;
using experiments::collect_spec_library;

const std::vector<int> kCounts = {8, 16, 32};
const std::vector<Bytes> kSizes = {512, 16_KiB, 256_KiB};

sweep::SweepSpec lu_spec(int tasks, int reference) {
  sweep::SweepSpec spec;
  spec.app = "LU/C";
  spec.target = machine::make_power6_575().name;
  spec.tasks = tasks;
  spec.threads = 1;
  spec.reference = reference;
  spec.options.compute.surrogate_reference_cores = reference;
  return spec;
}

// --- spec document ----------------------------------------------------------

TEST(SweepSpecDoc, RoundTripsThroughTheDocument) {
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back({"network.link_bandwidth_gbs", sweep::AxisMode::kScale,
                       {0.5, 1.0, 2.0}});
  spec.axes.push_back({"cache.L2.capacity_kib", sweep::AxisMode::kList,
                       {2048.0, 4096.0}});
  std::ostringstream os;
  sweep::write_sweep_spec(os, spec);
  std::istringstream is(os.str());
  const sweep::SweepSpec back = sweep::read_sweep_spec(is);
  EXPECT_EQ(back.app, spec.app);
  EXPECT_EQ(back.target, spec.target);
  EXPECT_EQ(back.tasks, spec.tasks);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.reference, spec.reference);
  EXPECT_EQ(back.options.compute.surrogate_reference_cores, 16);
  ASSERT_EQ(back.axes.size(), 2u);
  EXPECT_EQ(back.axes[0].field, "network.link_bandwidth_gbs");
  EXPECT_EQ(back.axes[0].mode, sweep::AxisMode::kScale);
  EXPECT_EQ(back.axes[0].values, spec.axes[0].values);
  EXPECT_EQ(back.axes[1].mode, sweep::AxisMode::kList);
  EXPECT_EQ(back.axes[1].values, spec.axes[1].values);
  EXPECT_EQ(sweep::point_count(back), 6u);
}

TEST(SweepSpecDoc, RangeAxisResolvesToAnInclusiveGrid) {
  std::istringstream is(
      "#swapp \"swapp-sweep\" v1\n"
      "base \"LU/C\" \"IBM POWER6 575\" 8\n"
      "axis \"memory.node_bandwidth_gbs\" range 10 30 3\n");
  const sweep::SweepSpec spec = sweep::read_sweep_spec(is);
  EXPECT_EQ(spec.threads, 1);
  EXPECT_EQ(spec.reference, 0);
  ASSERT_EQ(spec.axes.size(), 1u);
  // Ranges become explicit lists at parse time, so re-encoding is lossless.
  EXPECT_EQ(spec.axes[0].mode, sweep::AxisMode::kList);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(SweepSpecDoc, RejectsMalformedDocuments) {
  const auto reject = [](const std::string& body) {
    std::istringstream is("#swapp \"swapp-sweep\" v1\n" + body);
    EXPECT_THROW(sweep::read_sweep_spec(is), InvalidArgument) << body;
  };
  reject("");                                           // no base row
  reject("base \"LU/C\" \"M\"\n");                      // short base row
  reject("base \"LU/C\" \"M\" 0\n");                    // tasks < 1
  reject("base \"LU/C\" \"M\" 8 0\n");                  // threads < 1
  reject("base \"LU/C\" \"M\" 8 1 -1\n");               // reference < 0
  reject("base \"LU/C\" \"M\" 8\nbase \"LU/C\" \"M\" 8\n");
  reject("base \"LU/C\" \"M\" 8\naxis \"no.such.field\" list 1\n");
  reject("base \"LU/C\" \"M\" 8\naxis \"os_jitter\" wiggle 1\n");
  reject("base \"LU/C\" \"M\" 8\naxis \"os_jitter\" list\n");
  reject("base \"LU/C\" \"M\" 8\naxis \"os_jitter\" range 0 1\n");
  reject("base \"LU/C\" \"M\" 8\naxis \"os_jitter\" range 0 1 0\n");
  reject("base \"LU/C\" \"M\" 8\n"
         "axis \"os_jitter\" list 0.01\naxis \"os_jitter\" list 0.02\n");
  reject("base \"LU/C\" \"M\" 8\nfrobnicate 1\n");      // unknown record
}

// --- expansion --------------------------------------------------------------

TEST(SweepExpansion, EnumeratesRowMajorWithTheLastAxisFastest) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 0);
  spec.axes.push_back(
      {"network.link_bandwidth_gbs", sweep::AxisMode::kScale, {1.0, 2.0}});
  spec.axes.push_back(
      {"mpi.send_overhead_us", sweep::AxisMode::kScale, {1.0, 2.0, 4.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  ASSERT_EQ(points.size(), 6u);
  const double bw = machine::read_field(target, "network.link_bandwidth_gbs");
  const double us = machine::read_field(target, "mpi.send_overhead_us");
  const double bw_scale[] = {1, 1, 1, 2, 2, 2};
  const double us_scale[] = {1, 2, 4, 1, 2, 4};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    ASSERT_EQ(points[i].coords.size(), 2u);
    EXPECT_EQ(points[i].coords[0].field, "network.link_bandwidth_gbs");
    EXPECT_DOUBLE_EQ(points[i].coords[0].value, bw * bw_scale[i]);
    EXPECT_EQ(points[i].coords[1].field, "mpi.send_overhead_us");
    EXPECT_DOUBLE_EQ(points[i].coords[1].value, us * us_scale[i]);
    EXPECT_EQ(points[i].tasks, 8);
  }
}

TEST(SweepExpansion, IdentityPointsKeepTheNameVariantsGetFingerprints) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 0);
  spec.axes.push_back(
      {"network.link_bandwidth_gbs", sweep::AxisMode::kScale, {0.5, 1.0, 2.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_FALSE(points[0].identity);
  EXPECT_TRUE(points[1].identity);  // scale 1.0 resolves to the current value
  EXPECT_FALSE(points[2].identity);
  EXPECT_EQ(points[1].machine.name, target.name);
  // Variant names carry the 16-hex configuration fingerprint, and distinct
  // configurations get distinct names.
  EXPECT_EQ(points[0].machine.name.rfind(target.name + "~", 0), 0u);
  EXPECT_EQ(points[0].machine.name.size(), target.name.size() + 1 + 16);
  EXPECT_NE(points[0].machine.name, points[2].machine.name);
}

TEST(SweepExpansion, TasksAxisChangesTheTaskCountNotTheMachine) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back({sweep::kTasksAxis, sweep::AxisMode::kList, {4.0, 16.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].tasks, 4);
  EXPECT_EQ(points[1].tasks, 16);
  for (const sweep::SweepPoint& p : points) {
    EXPECT_TRUE(p.identity);
    EXPECT_EQ(p.machine.name, target.name);
  }
  std::istringstream bad_tasks(
      "#swapp \"swapp-sweep\" v1\n"
      "base \"LU/C\" \"IBM POWER6 575\" 8\n"
      "axis \"tasks\" scale 0.01\n");  // resolves below one task
  const sweep::SweepSpec below = sweep::read_sweep_spec(bad_tasks);
  EXPECT_THROW(sweep::expand(below, target), InvalidArgument);
}

// --- planner ----------------------------------------------------------------

TEST(SweepPlanner, CommOnlySweepSharesOneSpecTargetAndOneSearch) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {"network.link_bandwidth_gbs", sweep::AxisMode::kScale, {0.5, 1.0, 2.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  const sweep::SweepPlan plan = sweep::plan_sweep(spec, target, points);
  EXPECT_EQ(plan.points, 3u);
  ASSERT_EQ(plan.compute_classes.size(), 1u);
  EXPECT_TRUE(plan.compute_classes[0].matches_original);
  ASSERT_EQ(plan.searches.size(), 1u);
  EXPECT_EQ(plan.searches[0].search_ck, 16);
  ASSERT_EQ(plan.comm_classes.size(), 3u);
  EXPECT_FALSE(plan.comm_classes[0].matches_original);
  EXPECT_TRUE(plan.comm_classes[1].matches_original);
  // Demands: the request's 8 tasks and the reference's 16, ascending.
  EXPECT_EQ(plan.task_counts, (std::vector<int>{8, 16}));
  EXPECT_EQ(plan.naive_spec_targets, 3u);
  EXPECT_EQ(plan.naive_searches, 3u);
  EXPECT_EQ(plan.naive_imb_databases, 3u);
  EXPECT_EQ(plan.describe(),
            "3 points -> 1 spec target, 1 GA search, 3 imb databases "
            "(naive: 3/3/3)");
}

TEST(SweepPlanner, ComputeOnlySweepSharesOneImbDatabase) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 0);
  spec.axes.push_back(
      {"processor.frequency_ghz", sweep::AxisMode::kScale, {0.5, 1.0, 2.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  const sweep::SweepPlan plan = sweep::plan_sweep(spec, target, points);
  EXPECT_EQ(plan.compute_classes.size(), 3u);
  EXPECT_EQ(plan.searches.size(), 3u);  // one per compute class at ck=8
  ASSERT_EQ(plan.comm_classes.size(), 1u);
  EXPECT_TRUE(plan.comm_classes[0].matches_original);
  EXPECT_EQ(plan.task_counts, (std::vector<int>{8}));  // reference 0: no pin
}

TEST(SweepPlanner, TaskAxisWithReferenceRidesOneSearch) {
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {sweep::kTasksAxis, sweep::AxisMode::kList, {4.0, 8.0, 16.0}});
  const std::vector<sweep::SweepPoint> points = sweep::expand(spec, target);
  const sweep::SweepPlan plan = sweep::plan_sweep(spec, target, points);
  // One compute configuration, one pinned search: every task count rescales
  // off the same surrogate.  Without a reference it is one search per count.
  EXPECT_EQ(plan.compute_classes.size(), 1u);
  ASSERT_EQ(plan.searches.size(), 1u);
  EXPECT_EQ(plan.searches[0].search_ck, 16);
  EXPECT_EQ(plan.task_counts, (std::vector<int>{4, 8, 16}));

  sweep::SweepSpec unpinned = spec;
  unpinned.reference = 0;
  unpinned.options.compute.surrogate_reference_cores = 0;
  const std::vector<sweep::SweepPoint> points2 =
      sweep::expand(unpinned, target);
  const sweep::SweepPlan plan2 = sweep::plan_sweep(unpinned, target, points2);
  EXPECT_EQ(plan2.searches.size(), 3u);
}

TEST(SweepPlannerProperty, ClassesPartitionPointsBySideConfiguration) {
  // Randomised sweeps over the override registry: however the axes mix
  // compute- and comm-side fields, the planner's classes must partition the
  // points exactly by canonical side description — it never merges points
  // whose compute-side (or comm-side) configurations differ, and never
  // splits points whose configurations agree.
  const machine::Machine target = machine::make_power6_575();
  std::vector<machine::OverrideField> usable;
  for (const machine::OverrideField& f : machine::override_fields()) {
    try {
      machine::read_field(target, f.name);
      usable.push_back(f);
    } catch (const InvalidArgument&) {
      // The target lacks this knob (e.g. an absent cache level); a sweep
      // over it would refuse at expansion, so skip it here.
    }
  }
  ASSERT_GE(usable.size(), 8u);

  std::mt19937 rng(0x5eedc0de);
  int checked = 0;
  for (int iteration = 0; iteration < 40 && checked < 25; ++iteration) {
    sweep::SweepSpec spec = lu_spec(8, iteration % 2 == 0 ? 16 : 0);
    std::uniform_int_distribution<std::size_t> pick(0, usable.size() - 1);
    // Gentle multipliers: wild values trip model preconditions (a cache
    // hierarchy must stay ordered) before the planner ever sees them, and
    // the partition property only needs distinct configurations.
    std::uniform_real_distribution<double> scale(0.8, 1.25);
    std::set<std::size_t> chosen;
    while (chosen.size() < 2) chosen.insert(pick(rng));
    for (const std::size_t f : chosen) {
      spec.axes.push_back({usable[f].name, sweep::AxisMode::kScale,
                           {scale(rng), scale(rng)}});
    }
    if (iteration % 3 == 0) {
      spec.axes.push_back(
          {sweep::kTasksAxis, sweep::AxisMode::kList, {4.0, 8.0}});
    }

    std::vector<sweep::SweepPoint> points;
    try {
      points = sweep::expand(spec, target);
    } catch (const Error&) {
      continue;  // the draw violated a model precondition; redraw
    }
    ++checked;
    const sweep::SweepPlan plan = sweep::plan_sweep(spec, target, points);
    ASSERT_EQ(plan.comm_class_of.size(), points.size());
    ASSERT_EQ(plan.search_of.size(), points.size());

    const auto check_partition = [&](const std::vector<sweep::SweepPlan::Class>&
                                         classes,
                                     const auto& describe) {
      std::set<std::size_t> seen;
      for (const sweep::SweepPlan::Class& c : classes) {
        ASSERT_FALSE(c.members.empty());
        for (const std::size_t member : c.members) {
          EXPECT_TRUE(seen.insert(member).second);  // each point exactly once
          // Never merges differing configurations:
          EXPECT_EQ(describe(points[member].machine),
                    describe(points[c.rep].machine));
        }
      }
      EXPECT_EQ(seen.size(), points.size());
      // Never splits equal configurations:
      std::set<std::string> keys;
      for (const sweep::SweepPlan::Class& c : classes) {
        EXPECT_TRUE(keys.insert(describe(points[c.rep].machine)).second);
      }
    };
    check_partition(plan.compute_classes, [](const machine::Machine& m) {
      return machine::describe_compute_side(m);
    });
    check_partition(plan.comm_classes, [](const machine::Machine& m) {
      return machine::describe_comm_side(m);
    });

    // Searches subdivide compute classes by search count and cover every
    // point; members of one search always share a compute configuration.
    std::set<std::size_t> covered;
    for (std::size_t s = 0; s < plan.searches.size(); ++s) {
      const sweep::SweepPlan::Search& search = plan.searches[s];
      const sweep::SweepPlan::Class& cc =
          plan.compute_classes[search.compute_class];
      for (const std::size_t member : search.members) {
        EXPECT_TRUE(covered.insert(member).second);
        EXPECT_EQ(plan.search_of[member], s);
        EXPECT_EQ(machine::describe_compute_side(points[member].machine),
                  machine::describe_compute_side(points[cc.rep].machine));
        const int expected_ck =
            spec.reference > 0 ? spec.reference : points[member].tasks;
        EXPECT_EQ(search.search_ck, expected_ck);
      }
    }
    EXPECT_EQ(covered.size(), points.size());
  }
  EXPECT_GE(checked, 20);  // the redraw escape hatch must stay rare
}

// --- runner -----------------------------------------------------------------

/// Cheap collectors (small grids, LU/C only) mirroring the service tests.
void configure_runner(sweep::SweepRunner& runner) {
  runner.set_spec_collector(
      [](const machine::Machine& b, const std::vector<machine::Machine>& t,
         const std::vector<int>& counts) {
        return collect_spec_library(b, t, counts);
      });
  runner.set_imb_collector([](const machine::Machine& m) {
    return imb::measure_database(m, kCounts, kSizes);
  });
  const machine::Machine base = machine::make_power5_hydra();
  runner.add_app("LU/C",
                 service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                              {4, 8, 16}),
                 [base] {
                   return collect_base_data(
                       nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC),
                       base, {4, 8, 16}, {4, 8, 16});
                 });
}

/// Bitwise equality (operator== on doubles): the sweep promises
/// byte-identity with the direct engine, not closeness.
void expect_identical(const core::ProjectionResult& a,
                      const core::ProjectionResult& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.compute.target_compute, b.compute.target_compute);
  EXPECT_EQ(a.compute.base_compute, b.compute.base_compute);
  EXPECT_EQ(a.compute.gamma, b.compute.gamma);
  EXPECT_EQ(a.comm.base_total(), b.comm.base_total());
  EXPECT_EQ(a.comm.target_total(), b.comm.target_total());
  EXPECT_EQ(a.total_target(), b.total_target());
}

TEST(SweepRunner, IdentityPointIsByteIdenticalToADirectProjection) {
  // A sweep whose only point resolves to the unmodified target must
  // reproduce `swapp project` exactly: same surrogate search, same
  // reference rescale, same communication pipeline.
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {"network.link_bandwidth_gbs", sweep::AxisMode::kScale, {1.0}});
  sweep::SweepRunner runner(machine::make_power5_hydra(),
                            {machine::make_power6_575()}, {});
  configure_runner(runner);
  const sweep::SweepRunner::SweepReport report = runner.run(spec);
  ASSERT_EQ(report.points.size(), 1u);
  ASSERT_TRUE(report.points[0].identity);
  EXPECT_EQ(report.results[0].target, machine::make_power6_575().name);

  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  core::Projector projector(
      base, collect_spec_library(base, {target}, report.plan.task_counts),
      imb::measure_database(base, kCounts, kSizes));
  projector.add_target(target.name,
                       imb::measure_database(target, kCounts, kSizes));
  const core::AppBaseData app = collect_base_data(
      nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC), base,
      {4, 8, 16}, {4, 8, 16});
  expect_identical(report.results[0],
                   projector.project(app, target.name, 8, spec.options));
}

TEST(SweepRunner, CommOnlySweepRunsExactlyOneSearch) {
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {"network.link_bandwidth_gbs", sweep::AxisMode::kScale, {0.5, 1.0, 2.0}});
  sweep::SweepRunner runner(machine::make_power5_hydra(),
                            {machine::make_power6_575()}, {});
  configure_runner(runner);
  const sweep::SweepRunner::SweepReport report = runner.run(spec);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.searches_run, 1u);
  EXPECT_EQ(report.plan.searches.size(), 1u);
  // Comm-only points share the surrogate bitwise; only comm differs.
  for (std::size_t i = 1; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].compute.target_compute,
              report.results[0].compute.target_compute);
    EXPECT_EQ(report.results[i].compute.gamma, report.results[0].compute.gamma);
  }
}

TEST(SweepRunner, WarmRerunPerformsNoSearchAndMatchesBitwise) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("swapp-sweep-warm-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  sweep::SweepConfig config;
  config.cache_dir = dir;
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {"mpi.send_overhead_us", sweep::AxisMode::kScale, {1.0, 4.0}});

  sweep::SweepRunner cold(machine::make_power5_hydra(),
                          {machine::make_power6_575()}, config);
  configure_runner(cold);
  const sweep::SweepRunner::SweepReport first = cold.run(spec);
  EXPECT_EQ(first.searches_run, 1u);
  EXPECT_FALSE(first.warm());

  // A fresh runner over the same directory replays everything from disk:
  // no GA search, no simulation, bitwise-equal projections.
  sweep::SweepRunner warm(machine::make_power5_hydra(),
                          {machine::make_power6_575()}, config);
  configure_runner(warm);
  const sweep::SweepRunner::SweepReport second = warm.run(spec);
  EXPECT_EQ(second.searches_run, 0u);
  EXPECT_TRUE(second.warm());
  EXPECT_GT(warm.cache().stats().disk_hits, 0u);
  ASSERT_EQ(second.results.size(), first.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    expect_identical(second.results[i], first.results[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepRunner, EnforcesThePointCapAndRegistration) {
  sweep::SweepConfig config;
  config.max_points = 2;
  sweep::SweepRunner runner(machine::make_power5_hydra(),
                            {machine::make_power6_575()}, config);
  configure_runner(runner);
  sweep::SweepSpec spec = lu_spec(8, 16);
  spec.axes.push_back(
      {"os_jitter", sweep::AxisMode::kList, {0.01, 0.02, 0.03}});
  EXPECT_THROW(runner.run(spec), InvalidArgument);  // 3 points > cap 2

  sweep::SweepSpec unknown_app = lu_spec(8, 16);
  unknown_app.app = "BT/C";
  EXPECT_THROW(runner.run(unknown_app), NotFound);

  sweep::SweepSpec unknown_target = lu_spec(8, 16);
  unknown_target.target = "Cray XT5";
  EXPECT_THROW(runner.run(unknown_target), NotFound);
}

// --- result document --------------------------------------------------------

TEST(SweepResultDoc, RoundTripsEveryField) {
  sweep::SweepResultDoc doc;
  doc.app = "LU/C";
  doc.target = "IBM POWER6 575";
  doc.tasks = 8;
  doc.threads = 2;
  doc.reference = 16;
  doc.points = 2;
  doc.compute_classes = 1;
  doc.comm_classes = 2;
  doc.searches = 1;
  doc.naive_spec_targets = 2;
  doc.naive_searches = 2;
  doc.naive_imb_databases = 2;
  doc.axes.push_back({"network.link_bandwidth_gbs", "scale", 2});
  doc.rows.push_back({0, "IBM POWER6 575~abc", 8, 1.5, 0.25, 1.75,
                      {{"network.link_bandwidth_gbs", 0.9}}});
  doc.rows.push_back({1, "IBM POWER6 575", 8, 1.5, 0.125, 1.625,
                      {{"network.link_bandwidth_gbs", 1.8}}});
  doc.phases.push_back({"projection", 0.375});
  doc.artifacts.push_back({"spec library (IBM POWER6 575)", "disk"});

  std::ostringstream os;
  sweep::write_sweep_result(os, doc);
  EXPECT_TRUE(sweep::is_sweep_result(os.str()));
  std::istringstream is(os.str());
  const sweep::SweepResultDoc back = sweep::read_sweep_result(is);
  EXPECT_EQ(back.app, doc.app);
  EXPECT_EQ(back.target, doc.target);
  EXPECT_EQ(back.tasks, doc.tasks);
  EXPECT_EQ(back.threads, doc.threads);
  EXPECT_EQ(back.reference, doc.reference);
  EXPECT_EQ(back.points, doc.points);
  EXPECT_EQ(back.compute_classes, doc.compute_classes);
  EXPECT_EQ(back.comm_classes, doc.comm_classes);
  EXPECT_EQ(back.searches, doc.searches);
  EXPECT_EQ(back.naive_spec_targets, doc.naive_spec_targets);
  EXPECT_EQ(back.naive_searches, doc.naive_searches);
  EXPECT_EQ(back.naive_imb_databases, doc.naive_imb_databases);
  ASSERT_EQ(back.axes.size(), 1u);
  EXPECT_EQ(back.axes[0].field, doc.axes[0].field);
  EXPECT_EQ(back.axes[0].mode, doc.axes[0].mode);
  EXPECT_EQ(back.axes[0].count, doc.axes[0].count);
  ASSERT_EQ(back.rows.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.rows[i].index, doc.rows[i].index);
    EXPECT_EQ(back.rows[i].machine, doc.rows[i].machine);
    EXPECT_EQ(back.rows[i].tasks, doc.rows[i].tasks);
    EXPECT_EQ(back.rows[i].compute_s, doc.rows[i].compute_s);
    EXPECT_EQ(back.rows[i].comm_s, doc.rows[i].comm_s);
    EXPECT_EQ(back.rows[i].total_s, doc.rows[i].total_s);
    ASSERT_EQ(back.rows[i].coords.size(), 1u);
    EXPECT_EQ(back.rows[i].coords[0].field, doc.rows[i].coords[0].field);
    EXPECT_EQ(back.rows[i].coords[0].value, doc.rows[i].coords[0].value);
  }
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_EQ(back.phases[0].phase, doc.phases[0].phase);
  EXPECT_EQ(back.phases[0].seconds, doc.phases[0].seconds);
  ASSERT_EQ(back.artifacts.size(), 1u);
  EXPECT_EQ(back.artifacts[0].name, doc.artifacts[0].name);
  EXPECT_EQ(back.artifacts[0].source, doc.artifacts[0].source);

  // The sniffers keep request and result documents apart.
  sweep::SweepSpec spec = lu_spec(8, 16);
  std::ostringstream spec_os;
  sweep::write_sweep_spec(spec_os, spec);
  EXPECT_FALSE(sweep::is_sweep_result(spec_os.str()));
}

}  // namespace
}  // namespace swapp
