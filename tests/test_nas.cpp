// Tests for the NAS Multi-Zone skeletons: zone geometry, load balancing,
// communication structure, and end-to-end behaviour on the base machine.
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "nas/nas_app.h"
#include "nas/zones.h"
#include "support/error.h"

namespace swapp::nas {
namespace {

TEST(Zones, GridSpecsMatchNasReport) {
  // NAS-03-010 geometry (timesteps are rescaled, see grid_spec()).
  const GridSpec bt_c = grid_spec(Benchmark::kBT, ProblemClass::kC);
  EXPECT_EQ(bt_c.gx, 480);
  EXPECT_EQ(bt_c.gy, 320);
  EXPECT_EQ(bt_c.gz, 28);
  EXPECT_EQ(bt_c.zone_count(), 256);

  const GridSpec bt_d = grid_spec(Benchmark::kBT, ProblemClass::kD);
  EXPECT_EQ(bt_d.gx, 1632);
  EXPECT_EQ(bt_d.zone_count(), 1024);

  // LU-MZ is fixed at 4×4 zones in every class.
  EXPECT_EQ(grid_spec(Benchmark::kLU, ProblemClass::kC).zone_count(), 16);
  EXPECT_EQ(grid_spec(Benchmark::kLU, ProblemClass::kD).zone_count(), 16);
}

TEST(Zones, TotalPointsConserved) {
  for (const Benchmark b : {Benchmark::kBT, Benchmark::kSP, Benchmark::kLU}) {
    const Decomposition d(b, ProblemClass::kC, 16);
    double sum = 0.0;
    for (const Zone& z : d.zones()) sum += z.points();
    EXPECT_NEAR(sum, d.spec().total_points(), d.spec().total_points() * 1e-9);
    // Rank totals also conserve points.
    double rank_sum = 0.0;
    for (int r = 0; r < 16; ++r) rank_sum += d.rank_points(r);
    EXPECT_NEAR(rank_sum, sum, sum * 1e-9);
  }
}

TEST(Zones, BtZonesSpanTwentyToOne) {
  const Decomposition d(Benchmark::kBT, ProblemClass::kC, 16);
  double min_pts = 1e300;
  double max_pts = 0.0;
  for (const Zone& z : d.zones()) {
    min_pts = std::min(min_pts, z.points());
    max_pts = std::max(max_pts, z.points());
  }
  EXPECT_NEAR(max_pts / min_pts, 20.0, 1.0);
}

TEST(Zones, SpZonesUniform) {
  const Decomposition d(Benchmark::kSP, ProblemClass::kC, 16);
  const double first = d.zones().front().points();
  for (const Zone& z : d.zones()) EXPECT_NEAR(z.points(), first, 1e-6);
}

TEST(Zones, BtImbalanceGrowsWithRanks) {
  const Decomposition few(Benchmark::kBT, ProblemClass::kC, 16);
  const Decomposition many(Benchmark::kBT, ProblemClass::kC, 128);
  EXPECT_LT(few.imbalance(), 1.1);   // 16 zones/rank balance well
  EXPECT_GT(many.imbalance(), 1.2);  // 2 zones/rank cannot
  // SP stays balanced even at 128 ranks.
  const Decomposition sp(Benchmark::kSP, ProblemClass::kC, 128);
  EXPECT_LT(sp.imbalance(), 1.01);
}

TEST(Zones, MessagesAreCrossRankOnly) {
  const Decomposition d(Benchmark::kBT, ProblemClass::kC, 64);
  EXPECT_FALSE(d.messages().empty());
  for (const auto& m : d.messages()) {
    EXPECT_NE(m.from_rank, m.to_rank);
    EXPECT_GT(m.bytes, 0u);
    EXPECT_EQ(d.owner(m.from_zone), m.from_rank);
    EXPECT_EQ(d.owner(m.to_zone), m.to_rank);
  }
}

TEST(Zones, MessagesAreSymmetric) {
  // Every cross-rank face generates traffic in both directions.
  const Decomposition d(Benchmark::kSP, ProblemClass::kC, 32);
  std::map<std::pair<int, int>, int> pair_counts;
  for (const auto& m : d.messages()) {
    pair_counts[{std::min(m.from_zone, m.to_zone),
                 std::max(m.from_zone, m.to_zone)}] += 1;
  }
  for (const auto& [zones, count] : pair_counts) EXPECT_EQ(count, 2);
}

TEST(Zones, RejectsTooManyRanks) {
  EXPECT_THROW(Decomposition(Benchmark::kLU, ProblemClass::kC, 17),
               InvalidArgument);
  EXPECT_THROW(Decomposition(Benchmark::kBT, ProblemClass::kC, 257),
               InvalidArgument);
}

TEST(NasApp, NamesAndLimits) {
  EXPECT_EQ(NasApp(Benchmark::kBT, ProblemClass::kC).name(), "BT-MZ.C");
  EXPECT_EQ(NasApp(Benchmark::kLU, ProblemClass::kD).max_ranks(), 16);
  EXPECT_EQ(NasApp(Benchmark::kSP, ProblemClass::kD).max_ranks(), 1024);
}

TEST(NasApp, RunProducesSaneProfile) {
  const NasApp app(Benchmark::kSP, ProblemClass::kC);
  const auto world = app.run(machine::make_power5_hydra(), 16);
  const mpi::MpiProfile& p = world->profile();
  EXPECT_EQ(p.ranks, 16);
  EXPECT_GT(world->wall_time(), 0.0);
  // The paper's structure: nonblocking exchange + Bcast + Reduce, no
  // blocking point-to-point.
  EXPECT_TRUE(p.has_routine(mpi::Routine::kWaitall));
  EXPECT_TRUE(p.has_routine(mpi::Routine::kBcast));
  EXPECT_TRUE(p.has_routine(mpi::Routine::kReduce));
  EXPECT_FALSE(p.has_routine(mpi::Routine::kSend));
  EXPECT_FALSE(p.has_routine(mpi::Routine::kSendrecv));
  // Compute dominates at 16 ranks (Table 1: a few percent communication).
  EXPECT_LT(p.communication_fraction(), 0.10);
}

TEST(NasApp, BtCommunicationFractionGrowsWithRanks) {
  // Table 1's headline trend: BT-MZ class C communication grows from a few
  // percent at 16 tasks to tens of percent at 128 (load imbalance).
  const NasApp app(Benchmark::kBT, ProblemClass::kC);
  const machine::Machine base = machine::make_power5_hydra();
  const double at16 = app.run(base, 16)->profile().communication_fraction();
  const double at128 = app.run(base, 128)->profile().communication_fraction();
  EXPECT_LT(at16, 0.05);
  EXPECT_GT(at128, 0.25);
}

TEST(NasApp, ClassDCommunicatesLessThanClassC) {
  const machine::Machine base = machine::make_power5_hydra();
  const double c = NasApp(Benchmark::kBT, ProblemClass::kC)
                       .run(base, 128)->profile().communication_fraction();
  const double d = NasApp(Benchmark::kBT, ProblemClass::kD)
                       .run(base, 128)->profile().communication_fraction();
  EXPECT_LT(d, c);
}

TEST(NasApp, CountersScaleWithProblemClass) {
  const machine::Machine base = machine::make_power5_hydra();
  const auto c = NasApp(Benchmark::kSP, ProblemClass::kC).run(base, 16);
  const auto d = NasApp(Benchmark::kSP, ProblemClass::kD).run(base, 16);
  EXPECT_GT(d->counters().instructions, 5.0 * c->counters().instructions);
}

TEST(NasApp, DeterministicWallTime) {
  const NasApp app(Benchmark::kLU, ProblemClass::kC);
  const machine::Machine base = machine::make_power5_hydra();
  EXPECT_DOUBLE_EQ(app.run(base, 16)->wall_time(),
                   app.run(base, 16)->wall_time());
}

}  // namespace
}  // namespace swapp::nas
