// Tests for the parallel execution substrate (support/parallel.h): pool
// semantics — every index exactly once, result ordering, exception
// propagation, serial degradation, nesting — and the determinism guarantee
// the GA relies on: find_surrogate is bit-identical for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/ga.h"
#include "machine/machine.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp {
namespace {

/// Restores the default pool size when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(Parallel, ExecutesEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  set_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, MapPreservesInputOrder) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::vector<int> items(257);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int>(i);
  }
  const std::vector<int> squares =
      parallel_map(items, [](const int x) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], items[i] * items[i]);
  }
}

TEST(Parallel, PropagatesWorkItemExceptions) {
  ThreadCountGuard guard;
  set_thread_count(4);
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("item 37 failed");
                              }
                            }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> count{0};
  parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(Parallel, OneThreadRunsInlineOnTheCaller) {
  ThreadCountGuard guard;
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  bool region_flag_seen = false;
  parallel_for(64, [&](std::size_t) {
    all_inline = all_inline && (std::this_thread::get_id() == caller);
    region_flag_seen = region_flag_seen || in_parallel_region();
  });
  EXPECT_TRUE(all_inline);
  // Serial degradation is the plain loop: no region bookkeeping at all.
  EXPECT_FALSE(region_flag_seen);
}

TEST(Parallel, SingleItemRunsInlineEvenWithManyThreads) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(Parallel, NestedRegionsDegradeToSerial) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::atomic<int> inner_total{0};
  parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // Nested region: must complete serially instead of deadlocking.
    parallel_for(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

// ---------------------------------------------------------------------------
// Chunked index claiming
// ---------------------------------------------------------------------------

TEST(ParallelChunked, EveryIndexExactlyOnceAcrossThreadAndChunkConfigs) {
  ThreadCountGuard guard;
  // chunk 0 = auto-sizing; 64 > n exercises one executor claiming the whole
  // range in a single run.
  const std::size_t chunks[] = {0, 1, 4, 64};
  const std::size_t threads[] = {1, 3, 16};
  constexpr std::size_t kN = 41;  // odd, not a chunk multiple, smaller than 64
  for (const std::size_t t : threads) {
    set_thread_count(t);
    for (const std::size_t chunk : chunks) {
      std::vector<std::atomic<int>> hits(kN);
      parallel_for_chunked(kN, chunk, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "threads=" << t << " chunk=" << chunk << " index=" << i;
      }
    }
  }
}

TEST(ParallelChunked, LargeJobAutoChunksWithFullCoverage) {
  ThreadCountGuard guard;
  // 10000 items over 4 threads auto-sizes runs well above 1; every index
  // must still execute exactly once.
  set_thread_count(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelChunked, MapResultsIdenticalAcrossConfigs) {
  ThreadCountGuard guard;
  std::vector<int> items(513);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int>(i);
  }
  const auto triple = [](const int x) { return 3 * x + 1; };
  set_thread_count(1);
  const std::vector<int> serial = parallel_map(items, triple);
  for (const std::size_t t : {3u, 16u}) {
    set_thread_count(t);
    EXPECT_EQ(parallel_map(items, triple), serial) << "threads=" << t;
  }
}

TEST(ParallelChunked, PropagatesExceptionsFromInsideAChunk) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_THROW(parallel_for_chunked(100, 8,
                                    [](std::size_t i) {
                                      if (i == 42) {
                                        throw std::runtime_error("item 42");
                                      }
                                    }),
               std::runtime_error);
  // The pool must stay usable after an aborted chunked region.
  std::atomic<int> count{0};
  parallel_for_chunked(10, 4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, SetThreadCountInsideRegionIsRejected) {
  ThreadCountGuard guard;
  set_thread_count(2);
  EXPECT_THROW(parallel_for(4, [](std::size_t) { set_thread_count(3); }),
               InvalidArgument);
}

TEST(Parallel, ThreadCountHonoursOverride) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

TEST(Parallel, ParseThreadCountAcceptsPositiveIntegers) {
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("4"), 4u);
  EXPECT_EQ(parse_thread_count("128"), 128u);
}

TEST(Parallel, ParseThreadCountRejectsBadValues) {
  // SWAPP_THREADS typos must fail loudly, not fall back to a default.
  EXPECT_THROW(parse_thread_count(""), InvalidArgument);
  EXPECT_THROW(parse_thread_count("0"), InvalidArgument);
  EXPECT_THROW(parse_thread_count("-2"), InvalidArgument);
  EXPECT_THROW(parse_thread_count("four"), InvalidArgument);
  EXPECT_THROW(parse_thread_count("4x"), InvalidArgument);
  EXPECT_THROW(parse_thread_count("2.5"), InvalidArgument);
  EXPECT_THROW(parse_thread_count(" 8"), InvalidArgument);
  try {
    parse_thread_count("banana");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << "error message should quote the offending value";
  }
}

// ---------------------------------------------------------------------------
// GA determinism across thread counts
// ---------------------------------------------------------------------------

machine::PmuCounters counters_with(double l3_per_instr, double mem_per_instr) {
  machine::PmuCounters c;
  c.instructions = 1e9;
  c.cycles = 1e9;
  c.seconds = 1.0;
  c.cpi_completion = 0.3;
  c.cpi_stall_fp = 0.2;
  c.cpi_stall_mem = l3_per_instr * 90.0 * 0.1 + mem_per_instr * 230.0 * 0.1;
  c.fp_per_instr = 0.4;
  c.data_from_l2_per_instr = 0.002;
  c.data_from_l3_per_instr = l3_per_instr;
  c.data_from_local_mem_per_instr = mem_per_instr;
  c.memory_bandwidth_gbs = mem_per_instr * 50.0;
  return c;
}

core::SpecData synthetic_spec() {
  core::SpecData spec;
  const auto add = [&](const std::string& name, double stall, Seconds base) {
    machine::PmuCounters c = counters_with(stall * 0.01, stall * 0.005);
    c.cpi_stall_mem = stall;
    spec.names.push_back(name);
    spec.base_counters_st.emplace(name, c);
    machine::PmuCounters smt = c;
    smt.cpi_completion *= 1.4;
    spec.base_counters_smt.emplace(name, smt);
    spec.base_runtime.emplace(name, base);
  };
  add("fast", 0.1, 50.0);
  add("slow", 4.0, 200.0);
  add("mid", 1.5, 100.0);
  add("wide", 2.4, 140.0);
  return spec;
}

core::Surrogate search(const core::SpecData& spec) {
  const machine::PmuCounters app = spec.base_counters_st.at("slow");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("slow");
  core::GroupWeights weights;
  weights.weight.fill(1.0 / machine::kMetricGroupCount);
  core::GaOptions options;  // default: 5 restarts — exercises the fan-out
  options.generations = 60;
  options.seed = 4242;
  return core::find_surrogate(app, app_smt, weights, spec, 100.0, options);
}

void expect_identical(const core::Surrogate& a, const core::Surrogate& b) {
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  EXPECT_DOUBLE_EQ(a.metric_distance, b.metric_distance);
  EXPECT_DOUBLE_EQ(a.runtime_error, b.runtime_error);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].benchmark, b.terms[i].benchmark);
    EXPECT_DOUBLE_EQ(a.terms[i].weight, b.terms[i].weight);
  }
}

TEST(GaDeterminism, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const core::SpecData spec = synthetic_spec();

  set_thread_count(1);
  const core::Surrogate serial = search(spec);
  const core::Surrogate serial_again = search(spec);
  expect_identical(serial, serial_again);  // repeatable at a fixed seed

  set_thread_count(4);
  const core::Surrogate pooled = search(spec);
  expect_identical(serial, pooled);

  set_thread_count(2);
  const core::Surrogate pooled2 = search(spec);
  expect_identical(serial, pooled2);

  // More threads than restarts: workers race for few items, chunked
  // claiming degrades to runs of 1, results still bit-identical.
  set_thread_count(16);
  const core::Surrogate pooled16 = search(spec);
  expect_identical(serial, pooled16);
}

TEST(GaDeterminism, StagnationExitIsDeterministicAndOptIn) {
  ThreadCountGuard guard;
  const core::SpecData spec = synthetic_spec();
  const machine::PmuCounters app = spec.base_counters_st.at("mid");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("mid");
  core::GroupWeights weights;
  weights.weight.fill(1.0 / machine::kMetricGroupCount);
  core::GaOptions options;
  options.seed = 99;
  options.stagnation_limit = 10;

  set_thread_count(1);
  const core::Surrogate a =
      core::find_surrogate(app, app_smt, weights, spec, 100.0, options);
  set_thread_count(4);
  const core::Surrogate b =
      core::find_surrogate(app, app_smt, weights, spec, 100.0, options);
  expect_identical(a, b);
}

}  // namespace
}  // namespace swapp
