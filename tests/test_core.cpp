// Unit tests for the SWAPP core: ACSM, CCSM, metric ranking, and the GA
// surrogate search (on synthetic, fully-controlled inputs).
#include <gtest/gtest.h>

#include <cmath>

#include "core/acsm.h"
#include "core/ccsm.h"
#include "core/ga.h"
#include "core/profiles.h"
#include "core/ranking.h"
#include "machine/machine.h"
#include "support/error.h"

namespace swapp::core {
namespace {

machine::PmuCounters counters_with(double l3_per_instr, double mem_per_instr,
                                   double instructions = 1e9) {
  machine::PmuCounters c;
  c.instructions = instructions;
  c.cycles = instructions;
  c.seconds = 1.0;
  c.cpi_completion = 0.3;
  c.cpi_stall_fp = 0.2;
  c.cpi_stall_mem = l3_per_instr * 90.0 * 0.1 + mem_per_instr * 230.0 * 0.1;
  c.fp_per_instr = 0.4;
  c.data_from_l2_per_instr = 0.002;
  c.data_from_l3_per_instr = l3_per_instr;
  c.data_from_local_mem_per_instr = mem_per_instr;
  c.memory_bandwidth_gbs = mem_per_instr * 50.0;
  return c;
}

TEST(Acsm, FindsHyperScalingPoint) {
  // data-from-L3 halves with each doubling: m(C) = 0.08·(16/C).
  std::map<int, machine::PmuCounters> samples;
  for (const int c : {16, 32, 64}) {
    samples.emplace(c, counters_with(0.08 * 16.0 / c, 0.001 * 16.0 / c));
  }
  const AcsmModel acsm(samples, machine::make_power5_hydra());
  const double ch = acsm.hyper_scaling_cores();
  // Crossing at 5% of peak: 0.08·16/C = 0.004 → C = 320.
  EXPECT_NEAR(ch, 320.0, 16.0);
}

TEST(Acsm, FlatMetricsNeverCross) {
  std::map<int, machine::PmuCounters> samples;
  for (const int c : {16, 32, 64}) samples.emplace(c, counters_with(0.05, 0.0));
  const AcsmModel acsm(samples, machine::make_power5_hydra());
  EXPECT_TRUE(std::isinf(acsm.hyper_scaling_cores()));
}

TEST(Acsm, ExactSamplesReturnedVerbatim) {
  std::map<int, machine::PmuCounters> samples;
  samples.emplace(16, counters_with(0.08, 0.004));
  samples.emplace(32, counters_with(0.04, 0.002));
  const AcsmModel acsm(samples, machine::make_power5_hydra());
  EXPECT_FALSE(acsm.needs_extrapolation(16));
  EXPECT_DOUBLE_EQ(acsm.counters_at(16).data_from_l3_per_instr, 0.08);
}

TEST(Acsm, ExtrapolatesReloadsDownward) {
  std::map<int, machine::PmuCounters> samples;
  for (const int c : {16, 32, 64}) {
    samples.emplace(c, counters_with(0.08 * 16.0 / c, 0.004 * 16.0 / c));
  }
  const AcsmModel acsm(samples, machine::make_power5_hydra());
  EXPECT_TRUE(acsm.needs_extrapolation(128));
  const machine::PmuCounters at128 = acsm.counters_at(128);
  EXPECT_NEAR(at128.data_from_l3_per_instr, 0.01, 0.002);
  // Memory stall CPI shrinks along with the reload metrics.
  EXPECT_LT(at128.cpi_stall_mem, samples.at(64).cpi_stall_mem);
}

TEST(Ccsm, GammaFromExactProfiles) {
  std::map<int, Seconds> compute = {{16, 160.0}, {32, 80.0}, {64, 40.0}};
  const CcsmModel ccsm(compute);
  // Profiled pair: exact ratio.
  EXPECT_DOUBLE_EQ(ccsm.gamma(16, 64), 0.25);
  // Extrapolated: the fitted strong-scaling law continues 1/C.
  EXPECT_NEAR(ccsm.gamma(16, 128), 0.125, 0.01);
  EXPECT_NEAR(ccsm.predict(128), 20.0, 2.0);
}

TEST(Ccsm, SerialFractionFlattensScaling) {
  std::map<int, Seconds> compute;
  for (const int c : {8, 16, 32, 64}) {
    compute[c] = 800.0 / c + 10.0;  // 10 s serial part
  }
  const CcsmModel ccsm(compute);
  EXPECT_GT(ccsm.predict(512), 10.0);  // never below the serial floor
  EXPECT_NEAR(ccsm.predict(256), 800.0 / 256 + 10.0, 1.5);
}

TEST(Ccsm, ReliabilityGuard) {
  std::map<int, Seconds> compute = {{16, 100.0}, {32, 50.0}};
  const CcsmModel ccsm(compute);
  EXPECT_TRUE(ccsm.gamma_reliable(32, 64.0));    // inside profiled range
  EXPECT_TRUE(ccsm.gamma_reliable(48, 64.0));    // before Ch
  EXPECT_FALSE(ccsm.gamma_reliable(128, 64.0));  // beyond both
}

TEST(Ranking, WeightsSumToOneAndRankByContribution) {
  // Memory-dominated counters must rank G2/G5 above G3/G4.
  machine::PmuCounters c = counters_with(0.01, 0.02);
  c.cpi_stall_mem = 3.0;
  const GroupWeights w = base_group_weights(c, machine::make_power5_hydra());
  double sum = 0.0;
  for (const double x : w.weight) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const auto ranks = w.ranks();
  // Latency-weighted reloads (G5) dominate, with the stall group close
  // behind; both must outrank FP and translation.
  EXPECT_EQ(ranks[static_cast<std::size_t>(
                machine::MetricGroup::kDataReloads)], 1);
  EXPECT_LE(ranks[static_cast<std::size_t>(
                machine::MetricGroup::kCpiStall)], 2);
  EXPECT_GT(ranks[static_cast<std::size_t>(
                machine::MetricGroup::kTranslation)], 3);
}

TEST(Ranking, RanksArePermutation) {
  const GroupWeights w =
      base_group_weights(counters_with(0.02, 0.004),
                         machine::make_power5_hydra());
  std::array<bool, machine::kMetricGroupCount> seen{};
  for (const int r : w.ranks()) {
    ASSERT_GE(r, 1);
    ASSERT_LE(r, static_cast<int>(machine::kMetricGroupCount));
    seen[static_cast<std::size_t>(r - 1)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

SpecData synthetic_spec() {
  // Three synthetic benchmarks with orthogonal signatures:
  //   fast  — low CPI, speeds up 4× on the target;
  //   slow  — memory-heavy, speeds up 1.5×;
  //   mid   — in between, 2.5×.
  SpecData spec;
  const auto add = [&](const std::string& name, double stall, Seconds base,
                       Seconds target) {
    machine::PmuCounters c = counters_with(stall * 0.01, stall * 0.005);
    c.cpi_stall_mem = stall;
    spec.names.push_back(name);
    spec.base_counters_st.emplace(name, c);
    machine::PmuCounters smt = c;
    smt.cpi_completion *= 1.4;
    spec.base_counters_smt.emplace(name, smt);
    spec.base_runtime.emplace(name, base);
    spec.target_runtime["target"].emplace(name, target);
  };
  add("fast", 0.1, 50.0, 12.5);
  add("slow", 4.0, 200.0, 133.0);
  add("mid", 1.5, 100.0, 40.0);
  return spec;
}

TEST(Ga, RecoversExactMemberMatch) {
  const SpecData spec = synthetic_spec();
  // The application is exactly "mid" with twice the runtime.
  machine::PmuCounters app = spec.base_counters_st.at("mid");
  machine::PmuCounters app_smt = spec.base_counters_smt.at("mid");
  GroupWeights weights;
  weights.weight.fill(1.0 / machine::kMetricGroupCount);
  GaOptions options;
  options.seed = 1234;
  const Surrogate s =
      find_surrogate(app, app_smt, weights, spec, 200.0, options);
  // Base-runtime consistency holds by construction.
  EXPECT_NEAR(s.base_runtime(spec), 200.0, 1.0);
  // Projection lands near "mid"'s speedup (2.5×): 200/2.5 = 80.
  EXPECT_NEAR(s.project_runtime(spec, "target"), 80.0, 12.0);
}

TEST(Ga, DeterministicForSeed) {
  const SpecData spec = synthetic_spec();
  const machine::PmuCounters app = spec.base_counters_st.at("slow");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("slow");
  GroupWeights weights;
  weights.weight.fill(1.0 / machine::kMetricGroupCount);
  GaOptions options;
  options.seed = 77;
  const Surrogate a =
      find_surrogate(app, app_smt, weights, spec, 100.0, options);
  const Surrogate b =
      find_surrogate(app, app_smt, weights, spec, 100.0, options);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].benchmark, b.terms[i].benchmark);
    EXPECT_DOUBLE_EQ(a.terms[i].weight, b.terms[i].weight);
  }
}

TEST(Ga, RespectsSparsityCap) {
  const SpecData spec = synthetic_spec();
  const machine::PmuCounters app = spec.base_counters_st.at("mid");
  GroupWeights weights;
  weights.weight.fill(1.0 / machine::kMetricGroupCount);
  GaOptions options;
  options.max_terms = 2;
  options.restarts = 1;
  const Surrogate s = find_surrogate(app, spec.base_counters_smt.at("mid"),
                                     weights, spec, 100.0, options);
  EXPECT_LE(s.terms.size(), 2u);
}

TEST(SpecLibrary, ViewSelectsOccupancy) {
  SpecLibrary lib;
  lib.names = {"b"};
  lib.base_cores_per_node = 16;
  machine::PmuCounters c16 = counters_with(0.01, 0.001);
  machine::PmuCounters c4 = counters_with(0.04, 0.004);
  lib.base_counters_st[16].emplace("b", c16);
  lib.base_counters_st[4].emplace("b", c4);
  lib.base_counters_smt[16].emplace("b", c16);
  lib.base_counters_smt[4].emplace("b", c4);
  lib.base_runtime[16].emplace("b", 10.0);
  lib.base_runtime[4].emplace("b", 6.0);
  lib.targets["t"].cores_per_node = 4;
  lib.targets["t"].runtime[4].emplace("b", 3.0);

  EXPECT_EQ(SpecLibrary::occupancy_for(128, 16), 16);
  EXPECT_EQ(SpecLibrary::occupancy_for(8, 16), 8);

  const SpecData exact = lib.view(16, "t", 4);
  EXPECT_DOUBLE_EQ(exact.base_runtime.at("b"), 10.0);
  EXPECT_DOUBLE_EQ(exact.runtime_on("t", "b"), 3.0);
  // Nearest occupancy picked when exact one is absent.
  const SpecData nearest = lib.view(6, "t", 4);
  EXPECT_DOUBLE_EQ(nearest.base_runtime.at("b"), 6.0);
  EXPECT_THROW(lib.view(16, "unknown", 4), NotFound);
}

}  // namespace
}  // namespace swapp::core
