// Tests for the hybrid MPI/OpenMP extension (paper §6 future work):
// thread-level compute model, hybrid placement, and hybrid projection.
#include <gtest/gtest.h>

#include "experiments/lab.h"
#include "machine/machine.h"
#include "mpi/world.h"
#include "nas/nas_app.h"
#include "support/error.h"
#include "support/stats.h"
#include "workload/compute_model.h"

namespace swapp {
namespace {

workload::Kernel solver_kernel() {
  workload::Kernel k = nas::kernel_for(nas::Benchmark::kSP);
  return k;
}

TEST(HybridCompute, ThreadsSpeedUpTheParallelPart) {
  const machine::Machine m = machine::make_power5_hydra();
  const auto time_with = [&](int threads) {
    workload::ComputeContext ctx;
    ctx.active_cores_per_node = 16;  // node fully occupied either way
    ctx.omp_threads = threads;
    return workload::evaluate(solver_kernel(), 1e6, m, ctx).seconds;
  };
  const Seconds t1 = time_with(1);
  const Seconds t2 = time_with(2);
  const Seconds t4 = time_with(4);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  // Speedup can exceed the thread count (per-thread footprints drop into
  // cache — the same hyper-scaling ACSM detects) but stays bounded.
  EXPECT_GT(t4, t1 / 10.0);
}

TEST(HybridCompute, SerialFractionBoundsTheSpeedup) {
  const machine::Machine m = machine::make_power5_hydra();
  workload::ComputeContext ctx;
  ctx.active_cores_per_node = 16;
  ctx.omp.serial_fraction = 0.25;
  ctx.omp_threads = 16;
  const Seconds t16 = workload::evaluate(solver_kernel(), 1e6, m, ctx).seconds;
  ctx.omp_threads = 1;
  const Seconds t1 = workload::evaluate(solver_kernel(), 1e6, m, ctx).seconds;
  // With a 25% serial fraction the speedup can never reach 4x.
  EXPECT_GT(t16, t1 / 4.0);
  EXPECT_LT(t16, t1);
}

TEST(HybridCompute, ForkJoinOverheadCharged) {
  const machine::Machine m = machine::make_power5_hydra();
  workload::ComputeContext cheap;
  cheap.omp_threads = 4;
  cheap.omp.fork_join_overhead = 0.0;
  workload::ComputeContext costly = cheap;
  costly.omp.fork_join_overhead = 1e-3;
  const Seconds a = workload::evaluate(solver_kernel(), 1e5, m, cheap).seconds;
  const Seconds b = workload::evaluate(solver_kernel(), 1e5, m, costly).seconds;
  EXPECT_NEAR(b - a, costly.omp.regions_per_invocation * 1e-3, 1e-9);
}

TEST(HybridCompute, CountersCoverAllThreads) {
  const machine::Machine m = machine::make_power5_hydra();
  workload::ComputeContext st;
  st.omp_threads = 1;
  workload::ComputeContext hy;
  hy.omp_threads = 4;
  hy.omp.serial_fraction = 0.0;
  const auto a = workload::evaluate(solver_kernel(), 1e6, m, st);
  const auto b = workload::evaluate(solver_kernel(), 1e6, m, hy);
  // The rank executes the same total instructions regardless of threading.
  EXPECT_NEAR(b.counters.instructions, a.counters.instructions,
              a.counters.instructions * 1e-6);
}

TEST(HybridWorld, PlacementSpreadsRanksAcrossNodes) {
  const machine::Machine m = machine::make_power5_hydra();  // 16 cores/node
  mpi::World pure(m, 16);
  EXPECT_EQ(pure.ranks_per_node(), 16);
  EXPECT_EQ(pure.node_of(15), 0);

  mpi::World::Options options;
  options.threads_per_rank = 4;
  mpi::World hybrid(m, 16, options);
  EXPECT_EQ(hybrid.ranks_per_node(), 4);  // 4 ranks × 4 threads per node
  EXPECT_EQ(hybrid.node_of(3), 0);
  EXPECT_EQ(hybrid.node_of(4), 1);
  EXPECT_EQ(hybrid.node_of(15), 3);
}

TEST(HybridWorld, RejectsOversizedThreadCounts) {
  const machine::Machine bgp = machine::make_bluegene_p();  // 4 cores/node
  mpi::World::Options options;
  options.threads_per_rank = 8;
  EXPECT_THROW(mpi::World(bgp, 4, options), InvalidArgument);
}

TEST(HybridNas, HybridRunFasterPerRankButUsesMoreNodes) {
  const machine::Machine m = machine::make_power5_hydra();
  const nas::NasApp app(nas::Benchmark::kSP, nas::ProblemClass::kC);
  const auto pure = app.run(m, 16);
  const auto hybrid = app.run(m, 16, machine::SmtMode::kSingleThread, 4);
  // Same ranks, 4 threads each: each rank's sweep is parallelised (cache
  // effects may push the per-rank speedup past the thread count).
  EXPECT_LT(hybrid->wall_time(), pure->wall_time());
  EXPECT_GT(hybrid->wall_time(), pure->wall_time() / 10.0);
}

TEST(HybridNas, DeterministicHybridRuns) {
  const machine::Machine m = machine::make_power5_hydra();
  const nas::NasApp app(nas::Benchmark::kLU, nas::ProblemClass::kC);
  const auto a = app.run(m, 8, machine::SmtMode::kSingleThread, 2);
  const auto b = app.run(m, 8, machine::SmtMode::kSingleThread, 2);
  EXPECT_DOUBLE_EQ(a->wall_time(), b->wall_time());
}

TEST(HybridProjection, EndToEndWithinReason) {
  // Full hybrid workflow: profile SP-MZ with 2 threads/rank on the base,
  // project onto POWER6, compare with a hybrid ground-truth run.
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const nas::NasApp app(nas::Benchmark::kSP, nas::ProblemClass::kC);
  constexpr int kThreads = 2;
  constexpr int kTasks = 16;

  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  data.threads_per_rank = kThreads;
  for (const int c : {8, 16}) {
    const auto st = app.run(base, c, machine::SmtMode::kSingleThread, kThreads);
    data.mpi_profiles.emplace(c, st->profile());
    data.mean_compute.emplace(c, st->profile().mean_compute());
    data.counters_st.emplace(c, st->counters());
    const auto smt = app.run(base, c, machine::SmtMode::kSmt, kThreads);
    data.counters_smt.emplace(c, smt->counters());
  }

  const core::SpecLibrary spec = experiments::collect_spec_library(
      base, {target}, {kTasks * kThreads, 8 * kThreads});
  core::Projector projector(base, spec,
                            imb::measure_database(base, {8, 16}, {512, 32_KiB}));
  projector.add_target(target.name,
                       imb::measure_database(target, {8, 16}, {512, 32_KiB}));

  const core::ProjectionResult r = projector.project(data, target.name, kTasks);
  const auto truth =
      app.run(target, kTasks, machine::SmtMode::kSingleThread, kThreads);
  EXPECT_GT(r.total_target(), 0.0);
  EXPECT_LT(percent_error(r.total_target(), truth->wall_time()), 40.0);
}

}  // namespace
}  // namespace swapp
