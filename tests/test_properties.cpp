// Cross-module property sweeps (parameterized gtest): invariants that must
// hold for every machine, benchmark, rank count, and routine combination.
#include <gtest/gtest.h>

#include <cmath>

#include "imb/suite.h"
#include "machine/machine.h"
#include "mpi/collectives.h"
#include "nas/zones.h"
#include "support/stats.h"

namespace swapp {
namespace {

// --- NAS decompositions -----------------------------------------------------

class DecompositionProperty
    : public ::testing::TestWithParam<
          std::tuple<nas::Benchmark, nas::ProblemClass, int>> {};

TEST_P(DecompositionProperty, InvariantsHold) {
  const auto [bench, cls, ranks] = GetParam();
  const nas::Decomposition d(bench, cls, ranks);

  // 1. Point conservation across ranks.
  double rank_sum = 0.0;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_GT(d.rank_points(r), 0.0);  // no starved rank
    rank_sum += d.rank_points(r);
  }
  EXPECT_NEAR(rank_sum, d.spec().total_points(),
              d.spec().total_points() * 1e-9);

  // 2. Imbalance bounded: perfect for SP/LU, bounded for BT's geometric
  //    zones even at the highest rank counts.
  const double imbalance = d.imbalance();
  EXPECT_GE(imbalance, 1.0 - 1e-9);
  if (bench == nas::Benchmark::kBT) {
    EXPECT_LT(imbalance, 4.0);
  } else {
    EXPECT_LT(imbalance, 1.05);
  }

  // 3. Message list: symmetric, cross-rank, positive sizes, unique tags per
  //    direction.
  std::set<int> tags;
  for (const auto& m : d.messages()) {
    EXPECT_NE(m.from_rank, m.to_rank);
    EXPECT_GT(m.bytes, 0u);
    EXPECT_TRUE(tags.insert(m.tag).second) << "duplicate tag " << m.tag;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BtSpGrid, DecompositionProperty,
    ::testing::Combine(::testing::Values(nas::Benchmark::kBT,
                                         nas::Benchmark::kSP),
                       ::testing::Values(nas::ProblemClass::kC,
                                         nas::ProblemClass::kD),
                       ::testing::Values(16, 32, 64, 128, 256)));

INSTANTIATE_TEST_SUITE_P(
    LuGrid, DecompositionProperty,
    ::testing::Combine(::testing::Values(nas::Benchmark::kLU),
                       ::testing::Values(nas::ProblemClass::kC,
                                         nas::ProblemClass::kD),
                       ::testing::Values(2, 4, 8, 16)));

// --- Collective cost model ---------------------------------------------------

class CollectiveCostProperty
    : public ::testing::TestWithParam<std::tuple<int, mpi::Routine>> {};

TEST_P(CollectiveCostProperty, MonotoneInRanksAndBytes) {
  const auto [machine_index, routine] = GetParam();
  const machine::Machine m =
      machine::all_machines()[static_cast<std::size_t>(machine_index)];
  const net::Network network(m.network, 32);

  // Rank monotonicity holds for software collectives; the BG/P hardware
  // tree legitimately gets *cheaper* per call as more ranks combine in
  // parallel, so only positivity is required there.
  const bool tree_offloaded =
      m.mpi.use_collective_tree && m.network.has_collective_tree &&
      (routine == mpi::Routine::kBcast || routine == mpi::Routine::kReduce ||
       routine == mpi::Routine::kAllreduce);
  Seconds prev = 0.0;
  for (const int ranks : {2, 8, 32, 128}) {
    const Seconds t = mpi::collective_cost(m, network, routine, 4096, ranks);
    EXPECT_GT(t, 0.0);
    if (!tree_offloaded) {
      EXPECT_GE(t, prev * 0.999) << "not monotone in ranks at " << ranks;
    }
    prev = t;
  }
  prev = 0.0;
  for (const Bytes bytes : {64u, 4096u, 262144u}) {
    const Seconds t = mpi::collective_cost(m, network, routine, bytes, 64);
    EXPECT_GE(t, prev) << "not monotone in bytes at " << bytes;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MachinesByRoutine, CollectiveCostProperty,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values(mpi::Routine::kBcast, mpi::Routine::kReduce,
                          mpi::Routine::kAllreduce, mpi::Routine::kAllgather,
                          mpi::Routine::kAlltoall)));

// --- IMB databases -----------------------------------------------------------

class ImbDatabaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(ImbDatabaseProperty, LookupsSaneEverywhere) {
  const machine::Machine m =
      machine::all_machines()[static_cast<std::size_t>(GetParam())];
  const imb::ImbDatabase db =
      imb::measure_database(m, {16, 64}, {512, 32_KiB});

  for (const auto routine :
       {mpi::Routine::kBcast, mpi::Routine::kReduce, mpi::Routine::kAllreduce,
        mpi::Routine::kSendrecv, mpi::Routine::kSend}) {
    // Positive, finite, monotone in size at every (including interpolated)
    // core count.
    for (const int c : {16, 32, 64}) {
      const Seconds small = db.lookup(routine, 512, c);
      const Seconds mid = db.lookup(routine, 4_KiB, c);
      const Seconds large = db.lookup(routine, 32_KiB, c);
      EXPECT_GT(small, 0.0);
      EXPECT_TRUE(std::isfinite(large));
      EXPECT_LE(small, mid * 1.001);
      EXPECT_LE(mid, large * 1.001);
    }
  }
  // multi-Sendrecv: linear in x, intra cheaper than inter.
  const Seconds x1 = db.multi_sendrecv_time(1, 32_KiB, 64);
  const Seconds x3 = db.multi_sendrecv_time(3, 32_KiB, 64);
  const Seconds x5 = db.multi_sendrecv_time(5, 32_KiB, 64);
  EXPECT_NEAR(x5 - x3, x3 - x1, 1e-12);
  EXPECT_LE(db.multi_sendrecv_time(3, 32_KiB, 64, 1.0), x3);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, ImbDatabaseProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace swapp
