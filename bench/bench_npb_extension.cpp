// Beyond-paper validation — projecting the classic NPB kernels.
//
// The paper validates SWAPP on the three Multi-Zone benchmarks, whose
// communication is nonblocking neighbour exchange.  This bench stresses the
// projection on the patterns NAS-MZ never exercises: CG (latency-bound
// sparse compute + Allreduce), MG (multi-level exchanges spanning four
// orders of magnitude in message size) and FT (global Alltoall transposes),
// projected from the POWER5+ base onto the POWER6 target.
#include <iostream>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/npb.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace swapp;

core::AppBaseData profile(const nas::NpbApp& app, const machine::Machine& base,
                          const std::vector<int>& counts) {
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  for (const int c : counts) {
    const auto st = app.run(base, c, machine::SmtMode::kSingleThread);
    data.mpi_profiles.emplace(c, st->profile());
    data.mean_compute.emplace(c, st->profile().mean_compute());
    data.counters_st.emplace(c, st->counters());
    const auto smt = app.run(base, c, machine::SmtMode::kSmt);
    data.counters_smt.emplace(c, smt->counters());
  }
  return data;
}

}  // namespace

int main() {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const std::vector<int> counts = {16, 32, 64, 128};

  std::cout << "Collecting benchmark databases...\n";
  const core::SpecLibrary spec =
      experiments::collect_spec_library(base, {target}, counts);
  core::Projector projector(base, spec, imb::measure_database(base));
  projector.add_target(target.name, imb::measure_database(target));

  TextTable table({"App", "Tasks", "Projected (s)", "Measured (s)",
                   "Combined err %", "Comm err %"});
  table.set_title(
      "Classic NPB kernels projected onto " + target.name +
      " (beyond-paper validation)");
  std::vector<double> errors;
  for (const auto bench :
       {nas::NpbBenchmark::kCG, nas::NpbBenchmark::kMG,
        nas::NpbBenchmark::kFT}) {
    const nas::NpbApp app(bench, nas::ProblemClass::kC);
    std::cout << "Profiling " << app.name() << " on the base...\n";
    const core::AppBaseData data = profile(app, base, counts);
    for (const int tasks : {64, 128}) {
      const core::ProjectionResult r =
          projector.project(data, target.name, tasks);
      const auto truth = app.run(target, tasks);
      const double err = percent_error(r.total_target(), truth->wall_time());
      const double comm_err =
          truth->profile().mean_communication() > 0
              ? percent_error(r.comm.target_total(),
                              truth->profile().mean_communication())
              : 0.0;
      errors.push_back(err);
      table.add_row({app.name(), std::to_string(tasks),
                     TextTable::num(r.total_target(), 2),
                     TextTable::num(truth->wall_time(), 2),
                     TextTable::num(err), TextTable::num(comm_err)});
    }
  }
  table.print(std::cout);
  const ErrorSummary s = summarize_errors(errors);
  std::cout << "\nMean combined error " << TextTable::num(s.mean_abs_error)
            << "%, max " << TextTable::num(s.max_abs_error)
            << "% — no paper reference exists for these kernels; this bench "
               "documents how the methodology generalises past the paper's "
               "evaluation set.\n";
  return 0;
}
