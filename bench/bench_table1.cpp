// Table 1 — NAS Multi-Zone communication characteristics on the base system.
//
// Reproduces the paper's Table 1: for each benchmark and class, the share of
// execution time spent communicating, the multi-Sendrecv (Isend/Irecv/
// Waitall) share, and the Reduce and Bcast shares, at the smallest and
// largest task counts.  The paper's values for reference: BT-MZ class C
// grows from 3.2% communication at 16 tasks to ~60% at 128 (load imbalance
// absorbed in Waitall); SP-MZ grows mildly (4.8 → 16%); LU-MZ stays near
// 1.4% at its single feasible task count; class D communicates less than
// class C throughout; Reduce and Bcast are small fractions everywhere.
#include <iostream>

#include "machine/machine.h"
#include "mpi/world.h"
#include "nas/nas_app.h"
#include "support/table.h"

namespace {

using namespace swapp;

struct Row {
  std::string name;
  int ranks;
  double comm_pct;
  double msr_pct;
  double reduce_pct;
  double bcast_pct;
};

Row measure(nas::Benchmark b, nas::ProblemClass c, int ranks,
            const machine::Machine& base) {
  const nas::NasApp app(b, c);
  const auto world = app.run(base, ranks);
  const mpi::MpiProfile& p = world->profile();
  const Seconds total = p.mean_compute() + p.mean_communication();
  const auto pct = [&](Seconds t) { return total > 0 ? t / total * 100 : 0.0; };
  return Row{
      .name = app.name(),
      .ranks = ranks,
      .comm_pct = p.communication_fraction() * 100.0,
      .msr_pct =
          pct(p.mean_class_elapsed(mpi::RoutineClass::kPointToPointNonblocking)),
      .reduce_pct = pct(p.mean_routine_elapsed(mpi::Routine::kReduce)),
      .bcast_pct = pct(p.mean_routine_elapsed(mpi::Routine::kBcast)),
  };
}

}  // namespace

int main() {
  const machine::Machine base = machine::make_power5_hydra();
  std::cout << "Table 1 — NAS-MZ communication characteristics on "
            << base.name << "\n"
            << "(percent of mean task time; multi-Sendrecv = "
               "Isend/Irecv/Waitall)\n\n";

  TextTable table({"Benchmark", "Tasks", "Communication %", "multi-Sendrecv %",
                   "Reduce %", "Bcast %"});
  for (const auto b :
       {nas::Benchmark::kBT, nas::Benchmark::kLU, nas::Benchmark::kSP}) {
    for (const auto c : {nas::ProblemClass::kC, nas::ProblemClass::kD}) {
      const std::vector<int> counts =
          (b == nas::Benchmark::kLU) ? std::vector<int>{16}
                                     : std::vector<int>{16, 128};
      for (const int ranks : counts) {
        const Row row = measure(b, c, ranks, base);
        table.add_row({row.name, std::to_string(row.ranks),
                       TextTable::num(row.comm_pct),
                       TextTable::num(row.msr_pct),
                       TextTable::num(row.reduce_pct, 3),
                       TextTable::num(row.bcast_pct, 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper Table 1 reference: BT-MZ.C 3.2% -> 59.7%, "
               "SP-MZ.C 4.8% -> 16%, LU-MZ.C 1.4%; class D lower than C; "
               "multi-Sendrecv carries almost all communication.\n";
  return 0;
}
