// Reference values from the paper's evaluation (§4), printed next to our
// measurements so every bench binary reports paper-vs-reproduction directly.
#pragma once

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "experiments/lab.h"
#include "support/stats.h"

namespace swapp::bench {

/// Paper's per-figure average projection errors (percent).
struct PaperFigure {
  const char* id;
  const char* description;
  double average_error;
};

inline constexpr PaperFigure kFig3 = {"Figure 3", "BT-MZ on BlueGene/P",
                                      10.53};
inline constexpr PaperFigure kFig4 = {"Figure 4", "BT-MZ on POWER6 575", 9.32};
inline constexpr PaperFigure kFig5 = {"Figure 5", "BT-MZ on Westmere X5670",
                                      13.61};
inline constexpr PaperFigure kFig6 = {"Figure 6", "LU-MZ on all systems",
                                      11.87};
inline constexpr PaperFigure kFig7 = {"Figure 7", "SP-MZ on BlueGene/P",
                                      11.06};
inline constexpr PaperFigure kFig8 = {"Figure 8", "SP-MZ on POWER6 575", 9.08};
inline constexpr PaperFigure kFig9 = {"Figure 9", "SP-MZ on Westmere X5670",
                                      13.54};

/// Paper's per-system summary (§4 / abstract).
struct PaperSystemSummary {
  const char* machine;
  double average_error;
  double stddev;
};
inline constexpr PaperSystemSummary kPaperBgp = {"IBM BlueGene/P", 11.93,
                                                 1.97};
inline constexpr PaperSystemSummary kPaperP6 = {"IBM POWER6 575", 8.58, 1.07};
inline constexpr PaperSystemSummary kPaperWm = {
    "IBM iDataPlex (Westmere X5670)", 13.79, 0.27};
/// "54% of the projections were above the actual values."
inline constexpr double kPaperFractionAbove = 0.54;

/// Prints a figure table followed by the paper-vs-measured comparison line.
inline void report_figure(const experiments::FigureData& figure,
                          const PaperFigure& reference) {
  experiments::FigureData copy = figure;
  copy.title = std::string(reference.id) + " — " + reference.description;
  copy.to_table().print(std::cout);

  std::vector<double> combined;
  combined.reserve(figure.rows.size());
  for (const experiments::ErrorRow& row : figure.rows) {
    combined.push_back(row.combined);
  }
  const ErrorSummary s = summarize_errors(combined);
  std::cout << reference.id << " summary: mean combined error "
            << TextTable::num(s.mean_abs_error) << "% (paper: "
            << TextTable::num(reference.average_error) << "%), max "
            << TextTable::num(s.max_abs_error) << "%\n\n";

  // Plot-ready artifact next to the console table.
  std::error_code ec;
  std::filesystem::create_directories("artifacts", ec);
  if (!ec) {
    std::string slug = reference.id;  // "Figure 3" -> "figure3"
    for (char& ch : slug) ch = ch == ' ' ? '_' : static_cast<char>(std::tolower(ch));
    std::ofstream csv("artifacts/" + slug + ".csv");
    if (csv) copy.to_table().write_csv(csv);
  }
}

}  // namespace swapp::bench
