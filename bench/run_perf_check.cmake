# ctest driver for the perf_check_bench entry (see CMakeLists.txt here):
# runs the GA benchmarks fresh with JSON output, then gates the medians
# against the checked-in baselines via tools/check_bench.py.  The suite runs
# TWICE and the checker takes the per-benchmark minimum of the two medians:
# on the shared 1-core CI container, scheduling jitter only ever adds time,
# so best-of-2 strips load spikes without masking real regressions.
# Inputs: BENCH_MICRO, PYTHON, CHECK_SCRIPT, BASELINE, BASELINE2, BASELINE3,
# BASELINE4, OUT_JSON.

set(bench_args
  "--benchmark_filter=BM_GaFitnessKernel|^BM_GaSurrogateSearch$|^BM_GaSurrogateSearchObsSampled$|^BM_GaPolish|^BM_GaDeltaKernel|^BM_SweepFanout"
  --benchmark_min_time=0.5
  --benchmark_repetitions=7
  --benchmark_report_aggregates_only=true
  --benchmark_format=json)

execute_process(
  COMMAND "${BENCH_MICRO}" ${bench_args} "--benchmark_out=${OUT_JSON}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_micro failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND "${BENCH_MICRO}" ${bench_args} "--benchmark_out=${OUT_JSON}.2"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_micro rerun failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK_SCRIPT}" "${BASELINE}" "${BASELINE2}"
    "${BASELINE3}" "${BASELINE4}"
    --fresh "${OUT_JSON}" --fresh "${OUT_JSON}.2"
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench.py reported a regression (rc=${check_rc})")
endif()
