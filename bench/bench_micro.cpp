// Micro-benchmarks (google-benchmark) for the simulation substrate and the
// projection pipeline — the performance properties that make the whole
// reproduction tractable on one core.
#include <benchmark/benchmark.h>

#include "core/ga.h"
#include "core/ga_eval.h"
#include "core/projector.h"
#include "core/ranking.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "mpi/world.h"
#include "nas/nas_app.h"
#include "nas/zones.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "service/artifact_cache.h"
#include "spec/suite.h"
#include "support/interp.h"
#include "sweep/runner.h"
#include "sweep/sweep.h"
#include "support/parallel.h"
#include "workload/compute_model.h"

namespace {

using namespace swapp;

/// SPEC-style suite data on the base machine, shared by the GA benchmarks.
const core::SpecData& ga_spec_data() {
  static const core::SpecData* data = [] {
    auto* spec = new core::SpecData;
    const machine::Machine base = machine::make_power5_hydra();
    for (const spec::BenchmarkRun& run :
         spec::run_suite(base, machine::SmtMode::kSingleThread)) {
      spec->names.push_back(run.name);
      spec->base_counters_st.emplace(run.name, run.counters);
      spec->base_runtime.emplace(run.name, run.runtime);
    }
    for (const spec::BenchmarkRun& run :
         spec::run_suite(base, machine::SmtMode::kSmt)) {
      spec->base_counters_smt.emplace(run.name, run.counters);
    }
    return spec;
  }();
  return *data;
}

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i) * 1e-6, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1 << 10)->Arg(1 << 14);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber fiber([] {
    while (true) sim::Fiber::yield();
  });
  for (auto _ : state) fiber.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_ComputeModelEvaluate(benchmark::State& state) {
  const machine::Machine m = machine::make_power5_hydra();
  const workload::Kernel& k = spec::benchmark_by_name("bwaves").kernel;
  const workload::ComputeContext ctx{.active_cores_per_node = 16,
                                     .smt = machine::SmtMode::kSingleThread};
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::evaluate(k, 1e6, m, ctx).seconds);
  }
}
BENCHMARK(BM_ComputeModelEvaluate);

void BM_MpiPingPongSimulation(benchmark::State& state) {
  const machine::Machine m = machine::make_power5_hydra();
  for (auto _ : state) {
    mpi::World world(m, 2);
    world.run([](mpi::RankCtx& ctx) {
      for (int i = 0; i < 100; ++i) {
        if (ctx.rank() == 0) {
          ctx.send(1, 1024);
          ctx.recv(1, 1024);
        } else {
          ctx.recv(0, 1024);
          ctx.send(0, 1024);
        }
      }
    });
    benchmark::DoNotOptimize(world.wall_time());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MpiPingPongSimulation);

void BM_CollectiveSimulation(benchmark::State& state) {
  const machine::Machine m = machine::make_power5_hydra();
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World world(m, ranks);
    world.run([](mpi::RankCtx& ctx) {
      for (int i = 0; i < 10; ++i) ctx.allreduce(4096);
    });
    benchmark::DoNotOptimize(world.wall_time());
  }
}
BENCHMARK(BM_CollectiveSimulation)->Arg(16)->Arg(128);

void BM_ZoneDecomposition(benchmark::State& state) {
  for (auto _ : state) {
    const nas::Decomposition d(nas::Benchmark::kBT, nas::ProblemClass::kD,
                               static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(d.imbalance());
  }
}
BENCHMARK(BM_ZoneDecomposition)->Arg(16)->Arg(128);

void BM_LogLogTableLookup(benchmark::State& state) {
  CoreSizeTable table;
  for (const int c : {16, 32, 64, 128}) {
    for (const double b : {64.0, 512.0, 4096.0, 32768.0, 262144.0}) {
      table.insert(c, b, 1e-6 * b / 64.0 * c);
    }
  }
  double bytes = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(48, bytes));
    bytes = bytes < 2e5 ? bytes * 1.1 : 100.0;
  }
}
BENCHMARK(BM_LogLogTableLookup);

void BM_GaSurrogateSearch(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  core::GaOptions options;
  options.restarts = 1;
  options.generations = 80;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::find_surrogate(app, app_smt, weights, spec, 100.0, options)
            .fitness);
  }
}
BENCHMARK(BM_GaSurrogateSearch);

// The Eq. 2 surrogate search at production settings (default GaOptions:
// 5 restarts × 240 generations), serial vs. pooled.  Arg = thread count
// (0 = auto: SWAPP_THREADS / hardware concurrency).
void BM_FindSurrogate(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  const core::GaOptions options;
  set_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::find_surrogate(app, app_smt, weights, spec, 100.0, options)
            .fitness);
  }
  set_thread_count(0);
}
BENCHMARK(BM_FindSurrogate)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// The max_terms genome every GA micro-benchmark perturbs (suite-strided,
/// scaled so base runtimes sum near the target compute time).
std::vector<double> ga_bench_genome(const core::SpecData& spec) {
  std::vector<double> genome(spec.names.size(), 0.0);
  const std::size_t stride = std::max<std::size_t>(1, genome.size() / 6);
  int terms = 0;
  for (std::size_t k = 0; k < genome.size() && terms < 6;
       k += stride, ++terms) {
    genome[k] = 100.0 / (6.0 * spec.base_runtime.at(spec.names[k]));
  }
  return genome;
}

// The GA objective on a suite-sized genome, one kernel per Arg (the
// core::GaKernel enum): 0 = three-pass reference, 1 = fused single-pass AoS,
// 2 = SoA sparse per-genome, 3 = SoA whole-batch.  256 evaluations per
// iteration, matching the per-generation re-evaluation load.
void BM_GaFitnessKernel(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  const std::vector<double> genome = ga_bench_genome(spec);
  const auto kernel = static_cast<core::GaKernel>(state.range(0));
  constexpr int kEvals = 256;
  // Problem setup (signature conversion, transposes, scales) happens once,
  // outside the timed region: the loop measures the kernels themselves.
  const core::GaFitnessProber prober(app, app_smt, weights, spec, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.run(genome, kEvals, kernel));
  }
  state.SetItemsProcessed(state.iterations() * kEvals);
}
BENCHMARK(BM_GaFitnessKernel)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// An application whose signature is a genuine six-way blend of the strided
/// genome's benchmarks (instruction-weighted accumulate, distinct shares).
/// Matching it with fewer terms leaves a real residual, so the polished
/// optimum keeps all six weights live — a single-app target like zeusmp is
/// matched by two suite benchmarks and the polish crushes the other four
/// weights to ~1e-13, where every tweak is a numerical tie the screen
/// (correctly) cannot reject without an exact eval.
machine::PmuCounters ga_polish_app(
    const core::SpecData& spec,
    const std::map<std::string, machine::PmuCounters>& counters) {
  static constexpr double kShare[6] = {0.30, 0.23, 0.17, 0.13, 0.10, 0.07};
  const std::size_t stride = std::max<std::size_t>(1, spec.names.size() / 6);
  machine::PmuCounters app;
  int terms = 0;
  for (std::size_t k = 0; k < spec.names.size() && terms < 6;
       k += stride, ++terms) {
    machine::PmuCounters part = counters.at(spec.names[k]);
    const double scale = kShare[terms] / part.instructions;
    part.instructions *= scale;
    part.cycles *= scale;
    part.seconds *= scale;
    app.accumulate(part);
  }
  return app;
}

// The GA's deterministic polish loop on a converged max_terms genome.  Arg
// = core::PolishMode: 0 = delta-screened (screen every candidate, confirm
// improvements exactly), 1 = the pre-change full-eval path.  The genome is
// polished to its local optimum once, outside the timed region, because
// that is the regime the GA puts the loop in — its winners arrive
// near-converged, so almost every candidate is a rejection, which is
// exactly where the screen replaces a copy+rescale+exact-eval with one
// O(M) delta pass.  `min_sweeps` pins the candidate-visit count, so both
// modes walk the same sweep schedule and the ratio is the screen's saving.
void BM_GaPolish(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = ga_polish_app(spec, spec.base_counters_st);
  const machine::PmuCounters app_smt =
      ga_polish_app(spec, spec.base_counters_smt);
  const core::GroupWeights weights = core::base_group_weights(app, base);
  const auto mode = static_cast<core::PolishMode>(state.range(0));
  constexpr int kMinSweeps = 32;
  const core::GaFitnessProber prober(app, app_smt, weights, spec, 100.0);
  std::vector<double> converged;
  prober.run_polish(ga_bench_genome(spec), 0, core::PolishMode::kFullEval,
                    &converged);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.run_polish(converged, kMinSweeps, mode));
  }
}
BENCHMARK(BM_GaPolish)->Arg(0)->Arg(1);

// The raw one-weight delta screen through one ISA tier.  Arg indexes
// {generic, sse2, avx2, avx512}; tiers the CPU lacks are skipped.  256
// screens per iteration over a bound blend — the load the polish loop puts
// on the kernel per sweep family.
void BM_GaDeltaKernel(benchmark::State& state) {
  static const char* kTiers[] = {"generic", "sse2", "avx2", "avx512"};
  const std::string tier = kTiers[state.range(0)];
  if (!core::set_ga_delta_tier(tier)) {
    state.SkipWithError(("tier unsupported on this CPU: " + tier).c_str());
    return;
  }
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  const std::vector<double> genome = ga_bench_genome(spec);
  constexpr int kScreens = 256;
  const core::GaFitnessProber prober(app, app_smt, weights, spec, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.run_delta(genome, kScreens));
  }
  core::set_ga_delta_tier("");
  state.SetItemsProcessed(state.iterations() * kScreens);
}
BENCHMARK(BM_GaDeltaKernel)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// A full figure through the Lab (LU on POWER6: ground-truth runs +
// projections per row), serial vs. pooled.  Arg = thread count (0 = auto).
// The Lab is rebuilt each iteration so every row pays its full cost; the
// shared databases are built outside the timed section.
void BM_LabFigure(benchmark::State& state) {
  set_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    experiments::Lab lab({experiments::Lab::power6_name()});
    lab.projector();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lab.figure(nas::Benchmark::kLU, experiments::Lab::power6_name())
            .rows.size());
  }
  set_thread_count(0);
}
BENCHMARK(BM_LabFigure)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Projector + LU profile on reduced grids, shared by BM_ProjectMany (built
/// once, outside any timed section).
const core::Projector& batch_projector() {
  static const core::Projector* p = [] {
    const machine::Machine base = machine::make_power5_hydra();
    const machine::Machine target = machine::make_power6_575();
    const std::vector<int> counts = {8, 16, 32};
    const std::vector<Bytes> sizes = {512, 16_KiB, 256_KiB};
    auto spec = experiments::collect_spec_library(base, {target}, counts);
    auto* proj = new core::Projector(base, spec,
                                     imb::measure_database(base, counts, sizes));
    proj->add_target(target.name,
                     imb::measure_database(target, counts, sizes));
    return proj;
  }();
  return *p;
}

const core::AppBaseData& batch_lu_data() {
  static const core::AppBaseData* d = new core::AppBaseData(
      experiments::collect_base_data(
          nas::NasApp(nas::Benchmark::kLU, nas::ProblemClass::kC),
          machine::make_power5_hydra(), {4, 8, 16}, {4, 8, 16}));
  return *d;
}

// One app at three core counts sharing a surrogate search
// (surrogate_reference_cores = 16): the batched engine (Arg = 1) memoises
// the search and shares the indexed spec view, vs. the same requests issued
// as independent `project` calls (Arg = 0) — each paying its own search.
void BM_ProjectMany(benchmark::State& state) {
  const core::Projector& projector = batch_projector();
  const core::AppBaseData& lu = batch_lu_data();
  const std::string target = machine::make_power6_575().name;
  core::ProjectionOptions options;
  options.compute.surrogate_reference_cores = 16;
  std::vector<core::ProjectionRequest> requests;
  for (const int ck : {4, 8, 16}) {
    requests.push_back(core::ProjectionRequest{&lu, target, ck, options});
  }
  const bool batched = state.range(0) == 1;
  for (auto _ : state) {
    double total = 0.0;
    if (batched) {
      for (const core::ProjectionResult& r : projector.project_many(requests)) {
        total += r.total_target();
      }
    } else {
      for (const core::ProjectionRequest& r : requests) {
        total += projector.project(*r.app, r.target, r.cores, r.options)
                     .total_target();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}
BENCHMARK(BM_ProjectMany)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- Observability overhead -------------------------------------------------
// The instrumentation contract is "zero overhead when disabled": every macro
// must cost one relaxed atomic load while the switches are off.  Arg = 1
// turns the relevant switch on and measures the recording cost instead.

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::set_metrics_enabled(state.range(0) == 1);
  for (auto _ : state) {
    SWAPP_COUNT("bench.obs_counter", 1);
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}
BENCHMARK(BM_ObsCounterAdd)->Arg(0)->Arg(1);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::set_metrics_enabled(state.range(0) == 1);
  double v = 1.0;
  for (auto _ : state) {
    SWAPP_OBSERVE("bench.obs_hist", v);
    v = v < 1e6 ? v * 1.7 : 1.0;
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}
BENCHMARK(BM_ObsHistogramObserve)->Arg(0)->Arg(1);

// 1000 spans per iteration; the enabled run drains each batch so the buffer
// cost that a real trace pays (record + eventual drain) is in the number.
void BM_ObsSpan(benchmark::State& state) {
  obs::set_tracing_enabled(state.range(0) == 1);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      SWAPP_SPAN("bench.obs_span");
    }
    if (state.range(0) == 1) {
      benchmark::DoNotOptimize(obs::drain_trace().size());
    }
  }
  obs::set_tracing_enabled(false);
  obs::drain_trace();
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ObsSpan)->Arg(0)->Arg(1);

// The GA search with every switch live: spans, per-generation convergence
// counters, and metrics all recording.  Compare against BM_GaSurrogateSearch
// (same work, switches off) for the worst-case enabled overhead.
void BM_GaSurrogateSearchObsEnabled(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  core::GaOptions options;
  options.restarts = 1;
  options.generations = 80;
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::find_surrogate(app, app_smt, weights, spec, 100.0, options)
            .fitness);
    benchmark::DoNotOptimize(obs::drain_trace().size());
  }
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}
BENCHMARK(BM_GaSurrogateSearchObsEnabled);

// --- sampled always-on recording --------------------------------------------
// The daemon keeps metrics enabled for its whole life at a 1-in-64 sample
// rate (tools/swapp_cli.cpp cmd_serve).  These measure that exact
// configuration: the macro cost with sampling live, and the GA search under
// sampled always-on metrics — the BENCH_obs_live.json gate requires the
// latter within 2% of the metrics-disabled build.

void BM_ObsCounterAddSampled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(1.0 / 64.0);
  for (auto _ : state) {
    SWAPP_COUNT("bench.obs_counter_sampled", 1);
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics_sampling();
  obs::reset_metrics();
}
BENCHMARK(BM_ObsCounterAddSampled);

void BM_ObsHistogramObserveSampled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(1.0 / 64.0);
  double v = 1.0;
  for (auto _ : state) {
    SWAPP_OBSERVE("bench.obs_hist_sampled", v);
    v = v < 1e6 ? v * 1.7 : 1.0;
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics_sampling();
  obs::reset_metrics();
}
BENCHMARK(BM_ObsHistogramObserveSampled);

void BM_GaSurrogateSearchObsSampled(benchmark::State& state) {
  const machine::Machine base = machine::make_power5_hydra();
  const core::SpecData& spec = ga_spec_data();
  const machine::PmuCounters app = spec.base_counters_st.at("zeusmp");
  const machine::PmuCounters app_smt = spec.base_counters_smt.at("zeusmp");
  const core::GroupWeights weights = core::base_group_weights(app, base);
  core::GaOptions options;
  options.restarts = 1;
  options.generations = 80;
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(1.0 / 64.0);
  for (const char* prefix : {"server.", "service.", "cache.", "planner."}) {
    obs::set_metrics_sampling(prefix, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::find_surrogate(app, app_smt, weights, spec, 100.0, options)
            .fitness);
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics_sampling();
  obs::reset_metrics();
}
BENCHMARK(BM_GaSurrogateSearchObsSampled);

void BM_ImbMeasurement(benchmark::State& state) {
  const machine::Machine m = machine::make_power5_hydra();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        imb::run_imb(m, imb::ImbBenchmark::kAllreduce, 32, 4096, 8).time);
  }
}
BENCHMARK(BM_ImbMeasurement);

// --- Sweep factoring ---------------------------------------------------------
// A five-point comm-only bandwidth sweep (LU/C at 8 tasks, reference 16).
// Arg = 1 runs it through SweepRunner, whose planner factors the points into
// one SPEC-library target, one GA search, and per-class IMB databases.
// Arg = 0 is the naive expansion the planner replaces: every point issued as
// its own single-point sweep against a fresh runner, paying its own library,
// search, and measurements.  Both paths start from empty memory-only caches
// each iteration (cold artifacts are the cost being factored) and share one
// pre-collected application profile, so the ratio isolates the planner.

void configure_sweep_runner(sweep::SweepRunner& runner) {
  const machine::Machine base = machine::make_power5_hydra();
  runner.set_spec_collector(
      [](const machine::Machine& b, const std::vector<machine::Machine>& t,
         const std::vector<int>& counts) {
        return experiments::collect_spec_library(b, t, counts);
      });
  runner.set_imb_collector([](const machine::Machine& m) {
    return imb::measure_database(m, {8, 16, 32}, {512, 16_KiB, 256_KiB});
  });
  runner.add_app("LU/C",
                 service::describe_app_inputs("LU-MZ.C", base, 1, {4, 8, 16},
                                              {4, 8, 16}),
                 [] { return batch_lu_data(); });
}

void BM_SweepFanout(benchmark::State& state) {
  (void)batch_lu_data();  // profile the app outside the timed region
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  sweep::SweepSpec spec;
  spec.app = "LU/C";
  spec.target = target.name;
  spec.tasks = 8;
  spec.reference = 16;
  spec.options.compute.surrogate_reference_cores = 16;
  spec.axes.push_back({"network.link_bandwidth_gbs", sweep::AxisMode::kScale,
                       {0.25, 0.5, 1.0, 2.0, 4.0}});
  const bool factored = state.range(0) == 1;
  for (auto _ : state) {
    double total = 0.0;
    if (factored) {
      sweep::SweepRunner runner(base, {target}, {});
      configure_sweep_runner(runner);
      for (const core::ProjectionResult& r : runner.run(spec).results) {
        total += r.total_target();
      }
    } else {
      for (const double scale : spec.axes[0].values) {
        sweep::SweepSpec one = spec;
        one.axes[0].values = {scale};
        sweep::SweepRunner runner(base, {target}, {});
        configure_sweep_runner(runner);
        total += runner.run(one).results[0].total_target();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_SweepFanout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
