// Figure 4 — BT-MZ projection errors on POWER6 575.
//
// Regenerates the paper's Figure 4: percent projection error for the
// P2P-NB, P2P-B and COLLECTIVES communication classes, the overall
// communication, the computation, and the combined projection, at 16–128
// tasks for classes C and D.  (LU excepted: see bench_fig6.)
#include "paper_reference.h"

int main() {
  using namespace swapp;
  experiments::Lab lab({experiments::Lab::power6_name()});
  const experiments::FigureData figure =
      lab.figure(nas::Benchmark::kBT, experiments::Lab::power6_name());
  bench::report_figure(figure, bench::kFig4);
  return 0;
}
