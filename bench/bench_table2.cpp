// Table 2 — the base system and the three validation targets.
//
// Prints the machine inventory exactly as the paper tabulates it (processor,
// total cores, cores per node, memory per core, interconnect), plus the
// modelled microarchitecture parameters our substitution uses.
#include <iostream>

#include "machine/machine.h"
#include "net/network.h"
#include "support/table.h"

int main() {
  using namespace swapp;

  std::cout << "Table 2 — base system and validation targets\n\n";
  TextTable table({"Machine", "Processor", "Total Cores", "Cores/Node",
                   "Memory/Core (GiB)", "Interconnect"});
  for (const machine::Machine& m : machine::all_machines()) {
    table.add_row({m.name, m.processor.name, std::to_string(m.total_cores),
                   std::to_string(m.cores_per_node),
                   std::to_string(m.memory_per_core / 1_GiB),
                   net::to_string(m.network.kind) +
                       (m.network.has_collective_tree ? " + collective tree"
                                                      : "")});
  }
  table.print(std::cout);

  std::cout << "\nModelled microarchitecture parameters:\n\n";
  TextTable detail({"Machine", "GHz", "Issue", "OoO", "SIMD", "L1/L2/L3",
                    "Mem GB/s", "Link GB/s", "MPI o_send (us)"});
  for (const machine::Machine& m : machine::all_machines()) {
    const auto& levels = m.caches.levels();
    std::string caches;
    for (const auto& level : levels) {
      if (!caches.empty()) caches += "/";
      caches += std::to_string(level.capacity / 1024) + "K";
    }
    detail.add_row({m.name, TextTable::num(m.processor.frequency_ghz, 2),
                    std::to_string(m.processor.issue_width),
                    TextTable::num(m.processor.ooo_window_factor, 2),
                    TextTable::num(m.processor.simd_width, 0), caches,
                    TextTable::num(m.caches.memory().node_bandwidth_gbs, 1),
                    TextTable::num(m.network.link_bandwidth_gbs, 2),
                    TextTable::num(m.mpi.send_overhead * 1e6, 2)});
  }
  detail.print(std::cout);
  std::cout << "\nPaper Table 2 reference: Hydra POWER5+ 832/16/2GB "
               "Federation; POWER6 575 128/32/4GB InfiniBand; BG/P 4096/4/1GB "
               "3D-torus + collective tree; X5670 768/12/2GB InfiniBand.\n";
  return 0;
}
