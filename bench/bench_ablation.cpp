// Ablation study — the value of each SWAPP design decision (DESIGN.md §5).
//
// Runs BT-MZ classes C (WaitTime-dominated communication) and D
// (transfer-heavier communication) at 64 and 128 tasks onto each target
// with individual components disabled:
//   * full            — the complete SWAPP pipeline;
//   * no-wait         — drop the WaitTime model (comm = transfer only);
//   * no-msr          — price Waitall as blocking Sendrecv instead of the
//                        multi-Sendrecv Eq. 1 model;
//   * no-rank-adjust  — skip step 4's target re-weighting;
//   * no-acsm         — no counter extrapolation (nearest sample instead);
//   * coupled         — scale the whole application by the compute speedup
//                        (the non-decomposed strategy the paper improves on).
#include <iostream>
#include <vector>

#include "experiments/lab.h"
#include "support/stats.h"
#include "support/table.h"

int main() {
  using namespace swapp;
  experiments::Lab lab;

  struct Variant {
    const char* name;
    core::ProjectionOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  {
    core::ProjectionOptions o;
    o.comm.use_wait_model = false;
    variants.push_back({"no-wait", o});
  }
  {
    core::ProjectionOptions o;
    o.comm.use_multi_sendrecv = false;
    variants.push_back({"no-msr", o});
  }
  {
    core::ProjectionOptions o;
    o.compute.use_rank_adjustment = false;
    variants.push_back({"no-rank-adjust", o});
  }
  {
    core::ProjectionOptions o;
    o.compute.use_acsm = false;
    variants.push_back({"no-acsm", o});
  }
  {
    core::ProjectionOptions o;
    o.decouple_components = false;
    variants.push_back({"coupled", o});
  }

  TextTable table({"Variant", "Avg combined err %", "Avg comm err %",
                   "Max combined err %"});
  table.set_title(
      "Ablation — BT-MZ classes C+D at 64/128 tasks, all targets (lower is "
      "better)");
  for (const Variant& v : variants) {
    std::vector<double> combined;
    std::vector<double> comm;
    for (const std::string& target : lab.target_names()) {
      for (const int ranks : {64, 128}) {
        for (const auto cls :
             {nas::ProblemClass::kC, nas::ProblemClass::kD}) {
          const experiments::ErrorRow row = lab.error_row(
              nas::Benchmark::kBT, cls, target, ranks, v.options);
          combined.push_back(row.combined);
          comm.push_back(row.overall_comm);
        }
      }
    }
    const ErrorSummary s = summarize_errors(combined);
    table.add_row({v.name, TextTable::num(s.mean_abs_error),
                   TextTable::num(mean(comm)),
                   TextTable::num(s.max_abs_error)});
  }
  table.print(std::cout);
  std::cout << "\nReading: dropping the WaitTime model is catastrophic for "
               "BT-MZ (its communication IS load-imbalance wait).  Coupling "
               "the components looks tolerable exactly where wait dominates "
               "(wait scales with compute anyway) and loses where transfer "
               "does — the regime the paper's decomposition targets.\n";
  return 0;
}
