// Section 4 summary — per-system average projection error, standard
// deviation, and the fraction of projections above the measured runtime.
//
// Paper reference (abstract + §4): BG/P 11.93% ± 1.97, POWER6 575
// 8.58% ± 1.07, Westmere X5670 13.79% ± 0.27; overall 54% of projections
// above actual; maximum error below 15%.
#include <iostream>
#include <map>
#include <vector>

#include "paper_reference.h"

int main() {
  using namespace swapp;
  experiments::Lab lab;

  std::map<std::string, std::vector<double>> combined;
  std::size_t above = 0;
  std::size_t total = 0;

  // One batch over every (target, app, class, count) cell: the service path
  // plans shared artifacts once and projects the whole grid through
  // Projector::project_many.
  std::vector<experiments::Lab::RowQuery> queries;
  for (const std::string& target : lab.target_names()) {
    for (const auto bench :
         {nas::Benchmark::kBT, nas::Benchmark::kSP, nas::Benchmark::kLU}) {
      const std::vector<int> counts =
          (bench == nas::Benchmark::kLU) ? std::vector<int>{16}
                                         : experiments::bt_sp_core_counts();
      for (const int ranks : counts) {
        for (const auto cls :
             {nas::ProblemClass::kC, nas::ProblemClass::kD}) {
          queries.push_back({bench, cls, target, ranks});
        }
      }
    }
  }
  const std::vector<experiments::ErrorRow> rows = lab.error_rows(queries);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    combined[queries[i].target].push_back(rows[i].combined);
    above += rows[i].combined_signed > 0.0;
    total += 1;
  }

  TextTable table({"System", "Avg |error| %", "Std-dev %", "Max %",
                   "Paper avg %", "Paper std %"});
  table.set_title("Section 4 summary — combined projection error per system");
  const std::map<std::string, bench::PaperSystemSummary> paper = {
      {bench::kPaperBgp.machine, bench::kPaperBgp},
      {bench::kPaperP6.machine, bench::kPaperP6},
      {bench::kPaperWm.machine, bench::kPaperWm},
  };
  for (const auto& [target, errors] : combined) {
    const ErrorSummary s = summarize_errors(errors);
    const auto it = paper.find(target);
    table.add_row({target, TextTable::num(s.mean_abs_error),
                   TextTable::num(s.stddev), TextTable::num(s.max_abs_error),
                   it != paper.end() ? TextTable::num(it->second.average_error)
                                     : "-",
                   it != paper.end() ? TextTable::num(it->second.stddev)
                                     : "-"});
  }
  table.print(std::cout);

  const double fraction =
      static_cast<double>(above) / static_cast<double>(total);
  std::cout << "\nProjections above actual: "
            << TextTable::num(fraction * 100.0, 1) << "% (paper: "
            << TextTable::num(bench::kPaperFractionAbove * 100.0, 1)
            << "%) over " << total << " projections\n";
  return 0;
}
