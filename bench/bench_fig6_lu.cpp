// Figure 6 — LU-MZ projection errors on all three target systems.
//
// LU-MZ has 4×4 = 16 zones, so it runs at a single task count (16); the
// paper's Figure 6 therefore shows one bar group per (system, class) rather
// than a core-count sweep.
#include <iostream>

#include "paper_reference.h"

int main() {
  using namespace swapp;
  experiments::Lab lab;  // all three targets

  TextTable table({"System/Class", "P2P-NB", "P2P-B", "COLLECTIVES",
                   "Overall Comm", "Computation", "Combined"});
  table.set_title(
      "Figure 6 — LU-MZ results on the three systems (percent error)");
  std::vector<double> combined;
  for (const std::string& target : lab.target_names()) {
    for (const auto cls : {nas::ProblemClass::kC, nas::ProblemClass::kD}) {
      const experiments::ErrorRow row =
          lab.error_row(nas::Benchmark::kLU, cls, target, 16);
      combined.push_back(row.combined);
      table.add_row({target + " " + nas::to_string(cls),
                     TextTable::num(row.p2p_nb), TextTable::num(row.p2p_b),
                     TextTable::num(row.collectives),
                     TextTable::num(row.overall_comm),
                     TextTable::num(row.computation),
                     TextTable::num(row.combined)});
    }
  }
  table.print(std::cout);
  const ErrorSummary s = summarize_errors(combined);
  std::cout << "Figure 6 summary: mean combined error "
            << TextTable::num(s.mean_abs_error) << "% (paper: "
            << TextTable::num(bench::kFig6.average_error) << "%), max "
            << TextTable::num(s.max_abs_error) << "%\n";
  return 0;
}
