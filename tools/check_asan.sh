#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and runs it with a 4-thread
# SWAPP pool, so the batched projection paths (shared SpecIndex arenas,
# cache-owned artifacts, parallel merges) are exercised for lifetime and
# bounds errors.  The full ctest run includes the SoA GA engine tests
# (test_ga_eval), whose SIMD kernels read pair-interleaved rows and sparse
# nz lists — exactly the indexing ASan should be watching — and the
# projection server suite (test_server), where frame buffers, connection
# registries, and promise/future handoffs live across thread boundaries.
# Usage: tools/check_asan.sh [extra ctest args].
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-asan"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DSWAPP_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)"

SWAPP_THREADS=4 ctest --test-dir "${BUILD}" --output-on-failure "$@"
