#!/usr/bin/env bash
# Builds the observability and server test suites under
# UndefinedBehaviorSanitizer and runs them directly.  The always-on sampled
# metrics path does integer-threshold sampling (shifted 64-bit RNG draws
# against a rate scaled by 2^53) and count re-inflation via double weights,
# and the stats endpoint decodes length-prefixed frames from the wire —
# exactly the arithmetic and parsing UBSan is good at catching (shift
# overflow, float-to-int conversion out of range, misaligned loads).
# Usage: tools/check_ubsan.sh [extra gtest args passed to both binaries].
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-ubsan"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DSWAPP_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)" --target test_obs test_server

"${BUILD}/tests/test_obs" "$@"
"${BUILD}/tests/test_server" "$@"
