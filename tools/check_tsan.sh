#!/usr/bin/env bash
# Builds the test suite under ThreadSanitizer and runs it with a 4-thread
# SWAPP pool, so every parallel stage (GA restarts, figure rows) is
# exercised for data races.  The full ctest run includes the chunked
# parallel_for coverage tests (test_parallel) and the SoA GA engine's
# bit-identity tests (test_ga_eval) — the pool's chunked index claiming and
# the engine's pre-main kernel dispatch must both stay TSan-clean.  It also
# runs the projection server suite (test_server): concurrent clients over a
# Unix socket, admission-queue handoff between connection threads and the
# scheduler, and graceful shutdown must all be race-free.
# Usage: tools/check_tsan.sh [extra ctest args].
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DSWAPP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "$(nproc)"

SWAPP_THREADS=4 ctest --test-dir "${BUILD}" --output-on-failure "$@"
