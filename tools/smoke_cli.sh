#!/usr/bin/env bash
# End-to-end CLI smoke test: collect artifacts, run a cold batch into a
# cache directory, rerun it warm, and require (a) byte-identical projection
# tables and (b) a warm run that performs no simulation.  Finishes with the
# one-shot `project` command reusing the same cache.
# Usage: tools/smoke_cli.sh  (set BUILD to point at a non-default build dir).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD:-${ROOT}/build}"
SWAPP="${BUILD}/tools/swapp"
if [[ ! -x "${SWAPP}" ]]; then
  echo "swapp binary not found; build first: cmake --build ${BUILD} -j" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
CACHE="${WORK}/cache"

echo "== standalone collection (file-based flow) =="
"${SWAPP}" collect-imb --machine "IBM POWER6 575" --out "${WORK}/p6.imb" \
  2> /dev/null
"${SWAPP}" profile --app LU --class C --counts 4,8,16 \
  --out "${WORK}/lu_c.app" 2> /dev/null
test -s "${WORK}/p6.imb" && test -s "${WORK}/lu_c.app"

echo "== batch: cold run populates ${CACHE} =="
cat > "${WORK}/batch.req" <<'EOF'
#swapp "swapp-batch" v1
request "LU/C" "IBM POWER6 575" 8 1 16
request "LU/C" "IBM POWER6 575" 16 1 16
EOF
"${SWAPP}" batch --requests "${WORK}/batch.req" --cache-dir "${CACHE}" \
  > "${WORK}/cold.out" 2> "${WORK}/cold.err"

echo "== batch: warm rerun must match byte-for-byte =="
"${SWAPP}" batch --requests "${WORK}/batch.req" --cache-dir "${CACHE}" \
  > "${WORK}/warm.out" 2> "${WORK}/warm.err"
diff -u "${WORK}/cold.out" "${WORK}/warm.out"
grep -q "warm batch: no simulation performed" "${WORK}/warm.err"

echo "== one-shot project reuses the batch's cache =="
"${SWAPP}" project --app LU --class C --tasks 16 \
  --target "IBM POWER6 575" --cache-dir "${CACHE}" \
  > "${WORK}/project1.out" 2> "${WORK}/project1.err"
"${SWAPP}" project --app LU --class C --tasks 16 \
  --target "IBM POWER6 575" --cache-dir "${CACHE}" \
  > "${WORK}/project2.out" 2> "${WORK}/project2.err"
diff -u "${WORK}/project1.out" "${WORK}/project2.out"
grep -q "disk cache" "${WORK}/project2.err"

echo "smoke ok"
