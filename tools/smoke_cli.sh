#!/usr/bin/env bash
# End-to-end CLI smoke test: collect artifacts, run a cold batch into a
# cache directory, rerun it warm, and require (a) byte-identical projection
# tables and (b) a warm run that performs no simulation.  Finishes with the
# one-shot `project` command reusing the same cache.
# Usage: tools/smoke_cli.sh  (set BUILD to point at a non-default build dir).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD:-${ROOT}/build}"
SWAPP="${BUILD}/tools/swapp"
if [[ ! -x "${SWAPP}" ]]; then
  echo "swapp binary not found; build first: cmake --build ${BUILD} -j" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
CACHE="${WORK}/cache"

echo "== standalone collection (file-based flow) =="
"${SWAPP}" collect-imb --machine "IBM POWER6 575" --out "${WORK}/p6.imb" \
  2> /dev/null
"${SWAPP}" profile --app LU --class C --counts 4,8,16 \
  --out "${WORK}/lu_c.app" 2> /dev/null
test -s "${WORK}/p6.imb" && test -s "${WORK}/lu_c.app"

echo "== batch: cold traced run populates ${CACHE} =="
cat > "${WORK}/batch.req" <<'EOF'
#swapp "swapp-batch" v1
request "LU/C" "IBM POWER6 575" 8 1 16
request "LU/C" "IBM POWER6 575" 16 1 16
EOF
"${SWAPP}" batch --requests "${WORK}/batch.req" --cache-dir "${CACHE}" \
  --trace "${WORK}/cold.trace" --metrics "${WORK}/cold.metrics" \
  --out "${WORK}/cold.doc" \
  > "${WORK}/cold.out" 2> "${WORK}/cold.err"
# The machine-readable result document carries per-phase wall clock.
grep -q '^result ' "${WORK}/cold.doc"
grep -q '^phase "projection"' "${WORK}/cold.doc"

echo "== trace: valid Chrome JSON with nonzero spans =="
python3 - "${WORK}/cold.trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
assert len(spans) > 0, "trace has no spans"
names = {e["name"] for e in spans}
for expected in ("service.run", "ga.restart", "compute.surrogate_search"):
    assert expected in names, f"missing span: {expected}"
ids = {e["args"]["id"] for e in spans}
for e in spans:
    parent = e["args"]["parent"]
    assert parent == 0 or parent in ids, f"unresolved parent in {e}"
print(f"trace ok: {len(spans)} spans")
EOF

echo "== batch: warm traced rerun must match byte-for-byte =="
"${SWAPP}" batch --requests "${WORK}/batch.req" --cache-dir "${CACHE}" \
  --metrics "${WORK}/warm.metrics" --trace "${WORK}/warm.trace.jsonl" \
  > "${WORK}/warm.out" 2> "${WORK}/warm.err"
diff -u "${WORK}/cold.out" "${WORK}/warm.out"
grep -q "warm batch: no simulation performed" "${WORK}/warm.err"

echo "== metrics: warm run hits the disk cache where the cold one missed =="
python3 - "${WORK}/cold.metrics" "${WORK}/warm.metrics" <<'EOF'
import json, sys
def counters(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = json.loads(line)
            if m["type"] == "counter":
                out[m["name"]] = m["value"]
    return out
cold, warm = counters(sys.argv[1]), counters(sys.argv[2])
assert cold.get("cache.misses", 0) >= 4, f"cold run should miss: {cold}"
assert warm.get("cache.misses", 0) == 0, f"warm run should not miss: {warm}"
assert warm.get("cache.disk_hits", 0) >= 4, f"warm run should hit disk: {warm}"
print(f"metrics ok: cold misses={cold['cache.misses']}, "
      f"warm disk hits={warm['cache.disk_hits']}")
EOF

echo "== stats: snapshot pretty-prints and filters =="
"${SWAPP}" stats --metrics "${WORK}/warm.metrics" > "${WORK}/stats.out"
grep -q "cache.disk_hits" "${WORK}/stats.out"
"${SWAPP}" stats --metrics "${WORK}/warm.metrics" --filter planner. \
  | grep -q "planner.requests"

echo "== stats: per-span self-time rollup from the warm JSONL trace =="
"${SWAPP}" stats --trace "${WORK}/warm.trace.jsonl" > "${WORK}/rollup.out"
grep -q "Self ms" "${WORK}/rollup.out"
grep -q "service.run" "${WORK}/rollup.out"

echo "== sweep: cold what-if expansion shares one GA search =="
cat > "${WORK}/sweep.spec" <<'EOF'
#swapp "swapp-sweep" v1
base "LU/C" "IBM POWER6 575" 8 1 16
axis "network.link_bandwidth_gbs" scale 0.5 1 2
EOF
"${SWAPP}" sweep --spec "${WORK}/sweep.spec" --cache-dir "${CACHE}" \
  --out "${WORK}/sweep-cold.doc" \
  > "${WORK}/sweep-cold.out" 2> "${WORK}/sweep-cold.err"
# Three comm-only points factor to one spec target, one GA search, three IMB
# databases (plan fields: compute comm searches naive_spec/search/imb).
grep -q '^plan 1 3 1 3 3 3$' "${WORK}/sweep-cold.doc"
[[ "$(grep -c '^point ' "${WORK}/sweep-cold.doc")" == 3 ]]
grep -q "1 GA search," "${WORK}/sweep-cold.err"

echo "== sweep: warm rerun replays from cache, byte-for-byte =="
"${SWAPP}" sweep --spec "${WORK}/sweep.spec" --cache-dir "${CACHE}" \
  > "${WORK}/sweep-warm.out" 2> "${WORK}/sweep-warm.err"
diff -u "${WORK}/sweep-cold.out" "${WORK}/sweep-warm.out"
grep -q "warm sweep: no simulation performed" "${WORK}/sweep-warm.err"

echo "== serve: daemon answers requests byte-identically to batch =="
SOCK="${WORK}/swapp.sock"
"${SWAPP}" serve --socket "${SOCK}" --cache-dir "${WORK}/serve-cache" \
  --metrics "${WORK}/serve.metrics" 2> "${WORK}/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCK}" ]] && break
  sleep 0.1
done
[[ -S "${SOCK}" ]] || { echo "server socket never appeared" >&2; exit 1; }

echo "== stats: cold daemon probe reports an empty queue =="
"${SWAPP}" stats --socket "${SOCK}" > "${WORK}/stats-cold.out"
grep -q "Server status: ok" "${WORK}/stats-cold.out"
grep -qE "queue depth +\| 0 / [0-9]+" "${WORK}/stats-cold.out"
"${SWAPP}" stats --socket "${SOCK}" --health > "${WORK}/health.out"
grep -q "Server status: ok" "${WORK}/health.out"

# Cold and warm served runs must both match the standalone batch table.
"${SWAPP}" request --socket "${SOCK}" --requests "${WORK}/batch.req" \
  > "${WORK}/served-cold.out" 2> "${WORK}/served-cold.err"
diff -u "${WORK}/cold.out" "${WORK}/served-cold.out"
"${SWAPP}" request --socket "${SOCK}" --requests "${WORK}/batch.req" \
  --out "${WORK}/served.doc" \
  > "${WORK}/served-warm.out" 2> "${WORK}/served-warm.err"
diff -u "${WORK}/cold.out" "${WORK}/served-warm.out"
# Result rows of the served document match the local batch document exactly
# (phase timings legitimately differ between runs).
diff -u <(grep '^result ' "${WORK}/cold.doc") \
        <(grep '^result ' "${WORK}/served.doc")

echo "== serve: sweeps ride the same socket and match the local run =="
"${SWAPP}" sweep --spec "${WORK}/sweep.spec" --socket "${SOCK}" \
  > "${WORK}/sweep-served.out" 2> "${WORK}/sweep-served.err"
diff -u "${WORK}/sweep-cold.out" "${WORK}/sweep-served.out"

echo "== stats: warm daemon probe carries request latency and counters =="
"${SWAPP}" stats --socket "${SOCK}" > "${WORK}/stats-warm.out"
grep -qE "requests served +\| [1-9]" "${WORK}/stats-warm.out"
grep -qE "inflight batches +\| 0" "${WORK}/stats-warm.out"
grep -q "server.request_us" "${WORK}/stats-warm.out"
grep -q "server.run_us" "${WORK}/stats-warm.out"
python3 - "${WORK}/stats-warm.out" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
# request wall time must be positive and admission wait <= full request time
# (the request spends its whole life >= its queue wait).
rows = {}
for line in text.splitlines():
    m = re.match(r"\| (server\.\w+)\s*\|\s*(\d+)\s*\|\s*([0-9.e+-]+)", line)
    if m:
        rows[m.group(1)] = (int(m.group(2)), float(m.group(3)))
assert rows["server.request_us"][0] >= 2, f"latency rows: {rows}"
assert rows["server.request_us"][1] > 0, f"latency rows: {rows}"
print(f"stats ok: {rows['server.request_us'][0]} requests, "
      f"mean {rows['server.request_us'][1]:.0f}us")
EOF

echo "== stats: prometheus exposition lists server head and histograms =="
"${SWAPP}" stats --socket "${SOCK}" --prometheus > "${WORK}/stats.prom"
grep -q "^swapp_server_up 1" "${WORK}/stats.prom"
grep -qE "^swapp_server_queue_depth [0-9]+" "${WORK}/stats.prom"
grep -qE "^swapp_server_requests_total [1-9]" "${WORK}/stats.prom"
grep -q 'swapp_server_request_us_bucket{le="+Inf"}' "${WORK}/stats.prom"

echo "== serve: SIGTERM drains gracefully and flushes metrics =="
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"
grep -q "served" "${WORK}/serve.err"
test -s "${WORK}/serve.metrics"
[[ ! -S "${SOCK}" ]] || { echo "socket file not removed on shutdown" >&2; exit 1; }

echo "== one-shot project reuses the batch's cache =="
"${SWAPP}" project --app LU --class C --tasks 16 \
  --target "IBM POWER6 575" --cache-dir "${CACHE}" \
  > "${WORK}/project1.out" 2> "${WORK}/project1.err"
"${SWAPP}" project --app LU --class C --tasks 16 \
  --target "IBM POWER6 575" --cache-dir "${CACHE}" \
  > "${WORK}/project2.out" 2> "${WORK}/project2.err"
diff -u "${WORK}/project1.out" "${WORK}/project2.out"
grep -q "disk cache" "${WORK}/project2.err"

echo "smoke ok"
