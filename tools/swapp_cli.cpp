// swapp — command-line projection tool.
//
// The collect-once / project-many workflow from a shell:
//
//   # collect benchmark databases (once per machine)
//   swapp collect-imb  --machine "IBM POWER6 575" --out p6.imb
//   swapp collect-spec --targets "IBM POWER6 575,IBM BlueGene/P" --out spec.lib
//
//   # profile an application on the base system (once per app)
//   swapp profile --app BT --class C --counts 16,32,64,128 --out bt_c.app
//
//   # project (as often as you like, no simulation involved)
//   swapp project --app-data bt_c.app --spec spec.lib
//                 --base-imb hydra.imb --target-imb p6.imb
//                 --target "IBM POWER6 575" --tasks 128
//
//   # everything in one go (collects what is missing); a cache directory
//   # makes the second run skip all simulation
//   swapp project --app BT --class C --target "IBM POWER6 575" --tasks 128
//                 --cache-dir .swapp-cache
//
//   # batch: many projections, planned together (shared artifacts built once)
//   swapp batch --requests batch.req --cache-dir .swapp-cache
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "io/persist.h"
#include "io/record.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/options.h"
#include "server/server.h"
#include "service/batch_format.h"
#include "service/service.h"
#include "support/error.h"
#include "sweep/runner.h"
#include "support/obs_report.h"
#include "support/table.h"

namespace {

using namespace swapp;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      R"(usage: swapp <command> [options]

commands:
  list-machines                       show the built-in machine models
  collect-imb   --machine NAME --out FILE
  collect-spec  --targets A,B,...  --out FILE
  profile       --app BT|SP|LU --class C|D [--threads N]
                [--counts 16,32,...] --out FILE
  project       --target NAME --tasks N [--cache-dir DIR]
                (--app NAME --class C|D [--threads N] |
                 --app-data FILE --spec FILE --base-imb FILE --target-imb FILE)
  batch         --requests FILE [--cache-dir DIR] [--out FILE]
  sweep         --spec FILE [--cache-dir DIR] [--cache-dir-max-bytes N[k|m|g]]
                [--out FILE] [--socket PATH]
  serve         --socket PATH [--cache-dir DIR] [--cache-dir-max-bytes N[k|m|g]]
                [--max-queue N] [--max-request-bytes N[k|m|g]]
                [--coalesce-window MS] [--metrics-sampling RATE]
  request       --socket PATH --requests FILE [--out FILE]
  stats         (--metrics FILE [--filter PREFIX] | --trace FILE.jsonl |
                 --socket PATH [--watch SECS] [--health] [--prometheus])

global options (before or after the command's own flags):
  --trace FILE    record a span trace of the run; a .jsonl extension writes
                  JSON-lines, anything else Chrome trace-event JSON
                  (loadable in chrome://tracing or Perfetto)
  --metrics FILE  record counters/gauges/histograms and write the snapshot
                  as JSONL; pretty-print it later with `swapp stats`

The base system is always the TAMU Hydra POWER5+ model.

The batch request file is an io/record document of kind "swapp-batch" v1;
each row is
  request "<BT|SP|LU>/<C|D>" "<target machine>" <tasks> [<threads> [<ref>]]
or, with a pre-collected profile,
  request "file:<path>" "<target machine>" <tasks> [<threads> [<ref>]]
where <ref> > 0 runs the GA surrogate search once at that reference task
count and rescales it to every other count of the same app/target group.

--cache-dir enables the content-addressed artifact cache: collected spec
libraries, IMB databases, and app profiles are stored there and reused by
later runs (a warm run performs no simulation).  --cache-dir-max-bytes caps
the disk tier; past the cap the oldest artifact files are evicted.

`serve` runs a long-lived projection daemon on a Unix-domain socket; it owns
the artifact cache and coalesces concurrently queued requests into one
planned batch, so shared artifacts and GA surrogate searches are deduplicated
across clients.  --coalesce-window MS makes the scheduler linger up to MS
milliseconds once it has work, so near-simultaneous clients land in the same
run (0, the default, drains eagerly).  SIGINT/SIGTERM drain in-flight work
before exiting.  Metrics recording stays on for the daemon's whole life:
hot-path metrics are sampled (1-in-64 by default; --metrics-sampling RATE
overrides, 1 records everything) with counts re-inflated on snapshot, while
the operator-facing server./service./cache./planner. metrics stay exact.

`stats --socket PATH` queries a running server's introspection endpoint:
uptime, queue depth, in-flight work, and per-request latency quantiles over
the last 1s/10s/60s windows plus the process lifetime.  --watch SECS repeats
the query every SECS seconds; --health asks only for the cheap liveness head;
--prometheus prints Prometheus text exposition instead of tables.
`stats --trace FILE.jsonl` aggregates a JSONL span trace per name: count,
total time, and self time (total minus child-span time), so the rows sum to
wall clock without double-counting nested spans.  Malformed lines are
skipped with a per-line warning.
`request` sends a batch request file to a running server and prints the same
table `swapp batch` would, byte for byte.

`sweep` runs a what-if design-space exploration: one base request plus
parameter axes over machine-model fields, expanded into the cross product of
concrete configurations and factored by a delta-aware planner so points that
share a compute- or comm-side configuration share SPEC libraries, GA
surrogate searches, and IMB databases.  The spec file is an io/record
document of kind "swapp-sweep" v1:
  base "<app>" "<target machine>" <tasks> [<threads> [<ref>]]
  axis "<field>" list|scale V1 V2 ...
  axis "<field>" range FROM TO STEPS
where <field> is a machine-model field (see machine/overrides.h; e.g.
"network.link_bandwidth_gbs", "cache.L2.capacity_kib") or the pseudo-axis
"tasks".  `scale` multiplies the target's current value; axes expand with
the last axis varying fastest.  With --socket the spec is served by a
running daemon (sharing its resident cache); otherwise it runs locally
against --cache-dir.  Either way stdout carries the same table, byte for
byte, and --out writes the machine-readable "swapp-sweep-result" document.

--out (on batch and request) additionally writes the machine-readable
"swapp-batch-result" document — result, phase, and artifact rows, the same
format the server speaks on the wire.
)";
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
    key = key.substr(2);
    if (key == "health" || key == "prometheus") {  // valueless switches
      flags[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage("flag --" + key + " needs a value");
    flags[key] = argv[++i];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage("missing required flag --" + key);
  return it->second;
}

std::vector<int> parse_counts(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(std::stoi(token));
  if (out.empty()) usage("empty count list");
  return out;
}

std::vector<std::string> parse_names(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(token);
  return out;
}

nas::Benchmark benchmark_from(const std::string& name) {
  if (name == "BT") return nas::Benchmark::kBT;
  if (name == "SP") return nas::Benchmark::kSP;
  if (name == "LU") return nas::Benchmark::kLU;
  usage("unknown app (use BT, SP, or LU): " + name);
}

nas::ProblemClass class_from(const std::string& name) {
  if (name == "C") return nas::ProblemClass::kC;
  if (name == "D") return nas::ProblemClass::kD;
  usage("unknown class (use C or D): " + name);
}

core::AppBaseData profile_app(nas::Benchmark bench, nas::ProblemClass cls,
                              int threads, const std::vector<int>& counts) {
  const machine::Machine base = machine::make_power5_hydra();
  const nas::NasApp app(bench, cls);
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  data.threads_per_rank = threads;
  for (const int c : counts) {
    std::cerr << "profiling " << app.name() << " at " << c << " tasks...\n";
    const auto st = app.run(base, c, machine::SmtMode::kSingleThread, threads);
    data.mpi_profiles.emplace(c, st->profile());
    data.mean_compute.emplace(c, st->profile().mean_compute());
    data.counters_st.emplace(c, st->counters());
    const auto smt = app.run(base, c, machine::SmtMode::kSmt, threads);
    data.counters_smt.emplace(c, smt->counters());
  }
  return data;
}

int cmd_list_machines() {
  TextTable table({"Machine", "Processor", "Cores/Node", "Total Cores"});
  for (const machine::Machine& m : machine::all_machines()) {
    table.add_row({m.name, m.processor.name, std::to_string(m.cores_per_node),
                   std::to_string(m.total_cores)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_collect_imb(const std::map<std::string, std::string>& flags) {
  const machine::Machine m = machine::machine_by_name(need(flags, "machine"));
  std::cerr << "measuring IMB-style tables on " << m.name << "...\n";
  io::save_imb_database(need(flags, "out"), imb::measure_database(m));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

int cmd_collect_spec(const std::map<std::string, std::string>& flags) {
  const machine::Machine base = machine::make_power5_hydra();
  std::vector<machine::Machine> targets;
  for (const std::string& name : parse_names(need(flags, "targets"))) {
    targets.push_back(machine::machine_by_name(name));
  }
  std::vector<int> counts = {4, 8, 16, 32, 64, 128};
  if (flags.count("counts")) counts = parse_counts(flags.at("counts"));
  std::cerr << "collecting SPEC-style library (base + " << targets.size()
            << " targets)...\n";
  io::save_spec_library(
      need(flags, "out"),
      experiments::collect_spec_library(base, targets, counts));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

int cmd_profile(const std::map<std::string, std::string>& flags) {
  const nas::Benchmark bench = benchmark_from(need(flags, "app"));
  const nas::ProblemClass cls = class_from(need(flags, "class"));
  const int threads =
      flags.count("threads") ? std::stoi(flags.at("threads")) : 1;
  std::vector<int> counts =
      bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                   : std::vector<int>{16, 32, 64, 128};
  if (flags.count("counts")) counts = parse_counts(flags.at("counts"));
  io::save_app_data(need(flags, "out"),
                    profile_app(bench, cls, threads, counts));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

/// Reports where a (possibly cached) artifact came from.
void note_source(const std::string& what, service::ArtifactSource source) {
  std::cerr << what << ": " << service::to_string(source) << "\n";
}

int cmd_project(const std::map<std::string, std::string>& flags) {
  const std::string target_name = need(flags, "target");
  const int tasks = std::stoi(need(flags, "tasks"));
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::machine_by_name(target_name);

  // Everything that has to be collected (rather than loaded from an
  // explicit file) goes through the artifact cache, so a warm --cache-dir
  // run performs no simulation at all.
  service::ArtifactCache cache(
      flags.count("cache-dir") ? flags.at("cache-dir") : "");
  service::ArtifactSource source = service::ArtifactSource::kComputed;

  core::AppBaseData app_data;
  if (flags.count("app-data")) {
    app_data = io::load_app_data(flags.at("app-data"));
  } else {
    const nas::Benchmark bench = benchmark_from(need(flags, "app"));
    const nas::ProblemClass cls = class_from(need(flags, "class"));
    const int threads =
        flags.count("threads") ? std::stoi(flags.at("threads")) : 1;
    const std::vector<int> counts =
        bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{16, 32, 64, 128};
    const std::string app_name = nas::NasApp(bench, cls).name();
    app_data = *cache.app_data(
        service::describe_app_inputs(app_name, base, threads, counts, counts),
        [&] { return profile_app(bench, cls, threads, counts); }, &source);
    note_source("app profile (" + app_name + ")", source);
  }

  const std::vector<int> spec_counts = {4, 8, 16, 32, 64, 128};
  core::SpecLibrary spec;
  if (flags.count("spec")) {
    spec = io::load_spec_library(flags.at("spec"));
  } else {
    spec = *cache.spec_library(
        service::describe_spec_inputs(base, {target}, spec_counts),
        [&] {
          std::cerr << "collecting SPEC-style library...\n";
          return experiments::collect_spec_library(base, {target},
                                                   spec_counts);
        },
        &source);
    note_source("spec library", source);
  }

  const auto imb_for = [&](const machine::Machine& m) {
    const auto db = cache.imb_database(
        service::describe_imb_inputs(m, imb::default_core_counts(),
                                     imb::default_message_sizes()),
        [&] { return imb::measure_database(m); }, &source);
    note_source("IMB database (" + m.name + ")", source);
    return *db;
  };
  imb::ImbDatabase base_imb = flags.count("base-imb")
                                  ? io::load_imb_database(flags.at("base-imb"))
                                  : imb_for(base);
  imb::ImbDatabase target_imb =
      flags.count("target-imb")
          ? io::load_imb_database(flags.at("target-imb"))
          : imb_for(target);

  core::Projector projector(base, spec, std::move(base_imb));
  projector.add_target(target_name, std::move(target_imb));
  const core::ProjectionResult r =
      projector.project(app_data, target_name, tasks);

  TextTable table({"Quantity", "Seconds"});
  table.set_title("Projection of " + app_data.app + " at " +
                  std::to_string(tasks) + " tasks onto " + target_name);
  table.add_row({"compute", TextTable::num(r.compute.target_compute, 3)});
  table.add_row({"communication (transfer)",
                 TextTable::num(r.comm.target_total() -
                                    r.comm.of(mpi::RoutineClass::
                                                  kPointToPointNonblocking)
                                        .target_wait -
                                    r.comm.of(mpi::RoutineClass::kCollective)
                                        .target_wait,
                                3)});
  table.add_row({"communication (total)",
                 TextTable::num(r.comm.target_total(), 3)});
  table.add_row({"TOTAL", TextTable::num(r.total_target(), 3)});
  table.print(std::cout);

  std::cout << "surrogate:";
  for (const core::SurrogateTerm& t : r.compute.surrogate.terms) {
    std::cout << ' ' << t.benchmark << '*' << TextTable::num(t.weight, 3);
  }
  std::cout << "\n";
  return 0;
}

/// Checks one batch row's app shape without registering anything; returns an
/// error message, or "" when the row is servable.  Shared between `batch`
/// (where it turns into usage errors) and `serve` (where it is the
/// admission-time RowValidator, run on connection threads — pure and
/// thread-safe by construction).
std::string validate_nas_row(const service::BatchRow& row) {
  if (row.app.rfind("file:", 0) == 0) {
    const std::filesystem::path path = row.app.substr(5);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      return "app profile file not found: " + path.string();
    }
    return {};
  }
  const auto slash = row.app.find('/');
  if (slash == std::string::npos) {
    return "app must be 'BT|SP|LU/C|D' or 'file:PATH': " + row.app;
  }
  const std::string bench = row.app.substr(0, slash);
  if (bench != "BT" && bench != "SP" && bench != "LU") {
    return "unknown app (use BT, SP, or LU): " + bench;
  }
  const std::string cls = row.app.substr(slash + 1);
  if (cls != "C" && cls != "D") return "unknown class (use C or D): " + cls;
  return {};
}

/// Registers every app named by `rows` with the engine — "file:PATH" rows
/// load eagerly, NAS rows get a lazy profiling collector keyed for the
/// artifact cache.  Shared between `batch`, `sweep`, and the server's
/// per-batch/per-sweep setup (ProjectionService and sweep::SweepRunner
/// expose the same registration surface), so every path produces identical
/// cache keys.  Throws InvalidArgument for unservable app shapes.
template <typename Engine>
void register_row_apps(Engine& svc, const machine::Machine& base,
                       const std::vector<service::BatchRow>& rows) {
  for (const service::BatchRow& row : rows) {
    if (svc.has_app(row.app)) continue;
    if (row.app.rfind("file:", 0) == 0) {
      svc.add_app_file(row.app, row.app.substr(5));
      continue;
    }
    const std::string message = validate_nas_row(row);
    if (!message.empty()) throw swapp::InvalidArgument(message);
    const auto slash = row.app.find('/');
    const std::string bench_name = row.app.substr(0, slash);
    const nas::Benchmark bench = bench_name == "BT" ? nas::Benchmark::kBT
                                 : bench_name == "SP" ? nas::Benchmark::kSP
                                                      : nas::Benchmark::kLU;
    const nas::ProblemClass cls = row.app.substr(slash + 1) == "C"
                                      ? nas::ProblemClass::kC
                                      : nas::ProblemClass::kD;
    const std::vector<int> counts =
        bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{16, 32, 64, 128};
    const int threads = row.threads;
    svc.add_app(row.app,
                service::describe_app_inputs(nas::NasApp(bench, cls).name(),
                                             base, threads, counts, counts),
                [=] { return profile_app(bench, cls, threads, counts); });
  }
}

template <typename Engine>
void install_spec_collector(Engine& svc) {
  svc.set_spec_collector(
      [](const machine::Machine& b, const std::vector<machine::Machine>& t,
         const std::vector<int>& counts) {
        return experiments::collect_spec_library(b, t, counts);
      });
}

/// One row of the batch result table, decoupled from where the numbers came
/// from (a local BatchReport or a decoded server response).
struct BatchTableRow {
  std::string app;
  std::string target;
  int tasks = 0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double total_s = 0.0;
};

/// Renders the batch result table to stdout.  `batch` and `request` both
/// call this, and record doubles round-trip exactly, so their stdout is
/// byte-identical for the same requests.
void print_batch_table(const std::vector<BatchTableRow>& rows) {
  TextTable table({"App", "Target", "Tasks", "Compute s", "Comm s",
                   "Total s"});
  table.set_title("Batch projections (" + std::to_string(rows.size()) +
                  " requests)");
  for (const BatchTableRow& r : rows) {
    table.add_row({r.app, r.target, std::to_string(r.tasks),
                   TextTable::num(r.compute_s, 3),
                   TextTable::num(r.comm_s, 3),
                   TextTable::num(r.total_s, 3)});
  }
  table.print(std::cout);
}

/// Writes the machine-readable "swapp-batch-result" document — result,
/// phase, and artifact rows, exactly the payload a server would answer
/// with — so downstream tooling parses one format whether the run was
/// local (`batch --out`) or served (`request --out`).
void write_result_document(const std::string& path,
                           const server::Response& response) {
  std::ofstream out(path);
  if (!out) throw FileError("cannot open output file for writing", path);
  out << server::encode_response(response);
  std::cerr << "wrote " << path << "\n";
}

std::vector<service::BatchRow> read_batch_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open requests file: " + path);
  try {
    return service::read_batch_requests(in);
  } catch (const swapp::Error& e) {
    usage(e.what());
  }
}

int cmd_batch(const std::map<std::string, std::string>& flags) {
  const machine::Machine base = machine::make_power5_hydra();
  // Probe --out before the (possibly expensive) run: an unwritable path
  // should fail in milliseconds, not after minutes of simulation.
  if (flags.count("out")) obs::require_writable(flags.at("out"));
  const std::vector<service::BatchRow> rows =
      read_batch_file(need(flags, "requests"));

  // --- configure the service ----------------------------------------------
  std::vector<machine::Machine> targets;
  for (const service::BatchRow& row : rows) {
    bool known = false;
    for (const machine::Machine& t : targets) known |= t.name == row.target;
    if (!known) targets.push_back(machine::machine_by_name(row.target));
  }
  service::ServiceConfig config;
  if (flags.count("cache-dir")) config.cache_dir = flags.at("cache-dir");
  if (flags.count("cache-dir-max-bytes")) {
    config.cache_dir_max_bytes =
        server::parse_byte_size(flags.at("cache-dir-max-bytes"));
  }
  service::ProjectionService svc(base, targets, config);
  install_spec_collector(svc);
  try {
    register_row_apps(svc, base, rows);
  } catch (const swapp::Error& e) {
    usage(e.what());
  }

  std::vector<service::ServiceRequest> requests;
  requests.reserve(rows.size());
  for (const service::BatchRow& row : rows) {
    requests.push_back(service::to_service_request(row));
  }

  // --- run -----------------------------------------------------------------
  // Progress and reuse information go to stderr; stdout carries only the
  // result table, so cold and warm runs can be diffed byte-for-byte.  The
  // plan/cache summary is the metrics snapshot itself, so recording is
  // forced on for the batch whether or not --metrics was given.
  obs::set_metrics_enabled(true);
  const service::ProjectionService::BatchReport report = svc.run(requests);
  for (const service::ProjectionService::ArtifactNote& note :
       report.artifacts) {
    note_source(note.name, note.source);
  }
  const obs::MetricsSnapshot snapshot = obs::metrics_snapshot();
  print_metrics(std::cerr, snapshot, "planner.");
  print_metrics(std::cerr, snapshot, "cache.");
  std::cerr << "phases:";
  for (const service::ProjectionService::PhaseTime& p : report.phases) {
    std::cerr << ' ' << p.phase << '=' << TextTable::num(p.seconds, 3) << 's';
  }
  std::cerr << "\n";
  if (report.warm()) std::cerr << "warm batch: no simulation performed\n";

  if (flags.count("out")) {
    server::Response document;
    document.ok = true;
    for (const core::ProjectionResult& r : report.results) {
      document.results.push_back(server::ResultRow{
          r.app, r.target, r.cores, r.compute.target_compute,
          r.comm.target_total(), r.total_target()});
    }
    for (const service::ProjectionService::PhaseTime& p : report.phases) {
      document.phases.push_back(server::PhaseRow{p.phase, p.seconds});
    }
    for (const service::ProjectionService::ArtifactNote& note :
         report.artifacts) {
      document.artifacts.push_back(
          server::ArtifactRow{note.name, to_string(note.source)});
    }
    write_result_document(flags.at("out"), document);
  }

  std::vector<BatchTableRow> table_rows;
  for (const core::ProjectionResult& r : report.results) {
    table_rows.push_back(BatchTableRow{r.app, r.target, r.cores,
                                       r.compute.target_compute,
                                       r.comm.target_total(),
                                       r.total_target()});
  }
  print_batch_table(table_rows);
  return 0;
}

// --- sweep ------------------------------------------------------------------

/// Plan summary rebuilt from the result document — the same wording
/// SweepPlan::describe() produces, so local and served sweeps log the same
/// factoring line.
std::string describe_sweep_plan(const sweep::SweepResultDoc& doc) {
  std::ostringstream os;
  os << doc.points << (doc.points == 1 ? " point -> " : " points -> ")
     << doc.compute_classes << " spec target"
     << (doc.compute_classes == 1 ? "" : "s") << ", " << doc.searches
     << " GA search" << (doc.searches == 1 ? "" : "es") << ", "
     << doc.comm_classes << " imb database"
     << (doc.comm_classes == 1 ? "" : "s") << " (naive: "
     << doc.naive_spec_targets << "/" << doc.naive_searches << "/"
     << doc.naive_imb_databases << ")";
  return os.str();
}

/// Renders the sweep table: one row per point, one column per axis (the
/// resolved machine-model coordinate), then the projected seconds.  Local
/// and served sweeps both print from the document, and record doubles
/// round-trip exactly, so their stdout is byte-identical for the same spec.
void print_sweep_table(const sweep::SweepResultDoc& doc) {
  std::vector<std::string> headers{"Point"};
  for (const sweep::SweepResultDoc::AxisRow& axis : doc.axes) {
    headers.push_back(axis.field);
  }
  for (const char* tail : {"Tasks", "Compute s", "Comm s", "Total s"}) {
    headers.push_back(tail);
  }
  TextTable table(headers);
  table.set_title("Sweep projections (" + doc.app + " -> " + doc.target +
                  ", " + std::to_string(doc.points) + " points)");
  for (const sweep::SweepResultDoc::PointRow& row : doc.rows) {
    std::vector<std::string> cells{std::to_string(row.index)};
    for (const sweep::SweepResultDoc::AxisRow& axis : doc.axes) {
      std::string cell = "-";
      for (const sweep::Coordinate& coord : row.coords) {
        if (coord.field == axis.field) cell = TextTable::num(coord.value, 3);
      }
      cells.push_back(cell);
    }
    cells.push_back(std::to_string(row.tasks));
    cells.push_back(TextTable::num(row.compute_s, 3));
    cells.push_back(TextTable::num(row.comm_s, 3));
    cells.push_back(TextTable::num(row.total_s, 3));
    table.add_row(cells);
  }
  table.print(std::cout);
}

/// Writes the machine-readable "swapp-sweep-result" document, exactly the
/// payload a server answers a sweep request with.
void write_sweep_document(const std::string& path,
                          const sweep::SweepResultDoc& doc) {
  std::ofstream out(path);
  if (!out) throw FileError("cannot open output file for writing", path);
  sweep::write_sweep_result(out, doc);
  std::cerr << "wrote " << path << "\n";
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  if (flags.count("out")) obs::require_writable(flags.at("out"));
  const std::string spec_path = need(flags, "spec");
  std::ifstream in(spec_path);
  if (!in) usage("cannot open sweep spec file: " + spec_path);
  sweep::SweepSpec spec;
  try {
    spec = sweep::read_sweep_spec(in);
  } catch (const swapp::Error& e) {
    usage(e.what());
  }

  if (flags.count("socket")) {
    // Served path: forward the canonical spec document; the daemon expands,
    // plans, and executes it against its resident cache, coalesced with the
    // batches around it.
    std::ostringstream payload;
    sweep::write_sweep_spec(payload, spec);
    server::Client client(flags.at("socket"));
    const std::string answer = client.call_raw(payload.str());
    if (!sweep::is_sweep_result(answer)) {
      const server::Response response = server::decode_response(answer);
      std::cerr << "error: server " << server::to_string(response.error)
                << ": " << response.message << "\n";
      return 1;
    }
    std::istringstream decoded(answer);
    const sweep::SweepResultDoc doc = sweep::read_sweep_result(decoded);
    std::cerr << "plan: " << describe_sweep_plan(doc) << "\n";
    for (const sweep::SweepResultDoc::ArtifactRow& a : doc.artifacts) {
      std::cerr << a.name << ": " << a.source << "\n";
    }
    std::cerr << "phases:";
    for (const sweep::SweepResultDoc::PhaseRow& p : doc.phases) {
      std::cerr << ' ' << p.phase << '=' << TextTable::num(p.seconds, 3)
                << 's';
    }
    std::cerr << "\n";
    if (flags.count("out")) write_sweep_document(flags.at("out"), doc);
    print_sweep_table(doc);
    return 0;
  }

  // Local path: a standalone SweepRunner over --cache-dir.  Progress and
  // reuse information go to stderr; stdout carries only the table, so cold
  // and warm sweeps can be diffed byte-for-byte.
  const machine::Machine base = machine::make_power5_hydra();
  sweep::SweepConfig config;
  if (flags.count("cache-dir")) config.cache_dir = flags.at("cache-dir");
  if (flags.count("cache-dir-max-bytes")) {
    config.cache_dir_max_bytes =
        server::parse_byte_size(flags.at("cache-dir-max-bytes"));
  }
  sweep::SweepRunner runner(base, {machine::machine_by_name(spec.target)},
                            config);
  install_spec_collector(runner);
  try {
    register_row_apps(runner, base,
                      {service::BatchRow{spec.app, spec.target, spec.tasks,
                                         spec.threads, spec.reference}});
  } catch (const swapp::Error& e) {
    usage(e.what());
  }

  obs::set_metrics_enabled(true);
  const std::size_t total = sweep::point_count(spec);
  const sweep::SweepRunner::SweepReport report = runner.run(
      spec, [total](const sweep::SweepPoint& point,
                    const core::ProjectionResult& result) {
        std::cerr << "point " << point.index + 1 << "/" << total << ": "
                  << point.machine.name << " tasks=" << point.tasks << " -> "
                  << TextTable::num(result.total_target(), 3) << "s\n";
      });
  const sweep::SweepResultDoc doc = sweep::make_sweep_result(spec, report);

  std::cerr << "plan: " << describe_sweep_plan(doc) << "\n";
  for (const sweep::SweepRunner::ArtifactNote& note : report.artifacts) {
    note_source(note.name, note.source);
  }
  const obs::MetricsSnapshot snapshot = obs::metrics_snapshot();
  print_metrics(std::cerr, snapshot, "sweep.");
  print_metrics(std::cerr, snapshot, "cache.");
  std::cerr << "phases:";
  for (const sweep::SweepRunner::PhaseTime& p : report.phases) {
    std::cerr << ' ' << p.phase << '=' << TextTable::num(p.seconds, 3) << 's';
  }
  std::cerr << "\n";
  if (report.warm()) std::cerr << "warm sweep: no simulation performed\n";

  if (flags.count("out")) write_sweep_document(flags.at("out"), doc);
  print_sweep_table(doc);
  return 0;
}

// --- serve / request --------------------------------------------------------

/// Written by cmd_serve before installing the signal handlers; the handler
/// only does an async-signal-safe write to it.
int g_shutdown_fd = -1;

void handle_shutdown_signal(int) {
  if (g_shutdown_fd < 0) return;
  const char byte = 's';
  [[maybe_unused]] const ssize_t rc = ::write(g_shutdown_fd, &byte, 1);
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const machine::Machine base = machine::make_power5_hydra();
  server::ServerConfig config;
  config.socket_path = server::parse_socket_path(need(flags, "socket"));
  if (flags.count("cache-dir")) {
    config.service.cache_dir = flags.at("cache-dir");
  }
  if (flags.count("cache-dir-max-bytes")) {
    config.service.cache_dir_max_bytes =
        server::parse_byte_size(flags.at("cache-dir-max-bytes"));
  }
  if (flags.count("max-queue")) {
    config.max_queue = server::parse_queue_depth(flags.at("max-queue"));
  }
  if (flags.count("max-request-bytes")) {
    config.max_request_bytes = static_cast<std::size_t>(
        server::parse_byte_size(flags.at("max-request-bytes")));
  }
  if (flags.count("coalesce-window")) {
    config.coalesce_window =
        server::parse_coalesce_window(flags.at("coalesce-window"));
  }

  // The daemon's metrics are always on: sampling bounds the hot-path cost
  // (1-in-64 by default, counts re-inflated on snapshot), while the
  // operator-facing prefixes stay exact — queue depths, cache hit rates,
  // and request-latency quantiles must not be statistical estimates.
  obs::set_metrics_enabled(true);
  obs::set_metrics_sampling(
      flags.count("metrics-sampling")
          ? server::parse_sampling_rate(flags.at("metrics-sampling"))
          : 1.0 / 64.0);
  for (const char* prefix : {"server.", "service.", "cache.", "planner."}) {
    obs::set_metrics_sampling(prefix, 1.0);
  }

  server::Server srv(
      base, config,
      [base](service::ProjectionService& svc,
             const std::vector<service::BatchRow>& rows) {
        install_spec_collector(svc);
        register_row_apps(svc, base, rows);
      },
      [](const service::BatchRow& row) { return validate_nas_row(row); },
      [base](sweep::SweepRunner& runner, const sweep::SweepSpec& spec) {
        install_spec_collector(runner);
        register_row_apps(runner, base,
                          {service::BatchRow{spec.app, spec.target, spec.tasks,
                                             spec.threads, spec.reference}});
      });
  srv.start();

  g_shutdown_fd = srv.shutdown_fd();
  struct sigaction action = {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::cerr << "serving on " << config.socket_path.string() << " (queue depth "
            << config.max_queue << ")\n";
  srv.wait();
  g_shutdown_fd = -1;
  std::cerr << "served " << srv.requests_served() << " requests in "
            << srv.batches_run() << " batches over "
            << srv.connections_accepted() << " connections ("
            << srv.busy_rejections() << " busy, " << srv.protocol_errors()
            << " protocol errors)\n";
  return 0;
}

int cmd_request(const std::map<std::string, std::string>& flags) {
  if (flags.count("out")) obs::require_writable(flags.at("out"));
  const std::vector<service::BatchRow> rows =
      read_batch_file(need(flags, "requests"));
  // Re-encode rather than forwarding the file verbatim: the wire payload is
  // then always the canonical five-field document, whatever the file used.
  std::ostringstream payload;
  service::write_batch_requests(payload, rows);

  server::Client client(need(flags, "socket"));
  const server::Response response = client.call(payload.str());
  if (!response.ok) {
    std::cerr << "error: server " << server::to_string(response.error) << ": "
              << response.message << "\n";
    return 1;
  }

  for (const server::ArtifactRow& a : response.artifacts) {
    std::cerr << a.name << ": " << a.source << "\n";
  }
  std::cerr << "phases:";
  for (const server::PhaseRow& p : response.phases) {
    std::cerr << ' ' << p.phase << '=' << TextTable::num(p.seconds, 3) << 's';
  }
  std::cerr << "\n";

  // Record doubles round-trip exactly, so re-encoding the decoded response
  // reproduces the server's result rows byte for byte.
  if (flags.count("out")) write_result_document(flags.at("out"), response);

  std::vector<BatchTableRow> table_rows;
  for (const server::ResultRow& r : response.results) {
    table_rows.push_back(BatchTableRow{r.app, r.target, r.tasks, r.compute_s,
                                       r.comm_s, r.total_s});
  }
  print_batch_table(table_rows);
  return 0;
}

// --- stats rendering --------------------------------------------------------

/// The head table every stats/health answer carries: liveness, queue and
/// in-flight state, lifetime counters.
void print_stats_head(std::ostream& os, const server::StatsReport& r) {
  TextTable table({"Field", "Value"});
  table.set_title(std::string("Server status: ") +
                  (r.draining ? "draining" : "ok"));
  table.add_row({"uptime s", TextTable::num(r.uptime_s, 1)});
  table.add_row({"queue depth", std::to_string(r.queue_depth) + " / " +
                                    std::to_string(r.queue_capacity)});
  table.add_row({"inflight batches", std::to_string(r.inflight_batches)});
  table.add_row({"inflight rows", std::to_string(r.inflight_rows)});
  table.add_row({"connections", std::to_string(r.connections)});
  table.add_row({"requests served", std::to_string(r.requests)});
  table.add_row({"batches run", std::to_string(r.batches)});
  table.add_row({"busy rejections", std::to_string(r.busy_rejections)});
  table.add_row({"protocol errors", std::to_string(r.protocol_errors)});
  table.add_row({"stats requests", std::to_string(r.stats_requests)});
  table.print(os);
}

/// One trailing window, compact: per-second counter rates and latency
/// quantiles.  Zero-activity metrics are dropped — a quiet window prints
/// nothing but its title line.
void print_stats_scope(std::ostream& os, const server::StatsScope& scope) {
  os << "\nwindow " << scope.name << " (covering "
     << TextTable::num(scope.seconds, 1) << "s)\n";
  const double seconds = scope.seconds > 0.0 ? scope.seconds : 1.0;
  TextTable counters({"Counter", "Delta", "Rate/s"});
  bool any_counter = false;
  for (const obs::CounterValue& c : scope.metrics.counters) {
    if (c.value == 0) continue;
    any_counter = true;
    counters.add_row({c.name, std::to_string(c.value),
                      TextTable::num(static_cast<double>(c.value) / seconds,
                                     2)});
  }
  if (any_counter) counters.print(os);
  TextTable hist({"Histogram", "Count", "Mean", "p50", "p99", "Max"});
  bool any_hist = false;
  for (const obs::HistogramValue& h : scope.metrics.histograms) {
    if (h.count == 0) continue;
    any_hist = true;
    hist.add_row({h.name, std::to_string(h.count),
                  TextTable::num(h.sum / static_cast<double>(h.count), 1),
                  TextTable::num(h.quantile(0.5), 1),
                  TextTable::num(h.quantile(0.99), 1),
                  TextTable::num(h.max, 1)});
  }
  if (any_hist) hist.print(os);
}

void print_stats_report(std::ostream& os, const server::StatsReport& r) {
  print_stats_head(os, r);
  for (const server::StatsScope& scope : r.scopes) {
    if (scope.name == "lifetime") {
      os << "\nlifetime metrics\n";
      print_metrics(os, scope.metrics);
    } else {
      print_stats_scope(os, scope);
    }
  }
}

/// Prometheus text exposition: the server head as swapp_server_* series,
/// then the lifetime snapshot (scrapers derive windows themselves).
void print_stats_prometheus(std::ostream& os, const server::StatsReport& r) {
  const auto gauge = [&os](const std::string& name, const std::string& v) {
    os << "# TYPE " << name << " gauge\n" << name << " " << v << "\n";
  };
  const auto counter = [&os](const std::string& name, std::uint64_t v) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  };
  gauge("swapp_server_up", r.draining ? "0" : "1");
  gauge("swapp_server_uptime_seconds", TextTable::num(r.uptime_s, 3));
  gauge("swapp_server_queue_depth", std::to_string(r.queue_depth));
  gauge("swapp_server_queue_capacity", std::to_string(r.queue_capacity));
  gauge("swapp_server_inflight_batches", std::to_string(r.inflight_batches));
  gauge("swapp_server_inflight_rows", std::to_string(r.inflight_rows));
  counter("swapp_server_connections_total", r.connections);
  counter("swapp_server_requests_total", r.requests);
  counter("swapp_server_batches_total", r.batches);
  counter("swapp_server_busy_rejections_total", r.busy_rejections);
  counter("swapp_server_protocol_errors_total", r.protocol_errors);
  counter("swapp_server_stats_requests_total", r.stats_requests);
  for (const server::StatsScope& scope : r.scopes) {
    if (scope.name != "lifetime") continue;
    // The head already exported these as authoritative swapp_server_* series;
    // re-emitting the obs counters of the same name would produce duplicate
    // series, which scrapers reject.
    obs::MetricsSnapshot metrics = scope.metrics;
    metrics.counters.erase(
        std::remove_if(metrics.counters.begin(), metrics.counters.end(),
                       [](const obs::CounterValue& c) {
                         return c.name == "server.requests" ||
                                c.name == "server.batches" ||
                                c.name == "server.stats_requests";
                       }),
        metrics.counters.end());
    obs::write_metrics_prometheus(os, metrics);
  }
}

int cmd_stats_live(const std::map<std::string, std::string>& flags) {
  const std::string socket = flags.at("socket");
  const unsigned watch = flags.count("watch")
                             ? server::parse_watch_seconds(flags.at("watch"))
                             : 0;
  const std::string request = server::encode_stats_request(
      flags.count("health") ? server::StatsKind::kHealth
                            : server::StatsKind::kStats);
  while (true) {
    // Reconnect per round: a watch loop then survives a server restart the
    // same way a fresh invocation would.
    server::Client client(socket);
    const server::StatsReport report =
        server::decode_stats_report(client.call_raw(request));
    if (flags.count("prometheus")) {
      print_stats_prometheus(std::cout, report);
    } else {
      print_stats_report(std::cout, report);
    }
    if (watch == 0) break;
    std::cout << "\n" << std::flush;
    ::sleep(watch);
  }
  return 0;
}

int cmd_stats(const std::map<std::string, std::string>& flags) {
  if (flags.count("socket")) {
    SWAPP_REQUIRE(!flags.count("metrics") && !flags.count("trace"),
                  "stats takes --socket, --metrics, or --trace, not several");
    return cmd_stats_live(flags);
  }
  if (flags.count("trace")) {
    SWAPP_REQUIRE(!flags.count("metrics"),
                  "stats takes --metrics or --trace, not both");
    const std::string path = flags.at("trace");
    std::ifstream in(path);
    SWAPP_REQUIRE(in.good(), "cannot open trace file '" + path + "'");
    // Lenient read: a corrupted line (half-written flush, truncation) warns
    // and skips, so one bad record does not hide the rest of the trace.
    const obs::TraceReadReport report =
        obs::read_trace_jsonl_lenient(in, std::cerr);
    if (report.skipped_lines > 0) {
      std::cerr << "warning: skipped " << report.skipped_lines
                << " malformed line(s) of '" << path << "'\n";
    }
    if (report.events.empty()) {
      std::cerr << "trace file '" << path
                << "' contains no events; nothing to aggregate\n";
      return 0;
    }
    print_span_rollup(std::cout, rollup_spans(report.events));
    return 0;
  }
  const obs::MetricsSnapshot snapshot =
      obs::load_metrics_file(need(flags, "metrics"));
  print_metrics(std::cout, snapshot,
                flags.count("filter") ? flags.at("filter") : "");
  return 0;
}

int dispatch(const std::string& command,
             const std::map<std::string, std::string>& flags) {
  if (command == "list-machines") return cmd_list_machines();
  if (command == "collect-imb") return cmd_collect_imb(flags);
  if (command == "collect-spec") return cmd_collect_spec(flags);
  if (command == "profile") return cmd_profile(flags);
  if (command == "project") return cmd_project(flags);
  if (command == "batch") return cmd_batch(flags);
  if (command == "sweep") return cmd_sweep(flags);
  if (command == "serve") return cmd_serve(flags);
  if (command == "request") return cmd_request(flags);
  if (command == "stats") return cmd_stats(flags);
  usage("unknown command: " + command);
}

/// Removes a global flag from the parsed set (commands never see it);
/// returns its value, or "" when absent.
std::string take_flag(std::map<std::string, std::string>& flags,
                      const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) return {};
  std::string value = it->second;
  flags.erase(it);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    auto flags = parse_flags(argc, argv, 2);
    // `stats` reads a snapshot rather than recording one, so it keeps its
    // --metrics flag; everywhere else --trace/--metrics are the global
    // recording switches.
    std::string trace_path;
    std::string metrics_path;
    if (command != "stats") {
      trace_path = take_flag(flags, "trace");
      metrics_path = take_flag(flags, "metrics");
    }
    // Probe writability up front: a typo'd --trace/--metrics path should
    // fail before the run, not throw away its recording afterwards.
    if (!trace_path.empty()) obs::require_writable(trace_path);
    if (!metrics_path.empty()) obs::require_writable(metrics_path);
    if (!trace_path.empty()) obs::set_tracing_enabled(true);
    if (!metrics_path.empty()) obs::set_metrics_enabled(true);
    const int rc = dispatch(command, flags);
    // Written only on success: an aborted command would leave open spans and
    // a half-told story.
    if (!trace_path.empty()) {
      obs::write_trace_file(trace_path, obs::drain_trace());
    }
    if (!metrics_path.empty()) {
      obs::write_metrics_file(metrics_path, obs::metrics_snapshot());
    }
    return rc;
  } catch (const swapp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
