// swapp — command-line projection tool.
//
// The collect-once / project-many workflow from a shell:
//
//   # collect benchmark databases (once per machine)
//   swapp collect-imb  --machine "IBM POWER6 575" --out p6.imb
//   swapp collect-spec --targets "IBM POWER6 575,IBM BlueGene/P" --out spec.lib
//
//   # profile an application on the base system (once per app)
//   swapp profile --app BT --class C --counts 16,32,64,128 --out bt_c.app
//
//   # project (as often as you like, no simulation involved)
//   swapp project --app-data bt_c.app --spec spec.lib
//                 --base-imb hydra.imb --target-imb p6.imb
//                 --target "IBM POWER6 575" --tasks 128
//
//   # everything in one go (collects what is missing); a cache directory
//   # makes the second run skip all simulation
//   swapp project --app BT --class C --target "IBM POWER6 575" --tasks 128
//                 --cache-dir .swapp-cache
//
//   # batch: many projections, planned together (shared artifacts built once)
//   swapp batch --requests batch.req --cache-dir .swapp-cache
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "io/persist.h"
#include "io/record.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "support/error.h"
#include "support/obs_report.h"
#include "support/table.h"

namespace {

using namespace swapp;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      R"(usage: swapp <command> [options]

commands:
  list-machines                       show the built-in machine models
  collect-imb   --machine NAME --out FILE
  collect-spec  --targets A,B,...  --out FILE
  profile       --app BT|SP|LU --class C|D [--threads N]
                [--counts 16,32,...] --out FILE
  project       --target NAME --tasks N [--cache-dir DIR]
                (--app NAME --class C|D [--threads N] |
                 --app-data FILE --spec FILE --base-imb FILE --target-imb FILE)
  batch         --requests FILE [--cache-dir DIR]
  stats         --metrics FILE [--filter PREFIX]

global options (before or after the command's own flags):
  --trace FILE    record a span trace of the run; a .jsonl extension writes
                  JSON-lines, anything else Chrome trace-event JSON
                  (loadable in chrome://tracing or Perfetto)
  --metrics FILE  record counters/gauges/histograms and write the snapshot
                  as JSONL; pretty-print it later with `swapp stats`

The base system is always the TAMU Hydra POWER5+ model.

The batch request file is an io/record document of kind "swapp-batch" v1;
each row is
  request "<BT|SP|LU>/<C|D>" "<target machine>" <tasks> [<threads> [<ref>]]
or, with a pre-collected profile,
  request "file:<path>" "<target machine>" <tasks> [<threads> [<ref>]]
where <ref> > 0 runs the GA surrogate search once at that reference task
count and rescales it to every other count of the same app/target group.

--cache-dir enables the content-addressed artifact cache: collected spec
libraries, IMB databases, and app profiles are stored there and reused by
later runs (a warm run performs no simulation).
)";
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument: " + key);
    key = key.substr(2);
    if (i + 1 >= argc) usage("flag --" + key + " needs a value");
    flags[key] = argv[++i];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage("missing required flag --" + key);
  return it->second;
}

std::vector<int> parse_counts(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(std::stoi(token));
  if (out.empty()) usage("empty count list");
  return out;
}

std::vector<std::string> parse_names(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(token);
  return out;
}

nas::Benchmark benchmark_from(const std::string& name) {
  if (name == "BT") return nas::Benchmark::kBT;
  if (name == "SP") return nas::Benchmark::kSP;
  if (name == "LU") return nas::Benchmark::kLU;
  usage("unknown app (use BT, SP, or LU): " + name);
}

nas::ProblemClass class_from(const std::string& name) {
  if (name == "C") return nas::ProblemClass::kC;
  if (name == "D") return nas::ProblemClass::kD;
  usage("unknown class (use C or D): " + name);
}

core::AppBaseData profile_app(nas::Benchmark bench, nas::ProblemClass cls,
                              int threads, const std::vector<int>& counts) {
  const machine::Machine base = machine::make_power5_hydra();
  const nas::NasApp app(bench, cls);
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  data.threads_per_rank = threads;
  for (const int c : counts) {
    std::cerr << "profiling " << app.name() << " at " << c << " tasks...\n";
    const auto st = app.run(base, c, machine::SmtMode::kSingleThread, threads);
    data.mpi_profiles.emplace(c, st->profile());
    data.mean_compute.emplace(c, st->profile().mean_compute());
    data.counters_st.emplace(c, st->counters());
    const auto smt = app.run(base, c, machine::SmtMode::kSmt, threads);
    data.counters_smt.emplace(c, smt->counters());
  }
  return data;
}

int cmd_list_machines() {
  TextTable table({"Machine", "Processor", "Cores/Node", "Total Cores"});
  for (const machine::Machine& m : machine::all_machines()) {
    table.add_row({m.name, m.processor.name, std::to_string(m.cores_per_node),
                   std::to_string(m.total_cores)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_collect_imb(const std::map<std::string, std::string>& flags) {
  const machine::Machine m = machine::machine_by_name(need(flags, "machine"));
  std::cerr << "measuring IMB-style tables on " << m.name << "...\n";
  io::save_imb_database(need(flags, "out"), imb::measure_database(m));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

int cmd_collect_spec(const std::map<std::string, std::string>& flags) {
  const machine::Machine base = machine::make_power5_hydra();
  std::vector<machine::Machine> targets;
  for (const std::string& name : parse_names(need(flags, "targets"))) {
    targets.push_back(machine::machine_by_name(name));
  }
  std::vector<int> counts = {4, 8, 16, 32, 64, 128};
  if (flags.count("counts")) counts = parse_counts(flags.at("counts"));
  std::cerr << "collecting SPEC-style library (base + " << targets.size()
            << " targets)...\n";
  io::save_spec_library(
      need(flags, "out"),
      experiments::collect_spec_library(base, targets, counts));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

int cmd_profile(const std::map<std::string, std::string>& flags) {
  const nas::Benchmark bench = benchmark_from(need(flags, "app"));
  const nas::ProblemClass cls = class_from(need(flags, "class"));
  const int threads =
      flags.count("threads") ? std::stoi(flags.at("threads")) : 1;
  std::vector<int> counts =
      bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                   : std::vector<int>{16, 32, 64, 128};
  if (flags.count("counts")) counts = parse_counts(flags.at("counts"));
  io::save_app_data(need(flags, "out"),
                    profile_app(bench, cls, threads, counts));
  std::cout << "wrote " << need(flags, "out") << "\n";
  return 0;
}

/// Reports where a (possibly cached) artifact came from.
void note_source(const std::string& what, service::ArtifactSource source) {
  std::cerr << what << ": " << service::to_string(source) << "\n";
}

int cmd_project(const std::map<std::string, std::string>& flags) {
  const std::string target_name = need(flags, "target");
  const int tasks = std::stoi(need(flags, "tasks"));
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::machine_by_name(target_name);

  // Everything that has to be collected (rather than loaded from an
  // explicit file) goes through the artifact cache, so a warm --cache-dir
  // run performs no simulation at all.
  service::ArtifactCache cache(
      flags.count("cache-dir") ? flags.at("cache-dir") : "");
  service::ArtifactSource source = service::ArtifactSource::kComputed;

  core::AppBaseData app_data;
  if (flags.count("app-data")) {
    app_data = io::load_app_data(flags.at("app-data"));
  } else {
    const nas::Benchmark bench = benchmark_from(need(flags, "app"));
    const nas::ProblemClass cls = class_from(need(flags, "class"));
    const int threads =
        flags.count("threads") ? std::stoi(flags.at("threads")) : 1;
    const std::vector<int> counts =
        bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{16, 32, 64, 128};
    const std::string app_name = nas::NasApp(bench, cls).name();
    app_data = *cache.app_data(
        service::describe_app_inputs(app_name, base, threads, counts, counts),
        [&] { return profile_app(bench, cls, threads, counts); }, &source);
    note_source("app profile (" + app_name + ")", source);
  }

  const std::vector<int> spec_counts = {4, 8, 16, 32, 64, 128};
  core::SpecLibrary spec;
  if (flags.count("spec")) {
    spec = io::load_spec_library(flags.at("spec"));
  } else {
    spec = *cache.spec_library(
        service::describe_spec_inputs(base, {target}, spec_counts),
        [&] {
          std::cerr << "collecting SPEC-style library...\n";
          return experiments::collect_spec_library(base, {target},
                                                   spec_counts);
        },
        &source);
    note_source("spec library", source);
  }

  const auto imb_for = [&](const machine::Machine& m) {
    const auto db = cache.imb_database(
        service::describe_imb_inputs(m, imb::default_core_counts(),
                                     imb::default_message_sizes()),
        [&] { return imb::measure_database(m); }, &source);
    note_source("IMB database (" + m.name + ")", source);
    return *db;
  };
  imb::ImbDatabase base_imb = flags.count("base-imb")
                                  ? io::load_imb_database(flags.at("base-imb"))
                                  : imb_for(base);
  imb::ImbDatabase target_imb =
      flags.count("target-imb")
          ? io::load_imb_database(flags.at("target-imb"))
          : imb_for(target);

  core::Projector projector(base, spec, std::move(base_imb));
  projector.add_target(target_name, std::move(target_imb));
  const core::ProjectionResult r =
      projector.project(app_data, target_name, tasks);

  TextTable table({"Quantity", "Seconds"});
  table.set_title("Projection of " + app_data.app + " at " +
                  std::to_string(tasks) + " tasks onto " + target_name);
  table.add_row({"compute", TextTable::num(r.compute.target_compute, 3)});
  table.add_row({"communication (transfer)",
                 TextTable::num(r.comm.target_total() -
                                    r.comm.of(mpi::RoutineClass::
                                                  kPointToPointNonblocking)
                                        .target_wait -
                                    r.comm.of(mpi::RoutineClass::kCollective)
                                        .target_wait,
                                3)});
  table.add_row({"communication (total)",
                 TextTable::num(r.comm.target_total(), 3)});
  table.add_row({"TOTAL", TextTable::num(r.total_target(), 3)});
  table.print(std::cout);

  std::cout << "surrogate:";
  for (const core::SurrogateTerm& t : r.compute.surrogate.terms) {
    std::cout << ' ' << t.benchmark << '*' << TextTable::num(t.weight, 3);
  }
  std::cout << "\n";
  return 0;
}

int cmd_batch(const std::map<std::string, std::string>& flags) {
  const machine::Machine base = machine::make_power5_hydra();

  // --- parse the request file ---------------------------------------------
  struct Row {
    std::string app;
    std::string target;
    int tasks = 0;
    int threads = 1;
    int reference = 0;
  };
  const std::string requests_path = need(flags, "requests");
  std::ifstream in(requests_path);
  if (!in) usage("cannot open requests file: " + requests_path);
  io::RecordReader reader(in, "swapp-batch", 1);
  io::Record rec;
  std::vector<Row> rows;
  while (reader.next(rec)) {
    if (rec.tag != "request") {
      usage("unknown record in batch file: " + rec.tag);
    }
    if (rec.fields.size() < 3) {
      usage("request row needs: app, target, tasks");
    }
    Row row;
    row.app = rec.str(0);
    row.target = rec.str(1);
    row.tasks = static_cast<int>(rec.integer(2));
    if (rec.fields.size() > 3) row.threads = static_cast<int>(rec.integer(3));
    if (rec.fields.size() > 4) {
      row.reference = static_cast<int>(rec.integer(4));
    }
    rows.push_back(row);
  }
  if (rows.empty()) usage("batch file has no requests");

  // --- configure the service ----------------------------------------------
  std::vector<machine::Machine> targets;
  for (const Row& row : rows) {
    bool known = false;
    for (const machine::Machine& t : targets) known |= t.name == row.target;
    if (!known) targets.push_back(machine::machine_by_name(row.target));
  }
  service::ServiceConfig config;
  if (flags.count("cache-dir")) config.cache_dir = flags.at("cache-dir");
  service::ProjectionService svc(base, targets, config);
  svc.set_spec_collector(
      [](const machine::Machine& b, const std::vector<machine::Machine>& t,
         const std::vector<int>& counts) {
        return experiments::collect_spec_library(b, t, counts);
      });

  for (const Row& row : rows) {
    if (svc.has_app(row.app)) continue;
    if (row.app.rfind("file:", 0) == 0) {
      svc.add_app_file(row.app, row.app.substr(5));
      continue;
    }
    const auto slash = row.app.find('/');
    if (slash == std::string::npos) {
      usage("app must be 'BT|SP|LU/C|D' or 'file:PATH': " + row.app);
    }
    const nas::Benchmark bench = benchmark_from(row.app.substr(0, slash));
    const nas::ProblemClass cls = class_from(row.app.substr(slash + 1));
    const std::vector<int> counts =
        bench == nas::Benchmark::kLU ? std::vector<int>{4, 8, 16}
                                     : std::vector<int>{16, 32, 64, 128};
    const int threads = row.threads;
    svc.add_app(row.app,
                service::describe_app_inputs(nas::NasApp(bench, cls).name(),
                                             base, threads, counts, counts),
                [=] { return profile_app(bench, cls, threads, counts); });
  }

  std::vector<service::ServiceRequest> requests;
  requests.reserve(rows.size());
  for (const Row& row : rows) {
    service::ServiceRequest q;
    q.app = row.app;
    q.target = row.target;
    q.cores = row.tasks;
    q.threads = row.threads;
    if (row.reference > 0) {
      q.options.compute.surrogate_reference_cores = row.reference;
    }
    requests.push_back(q);
  }

  // --- run -----------------------------------------------------------------
  // Progress and reuse information go to stderr; stdout carries only the
  // result table, so cold and warm runs can be diffed byte-for-byte.  The
  // plan/cache summary is the metrics snapshot itself, so recording is
  // forced on for the batch whether or not --metrics was given.
  obs::set_metrics_enabled(true);
  const service::ProjectionService::BatchReport report = svc.run(requests);
  for (const service::ProjectionService::ArtifactNote& note :
       report.artifacts) {
    note_source(note.name, note.source);
  }
  const obs::MetricsSnapshot snapshot = obs::metrics_snapshot();
  print_metrics(std::cerr, snapshot, "planner.");
  print_metrics(std::cerr, snapshot, "cache.");
  std::cerr << "phases:";
  for (const service::ProjectionService::PhaseTime& p : report.phases) {
    std::cerr << ' ' << p.phase << '=' << TextTable::num(p.seconds, 3) << 's';
  }
  std::cerr << "\n";
  if (report.warm()) std::cerr << "warm batch: no simulation performed\n";

  TextTable table({"App", "Target", "Tasks", "Compute s", "Comm s",
                   "Total s"});
  table.set_title("Batch projections (" +
                  std::to_string(report.results.size()) + " requests)");
  for (const core::ProjectionResult& r : report.results) {
    table.add_row({r.app, r.target, std::to_string(r.cores),
                   TextTable::num(r.compute.target_compute, 3),
                   TextTable::num(r.comm.target_total(), 3),
                   TextTable::num(r.total_target(), 3)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_stats(const std::map<std::string, std::string>& flags) {
  const obs::MetricsSnapshot snapshot =
      obs::load_metrics_file(need(flags, "metrics"));
  print_metrics(std::cout, snapshot,
                flags.count("filter") ? flags.at("filter") : "");
  return 0;
}

int dispatch(const std::string& command,
             const std::map<std::string, std::string>& flags) {
  if (command == "list-machines") return cmd_list_machines();
  if (command == "collect-imb") return cmd_collect_imb(flags);
  if (command == "collect-spec") return cmd_collect_spec(flags);
  if (command == "profile") return cmd_profile(flags);
  if (command == "project") return cmd_project(flags);
  if (command == "batch") return cmd_batch(flags);
  if (command == "stats") return cmd_stats(flags);
  usage("unknown command: " + command);
}

/// Removes a global flag from the parsed set (commands never see it);
/// returns its value, or "" when absent.
std::string take_flag(std::map<std::string, std::string>& flags,
                      const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) return {};
  std::string value = it->second;
  flags.erase(it);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    auto flags = parse_flags(argc, argv, 2);
    // `stats` reads a snapshot rather than recording one, so it keeps its
    // --metrics flag; everywhere else --trace/--metrics are the global
    // recording switches.
    std::string trace_path;
    std::string metrics_path;
    if (command != "stats") {
      trace_path = take_flag(flags, "trace");
      metrics_path = take_flag(flags, "metrics");
    }
    if (!trace_path.empty()) obs::set_tracing_enabled(true);
    if (!metrics_path.empty()) obs::set_metrics_enabled(true);
    const int rc = dispatch(command, flags);
    // Written only on success: an aborted command would leave open spans and
    // a half-told story.
    if (!trace_path.empty()) {
      obs::write_trace_file(trace_path, obs::drain_trace());
    }
    if (!metrics_path.empty()) {
      obs::write_metrics_file(metrics_path, obs::metrics_snapshot());
    }
    return rc;
  } catch (const swapp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
