#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against checked-in baselines.

Usage:
    tools/check_bench.py BASELINE.json [BASELINE2.json ...] FRESH.json \
        [--threshold 15]
    tools/check_bench.py BASELINE.json [...] --fresh RUN1.json \
        [--fresh RUN2.json ...] [--threshold 15]

Each baseline is one of the artifacts/BENCH_*.json records (hand-curated
medians) — rows from every baseline are merged before comparison; a fresh
file (last positional, or each --fresh) is raw
`bench_micro --benchmark_format=json` output with
`--benchmark_repetitions=N --benchmark_report_aggregates_only=true`.  With
several --fresh runs the per-benchmark MINIMUM median is compared: host
scheduling jitter only ever adds time, so best-of-N strips load spikes
without masking real regressions.  The check fails (exit 1) if any benchmark
present in both files regressed by more than the threshold (default 15%,
sized above the shared CI container's load-dependent run-to-run noise).
Improvements and benchmarks missing from either side never fail the check —
the baseline is a floor on known entries, not a coverage requirement.

Wired as the optional ctest entry `perf_check_bench` (label `perf`) behind
-DSWAPP_PERF_TESTS=ON; that entry runs bench_micro itself and pipes the
result through this script.  Excluded from the default ctest run: benchmark
numbers on a loaded shared host are too noisy to gate every build on.
"""

import argparse
import json
import sys

# Maps baseline-record sections and keys (artifacts/BENCH_*.json layouts) to
# the benchmark names they were measured from.  Extend when a new artifact
# record gains rows.
SECTION_ROWS = {
    "ga_fitness_kernel_us_per_256_evals": {
        "reference": "BM_GaFitnessKernel/0",
        "fused": "BM_GaFitnessKernel/1",
        "soa_sparse": "BM_GaFitnessKernel/2",
        "soa_batch": "BM_GaFitnessKernel/3",
    },
    "ga_polish_us_per_768_candidates": {
        "delta_screened": "BM_GaPolish/0",
        "full_eval": "BM_GaPolish/1",
    },
    "ga_delta_kernel_us_per_256_screens": {
        "generic": "BM_GaDeltaKernel/0",
        "sse2": "BM_GaDeltaKernel/1",
        "avx2": "BM_GaDeltaKernel/2",
        "avx512": "BM_GaDeltaKernel/3",
    },
    "sweep_fanout_us_per_5_points": {
        "naive_per_point": "BM_SweepFanout/0",
        "factored": "BM_SweepFanout/1",
    },
}


def baseline_medians_us(baseline):
    """Extracts {benchmark name: median microseconds} from a baseline record."""
    out = {}
    for section, rows in SECTION_ROWS.items():
        table = baseline.get(section, {})
        for key, bench_name in rows.items():
            row = table.get(key)
            if isinstance(row, dict) and isinstance(row.get("median"),
                                                    (int, float)):
                out[bench_name] = float(row["median"])
    search = baseline.get("ga_surrogate_search_us", {}).get("current", {})
    if isinstance(search.get("median"), (int, float)):
        out["BM_GaSurrogateSearch"] = float(search["median"])
    sampled = baseline.get("ga_surrogate_search_sampled_us", {}).get(
        "sampled_always_on", {})
    if isinstance(sampled.get("median"), (int, float)):
        out["BM_GaSurrogateSearchObsSampled"] = float(sampled["median"])
    return out


def fresh_medians_us(fresh):
    """Extracts {benchmark name: median microseconds} from raw bench JSON."""
    out = {}
    for row in fresh.get("benchmarks", []):
        name = row.get("name", "")
        if not name.endswith("_median"):
            continue
        base = name[: -len("_median")]
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}.get(unit)
        if scale is None or "real_time" not in row:
            continue
        out[base] = float(row["real_time"]) * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="BASELINE... [FRESH]",
                        help="checked-in artifacts/BENCH_*.json baselines; "
                             "without --fresh, the last positional is the "
                             "fresh bench_micro JSON output")
    parser.add_argument("--fresh", action="append", default=[],
                        metavar="RUN.json",
                        help="fresh bench run (repeatable; the per-benchmark "
                             "minimum across runs is compared)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="max allowed regression, percent (default 15)")
    args = parser.parse_args()
    baseline_paths, fresh_paths = args.files, args.fresh
    if not fresh_paths:
        if len(args.files) < 2:
            parser.error("need at least one baseline and the fresh run")
        baseline_paths, fresh_paths = args.files[:-1], [args.files[-1]]

    baseline = {}
    for path in baseline_paths:
        with open(path) as f:
            baseline.update(baseline_medians_us(json.load(f)))
    fresh = {}
    for path in fresh_paths:
        with open(path) as f:
            for name, us in fresh_medians_us(json.load(f)).items():
                fresh[name] = min(us, fresh.get(name, us))

    if not baseline:
        print("check_bench: no comparable rows in baselines", file=sys.stderr)
        return 1

    failures = []
    for name, base_us in sorted(baseline.items()):
        now_us = fresh.get(name)
        if now_us is None:
            print(f"  SKIP {name}: not in fresh run")
            continue
        delta = (now_us - base_us) / base_us * 100.0
        verdict = "FAIL" if delta > args.threshold else "ok"
        print(f"  {verdict:4} {name}: baseline {base_us:.1f}us, "
              f"now {now_us:.1f}us ({delta:+.1f}%)")
        if delta > args.threshold:
            failures.append(name)

    if failures:
        print(f"check_bench: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("check_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
