file(REMOVE_RECURSE
  "CMakeFiles/future_system.dir/future_system.cpp.o"
  "CMakeFiles/future_system.dir/future_system.cpp.o.d"
  "future_system"
  "future_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
