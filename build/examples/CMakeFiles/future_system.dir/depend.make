# Empty dependencies file for future_system.
# This may be replaced when dependencies are built.
