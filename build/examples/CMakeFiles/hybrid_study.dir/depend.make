# Empty dependencies file for hybrid_study.
# This may be replaced when dependencies are built.
