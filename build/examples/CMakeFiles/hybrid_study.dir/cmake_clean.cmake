file(REMOVE_RECURSE
  "CMakeFiles/hybrid_study.dir/hybrid_study.cpp.o"
  "CMakeFiles/hybrid_study.dir/hybrid_study.cpp.o.d"
  "hybrid_study"
  "hybrid_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
