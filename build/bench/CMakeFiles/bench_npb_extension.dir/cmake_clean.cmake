file(REMOVE_RECURSE
  "CMakeFiles/bench_npb_extension.dir/bench_npb_extension.cpp.o"
  "CMakeFiles/bench_npb_extension.dir/bench_npb_extension.cpp.o.d"
  "bench_npb_extension"
  "bench_npb_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npb_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
