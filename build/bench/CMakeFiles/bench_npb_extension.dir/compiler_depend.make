# Empty compiler generated dependencies file for bench_npb_extension.
# This may be replaced when dependencies are built.
