file(REMOVE_RECURSE
  "CMakeFiles/bench_summary.dir/bench_summary.cpp.o"
  "CMakeFiles/bench_summary.dir/bench_summary.cpp.o.d"
  "bench_summary"
  "bench_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
