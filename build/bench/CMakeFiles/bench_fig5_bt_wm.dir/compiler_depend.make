# Empty compiler generated dependencies file for bench_fig5_bt_wm.
# This may be replaced when dependencies are built.
