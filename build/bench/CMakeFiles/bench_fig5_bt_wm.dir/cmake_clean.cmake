file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bt_wm.dir/bench_fig5_bt_wm.cpp.o"
  "CMakeFiles/bench_fig5_bt_wm.dir/bench_fig5_bt_wm.cpp.o.d"
  "bench_fig5_bt_wm"
  "bench_fig5_bt_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bt_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
