# Empty dependencies file for bench_fig7_sp_bgp.
# This may be replaced when dependencies are built.
