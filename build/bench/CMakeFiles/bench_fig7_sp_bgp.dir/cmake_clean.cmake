file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sp_bgp.dir/bench_fig7_sp_bgp.cpp.o"
  "CMakeFiles/bench_fig7_sp_bgp.dir/bench_fig7_sp_bgp.cpp.o.d"
  "bench_fig7_sp_bgp"
  "bench_fig7_sp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
