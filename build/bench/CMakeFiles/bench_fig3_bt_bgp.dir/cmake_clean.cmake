file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bt_bgp.dir/bench_fig3_bt_bgp.cpp.o"
  "CMakeFiles/bench_fig3_bt_bgp.dir/bench_fig3_bt_bgp.cpp.o.d"
  "bench_fig3_bt_bgp"
  "bench_fig3_bt_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bt_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
