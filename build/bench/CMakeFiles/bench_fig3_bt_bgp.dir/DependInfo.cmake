
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_bt_bgp.cpp" "bench/CMakeFiles/bench_fig3_bt_bgp.dir/bench_fig3_bt_bgp.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_bt_bgp.dir/bench_fig3_bt_bgp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/swapp_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swapp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/swapp_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/imb/CMakeFiles/swapp_imb.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/swapp_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/swapp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swapp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/swapp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swapp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swapp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/swapp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
