# Empty compiler generated dependencies file for bench_fig3_bt_bgp.
# This may be replaced when dependencies are built.
