file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sp_wm.dir/bench_fig9_sp_wm.cpp.o"
  "CMakeFiles/bench_fig9_sp_wm.dir/bench_fig9_sp_wm.cpp.o.d"
  "bench_fig9_sp_wm"
  "bench_fig9_sp_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sp_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
