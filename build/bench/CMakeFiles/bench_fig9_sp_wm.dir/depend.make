# Empty dependencies file for bench_fig9_sp_wm.
# This may be replaced when dependencies are built.
