# Empty compiler generated dependencies file for bench_fig6_lu.
# This may be replaced when dependencies are built.
