# Empty compiler generated dependencies file for bench_fig4_bt_p6.
# This may be replaced when dependencies are built.
