file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sp_p6.dir/bench_fig8_sp_p6.cpp.o"
  "CMakeFiles/bench_fig8_sp_p6.dir/bench_fig8_sp_p6.cpp.o.d"
  "bench_fig8_sp_p6"
  "bench_fig8_sp_p6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sp_p6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
