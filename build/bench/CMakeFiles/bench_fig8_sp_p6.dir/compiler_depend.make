# Empty compiler generated dependencies file for bench_fig8_sp_p6.
# This may be replaced when dependencies are built.
