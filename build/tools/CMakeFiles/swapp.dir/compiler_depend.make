# Empty compiler generated dependencies file for swapp.
# This may be replaced when dependencies are built.
