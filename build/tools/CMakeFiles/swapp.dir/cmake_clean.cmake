file(REMOVE_RECURSE
  "CMakeFiles/swapp.dir/swapp_cli.cpp.o"
  "CMakeFiles/swapp.dir/swapp_cli.cpp.o.d"
  "swapp"
  "swapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
