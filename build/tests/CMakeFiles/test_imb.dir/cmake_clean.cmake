file(REMOVE_RECURSE
  "CMakeFiles/test_imb.dir/test_imb.cpp.o"
  "CMakeFiles/test_imb.dir/test_imb.cpp.o.d"
  "test_imb"
  "test_imb.pdb"
  "test_imb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
