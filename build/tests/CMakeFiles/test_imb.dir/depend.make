# Empty dependencies file for test_imb.
# This may be replaced when dependencies are built.
