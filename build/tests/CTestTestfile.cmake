# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_imb[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_npb[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
