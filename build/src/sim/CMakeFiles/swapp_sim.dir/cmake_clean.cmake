file(REMOVE_RECURSE
  "CMakeFiles/swapp_sim.dir/engine.cpp.o"
  "CMakeFiles/swapp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/swapp_sim.dir/fiber.cpp.o"
  "CMakeFiles/swapp_sim.dir/fiber.cpp.o.d"
  "libswapp_sim.a"
  "libswapp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
