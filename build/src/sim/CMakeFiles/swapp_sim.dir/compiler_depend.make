# Empty compiler generated dependencies file for swapp_sim.
# This may be replaced when dependencies are built.
