file(REMOVE_RECURSE
  "libswapp_sim.a"
)
