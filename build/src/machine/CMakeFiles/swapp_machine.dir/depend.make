# Empty dependencies file for swapp_machine.
# This may be replaced when dependencies are built.
