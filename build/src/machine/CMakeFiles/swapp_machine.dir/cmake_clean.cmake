file(REMOVE_RECURSE
  "CMakeFiles/swapp_machine.dir/cache.cpp.o"
  "CMakeFiles/swapp_machine.dir/cache.cpp.o.d"
  "CMakeFiles/swapp_machine.dir/counters.cpp.o"
  "CMakeFiles/swapp_machine.dir/counters.cpp.o.d"
  "CMakeFiles/swapp_machine.dir/machines.cpp.o"
  "CMakeFiles/swapp_machine.dir/machines.cpp.o.d"
  "libswapp_machine.a"
  "libswapp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
