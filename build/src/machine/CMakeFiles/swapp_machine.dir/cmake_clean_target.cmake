file(REMOVE_RECURSE
  "libswapp_machine.a"
)
