file(REMOVE_RECURSE
  "CMakeFiles/swapp_spec.dir/suite.cpp.o"
  "CMakeFiles/swapp_spec.dir/suite.cpp.o.d"
  "libswapp_spec.a"
  "libswapp_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
