# Empty compiler generated dependencies file for swapp_spec.
# This may be replaced when dependencies are built.
