file(REMOVE_RECURSE
  "libswapp_spec.a"
)
