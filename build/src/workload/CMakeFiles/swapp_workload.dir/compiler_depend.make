# Empty compiler generated dependencies file for swapp_workload.
# This may be replaced when dependencies are built.
