file(REMOVE_RECURSE
  "libswapp_workload.a"
)
