file(REMOVE_RECURSE
  "CMakeFiles/swapp_workload.dir/compute_model.cpp.o"
  "CMakeFiles/swapp_workload.dir/compute_model.cpp.o.d"
  "libswapp_workload.a"
  "libswapp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
