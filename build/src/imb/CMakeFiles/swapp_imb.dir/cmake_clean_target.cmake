file(REMOVE_RECURSE
  "libswapp_imb.a"
)
