file(REMOVE_RECURSE
  "CMakeFiles/swapp_imb.dir/suite.cpp.o"
  "CMakeFiles/swapp_imb.dir/suite.cpp.o.d"
  "libswapp_imb.a"
  "libswapp_imb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_imb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
