# Empty dependencies file for swapp_imb.
# This may be replaced when dependencies are built.
