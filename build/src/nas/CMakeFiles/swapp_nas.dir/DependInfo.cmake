
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/nas_app.cpp" "src/nas/CMakeFiles/swapp_nas.dir/nas_app.cpp.o" "gcc" "src/nas/CMakeFiles/swapp_nas.dir/nas_app.cpp.o.d"
  "/root/repo/src/nas/npb.cpp" "src/nas/CMakeFiles/swapp_nas.dir/npb.cpp.o" "gcc" "src/nas/CMakeFiles/swapp_nas.dir/npb.cpp.o.d"
  "/root/repo/src/nas/zones.cpp" "src/nas/CMakeFiles/swapp_nas.dir/zones.cpp.o" "gcc" "src/nas/CMakeFiles/swapp_nas.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/swapp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/swapp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/swapp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swapp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swapp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swapp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
