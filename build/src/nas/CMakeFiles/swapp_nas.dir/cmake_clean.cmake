file(REMOVE_RECURSE
  "CMakeFiles/swapp_nas.dir/nas_app.cpp.o"
  "CMakeFiles/swapp_nas.dir/nas_app.cpp.o.d"
  "CMakeFiles/swapp_nas.dir/npb.cpp.o"
  "CMakeFiles/swapp_nas.dir/npb.cpp.o.d"
  "CMakeFiles/swapp_nas.dir/zones.cpp.o"
  "CMakeFiles/swapp_nas.dir/zones.cpp.o.d"
  "libswapp_nas.a"
  "libswapp_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
