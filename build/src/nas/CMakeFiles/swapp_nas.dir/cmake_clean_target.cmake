file(REMOVE_RECURSE
  "libswapp_nas.a"
)
