# Empty compiler generated dependencies file for swapp_nas.
# This may be replaced when dependencies are built.
