# Empty dependencies file for swapp_mpi.
# This may be replaced when dependencies are built.
