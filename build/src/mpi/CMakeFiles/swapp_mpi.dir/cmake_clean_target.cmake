file(REMOVE_RECURSE
  "libswapp_mpi.a"
)
