file(REMOVE_RECURSE
  "CMakeFiles/swapp_mpi.dir/collectives.cpp.o"
  "CMakeFiles/swapp_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/swapp_mpi.dir/profile.cpp.o"
  "CMakeFiles/swapp_mpi.dir/profile.cpp.o.d"
  "CMakeFiles/swapp_mpi.dir/types.cpp.o"
  "CMakeFiles/swapp_mpi.dir/types.cpp.o.d"
  "CMakeFiles/swapp_mpi.dir/world.cpp.o"
  "CMakeFiles/swapp_mpi.dir/world.cpp.o.d"
  "libswapp_mpi.a"
  "libswapp_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
