
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/swapp_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/swapp_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/profile.cpp" "src/mpi/CMakeFiles/swapp_mpi.dir/profile.cpp.o" "gcc" "src/mpi/CMakeFiles/swapp_mpi.dir/profile.cpp.o.d"
  "/root/repo/src/mpi/types.cpp" "src/mpi/CMakeFiles/swapp_mpi.dir/types.cpp.o" "gcc" "src/mpi/CMakeFiles/swapp_mpi.dir/types.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/mpi/CMakeFiles/swapp_mpi.dir/world.cpp.o" "gcc" "src/mpi/CMakeFiles/swapp_mpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/swapp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swapp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/swapp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swapp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swapp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
