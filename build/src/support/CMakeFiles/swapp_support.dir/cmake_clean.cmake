file(REMOVE_RECURSE
  "CMakeFiles/swapp_support.dir/error.cpp.o"
  "CMakeFiles/swapp_support.dir/error.cpp.o.d"
  "CMakeFiles/swapp_support.dir/fit.cpp.o"
  "CMakeFiles/swapp_support.dir/fit.cpp.o.d"
  "CMakeFiles/swapp_support.dir/interp.cpp.o"
  "CMakeFiles/swapp_support.dir/interp.cpp.o.d"
  "CMakeFiles/swapp_support.dir/rng.cpp.o"
  "CMakeFiles/swapp_support.dir/rng.cpp.o.d"
  "CMakeFiles/swapp_support.dir/stats.cpp.o"
  "CMakeFiles/swapp_support.dir/stats.cpp.o.d"
  "CMakeFiles/swapp_support.dir/table.cpp.o"
  "CMakeFiles/swapp_support.dir/table.cpp.o.d"
  "libswapp_support.a"
  "libswapp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
