file(REMOVE_RECURSE
  "libswapp_support.a"
)
