# Empty compiler generated dependencies file for swapp_support.
# This may be replaced when dependencies are built.
