file(REMOVE_RECURSE
  "libswapp_io.a"
)
