file(REMOVE_RECURSE
  "CMakeFiles/swapp_io.dir/persist.cpp.o"
  "CMakeFiles/swapp_io.dir/persist.cpp.o.d"
  "CMakeFiles/swapp_io.dir/record.cpp.o"
  "CMakeFiles/swapp_io.dir/record.cpp.o.d"
  "libswapp_io.a"
  "libswapp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
