# Empty dependencies file for swapp_io.
# This may be replaced when dependencies are built.
