file(REMOVE_RECURSE
  "CMakeFiles/swapp_experiments.dir/lab.cpp.o"
  "CMakeFiles/swapp_experiments.dir/lab.cpp.o.d"
  "libswapp_experiments.a"
  "libswapp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
