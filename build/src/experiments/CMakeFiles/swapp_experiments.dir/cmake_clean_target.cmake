file(REMOVE_RECURSE
  "libswapp_experiments.a"
)
