# Empty dependencies file for swapp_experiments.
# This may be replaced when dependencies are built.
