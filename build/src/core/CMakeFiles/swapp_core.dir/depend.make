# Empty dependencies file for swapp_core.
# This may be replaced when dependencies are built.
