file(REMOVE_RECURSE
  "CMakeFiles/swapp_core.dir/acsm.cpp.o"
  "CMakeFiles/swapp_core.dir/acsm.cpp.o.d"
  "CMakeFiles/swapp_core.dir/ccsm.cpp.o"
  "CMakeFiles/swapp_core.dir/ccsm.cpp.o.d"
  "CMakeFiles/swapp_core.dir/comm_projection.cpp.o"
  "CMakeFiles/swapp_core.dir/comm_projection.cpp.o.d"
  "CMakeFiles/swapp_core.dir/compute_projection.cpp.o"
  "CMakeFiles/swapp_core.dir/compute_projection.cpp.o.d"
  "CMakeFiles/swapp_core.dir/ga.cpp.o"
  "CMakeFiles/swapp_core.dir/ga.cpp.o.d"
  "CMakeFiles/swapp_core.dir/profiles.cpp.o"
  "CMakeFiles/swapp_core.dir/profiles.cpp.o.d"
  "CMakeFiles/swapp_core.dir/projector.cpp.o"
  "CMakeFiles/swapp_core.dir/projector.cpp.o.d"
  "CMakeFiles/swapp_core.dir/ranking.cpp.o"
  "CMakeFiles/swapp_core.dir/ranking.cpp.o.d"
  "libswapp_core.a"
  "libswapp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
