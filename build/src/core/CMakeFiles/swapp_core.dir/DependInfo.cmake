
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acsm.cpp" "src/core/CMakeFiles/swapp_core.dir/acsm.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/acsm.cpp.o.d"
  "/root/repo/src/core/ccsm.cpp" "src/core/CMakeFiles/swapp_core.dir/ccsm.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/ccsm.cpp.o.d"
  "/root/repo/src/core/comm_projection.cpp" "src/core/CMakeFiles/swapp_core.dir/comm_projection.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/comm_projection.cpp.o.d"
  "/root/repo/src/core/compute_projection.cpp" "src/core/CMakeFiles/swapp_core.dir/compute_projection.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/compute_projection.cpp.o.d"
  "/root/repo/src/core/ga.cpp" "src/core/CMakeFiles/swapp_core.dir/ga.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/ga.cpp.o.d"
  "/root/repo/src/core/profiles.cpp" "src/core/CMakeFiles/swapp_core.dir/profiles.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/profiles.cpp.o.d"
  "/root/repo/src/core/projector.cpp" "src/core/CMakeFiles/swapp_core.dir/projector.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/projector.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "src/core/CMakeFiles/swapp_core.dir/ranking.cpp.o" "gcc" "src/core/CMakeFiles/swapp_core.dir/ranking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/swapp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/swapp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/swapp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/imb/CMakeFiles/swapp_imb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swapp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/swapp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swapp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
