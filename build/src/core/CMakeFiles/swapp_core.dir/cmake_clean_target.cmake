file(REMOVE_RECURSE
  "libswapp_core.a"
)
