file(REMOVE_RECURSE
  "CMakeFiles/swapp_net.dir/network.cpp.o"
  "CMakeFiles/swapp_net.dir/network.cpp.o.d"
  "libswapp_net.a"
  "libswapp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
