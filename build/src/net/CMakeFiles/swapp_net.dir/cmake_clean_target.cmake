file(REMOVE_RECURSE
  "libswapp_net.a"
)
