# Empty compiler generated dependencies file for swapp_net.
# This may be replaced when dependencies are built.
