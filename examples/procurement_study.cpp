// Procurement study — the paper's motivating use case for HPC users:
// given a workload mix and benchmark data for several candidate systems,
// rank the candidates *without ever running the applications on them*.
//
// The study projects a three-application mix (BT-MZ, SP-MZ, LU-MZ — a CFD
// production portfolio) at the site's production task counts onto every
// candidate, aggregates projected node-hours, and prints a ranking.
#include <iostream>
#include <map>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/table.h"

int main() {
  using namespace swapp;

  const machine::Machine base = machine::make_power5_hydra();
  const std::vector<machine::Machine> candidates = {
      machine::make_power6_575(), machine::make_bluegene_p(),
      machine::make_westmere_x5670()};

  // The site's workload mix: application, class, production task count, and
  // weekly job count.
  struct MixEntry {
    nas::Benchmark bench;
    nas::ProblemClass cls;
    int tasks;
    int jobs_per_week;
  };
  const std::vector<MixEntry> mix = {
      {nas::Benchmark::kBT, nas::ProblemClass::kD, 128, 20},
      {nas::Benchmark::kSP, nas::ProblemClass::kD, 64, 35},
      {nas::Benchmark::kLU, nas::ProblemClass::kC, 16, 50},
  };

  std::cout << "Collecting benchmark data for " << candidates.size()
            << " candidate systems...\n";
  const core::SpecLibrary spec = experiments::collect_spec_library(
      base, candidates, {16, 32, 64, 128});
  core::Projector projector(base, spec, imb::measure_database(base));
  for (const machine::Machine& c : candidates) {
    projector.add_target(c.name, imb::measure_database(c));
  }

  // Profile the mix once on the base system.
  std::map<std::string, core::AppBaseData> profiles;
  for (const MixEntry& e : mix) {
    const nas::NasApp app(e.bench, e.cls);
    if (profiles.count(app.name())) continue;
    std::cout << "Profiling " << app.name() << " on the base system...\n";
    const bool lu = e.bench == nas::Benchmark::kLU;
    profiles.emplace(
        app.name(),
        experiments::collect_base_data(
            app, base, lu ? std::vector<int>{4, 8, 16}
                          : std::vector<int>{16, 32, 64, 128},
            lu ? std::vector<int>{4, 8, 16} : std::vector<int>{16, 32, 64}));
  }

  // Project every mix entry onto every candidate.
  TextTable table({"System", "Weekly core-hours (projected)",
                   "vs. best", "Largest job (s)"});
  table.set_title("Procurement ranking for the production mix");
  struct Outcome {
    std::string name;
    double core_hours;
    double largest;
  };
  std::vector<Outcome> outcomes;
  for (const machine::Machine& c : candidates) {
    double core_hours = 0.0;
    double largest = 0.0;
    for (const MixEntry& e : mix) {
      const nas::NasApp app(e.bench, e.cls);
      const core::ProjectionResult r =
          projector.project(profiles.at(app.name()), c.name, e.tasks);
      const double job_seconds = r.total_target();
      core_hours += job_seconds * e.tasks * e.jobs_per_week / 3600.0;
      largest = std::max(largest, job_seconds);
    }
    outcomes.push_back({c.name, core_hours, largest});
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) {
              return a.core_hours < b.core_hours;
            });
  for (const Outcome& o : outcomes) {
    table.add_row({o.name, TextTable::num(o.core_hours, 0),
                   TextTable::num(o.core_hours / outcomes.front().core_hours,
                                  2) + "x",
                   TextTable::num(o.largest, 0)});
  }
  table.print(std::cout);
  std::cout << "\nAll numbers are projections from base-system profiles and "
               "published benchmark data — no candidate system ran a single "
               "application job.\n";
  return 0;
}
