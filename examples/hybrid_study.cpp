// Hybrid MPI/OpenMP study — the paper's §6 future-work extension in action.
//
// Profiles SP-MZ class C at several thread-per-rank counts on the base
// machine, projects each configuration onto the POWER6 target, and compares
// the projected sweet spot (tasks × threads at fixed hardware-thread budget)
// against ground truth.
#include <iostream>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace swapp;

core::AppBaseData profile_hybrid(const nas::NasApp& app,
                                 const machine::Machine& base, int threads,
                                 const std::vector<int>& counts) {
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  data.threads_per_rank = threads;
  for (const int c : counts) {
    const auto st =
        app.run(base, c, machine::SmtMode::kSingleThread, threads);
    data.mpi_profiles.emplace(c, st->profile());
    data.mean_compute.emplace(c, st->profile().mean_compute());
    data.counters_st.emplace(c, st->counters());
    const auto smt = app.run(base, c, machine::SmtMode::kSmt, threads);
    data.counters_smt.emplace(c, smt->counters());
  }
  return data;
}

}  // namespace

int main() {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const nas::NasApp app(nas::Benchmark::kSP, nas::ProblemClass::kC);

  // Fixed budget of 128 hardware threads on the target, split three ways.
  struct Config {
    int tasks;
    int threads;
  };
  const std::vector<Config> configs = {{128, 1}, {64, 2}, {32, 4}};

  std::cout << "Collecting benchmark databases...\n";
  const core::SpecLibrary spec = experiments::collect_spec_library(
      base, {target}, {32, 64, 128});
  core::Projector projector(base, spec, imb::measure_database(base));
  projector.add_target(target.name, imb::measure_database(target));

  TextTable table({"Tasks x Threads", "Projected (s)", "Measured (s)",
                   "Error %"});
  table.set_title("SP-MZ.C on " + target.name +
                  " with a 128-hardware-thread budget");
  for (const Config& cfg : configs) {
    std::cout << "Profiling " << cfg.tasks << " tasks x " << cfg.threads
              << " threads on the base...\n";
    const core::AppBaseData data = profile_hybrid(
        app, base, cfg.threads,
        {cfg.tasks / 4, cfg.tasks / 2, cfg.tasks});
    const core::ProjectionResult r =
        projector.project(data, target.name, cfg.tasks);
    const auto truth = app.run(target, cfg.tasks,
                               machine::SmtMode::kSingleThread, cfg.threads);
    table.add_row({std::to_string(cfg.tasks) + " x " +
                       std::to_string(cfg.threads),
                   TextTable::num(r.total_target(), 2),
                   TextTable::num(truth->wall_time(), 2),
                   TextTable::num(percent_error(r.total_target(),
                                                truth->wall_time()))});
  }
  table.print(std::cout);
  std::cout << "\nSWAPP ranks the task/thread trade-off without running the "
               "application on the target — the §6 extension in practice.\n";
  return 0;
}
