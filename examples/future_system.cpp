// Future-system study — the paper's motivating use case for hardware
// vendors: "the projections aid hardware vendors in the design of future
// systems".
//
// We sketch a hypothetical next-generation machine (a POWER7-like design:
// higher frequency, eight cores per chip, bigger shared L3, much more
// memory bandwidth, QDR InfiniBand) that exists only as benchmark numbers —
// exactly the situation before silicon is widely available, when early
// benchmark measurements (or simulator estimates) exist but production
// applications cannot run yet.  SWAPP projects the NAS workloads onto it and
// we quantify what each design lever buys by re-projecting onto variants.
#include <iostream>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/table.h"

namespace {

using namespace swapp;

/// A plausible 2010-era next-generation design.
machine::Machine make_future_system() {
  machine::Machine m = machine::make_power6_575();
  m.name = "Future POWER (concept)";
  m.processor.name = "POWER-next";
  m.processor.frequency_ghz = 3.8;
  m.processor.ooo_window_factor = 0.70;  // back to aggressive out-of-order
  m.processor.simd_width = 2.0;          // VSX-style vector doubles
  m.processor.prefetch_strength = 0.85;
  m.cores_per_node = 32;
  m.caches = machine::CacheHierarchy(
      {
          {.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
           .latency_cycles = 3.0, .line_bytes = 128},
          {.name = "L2", .capacity = 256_KiB, .shared_by_cores = 1,
           .latency_cycles = 8.0, .line_bytes = 128},
          {.name = "L3", .capacity = 32_MiB, .shared_by_cores = 8,
           .latency_cycles = 28.0, .line_bytes = 128},
      },
      machine::MemoryConfig{.latency_cycles = 350.0,
                            .remote_latency_cycles = 520.0,
                            .node_bandwidth_gbs = 100.0,
                            .sockets = 4});
  m.network.link_bandwidth_gbs = 3.2;  // QDR
  m.network.base_latency = 1.5e-6;
  m.total_cores = 8192;
  m.os_jitter = 0.012;
  return m;
}

}  // namespace

int main() {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine future = make_future_system();

  // Design variants: what does each lever buy?
  machine::Machine slow_memory = future;
  slow_memory.name = "concept / half memory bandwidth";
  slow_memory.caches = machine::CacheHierarchy(
      future.caches.levels(), [&] {
        machine::MemoryConfig mem = future.caches.memory();
        mem.node_bandwidth_gbs /= 2.0;
        return mem;
      }());

  machine::Machine slow_network = future;
  slow_network.name = "concept / DDR instead of QDR";
  slow_network.network.link_bandwidth_gbs = 1.8;
  slow_network.network.base_latency = 2.4e-6;

  const std::vector<machine::Machine> designs = {future, slow_memory,
                                                 slow_network};

  std::cout << "Collecting benchmark data for the concept designs (these are "
               "the numbers a vendor would estimate pre-silicon)...\n";
  const core::SpecLibrary spec = experiments::collect_spec_library(
      base, designs, {16, 32, 64, 128});
  core::Projector projector(base, spec, imb::measure_database(base));
  for (const machine::Machine& d : designs) {
    projector.add_target(d.name, imb::measure_database(d));
  }

  std::cout << "Profiling the workloads on the base system...\n";
  const nas::NasApp bt(nas::Benchmark::kBT, nas::ProblemClass::kD);
  const nas::NasApp sp(nas::Benchmark::kSP, nas::ProblemClass::kD);
  const core::AppBaseData bt_data = experiments::collect_base_data(
      bt, base, {16, 32, 64, 128}, {16, 32, 64});
  const core::AppBaseData sp_data = experiments::collect_base_data(
      sp, base, {16, 32, 64, 128}, {16, 32, 64});

  TextTable table({"Design", "BT-MZ.D @128 (s)", "SP-MZ.D @128 (s)",
                   "vs concept"});
  table.set_title("Projected production workloads on the concept designs");
  double reference = 0.0;
  for (const machine::Machine& d : designs) {
    const double bt_s = projector.project(bt_data, d.name, 128).total_target();
    const double sp_s = projector.project(sp_data, d.name, 128).total_target();
    const double total = bt_s + sp_s;
    if (reference == 0.0) reference = total;
    table.add_row({d.name, TextTable::num(bt_s, 1), TextTable::num(sp_s, 1),
                   TextTable::num(total / reference, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nNo application ever ran on any of these designs — only "
               "benchmark estimates were needed, which is the projection "
               "use case the paper's introduction leads with.\n";
  return 0;
}
