// Custom application — projecting your own MPI code with SWAPP.
//
// SWAPP is not tied to the NAS benchmarks: any application expressible over
// the simulated MPI runtime can be profiled and projected.  This example
// builds a halo-exchange particle-in-cell style application from scratch —
// a 2-D rank grid, per-step Isend/Irecv/Waitall halo exchange, a custom
// compute kernel, and a periodic Allreduce — then runs the full projection
// workflow against the Westmere target.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "mpi/world.h"
#include "support/stats.h"
#include "workload/kernel.h"

namespace {

using namespace swapp;

/// The user's application: a particle-in-cell field solver skeleton.
class PicApp {
 public:
  explicit PicApp(int grid_side, int steps)
      : grid_side_(grid_side), steps_(steps) {
    kernel_.name = "pic-push";
    kernel_.fp_fraction = 0.38;
    kernel_.load_fraction = 0.33;
    kernel_.store_fraction = 0.10;
    kernel_.branch_fraction = 0.07;
    kernel_.ilp = 3.0;
    kernel_.vectorizable = 0.4;
    kernel_.bytes_per_point = 96;       // particle + field state
    kernel_.locality_theta = 0.50;
    kernel_.streaming_fraction = 0.70;
    kernel_.tlb_hostility = 0.02;       // scattered particle access
    kernel_.instructions_per_point = 4200;
    kernel_.sweep_passes = 2.0;
  }

  std::string name() const { return "PIC-halo"; }
  int ranks() const { return grid_side_ * grid_side_; }

  void run_rank(mpi::RankCtx& ctx) const {
    const int side = grid_side_;
    const int r = ctx.rank();
    const int x = r % side;
    const int y = r / side;
    const double points = 6.0e7 / ctx.size();  // strong scaling
    const Bytes halo = static_cast<Bytes>(
        std::sqrt(points) * 5 * 8);  // one ghost layer, 5 fields

    ctx.bcast(0, 4096);  // configuration
    for (int step = 0; step < steps_; ++step) {
      std::vector<mpi::Request> reqs;
      const auto neighbour = [&](int nx, int ny) {
        if (nx < 0 || nx >= side || ny < 0 || ny >= side) return;
        const int peer = ny * side + nx;
        reqs.push_back(ctx.irecv(peer, halo, step * 10 + peer % 4));
        reqs.push_back(ctx.isend(peer, halo, step * 10 + r % 4));
      };
      neighbour(x - 1, y);
      neighbour(x + 1, y);
      neighbour(x, y - 1);
      neighbour(x, y + 1);
      if (!reqs.empty()) ctx.waitall(reqs);
      ctx.compute(kernel_, points);
      if (step % 10 == 9) ctx.allreduce(64);  // field energy diagnostic
    }
  }

 private:
  int grid_side_;
  int steps_;
  workload::Kernel kernel_;
};

/// Profiles the custom app on the base machine at several task counts.
core::AppBaseData profile_app(const PicApp& app, const machine::Machine& base,
                              const std::vector<int>& counts) {
  core::AppBaseData data;
  data.app = app.name();
  data.base_machine = base.name;
  for (const int c : counts) {
    for (const auto mode :
         {machine::SmtMode::kSingleThread, machine::SmtMode::kSmt}) {
      mpi::World world(base, c,
                       mpi::World::Options{.smt = mode,
                                           .app_name = app.name()});
      world.run([&app](mpi::RankCtx& ctx) { app.run_rank(ctx); });
      if (mode == machine::SmtMode::kSingleThread) {
        data.mpi_profiles.emplace(c, world.profile());
        data.mean_compute.emplace(c, world.profile().mean_compute());
        data.counters_st.emplace(c, world.counters());
      } else {
        data.counters_smt.emplace(c, world.counters());
      }
    }
  }
  return data;
}

}  // namespace

int main() {
  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_westmere_x5670();
  const PicApp app(/*grid_side=*/8, /*steps=*/80);  // 64 ranks

  std::cout << "Profiling the custom PIC app on " << base.name << "...\n";
  // Profile at square task counts the app supports.
  core::AppBaseData data;
  {
    const PicApp p4(4, 80), p6(6, 80), p8(8, 80);
    data = profile_app(p4, base, {16});
    const core::AppBaseData d6 = profile_app(p6, base, {36});
    const core::AppBaseData d8 = profile_app(p8, base, {64});
    for (const auto* d : {&d6, &d8}) {
      for (const auto& [c, p] : d->mpi_profiles) data.mpi_profiles.emplace(c, p);
      for (const auto& [c, t] : d->mean_compute) data.mean_compute.emplace(c, t);
      for (const auto& [c, x] : d->counters_st) data.counters_st.emplace(c, x);
      for (const auto& [c, x] : d->counters_smt)
        data.counters_smt.emplace(c, x);
    }
    data.app = app.name();
  }

  std::cout << "Collecting benchmark databases...\n";
  const core::SpecLibrary spec =
      experiments::collect_spec_library(base, {target}, {16, 36, 64});
  core::Projector projector(base, spec, imb::measure_database(base));
  projector.add_target(target.name, imb::measure_database(target));

  const core::ProjectionResult r = projector.project(data, target.name, 64);
  std::cout << "\nProjected " << app.name() << " at 64 tasks on "
            << target.name << ": " << r.total_target() << " s (compute "
            << r.compute.target_compute << " s + comm "
            << r.comm.target_total() << " s)\n";

  // Ground truth, since our target is simulated.
  mpi::World world(target, 64, mpi::World::Options{.app_name = app.name()});
  world.run([&app](mpi::RankCtx& ctx) { app.run_rank(ctx); });
  std::cout << "Measured: " << world.wall_time() << " s — error "
            << TextTable::num(percent_error(r.total_target(),
                                            world.wall_time()))
            << "%\n";
  return 0;
}
