// Quickstart — project one application onto one target machine.
//
// The end-to-end SWAPP workflow in ~60 lines:
//   1. profile the application on the base machine (MPI profiles at several
//      task counts, hardware counters at a few of them, ST + SMT);
//   2. gather benchmark data: SPEC-style runtimes (base + target) and
//      IMB-style interconnect tables (base + target);
//   3. project — no application run on the target is ever needed;
//   4. (here only, for demonstration) compare against a real run.
#include <iostream>

#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/stats.h"

int main() {
  using namespace swapp;

  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const nas::NasApp app(nas::Benchmark::kBT, nas::ProblemClass::kC);
  constexpr int kTasks = 64;

  // 1. Application profiles on the base machine only.
  std::cout << "Profiling " << app.name() << " on " << base.name << "...\n";
  const core::AppBaseData profiles = experiments::collect_base_data(
      app, base, /*mpi_counts=*/{16, 32, 64}, /*counter_counts=*/{16, 32});

  // 2. Benchmark data for both machines (the "published data" SWAPP needs).
  std::cout << "Collecting benchmark data (SPEC-style + IMB-style)...\n";
  const core::SpecLibrary spec =
      experiments::collect_spec_library(base, {target}, {16, 32, 64});
  const imb::ImbDatabase base_imb = imb::measure_database(base);
  const imb::ImbDatabase target_imb = imb::measure_database(target);

  // 3. Project.
  core::Projector projector(base, spec, base_imb);
  projector.add_target(target.name, target_imb);
  const core::ProjectionResult r =
      projector.project(profiles, target.name, kTasks);

  std::cout << "\nProjection of " << app.name() << " at " << kTasks
            << " tasks onto " << target.name << ":\n"
            << "  compute  : " << r.compute.target_compute << " s\n"
            << "  comm     : " << r.comm.target_total() << " s\n"
            << "  total    : " << r.total_target() << " s\n"
            << "  surrogate:";
  for (const core::SurrogateTerm& t : r.compute.surrogate.terms) {
    std::cout << ' ' << t.benchmark << "*" << TextTable::num(t.weight, 3);
  }
  std::cout << "\n";

  // 4. Validation (only possible here because the target is simulated too).
  const experiments::ActualRun truth =
      experiments::run_actual(app, target, kTasks);
  std::cout << "\nMeasured on the target: " << truth.wall << " s\n"
            << "Projection error: "
            << TextTable::num(percent_error(r.total_target(), truth.wall))
            << "% (the paper reports < 15% across its evaluation)\n";
  return 0;
}
