// Scaling study — the CCSM and ACSM models in action (paper §3.1/§3.2).
//
// Profiles BT-MZ class C on the base machine at a few task counts, fits the
// strong-scaling law, detects the hyper-scaling point where the per-rank
// footprint drops into a lower cache level, and projects the scaling curve
// on a target the application never ran on.
#include <iostream>

#include "core/acsm.h"
#include "core/ccsm.h"
#include "core/projector.h"
#include "experiments/lab.h"
#include "imb/suite.h"
#include "machine/machine.h"
#include "nas/nas_app.h"
#include "support/table.h"

int main() {
  using namespace swapp;

  const machine::Machine base = machine::make_power5_hydra();
  const machine::Machine target = machine::make_power6_575();
  const nas::NasApp app(nas::Benchmark::kBT, nas::ProblemClass::kC);

  std::cout << "Profiling " << app.name() << " on the base at {16,32,64} "
            << "tasks (counters) and {16..128} (MPI profiles)...\n";
  const core::AppBaseData data = experiments::collect_base_data(
      app, base, {16, 32, 64, 128}, {16, 32, 64});

  // --- CCSM: the compute strong-scaling law ---------------------------------
  const core::CcsmModel ccsm(data.mean_compute);
  std::cout << "\nCCSM fit: T(C) = " << TextTable::num(ccsm.fit().a, 1)
            << " * C^-" << TextTable::num(ccsm.fit().b, 3) << " + "
            << TextTable::num(ccsm.fit().c, 2) << "  (rms residual "
            << TextTable::num(ccsm.fit().rms_residual, 3) << " s)\n";

  // --- ACSM: hyper-scaling detection from the G5 reload metrics -------------
  const core::AcsmModel acsm(data.counters_st, base);
  std::cout << "ACSM hyper-scaling point Ch ≈ "
            << TextTable::num(acsm.hyper_scaling_cores(), 0)
            << " tasks (cache footprint drops a level there)\n";

  TextTable metrics({"Tasks", "data-from-L3 /instr", "data-from-mem /instr",
                     "mem BW GB/s"});
  metrics.set_title("G5 reload metrics vs. task count (the ACSM inputs)");
  for (const auto& [cores, c] : data.counters_st) {
    metrics.add_row({std::to_string(cores),
                     TextTable::num(c.data_from_l3_per_instr, 6),
                     TextTable::num(c.data_from_local_mem_per_instr, 6),
                     TextTable::num(c.memory_bandwidth_gbs, 2)});
  }
  metrics.print(std::cout);

  // --- Projected scaling curve on the target --------------------------------
  std::cout << "\nBuilding benchmark databases for the target...\n";
  const core::SpecLibrary spec = experiments::collect_spec_library(
      base, {target}, {16, 32, 64, 128});
  core::Projector projector(base, spec, imb::measure_database(base));
  projector.add_target(target.name, imb::measure_database(target));

  TextTable curve({"Tasks", "Projected total (s)", "Projected compute (s)",
                   "Speedup vs 16", "Counters extrapolated?"});
  curve.set_title("Projected strong scaling of " + app.name() + " on " +
                  target.name);
  double at16 = 0.0;
  for (const int c : {16, 32, 64, 128}) {
    const core::ProjectionResult r = projector.project(data, target.name, c);
    if (c == 16) at16 = r.total_target();
    curve.add_row({std::to_string(c), TextTable::num(r.total_target(), 1),
                   TextTable::num(r.compute.target_compute, 1),
                   TextTable::num(at16 / r.total_target(), 2) + "x",
                   r.compute.extrapolated_counters ? "yes (ACSM)" : "no"});
  }
  curve.print(std::cout);
  std::cout << "\nNote the super-linear region once the per-rank footprint "
               "fits in cache — the hyper-scaling the ACSM model exists to "
               "anticipate.\n";
  return 0;
}
