#include "sweep/runner.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <utility>

#include "io/persist.h"
#include "io/record.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp::sweep {
namespace {

/// Canonical machine for a compute class: the class's compute-side fields
/// with the original target's comm side.  Every member of the class maps to
/// the same representative, so artifact keys are independent of member
/// order; a class matching the original IS the original (name included),
/// sharing its artifacts with ordinary batch runs.
machine::Machine spec_representative(const machine::Machine& member,
                                     const machine::Machine& original,
                                     bool matches_original) {
  if (matches_original) return original;
  machine::Machine rep = member;
  rep.network = original.network;
  rep.mpi = original.mpi;
  rep.name = original.name + "~c" + machine::config_fingerprint(rep);
  return rep;
}

/// Canonical machine for a comm class: comm side kept, compute side reset.
machine::Machine imb_representative(const machine::Machine& member,
                                    const machine::Machine& original,
                                    bool matches_original) {
  if (matches_original) return original;
  machine::Machine rep = member;
  rep.processor = original.processor;
  rep.caches = original.caches;
  rep.memory_per_core = original.memory_per_core;
  rep.name = original.name + "~m" + machine::config_fingerprint(rep);
  return rep;
}

/// Cache-key material identifying the application a surrogate was searched
/// for.  Collector-backed apps use their registered canonical inputs;
/// file-backed profiles are content-addressed (the file bypassed collection,
/// so its registration carries no input description).
std::string app_key_material(const std::string& canonical,
                             const core::AppBaseData& data) {
  if (!canonical.empty()) return canonical;
  std::ostringstream os;
  io::write_app_data(os, data);
  return "app-content:" +
         service::fingerprint_hex(service::fingerprint(os.str()));
}

}  // namespace

bool SweepRunner::SweepReport::warm() const {
  for (const ArtifactNote& note : artifacts) {
    if (note.source == service::ArtifactSource::kComputed) return false;
  }
  return true;
}

SweepRunner::SweepRunner(machine::Machine base,
                         std::vector<machine::Machine> targets,
                         SweepConfig config)
    : base_(std::move(base)),
      targets_(std::move(targets)),
      config_(std::move(config)),
      cache_(config_.shared_cache
                 ? config_.shared_cache
                 : std::make_shared<service::ArtifactCache>(
                       config_.cache_dir, config_.cache_capacity,
                       config_.cache_dir_max_bytes)),
      collect_imb_([](const machine::Machine& m) {
        return imb::measure_database(m);
      }) {
  SWAPP_REQUIRE(!targets_.empty(), "sweep runner needs at least one target");
  for (const machine::Machine& t : targets_) {
    targets_by_name_.emplace(t.name, t);
  }
}

void SweepRunner::set_spec_collector(SpecCollector collect) {
  collect_spec_ = std::move(collect);
}

void SweepRunner::set_imb_collector(ImbCollector collect) {
  SWAPP_REQUIRE(collect != nullptr, "IMB collector must be callable");
  collect_imb_ = std::move(collect);
}

void SweepRunner::add_app(const std::string& name, std::string canonical_inputs,
                          AppCollector collect) {
  SWAPP_REQUIRE(collect != nullptr, "app collector must be callable");
  apps_[name] =
      AppEntry{std::move(canonical_inputs), std::move(collect), nullptr};
}

void SweepRunner::add_app_file(const std::string& name,
                               const std::filesystem::path& path) {
  apps_[name] = AppEntry{
      {}, nullptr, std::make_shared<const core::AppBaseData>(
                       io::load_app_data(path))};
}

bool SweepRunner::has_app(const std::string& name) const {
  return apps_.find(name) != apps_.end();
}

SweepRunner::SweepReport SweepRunner::run(const SweepSpec& spec,
                                          const PointCallback& on_point) {
  SWAPP_SPAN("sweep.run");
  SWAPP_REQUIRE(collect_spec_ != nullptr,
                "spec collector not set (see set_spec_collector)");
  SWAPP_REQUIRE(spec.options.decouple_components,
                "sweep requires decoupled components (the delta-aware plan "
                "factors the pipelines along that seam)");
  SWAPP_REQUIRE(
      spec.options.compute.surrogate_reference_cores == spec.reference,
      "sweep options disagree with the spec's reference count");
  if (!has_app(spec.app)) throw NotFound("app not registered: " + spec.app);
  const auto target_it = targets_by_name_.find(spec.target);
  if (target_it == targets_by_name_.end()) {
    throw NotFound("target not configured: " + spec.target);
  }
  const machine::Machine& original = target_it->second;

  using Clock = std::chrono::steady_clock;
  Clock::time_point phase_start = Clock::now();
  SweepReport report;
  const auto end_phase = [&](const char* phase) {
    const Clock::time_point now = Clock::now();
    report.phases.push_back(PhaseTime{
        phase, std::chrono::duration<double>(now - phase_start).count()});
    phase_start = now;
  };

  // --- Expand and plan -------------------------------------------------------
  report.points = expand(spec, original);
  if (report.points.size() > config_.max_points) {
    std::ostringstream os;
    os << "sweep expands to " << report.points.size()
       << " points, over the cap of " << config_.max_points;
    throw InvalidArgument(os.str());
  }
  report.plan = plan_sweep(spec, original, report.points);
  SWAPP_COUNT("sweep.points", report.points.size());
  end_phase("plan");

  // --- One SPEC library per compute class ------------------------------------
  std::vector<machine::Machine> spec_reps;
  spec_reps.reserve(report.plan.compute_classes.size());
  for (const SweepPlan::Class& c : report.plan.compute_classes) {
    spec_reps.push_back(spec_representative(report.points[c.rep].machine,
                                            original, c.matches_original));
  }
  struct SpecGet {
    std::string lib_key;
    std::shared_ptr<const core::SpecLibrary> lib;
    service::ArtifactSource source = service::ArtifactSource::kComputed;
  };
  std::vector<SpecGet> spec_gets;
  {
    SWAPP_SPAN("sweep.spec_libraries");
    spec_gets = parallel_map(spec_reps, [&](const machine::Machine& rep) {
      SpecGet got;
      got.lib_key = service::describe_spec_inputs(base_, {rep},
                                                  report.plan.task_counts);
      got.lib = cache_->spec_library(
          got.lib_key,
          [&] { return collect_spec_(base_, {rep}, report.plan.task_counts); },
          &got.source);
      return got;
    });
  }
  for (std::size_t i = 0; i < spec_reps.size(); ++i) {
    report.artifacts.push_back(ArtifactNote{
        "spec library (" + spec_reps[i].name + ")", spec_gets[i].source});
  }
  end_phase("spec-libraries");

  // --- IMB databases: the base once, then one per comm class -----------------
  struct ImbGet {
    std::string name;
    std::shared_ptr<const imb::ImbDatabase> db;
    service::ArtifactSource source = service::ArtifactSource::kComputed;
  };
  std::vector<machine::Machine> imb_machines;
  imb_machines.push_back(base_);
  for (const SweepPlan::Class& c : report.plan.comm_classes) {
    imb_machines.push_back(imb_representative(report.points[c.rep].machine,
                                              original, c.matches_original));
  }
  std::vector<ImbGet> imb_gets;
  {
    SWAPP_SPAN("sweep.imb_databases");
    imb_gets = parallel_map(
        imb_machines, [&](const machine::Machine& m) {
          ImbGet got;
          got.name = m.name;
          got.db = cache_->imb_database(
              service::describe_imb_inputs(m, imb::default_core_counts(),
                                           imb::default_message_sizes()),
              [&] { return collect_imb_(m); }, &got.source);
          return got;
        });
  }
  for (const ImbGet& got : imb_gets) {
    report.artifacts.push_back(
        ArtifactNote{"IMB database (" + got.name + ")", got.source});
  }
  end_phase("imb-databases");

  // --- The application's base profile ----------------------------------------
  const AppEntry& entry = apps_.at(spec.app);
  std::shared_ptr<const core::AppBaseData> app;
  {
    SWAPP_SPAN("sweep.app_profile");
    service::ArtifactSource source = service::ArtifactSource::kComputed;
    if (entry.fixed) {
      app = entry.fixed;
      source = service::ArtifactSource::kMemory;
    } else {
      app = cache_->app_data(entry.canonical, entry.collect, &source);
    }
    report.artifacts.push_back(
        ArtifactNote{"app profile (" + spec.app + ")", source});
  }
  SWAPP_REQUIRE(app->threads_per_rank == spec.threads,
                "sweep thread count does not match the profile of " +
                    spec.app);
  end_phase("app-profile");

  // --- Projection: one GA search per search class, then every point ----------
  const std::string app_material = app_key_material(entry.canonical, *app);
  std::atomic<std::size_t> searches_run{0};
  struct SearchGet {
    std::shared_ptr<const core::ComputeProjection> surrogate;
    service::ArtifactSource source = service::ArtifactSource::kComputed;
    std::string label;
  };
  std::vector<SearchGet> search_gets;
  {
    SWAPP_SPAN("sweep.searches");
    search_gets = parallel_map(
        report.plan.searches, [&](const SweepPlan::Search& s) {
          const SpecGet& lib = spec_gets[s.compute_class];
          const std::string& rep_name = spec_reps[s.compute_class].name;
          SWAPP_REQUIRE(lib.lib->targets.count(rep_name) != 0,
                        "collected library has no target: " + rep_name);
          const int demand = s.search_ck * spec.threads;
          const int base_occ = core::SpecLibrary::occupancy_for(
              demand, base_.cores_per_node);
          const int target_occ = core::SpecLibrary::occupancy_for(
              demand, lib.lib->targets.at(rep_name).cores_per_node);
          const std::shared_ptr<const core::SpecIndex> index =
              cache_->spec_index(
                  lib.lib_key +
                      core::SpecIndex::key_of(rep_name, base_occ, target_occ),
                  [&] {
                    return core::SpecIndex::build(*lib.lib, rep_name, base_occ,
                                                  target_occ);
                  });

          // The surrogate key carries everything the search consumed: the
          // library's full input description, the app's identity, and the
          // search shape (see ArtifactCache::surrogate_projection).
          std::ostringstream key;
          key << lib.lib_key << app_material;
          {
            io::RecordWriter w(key, "swapp-search-inputs", 1);
            w.row("search")
                .field(rep_name)
                .field(s.search_ck)
                .field(spec.threads)
                .field(core::compute_options_key(spec.options.compute));
          }
          SearchGet got;
          std::ostringstream label;
          label << "surrogate (" << spec.app << " @ " << rep_name << " / "
                << s.search_ck << ")";
          got.label = label.str();
          got.surrogate = cache_->surrogate_projection(
              key.str(),
              [&] {
                searches_run.fetch_add(1, std::memory_order_relaxed);
                return core::project_compute(*app, *index, base_, rep_name,
                                             s.search_ck,
                                             spec.options.compute);
              },
              &got.source);
          return got;
        });
  }
  for (const SearchGet& got : search_gets) {
    report.artifacts.push_back(ArtifactNote{got.label, got.source});
  }
  report.searches_run = searches_run.load(std::memory_order_relaxed);
  SWAPP_COUNT("sweep.searches_run", report.searches_run);

  {
    SWAPP_SPAN("sweep.project_points");
    report.results = parallel_map(
        report.points, [&](const SweepPoint& point) {
          const SweepPlan::Search& search =
              report.plan.searches[report.plan.search_of[point.index]];
          const core::ComputeProjection& surrogate =
              *search_gets[report.plan.search_of[point.index]].surrogate;

          core::ProjectionResult out;
          out.app = app->app;
          out.target = point.machine.name;
          out.cores = point.tasks;
          out.compute =
              point.tasks == search.search_ck
                  ? surrogate
                  : core::rescale_reference(surrogate, *app, search.search_ck,
                                            point.tasks);
          const imb::ImbDatabase& target_db =
              *imb_gets[report.plan.comm_class_of[point.index] + 1].db;
          out.comm = core::project_communication(
              app->profile_at(point.tasks), point.tasks, *imb_gets[0].db,
              target_db, out.compute.compute_scale(), spec.options.comm);
          return out;
        });
  }
  if (on_point) {
    for (std::size_t i = 0; i < report.points.size(); ++i) {
      on_point(report.points[i], report.results[i]);
    }
  }
  end_phase("projection");

  report.cache = cache_->stats();
  if (obs::metrics_enabled()) {
    for (const PhaseTime& p : report.phases) {
      obs::Gauge("sweep.phase_s." + p.phase).set(p.seconds);
      obs::Histogram("sweep.phase_us." + p.phase).observe(p.seconds * 1e6);
    }
  }
  return report;
}

SweepResultDoc make_sweep_result(const SweepSpec& spec,
                                 const SweepRunner::SweepReport& report) {
  SweepResultDoc doc;
  doc.app = spec.app;
  doc.target = spec.target;
  doc.tasks = spec.tasks;
  doc.threads = spec.threads;
  doc.reference = spec.reference;
  doc.points = report.points.size();

  doc.compute_classes = report.plan.compute_classes.size();
  doc.comm_classes = report.plan.comm_classes.size();
  doc.searches = report.plan.searches.size();
  doc.naive_spec_targets = report.plan.naive_spec_targets;
  doc.naive_searches = report.plan.naive_searches;
  doc.naive_imb_databases = report.plan.naive_imb_databases;

  for (const Axis& axis : spec.axes) {
    doc.axes.push_back(
        {axis.field, to_string(axis.mode), axis.values.size()});
  }
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const SweepPoint& point = report.points[i];
    const core::ProjectionResult& r = report.results[i];
    SweepResultDoc::PointRow row;
    row.index = point.index;
    row.machine = point.machine.name;
    row.tasks = point.tasks;
    row.compute_s = r.compute.target_compute;
    row.comm_s = r.comm.target_total();
    row.total_s = r.total_target();
    row.coords = point.coords;
    doc.rows.push_back(std::move(row));
  }
  for (const SweepRunner::PhaseTime& p : report.phases) {
    doc.phases.push_back({p.phase, p.seconds});
  }
  for (const SweepRunner::ArtifactNote& note : report.artifacts) {
    doc.artifacts.push_back({note.name, service::to_string(note.source)});
  }
  return doc;
}

}  // namespace swapp::sweep
