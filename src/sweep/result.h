// The machine-readable sweep result ("swapp-sweep-result" v1).
//
// One document carries everything a client needs to plot sensitivity or
// Pareto curves without re-deriving anything: the sweep header, the
// planner's shared-vs-naive factoring, one row per point (machine name,
// task count, compute/comm/total projected seconds) with its resolved
// design-space coordinates, plus the phase breakdown and artifact
// provenance of the run.  Doubles round-trip exactly (io/record), so a
// decoded document renders byte-identically to the run that produced it —
// the served and standalone sweep paths print from this structure.
//
//   #swapp "swapp-sweep-result" 1
//   sweep "LU/C" "IBM POWER6 575" 8 1 0 6
//   plan 1 3 1 6 6 6
//   axis "network.link_bandwidth_gbs" "scale" 3
//   point 0 "IBM POWER6 575~4f..." 8 1.94 0.61 2.55
//   coord 0 "network.link_bandwidth_gbs" 0.9
//   phase "projection" 0.41
//   artifact "imb database (IBM POWER6 575)" "computed"
//
// plan fields: compute_classes comm_classes searches naive_spec naive_search
// naive_imb.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace swapp::sweep {

struct SweepResultDoc {
  // Header (mirrors the spec's base row) plus the expanded point count.
  std::string app;
  std::string target;
  int tasks = 0;
  int threads = 1;
  int reference = 0;
  std::size_t points = 0;

  // Planner factoring.
  std::size_t compute_classes = 0;
  std::size_t comm_classes = 0;
  std::size_t searches = 0;
  std::size_t naive_spec_targets = 0;
  std::size_t naive_searches = 0;
  std::size_t naive_imb_databases = 0;

  struct AxisRow {
    std::string field;
    std::string mode;
    std::size_t count = 0;
  };
  std::vector<AxisRow> axes;

  struct PointRow {
    std::size_t index = 0;
    std::string machine;  ///< variant name (original name for identity)
    int tasks = 0;
    double compute_s = 0.0;
    double comm_s = 0.0;
    double total_s = 0.0;
    std::vector<Coordinate> coords;
  };
  std::vector<PointRow> rows;  ///< ascending by index

  struct PhaseRow {
    std::string phase;
    double seconds = 0.0;
  };
  std::vector<PhaseRow> phases;

  struct ArtifactRow {
    std::string name;
    std::string source;
  };
  std::vector<ArtifactRow> artifacts;
};

void write_sweep_result(std::ostream& os, const SweepResultDoc& doc);
SweepResultDoc read_sweep_result(std::istream& is);

/// Header sniff: does `payload` carry a "swapp-sweep-result" document?
/// (Clients use it to tell a served sweep answer from an error response.)
bool is_sweep_result(const std::string& payload);

}  // namespace swapp::sweep
