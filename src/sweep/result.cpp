#include "sweep/result.h"

#include <algorithm>
#include <sstream>

#include "io/record.h"
#include "support/error.h"

namespace swapp::sweep {
namespace {

constexpr int kResultVersion = 1;

}  // namespace

void write_sweep_result(std::ostream& os, const SweepResultDoc& doc) {
  io::RecordWriter w(os, "swapp-sweep-result", kResultVersion);
  w.row("sweep")
      .field(doc.app)
      .field(doc.target)
      .field(doc.tasks)
      .field(doc.threads)
      .field(doc.reference)
      .field(static_cast<std::uint64_t>(doc.points));
  w.row("plan")
      .field(static_cast<std::uint64_t>(doc.compute_classes))
      .field(static_cast<std::uint64_t>(doc.comm_classes))
      .field(static_cast<std::uint64_t>(doc.searches))
      .field(static_cast<std::uint64_t>(doc.naive_spec_targets))
      .field(static_cast<std::uint64_t>(doc.naive_searches))
      .field(static_cast<std::uint64_t>(doc.naive_imb_databases));
  for (const SweepResultDoc::AxisRow& axis : doc.axes) {
    w.row("axis").field(axis.field).field(axis.mode).field(
        static_cast<std::uint64_t>(axis.count));
  }
  for (const SweepResultDoc::PointRow& row : doc.rows) {
    w.row("point")
        .field(static_cast<std::uint64_t>(row.index))
        .field(row.machine)
        .field(row.tasks)
        .field(row.compute_s)
        .field(row.comm_s)
        .field(row.total_s);
    for (const Coordinate& coord : row.coords) {
      w.row("coord")
          .field(static_cast<std::uint64_t>(row.index))
          .field(coord.field)
          .field(coord.value);
    }
  }
  for (const SweepResultDoc::PhaseRow& phase : doc.phases) {
    w.row("phase").field(phase.phase).field(phase.seconds);
  }
  for (const SweepResultDoc::ArtifactRow& artifact : doc.artifacts) {
    w.row("artifact").field(artifact.name).field(artifact.source);
  }
}

SweepResultDoc read_sweep_result(std::istream& is) {
  io::RecordReader reader(is, "swapp-sweep-result", kResultVersion);
  SweepResultDoc doc;
  bool have_header = false;
  io::Record r;
  while (reader.next(r)) {
    if (r.tag == "sweep") {
      doc.app = r.str(0);
      doc.target = r.str(1);
      doc.tasks = static_cast<int>(r.integer(2));
      doc.threads = static_cast<int>(r.integer(3));
      doc.reference = static_cast<int>(r.integer(4));
      doc.points = static_cast<std::size_t>(r.integer(5));
      have_header = true;
    } else if (r.tag == "plan") {
      doc.compute_classes = static_cast<std::size_t>(r.integer(0));
      doc.comm_classes = static_cast<std::size_t>(r.integer(1));
      doc.searches = static_cast<std::size_t>(r.integer(2));
      doc.naive_spec_targets = static_cast<std::size_t>(r.integer(3));
      doc.naive_searches = static_cast<std::size_t>(r.integer(4));
      doc.naive_imb_databases = static_cast<std::size_t>(r.integer(5));
    } else if (r.tag == "axis") {
      doc.axes.push_back(
          {r.str(0), r.str(1), static_cast<std::size_t>(r.integer(2))});
    } else if (r.tag == "point") {
      SweepResultDoc::PointRow row;
      row.index = static_cast<std::size_t>(r.integer(0));
      row.machine = r.str(1);
      row.tasks = static_cast<int>(r.integer(2));
      row.compute_s = r.num(3);
      row.comm_s = r.num(4);
      row.total_s = r.num(5);
      doc.rows.push_back(std::move(row));
    } else if (r.tag == "coord") {
      const auto index = static_cast<std::size_t>(r.integer(0));
      const auto it = std::find_if(
          doc.rows.begin(), doc.rows.end(),
          [index](const SweepResultDoc::PointRow& row) {
            return row.index == index;
          });
      if (it == doc.rows.end()) {
        throw InvalidArgument("sweep result coord row precedes its point");
      }
      it->coords.push_back({r.str(1), r.num(2)});
    } else if (r.tag == "phase") {
      doc.phases.push_back({r.str(0), r.num(1)});
    } else if (r.tag == "artifact") {
      doc.artifacts.push_back({r.str(0), r.str(1)});
    } else {
      throw InvalidArgument("unknown sweep result record: " + r.tag);
    }
  }
  SWAPP_REQUIRE(have_header, "sweep result document has no sweep row");
  return doc;
}

bool is_sweep_result(const std::string& payload) {
  return payload.rfind("#swapp \"swapp-sweep-result\"", 0) == 0;
}

}  // namespace swapp::sweep
