// Sweep specifications: a base projection request plus parameter axes.
//
// A sweep turns the projector into a design-space exploration engine (the
// ROADMAP's "as many scenarios as you can imagine"): one application/target
// pair plus N axes — each a list, relative-scale, or range grid over one
// machine-model field from machine::override_fields(), or over the special
// "tasks" axis (the request's task count) — expands into the cross product
// of concrete what-if configurations.  Expansion applies
// `machine::apply_overrides` per point under the registry's strict
// validation and names every non-identity variant with a configuration
// fingerprint, so name-keyed artifact caches distinguish every distinct
// machine while identity points keep the original name (and therefore share
// cache entries with ordinary batch runs byte-for-byte).
//
// Document format ("swapp-sweep" v1):
//
//   #swapp "swapp-sweep" 1
//   base "LU/C" "IBM POWER6 575" 8 1 0
//   axis "network.link_bandwidth_gbs" scale 0.5 1 2
//   axis "memory.node_bandwidth_gbs" list 20 40
//   axis "cache.L2.capacity_kib" range 2048 8192 3
//
// `base` mirrors a batch request row: app, target, tasks, [threads,
// [reference]].  Axes expand row-major with the LAST axis varying fastest.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/projector.h"
#include "machine/machine.h"
#include "machine/overrides.h"

namespace swapp::sweep {

/// How an axis enumerates its grid.
enum class AxisMode {
  kList,   ///< absolute values, as given
  kScale,  ///< multipliers on the target's current value
  kRange,  ///< inclusive linear grid: from, to, steps (resolved at parse)
};

std::string to_string(AxisMode mode);

/// Name of the pseudo-axis over the request's task count.
inline constexpr const char* kTasksAxis = "tasks";

struct Axis {
  std::string field;  ///< registry field name, or kTasksAxis
  AxisMode mode = AxisMode::kList;
  /// The explicit grid.  kRange axes are resolved to their grid at parse
  /// time, so `values` is always the full enumeration.
  std::vector<double> values;
};

/// One sweep: a base request plus the axes that perturb it.
struct SweepSpec {
  std::string app;
  std::string target;  ///< machine the axes perturb
  int tasks = 0;
  int threads = 1;
  int reference = 0;  ///< surrogate_reference_cores (0 = search per count)
  std::vector<Axis> axes;

  /// Projection options for every point.  Not part of the document format
  /// except for `reference` (which read_sweep_spec folds into
  /// options.compute.surrogate_reference_cores); programmatic callers may
  /// shrink the GA or toggle ablations here.
  core::ProjectionOptions options;
};

/// One resolved coordinate of a point: the field and the value it was set
/// to (the machine-model value after application — scale multipliers are
/// resolved, so coordinates plot directly as design-space positions).
struct Coordinate {
  std::string field;
  double value = 0.0;
};

/// One expanded point: its coordinates, the concrete machine they imply,
/// and the task count to project at.
struct SweepPoint {
  std::size_t index = 0;
  std::vector<Coordinate> coords;
  machine::Machine machine;  ///< overridden copy; renamed unless identity
  int tasks = 0;
  /// True iff the machine configuration is byte-identical to the unmodified
  /// target (every override resolved to the current value) — such a point
  /// keeps the target's original name and matches a direct projection
  /// exactly.
  bool identity = false;
};

// --- document io -----------------------------------------------------------
void write_sweep_spec(std::ostream& os, const SweepSpec& spec);

/// Parses and validates a sweep document: unknown axis fields, duplicate
/// axes, empty grids, and malformed base/range rows all throw
/// InvalidArgument.  Field names are validated against the override
/// registry at parse time, so a bad spec fails before any work happens.
SweepSpec read_sweep_spec(std::istream& is);

/// Number of points `spec` expands to (product of axis sizes; 1 with no
/// axes).
std::size_t point_count(const SweepSpec& spec);

/// Expands the cross product against the unmodified `target` machine
/// (row-major, last axis fastest).  Applies overrides under registry
/// validation, resolves coordinates, detects identity points, and gives
/// every non-identity variant a unique fingerprint-suffixed name.
std::vector<SweepPoint> expand(const SweepSpec& spec,
                               const machine::Machine& target);

}  // namespace swapp::sweep
