// Sweep executor: drives a planned sweep through the artifact cache and the
// core projection APIs, materialising each equivalence class of the plan
// exactly once.
//
// The runner deliberately bypasses `Projector::project_many`: a sweep's
// points name *different machines*, and the batched engine shares work only
// within one machine name.  Instead the runner exploits the planner's side
// classification directly —
//
//   * per compute class it collects one SPEC library for a canonical
//     "spec representative" (the class's machine with its comm-side fields
//     reset to the original target's, so the artifact key is independent of
//     which member happened to come first);
//   * per (compute class, search count) it runs one GA surrogate search,
//     cached persistently, and every member point either reuses the
//     surrogate as-is or rides `core::rescale_reference` — the exact rescale
//     `Projector::project` applies, so identity points are byte-identical to
//     a direct projection;
//   * per comm class it acquires one IMB database for a "comm
//     representative" (compute-side fields reset), feeding
//     `core::project_communication` per point.
//
// Classes whose side configuration equals the unmodified target keep its
// machine name, so their artifacts are the very same cache entries an
// ordinary `swapp batch`/`swapp project` run reads and writes.
#pragma once

#include <cstddef>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/projector.h"
#include "machine/machine.h"
#include "service/artifact_cache.h"
#include "service/service.h"
#include "sweep/planner.h"
#include "sweep/result.h"
#include "sweep/sweep.h"

namespace swapp::sweep {

struct SweepConfig {
  /// Artifact cache directory; empty keeps the cache in memory only.
  std::filesystem::path cache_dir;
  std::size_t cache_capacity = 16;
  std::uintmax_t cache_dir_max_bytes = 0;
  /// When set, record into this cache instead of owning one (the server's
  /// resident cache; the cache_* fields above are then ignored).
  std::shared_ptr<service::ArtifactCache> shared_cache;
  /// Hard cap on the expanded point count; `run` throws InvalidArgument
  /// beyond it (a typo'd range axis should fail fast, not enumerate 10^9
  /// machines).
  std::size_t max_points = 4096;
};

class SweepRunner {
 public:
  using SpecCollector = service::ProjectionService::SpecCollector;
  using ImbCollector = service::ProjectionService::ImbCollector;
  using AppCollector = service::ProjectionService::AppCollector;
  using ArtifactNote = service::ProjectionService::ArtifactNote;
  using PhaseTime = service::ProjectionService::PhaseTime;

  /// `targets` are the machines sweeps may perturb (a spec's `target` must
  /// name one of them).
  SweepRunner(machine::Machine base, std::vector<machine::Machine> targets,
              SweepConfig config = {});

  /// Collector for SPEC-style libraries; must be set before `run`.  Called
  /// once per compute class with that class's representative as the only
  /// target — representatives carry variant names, so the collector must
  /// honour the machine *configuration* it receives, not look anything up by
  /// name.
  void set_spec_collector(SpecCollector collect);
  /// Collector for per-machine IMB databases; defaults to
  /// `imb::measure_database`.
  void set_imb_collector(ImbCollector collect);

  /// App registration, mirroring ProjectionService.
  void add_app(const std::string& name, std::string canonical_inputs,
               AppCollector collect);
  void add_app_file(const std::string& name,
                    const std::filesystem::path& path);
  bool has_app(const std::string& name) const;

  /// Streamed per point as its projection is finalised, in index order.
  using PointCallback = std::function<void(const SweepPoint& point,
                                           const core::ProjectionResult&)>;

  struct SweepReport {
    std::vector<SweepPoint> points;
    SweepPlan plan;
    /// results[i] corresponds to points[i]; `target` carries the variant
    /// machine name.
    std::vector<core::ProjectionResult> results;
    std::vector<ArtifactNote> artifacts;  ///< acquisition order
    service::CacheStats cache;            ///< cumulative cache counters
    /// Execution order: plan, spec-libraries, imb-databases, app-profile,
    /// projection.
    std::vector<PhaseTime> phases;
    /// GA surrogate searches actually executed this run (cache hits — memory
    /// or disk — do not count; a warm sweep reports 0).
    std::size_t searches_run = 0;
    /// True iff every artifact came from the memory or disk tier.
    bool warm() const;
  };

  /// Expands, plans, acquires class artifacts, projects every point.
  /// Requires `spec.options.decouple_components` (the factoring splits the
  /// pipelines along exactly that seam).  Throws NotFound for unregistered
  /// apps/targets and InvalidArgument for invalid specs.
  SweepReport run(const SweepSpec& spec, const PointCallback& on_point = {});

  service::ArtifactCache& cache() noexcept { return *cache_; }
  const machine::Machine& base() const noexcept { return base_; }

 private:
  struct AppEntry {
    std::string canonical;
    AppCollector collect;
    std::shared_ptr<const core::AppBaseData> fixed;  ///< file-backed apps
  };

  machine::Machine base_;
  std::vector<machine::Machine> targets_;
  std::map<std::string, machine::Machine> targets_by_name_;
  SweepConfig config_;
  std::shared_ptr<service::ArtifactCache> cache_;
  SpecCollector collect_spec_;
  ImbCollector collect_imb_;
  std::map<std::string, AppEntry> apps_;
};

/// Assembles the machine-readable result document from a finished run.
SweepResultDoc make_sweep_result(const SweepSpec& spec,
                                 const SweepRunner::SweepReport& report);

}  // namespace swapp::sweep
