// Delta-aware sweep planning: factor an expanded point set into the minimal
// shared work, the way service/planner.h factors a batch of requests.
//
// The factoring rests on the side classification of machine::overrides:
// the compute pipeline (SPEC collection, ACSM/CCSM, the GA surrogate
// search) reads only compute-side fields and the comm pipeline (IMB tables,
// the MPI simulation) reads only comm-side fields.  So:
//
//   * one SPEC-library target per distinct compute-side configuration
//     (points that only vary comm parameters share it);
//   * one GA surrogate search per (compute configuration, search count)
//     class — the search count is the pinned reference when the spec sets
//     one, else the point's task count, so task-count-only points ride the
//     existing surrogate_reference_cores γ-rescale off one search;
//   * one IMB database per distinct comm-side configuration.
//
// The naive cost a sweep replaces — issuing every point as its own batch
// request against its own variant machine — is one spec target, one search,
// and one IMB measurement per point; the plan reports both sides so callers
// (and tests) can assert the sharing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "sweep/sweep.h"

namespace swapp::sweep {

struct SweepPlan {
  /// Points that share one entry, first-appearance order; `rep` is the
  /// index (into the expanded point vector) of the class representative.
  struct Class {
    std::string key;  ///< canonical side description the class shares
    std::size_t rep = 0;
    std::vector<std::size_t> members;
    /// True iff the class's side configuration equals the unmodified
    /// target's — its representative keeps the original machine name, so
    /// artifacts are shared with ordinary batch runs.
    bool matches_original = false;
  };

  /// One GA surrogate search: a compute class at one search count.
  struct Search {
    std::size_t compute_class = 0;
    int search_ck = 0;
    std::vector<std::size_t> members;
  };

  std::size_t points = 0;
  std::vector<Class> compute_classes;  ///< one spec-library target each
  std::vector<Class> comm_classes;     ///< one IMB database each
  std::vector<Search> searches;        ///< one GA search each

  /// Task-count grid the shared SPEC library must cover: the ascending union
  /// of every point's hardware-thread demand (tasks × threads) and the
  /// reference demand — the same convention as service::BatchPlan.
  std::vector<int> task_counts;

  /// What the same points cost as independent single-request batches.
  std::size_t naive_searches = 0;      ///< == points
  std::size_t naive_spec_targets = 0;  ///< == points
  std::size_t naive_imb_databases = 0; ///< == points

  /// For each point, the index of its comm class / search (same order as
  /// the expanded points).
  std::vector<std::size_t> comm_class_of;
  std::vector<std::size_t> search_of;

  /// Human-readable factoring summary (one line), e.g.
  /// "6 points -> 1 spec target, 1 search, 3 imb databases (naive: 6/6/6)".
  std::string describe() const;
};

/// Plans the expanded `points` of `spec` against the unmodified `target`.
SweepPlan plan_sweep(const SweepSpec& spec, const machine::Machine& target,
                     const std::vector<SweepPoint>& points);

}  // namespace swapp::sweep
