#include "sweep/sweep.h"

#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "io/record.h"
#include "support/error.h"

namespace swapp::sweep {
namespace {

constexpr int kSweepVersion = 1;

AxisMode mode_from(const std::string& word) {
  if (word == "list") return AxisMode::kList;
  if (word == "scale") return AxisMode::kScale;
  if (word == "range") return AxisMode::kRange;
  throw InvalidArgument("unknown axis mode (use list, scale, or range): " +
                        word);
}

void validate_axis_field(const std::string& field) {
  if (field == kTasksAxis) return;
  machine::override_field(field);  // throws on unknown names
}

}  // namespace

std::string to_string(AxisMode mode) {
  switch (mode) {
    case AxisMode::kList: return "list";
    case AxisMode::kScale: return "scale";
    case AxisMode::kRange: return "range";
  }
  return "?";
}

void write_sweep_spec(std::ostream& os, const SweepSpec& spec) {
  io::RecordWriter w(os, "swapp-sweep", kSweepVersion);
  w.row("base")
      .field(spec.app)
      .field(spec.target)
      .field(spec.tasks)
      .field(spec.threads)
      .field(spec.reference);
  for (const Axis& axis : spec.axes) {
    // Range axes were resolved to their grid at parse time; re-encoding
    // them as explicit lists keeps the round trip lossless.
    w.row("axis").field(axis.field).field(
        to_string(axis.mode == AxisMode::kRange ? AxisMode::kList
                                                : axis.mode));
    for (const double v : axis.values) w.field(v);
  }
}

SweepSpec read_sweep_spec(std::istream& is) {
  io::RecordReader reader(is, "swapp-sweep", kSweepVersion);
  SweepSpec spec;
  bool have_base = false;
  std::set<std::string> seen_fields;
  io::Record r;
  while (reader.next(r)) {
    if (r.tag == "base") {
      if (have_base) {
        throw InvalidArgument("sweep document has more than one base row");
      }
      if (r.fields.size() < 3) {
        throw InvalidArgument(
            "sweep base row needs: app target tasks [threads [reference]]");
      }
      spec.app = r.str(0);
      spec.target = r.str(1);
      spec.tasks = static_cast<int>(r.integer(2));
      spec.threads = r.fields.size() > 3 ? static_cast<int>(r.integer(3)) : 1;
      spec.reference =
          r.fields.size() > 4 ? static_cast<int>(r.integer(4)) : 0;
      if (spec.tasks < 1) throw InvalidArgument("sweep tasks must be >= 1");
      if (spec.threads < 1) {
        throw InvalidArgument("sweep threads must be >= 1");
      }
      if (spec.reference < 0) {
        throw InvalidArgument("sweep reference must be >= 0");
      }
      have_base = true;
    } else if (r.tag == "axis") {
      if (r.fields.size() < 3) {
        throw InvalidArgument("sweep axis row needs: field mode value...");
      }
      Axis axis;
      axis.field = r.str(0);
      axis.mode = mode_from(r.str(1));
      validate_axis_field(axis.field);
      if (!seen_fields.insert(axis.field).second) {
        throw InvalidArgument("duplicate sweep axis: " + axis.field);
      }
      if (axis.mode == AxisMode::kRange) {
        if (r.fields.size() != 5) {
          throw InvalidArgument("range axis needs exactly: from to steps");
        }
        const double from = r.num(2);
        const double to = r.num(3);
        const std::int64_t steps = r.integer(4);
        if (steps < 1) throw InvalidArgument("range steps must be >= 1");
        for (std::int64_t i = 0; i < steps; ++i) {
          axis.values.push_back(
              steps == 1 ? from
                         : from + static_cast<double>(i) * (to - from) /
                                      static_cast<double>(steps - 1));
        }
        axis.mode = AxisMode::kList;  // the grid is now explicit
      } else {
        for (std::size_t i = 2; i < r.fields.size(); ++i) {
          axis.values.push_back(r.num(i));
        }
      }
      if (axis.values.empty()) {
        throw InvalidArgument("sweep axis has no values: " + axis.field);
      }
      spec.axes.push_back(std::move(axis));
    } else {
      throw InvalidArgument("unknown sweep record: " + r.tag);
    }
  }
  if (!have_base) throw InvalidArgument("sweep document has no base row");
  spec.options.compute.surrogate_reference_cores = spec.reference;
  return spec;
}

std::size_t point_count(const SweepSpec& spec) {
  std::size_t count = 1;
  for (const Axis& axis : spec.axes) count *= axis.values.size();
  return count;
}

std::vector<SweepPoint> expand(const SweepSpec& spec,
                               const machine::Machine& target) {
  SWAPP_REQUIRE(spec.target == target.name,
                "expand: target machine does not match the spec");
  for (const Axis& axis : spec.axes) {
    validate_axis_field(axis.field);
    if (axis.values.empty()) {
      throw InvalidArgument("sweep axis has no values: " + axis.field);
    }
  }
  const std::string original_config = machine::describe_machine_config(target);
  const std::size_t total = point_count(spec);
  std::vector<SweepPoint> points;
  points.reserve(total);

  // Row-major enumeration: odometer over axis positions, last axis fastest.
  std::vector<std::size_t> pos(spec.axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    int point_tasks = spec.tasks;
    std::vector<Coordinate> coords;
    std::vector<machine::Override> overrides;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& axis = spec.axes[a];
      const double v = axis.values[pos[a]];
      if (axis.field == kTasksAxis) {
        const double resolved =
            axis.mode == AxisMode::kScale ? spec.tasks * v : v;
        const auto tasks = static_cast<int>(std::llround(resolved));
        if (tasks < 1) {
          throw InvalidArgument("sweep tasks axis resolves below 1");
        }
        point_tasks = tasks;
        coords.push_back({axis.field, static_cast<double>(tasks)});
        continue;
      }
      overrides.push_back({axis.field,
                           axis.mode == AxisMode::kScale
                               ? machine::OverrideKind::kScale
                               : machine::OverrideKind::kSet,
                           v});
      coords.push_back({axis.field, 0.0});  // resolved below
    }
    SweepPoint point{index, std::move(coords),
                     machine::apply_overrides(target, overrides), point_tasks,
                     /*identity=*/false};
    // Fill in the resolved machine-model values (axes are distinct fields,
    // so reading after full application is order-independent).
    for (Coordinate& coord : point.coords) {
      if (coord.field != kTasksAxis) {
        coord.value = machine::read_field(point.machine, coord.field);
      }
    }
    point.identity =
        machine::describe_machine_config(point.machine) == original_config;
    if (!point.identity) {
      point.machine.name =
          target.name + "~" + machine::config_fingerprint(point.machine);
    }
    points.push_back(std::move(point));

    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++pos[a] < spec.axes[a].values.size()) break;
      pos[a] = 0;
    }
  }
  return points;
}

}  // namespace swapp::sweep
