#include "sweep/planner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "machine/overrides.h"
#include "support/error.h"

namespace swapp::sweep {
namespace {

/// Groups points by a canonical side description, first-appearance order.
std::vector<SweepPlan::Class> classify(
    const std::vector<SweepPoint>& points, const std::string& original_key,
    const std::function<std::string(const machine::Machine&)>& describe,
    std::vector<std::size_t>& class_of) {
  std::vector<SweepPlan::Class> classes;
  std::map<std::string, std::size_t> slots;
  class_of.resize(points.size());
  for (const SweepPoint& point : points) {
    const std::string key = describe(point.machine);
    const auto [it, inserted] = slots.emplace(key, classes.size());
    if (inserted) {
      SweepPlan::Class c;
      c.key = key;
      c.rep = point.index;
      c.matches_original = key == original_key;
      classes.push_back(std::move(c));
    }
    classes[it->second].members.push_back(point.index);
    class_of[point.index] = it->second;
  }
  return classes;
}

}  // namespace

std::string SweepPlan::describe() const {
  std::ostringstream os;
  os << points << (points == 1 ? " point -> " : " points -> ")
     << compute_classes.size() << " spec target"
     << (compute_classes.size() == 1 ? "" : "s") << ", " << searches.size()
     << " GA search" << (searches.size() == 1 ? "" : "es") << ", "
     << comm_classes.size() << " imb database"
     << (comm_classes.size() == 1 ? "" : "s") << " (naive: "
     << naive_spec_targets << "/" << naive_searches << "/"
     << naive_imb_databases << ")";
  return os.str();
}

SweepPlan plan_sweep(const SweepSpec& spec, const machine::Machine& target,
                     const std::vector<SweepPoint>& points) {
  SWAPP_REQUIRE(!points.empty(), "plan_sweep: no points");
  SweepPlan plan;
  plan.points = points.size();
  plan.naive_searches = points.size();
  plan.naive_spec_targets = points.size();
  plan.naive_imb_databases = points.size();

  std::vector<std::size_t> compute_class_of;
  plan.compute_classes =
      classify(points, machine::describe_compute_side(target),
               machine::describe_compute_side, compute_class_of);
  plan.comm_classes =
      classify(points, machine::describe_comm_side(target),
               machine::describe_comm_side, plan.comm_class_of);

  // One search per (compute class, search count): the reference pins the
  // count when set, so task-count-only variation collapses into one class.
  plan.search_of.resize(points.size());
  std::map<std::pair<std::size_t, int>, std::size_t> search_slots;
  for (const SweepPoint& point : points) {
    const int search_ck = spec.reference > 0 ? spec.reference : point.tasks;
    const std::pair<std::size_t, int> key{compute_class_of[point.index],
                                          search_ck};
    const auto [it, inserted] = search_slots.emplace(key, plan.searches.size());
    if (inserted) {
      plan.searches.push_back(SweepPlan::Search{key.first, key.second, {}});
    }
    plan.searches[it->second].members.push_back(point.index);
    plan.search_of[point.index] = it->second;
  }

  // Task-count grid for the shared library, as hardware-thread demands
  // (tasks × threads, matching service::plan_batch): every projected count
  // plus the search counts (a pinned reference may not equal any point's).
  std::set<int> counts;
  for (const SweepPoint& point : points) {
    counts.insert(point.tasks * spec.threads);
  }
  if (spec.reference > 0) counts.insert(spec.reference * spec.threads);
  plan.task_counts.assign(counts.begin(), counts.end());
  return plan;
}

}  // namespace swapp::sweep
