#include "core/ga_eval.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>

#include "support/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define SWAPP_GA_EVAL_SIMD 1
#include <immintrin.h>
#endif

namespace swapp::core {

void GaEvalEngine::build(
    const std::vector<machine::MetricVector>& bench_st,
    const std::vector<machine::MetricVector>& bench_smt,
    const std::vector<double>& base_time, const machine::MetricVector& app_st,
    const machine::MetricVector& app_smt,
    const std::array<double, machine::kMetricCount>& scale,
    const std::array<double, machine::kMetricCount>& metric_weight,
    double app_compute, double lambda) {
  SWAPP_REQUIRE(!bench_st.empty(), "empty benchmark suite");
  SWAPP_REQUIRE(bench_smt.size() == bench_st.size() &&
                    base_time.size() == bench_st.size(),
                "benchmark array sizes disagree");
  SWAPP_REQUIRE(app_compute > 0.0, "app compute time must be positive");
  n_ = bench_st.size();
  st_ = machine::transpose_metric_major(bench_st);
  smt_ = machine::transpose_metric_major(bench_smt);
  pairs_.assign(n_ * 2 * machine::kMetricCount, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    double* row = pairs_.data() + k * 2 * machine::kMetricCount;
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      row[2 * i] = st_[i * n_ + k];
      row[2 * i + 1] = smt_[i * n_ + k];
    }
  }
  base_time_ = base_time;
  app_st_ = app_st.values;
  app_smt_ = app_smt.values;
  for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
    app_pair_[2 * i] = app_st.values[i];
    app_pair_[2 * i + 1] = app_smt.values[i];
    scale_pair_[2 * i] = scale[i];
    scale_pair_[2 * i + 1] = scale[i];
    // Delta-screen precomputes: the screen may trade the per-lane divide
    // for a reciprocal multiply (it is approximate by contract), and the
    // pair-duplicated metric weight turns its reduction into mul/add only.
    inv_scale_pair_[2 * i] = 1.0 / scale[i];
    inv_scale_pair_[2 * i + 1] = 1.0 / scale[i];
    mw_pair_[2 * i] = metric_weight[i];
    mw_pair_[2 * i + 1] = metric_weight[i];
  }
  scale_ = scale;
  metric_weight_ = metric_weight;
  app_compute_ = app_compute;
  lambda_ = lambda;
}

namespace {

/// Everything a kernel needs, gathered once per engine entry point.  The
/// kernels are free functions behind a pointer so the SIMD tiers can carry
/// `target` attributes (they must stay out-of-line in a baseline-ISA TU).
struct EvalCtx {
  const double* st = nullptr;     // metric-major (portable kernel)
  const double* smt = nullptr;    // metric-major (portable kernel)
  const double* pairs = nullptr;  // ST/SMT pair-interleaved (SIMD kernels)
  const double* base_time = nullptr;
  const double* app_st = nullptr;
  const double* app_smt = nullptr;
  const double* app_pair = nullptr;
  const double* scale = nullptr;
  const double* scale_pair = nullptr;
  const double* metric_weight = nullptr;
  double app_compute = 0.0;
  double lambda = 0.0;
  std::size_t n = 0;
};

using EvalFn = double (*)(const EvalCtx&, const double* genome,
                          const std::size_t* nz, std::size_t nz_count,
                          double* share, double* distance_out,
                          double* runtime_error_out);

/// Portable scalar kernel over the metric-major layout.  Pass 1 totals the
/// runtime shares in ascending-k order; pass 2 materialises the per-term
/// shares (independent divisions); pass 3 blends and measures per metric,
/// each accumulator fed in ascending-k order with the reference expression
/// shapes.  This is the shape the bit-identity argument in ga_eval.h is
/// written against; the SIMD tiers below reproduce it lane for lane.
[[maybe_unused]] double eval_one_generic(
    const EvalCtx& c, const double* genome, const std::size_t* nz,
    std::size_t nz_count, double* share, double* distance_out,
    double* runtime_error_out) {
  double share_total = 0.0;
  for (std::size_t j = 0; j < nz_count; ++j) {
    share_total += genome[nz[j]] * c.base_time[nz[j]];
  }
  const double rerr = std::abs(share_total - c.app_compute) / c.app_compute;

  double distance;
  if (share_total <= 0.0) {
    distance = 1e18;
  } else {
    for (std::size_t j = 0; j < nz_count; ++j) {
      share[j] = genome[nz[j]] * c.base_time[nz[j]] / share_total;
    }
    distance = 0.0;
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      const double* st_row = c.st + i * c.n;
      const double* smt_row = c.smt + i * c.n;
      double blend_st = 0.0;
      double blend_smt = 0.0;
      for (std::size_t j = 0; j < nz_count; ++j) {
        blend_st += share[j] * st_row[nz[j]];
        blend_smt += share[j] * smt_row[nz[j]];
      }
      const double d_st = (blend_st - c.app_st[i]) / c.scale[i];
      const double d_smt = (blend_smt - c.app_smt[i]) / c.scale[i];
      distance += c.metric_weight[i] * (d_st * d_st + d_smt * d_smt);
    }
  }
  if (distance_out) *distance_out = distance;
  if (runtime_error_out) *runtime_error_out = rerr;
  return distance + c.lambda * rerr * rerr;
}

#ifdef SWAPP_GA_EVAL_SIMD

static_assert(machine::kMetricCount % 8 == 0,
              "SIMD kernels block the metric loop by 8");

/// SSE2 kernel: every (st, smt) lane pair advances through one `divpd` /
/// `mulpd` / `addpd`, so each lane executes exactly the scalar operation
/// sequence on exactly the scalar operands — IEEE makes the lanes
/// bit-identical to eval_one_generic.  The metric loop is blocked by 8 so
/// the 8 pair-accumulators of a block live in registers; blocks run in
/// ascending metric order, preserving the distance sum's order.  x86-64
/// always has SSE2, so this is the portable floor on that architecture.
double eval_one_sse2(const EvalCtx& c, const double* genome,
                     const std::size_t* nz, std::size_t nz_count,
                     double* share, double* distance_out,
                     double* runtime_error_out) {
  double share_total = 0.0;
  for (std::size_t j = 0; j < nz_count; ++j) {
    share_total += genome[nz[j]] * c.base_time[nz[j]];
  }
  const double rerr = std::abs(share_total - c.app_compute) / c.app_compute;

  double distance;
  if (share_total <= 0.0) {
    distance = 1e18;
  } else {
    // Shares two at a time: (w·t) / total per lane, same mul-then-div shape
    // as the scalar expression.
    const __m128d vtot = _mm_set1_pd(share_total);
    std::size_t j = 0;
    for (; j + 2 <= nz_count; j += 2) {
      const __m128d g = _mm_set_pd(genome[nz[j + 1]], genome[nz[j]]);
      const __m128d t = _mm_set_pd(c.base_time[nz[j + 1]], c.base_time[nz[j]]);
      _mm_storeu_pd(share + j, _mm_div_pd(_mm_mul_pd(g, t), vtot));
    }
    for (; j < nz_count; ++j) {
      share[j] = genome[nz[j]] * c.base_time[nz[j]] / share_total;
    }

    distance = 0.0;
    for (std::size_t ib = 0; ib < machine::kMetricCount; ib += 8) {
      __m128d acc[8];
      for (auto& a : acc) a = _mm_setzero_pd();
      for (std::size_t jj = 0; jj < nz_count; ++jj) {
        const __m128d s = _mm_set1_pd(share[jj]);
        const double* row =
            c.pairs + nz[jj] * 2 * machine::kMetricCount + 2 * ib;
#pragma GCC unroll 8
        for (int u = 0; u < 8; ++u) {
          acc[u] =
              _mm_add_pd(acc[u], _mm_mul_pd(s, _mm_loadu_pd(row + 2 * u)));
        }
      }
#pragma GCC unroll 8
      for (int u = 0; u < 8; ++u) {
        const std::size_t i = ib + static_cast<std::size_t>(u);
        const __m128d d =
            _mm_div_pd(_mm_sub_pd(acc[u], _mm_loadu_pd(c.app_pair + 2 * i)),
                       _mm_loadu_pd(c.scale_pair + 2 * i));
        const __m128d sq = _mm_mul_pd(d, d);
        const double both =
            _mm_cvtsd_f64(sq) + _mm_cvtsd_f64(_mm_unpackhi_pd(sq, sq));
        distance += c.metric_weight[i] * both;
      }
    }
  }
  if (distance_out) *distance_out = distance;
  if (runtime_error_out) *runtime_error_out = rerr;
  return distance + c.lambda * rerr * rerr;
}

/// AVX2 kernel (runtime-dispatched): two metric pairs per 256-bit vector —
/// lanes {st_i, smt_i, st_i+1, smt_i+1}.  No FMA: the function's target
/// enables avx2 only, so mul and add stay separate roundings and every lane
/// remains the exact scalar sequence.  Distance terms are extracted and
/// summed per metric in ascending order.
__attribute__((target("avx2"))) double eval_one_avx2(
    const EvalCtx& c, const double* genome, const std::size_t* nz,
    std::size_t nz_count, double* share, double* distance_out,
    double* runtime_error_out) {
  double share_total = 0.0;
  for (std::size_t j = 0; j < nz_count; ++j) {
    share_total += genome[nz[j]] * c.base_time[nz[j]];
  }
  const double rerr = std::abs(share_total - c.app_compute) / c.app_compute;

  double distance;
  if (share_total <= 0.0) {
    distance = 1e18;
  } else {
    // Shares two at a time: (w·t) / total per lane, same mul-then-div shape
    // as the scalar expression.
    const __m128d vtot = _mm_set1_pd(share_total);
    std::size_t j = 0;
    for (; j + 2 <= nz_count; j += 2) {
      const __m128d g = _mm_set_pd(genome[nz[j + 1]], genome[nz[j]]);
      const __m128d t = _mm_set_pd(c.base_time[nz[j + 1]], c.base_time[nz[j]]);
      _mm_storeu_pd(share + j, _mm_div_pd(_mm_mul_pd(g, t), vtot));
    }
    for (; j < nz_count; ++j) {
      share[j] = genome[nz[j]] * c.base_time[nz[j]] / share_total;
    }

    __m256d acc[machine::kMetricCount / 2];
    for (auto& a : acc) a = _mm256_setzero_pd();
    for (std::size_t jj = 0; jj < nz_count; ++jj) {
      const __m256d s = _mm256_broadcast_sd(share + jj);
      const double* row = c.pairs + nz[jj] * 2 * machine::kMetricCount;
#pragma GCC unroll 8
      for (int u = 0; u < static_cast<int>(machine::kMetricCount / 2); ++u) {
        acc[u] =
            _mm256_add_pd(acc[u], _mm256_mul_pd(s, _mm256_loadu_pd(row + 4 * u)));
      }
    }
    distance = 0.0;
#pragma GCC unroll 8
    for (int u = 0; u < static_cast<int>(machine::kMetricCount / 2); ++u) {
      const __m256d d = _mm256_div_pd(
          _mm256_sub_pd(acc[u], _mm256_loadu_pd(c.app_pair + 4 * u)),
          _mm256_loadu_pd(c.scale_pair + 4 * u));
      const __m256d sq = _mm256_mul_pd(d, d);
      const __m128d lo = _mm256_castpd256_pd128(sq);
      const __m128d hi = _mm256_extractf128_pd(sq, 1);
      const double lo_both =
          _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
      const double hi_both =
          _mm_cvtsd_f64(hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
      distance += c.metric_weight[2 * u] * lo_both;
      distance += c.metric_weight[2 * u + 1] * hi_both;
    }
  }
  if (distance_out) *distance_out = distance;
  if (runtime_error_out) *runtime_error_out = rerr;
  return distance + c.lambda * rerr * rerr;
}

/// AVX-512F kernel: four metric pairs per 512-bit vector.  Same lane-wise
/// scalar sequence as the narrower tiers (mul and add separate, one IEEE
/// divide per lane); the shorter instruction stream lets the out-of-order
/// core keep more independent evaluations in flight, which is where the
/// batch path's extra throughput comes from.
///
/// fp-contract must be pinned off here: unlike target("avx2"), the avx512f
/// target enables the FMA ISA, and GCC lowers _mm512_mul_pd/_mm512_add_pd to
/// generic vector ops that the default -ffp-contract=fast then fuses into
/// vfmadd — a different rounding than the reference's separate mul and add,
/// which would break the bit-identity contract (caught by
/// tests/test_ga_eval.cpp).
__attribute__((target("avx512f,avx512dq"),
               optimize("fp-contract=off"))) double
eval_one_avx512(
    const EvalCtx& c, const double* genome, const std::size_t* nz,
    std::size_t nz_count, double* share, double* distance_out,
    double* runtime_error_out) {
  double share_total = 0.0;
  for (std::size_t j = 0; j < nz_count; ++j) {
    share_total += genome[nz[j]] * c.base_time[nz[j]];
  }
  const double rerr = std::abs(share_total - c.app_compute) / c.app_compute;

  double distance;
  if (share_total <= 0.0) {
    distance = 1e18;
  } else {
    const __m128d vtot = _mm_set1_pd(share_total);
    std::size_t j = 0;
    for (; j + 2 <= nz_count; j += 2) {
      const __m128d g = _mm_set_pd(genome[nz[j + 1]], genome[nz[j]]);
      const __m128d t = _mm_set_pd(c.base_time[nz[j + 1]], c.base_time[nz[j]]);
      _mm_storeu_pd(share + j, _mm_div_pd(_mm_mul_pd(g, t), vtot));
    }
    for (; j < nz_count; ++j) {
      share[j] = genome[nz[j]] * c.base_time[nz[j]] / share_total;
    }

    __m512d acc[machine::kMetricCount / 4];
    for (auto& a : acc) a = _mm512_setzero_pd();
    for (std::size_t jj = 0; jj < nz_count; ++jj) {
      const __m512d s = _mm512_set1_pd(share[jj]);
      const double* row = c.pairs + nz[jj] * 2 * machine::kMetricCount;
#pragma GCC unroll 4
      for (int u = 0; u < static_cast<int>(machine::kMetricCount / 4); ++u) {
        acc[u] = _mm512_add_pd(acc[u],
                               _mm512_mul_pd(s, _mm512_loadu_pd(row + 8 * u)));
      }
    }
    distance = 0.0;
    // Lane gather for the reduction: [st0,st1,st2,st3, smt0,smt1,smt2,smt3]
    // from the pair-interleaved squares, so st²+smt² per metric is one ymm
    // add and w[i]·both one ymm mul — each lane still the exact scalar
    // operation the reference performs (same operand pair, one rounding).
    const __m512i gather_idx = _mm512_setr_epi64(0, 2, 4, 6, 1, 3, 5, 7);
#pragma GCC unroll 4
    for (int u = 0; u < static_cast<int>(machine::kMetricCount / 4); ++u) {
      const __m512d d = _mm512_div_pd(
          _mm512_sub_pd(acc[u], _mm512_loadu_pd(c.app_pair + 8 * u)),
          _mm512_loadu_pd(c.scale_pair + 8 * u));
      const __m512d sq = _mm512_mul_pd(d, d);
      // maskz/mask forms with an explicit source instead of the plain
      // intrinsics: GCC 12's unmasked helpers route through
      // _mm512_undefined_pd and trip -Wmaybe-uninitialized; full masks make
      // them the identical instruction with a defined (ignored) source.
      const __m512d perm = _mm512_maskz_permutexvar_pd(0xFF, gather_idx, sq);
      const __m256d st2 = _mm512_mask_extractf64x4_pd(
          _mm256_setzero_pd(), 0xF, perm, 0);
      const __m256d smt2 = _mm512_mask_extractf64x4_pd(
          _mm256_setzero_pd(), 0xF, perm, 1);
      const __m256d both = _mm256_add_pd(st2, smt2);
      const __m256d weighted = _mm256_mul_pd(
          both, _mm256_loadu_pd(c.metric_weight + 4 * u));
      // The running `distance` chain itself stays scalar and ascending —
      // that order is what the bit-identity contract pins down.
      const __m128d lo = _mm256_castpd256_pd128(weighted);
      const __m128d hi = _mm256_extractf128_pd(weighted, 1);
      distance += _mm_cvtsd_f64(lo);
      distance += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
      distance += _mm_cvtsd_f64(hi);
      distance += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    }
  }
  if (distance_out) *distance_out = distance;
  if (runtime_error_out) *runtime_error_out = rerr;
  return distance + c.lambda * rerr * rerr;
}

EvalFn select_eval() {
  // SWAPP_GA_EVAL pins a specific tier (generic | sse2 | avx2 | avx512) —
  // a diagnostics/benchmarking hook, not a tuning knob: every tier is
  // bit-identical, so the override can never change results.
  if (const char* env = std::getenv("SWAPP_GA_EVAL")) {
    const std::string tier(env);
    if (tier == "generic") return &eval_one_generic;
    if (tier == "sse2") return &eval_one_sse2;
    if (tier == "avx2") return &eval_one_avx2;
    if (tier == "avx512") return &eval_one_avx512;
    SWAPP_REQUIRE(false, "unknown SWAPP_GA_EVAL tier '" + tier +
                             "' (want generic|sse2|avx2|avx512)");
  }
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return &eval_one_avx512;
  }
  if (__builtin_cpu_supports("avx2")) return &eval_one_avx2;
  return &eval_one_sse2;
}

#else

EvalFn select_eval() { return &eval_one_generic; }

#endif  // SWAPP_GA_EVAL_SIMD

/// Resolved once before main (namespace-scope initialisation), so the hot
/// paths pay one indirect call and no branch.
const EvalFn g_eval = select_eval();

// --- Delta-screen kernels --------------------------------------------------
//
// The screen evaluates, in one O(M) pass over a GaBlendState's cached
// numerators, the metric distance of `(num + Σ dwt_c · row_c) / (total +
// Σ dwt_c)` — the blended metric vector after a few-weight change, whose
// distance is invariant under the global rescale the exact path performs.
// Unlike the exact kernels the screen has no bit-identity contract: it
// exists to *reject* candidates cheaply, so a reciprocal multiply replaces
// the per-lane divide and the post-rescale runtime penalty (λ·rerr² ≈
// 1e-31) is dropped.  The tiers still keep mul and add unfused (the
// AVX-512 tier pins fp-contract=off like its exact sibling) so a screen
// value never depends on which tier computed it beyond ordinary
// reassociation-free rounding — which keeps the screen-vs-exact error
// bound (~1e-12 absolute, far under the confirm margin) tier-independent.

/// Engine precomputes a delta kernel needs, gathered per entry point.
struct DeltaCtx {
  const double* num = nullptr;  // 2·kMetricCount cached blend numerators
  const double* app_pair = nullptr;
  const double* inv_scale_pair = nullptr;
  const double* mw_pair = nullptr;
};

/// `rows[c]` is the pair-interleaved signature row of changed slot c,
/// `dwt[c]` its weight·base-time change; `inv` = 1 / (total + Σ dwt).
using DeltaFn = double (*)(const DeltaCtx&, double inv,
                           const double* const* rows, const double* dwt,
                           std::size_t count);

double delta_one_generic(const DeltaCtx& c, double inv,
                         const double* const* rows, const double* dwt,
                         std::size_t count) {
  double acc = 0.0;
  for (std::size_t l = 0; l < 2 * machine::kMetricCount; ++l) {
    double p = c.num[l];
    for (std::size_t t = 0; t < count; ++t) p += dwt[t] * rows[t][l];
    const double d = (p * inv - c.app_pair[l]) * c.inv_scale_pair[l];
    acc += c.mw_pair[l] * (d * d);
  }
  return acc;
}

#ifdef SWAPP_GA_EVAL_SIMD

double delta_one_sse2(const DeltaCtx& c, double inv,
                      const double* const* rows, const double* dwt,
                      std::size_t count) {
  const __m128d vinv = _mm_set1_pd(inv);
  __m128d vacc = _mm_setzero_pd();
  for (std::size_t l = 0; l < 2 * machine::kMetricCount; l += 2) {
    __m128d p = _mm_loadu_pd(c.num + l);
    for (std::size_t t = 0; t < count; ++t) {
      p = _mm_add_pd(p,
                     _mm_mul_pd(_mm_set1_pd(dwt[t]), _mm_loadu_pd(rows[t] + l)));
    }
    const __m128d d = _mm_mul_pd(
        _mm_sub_pd(_mm_mul_pd(p, vinv), _mm_loadu_pd(c.app_pair + l)),
        _mm_loadu_pd(c.inv_scale_pair + l));
    vacc = _mm_add_pd(
        vacc, _mm_mul_pd(_mm_loadu_pd(c.mw_pair + l), _mm_mul_pd(d, d)));
  }
  return _mm_cvtsd_f64(vacc) + _mm_cvtsd_f64(_mm_unpackhi_pd(vacc, vacc));
}

__attribute__((target("avx2"))) double delta_one_avx2(
    const DeltaCtx& c, double inv, const double* const* rows,
    const double* dwt, std::size_t count) {
  const __m256d vinv = _mm256_set1_pd(inv);
  __m256d vacc = _mm256_setzero_pd();
  for (std::size_t l = 0; l < 2 * machine::kMetricCount; l += 4) {
    __m256d p = _mm256_loadu_pd(c.num + l);
    for (std::size_t t = 0; t < count; ++t) {
      p = _mm256_add_pd(p, _mm256_mul_pd(_mm256_set1_pd(dwt[t]),
                                         _mm256_loadu_pd(rows[t] + l)));
    }
    const __m256d d = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_mul_pd(p, vinv), _mm256_loadu_pd(c.app_pair + l)),
        _mm256_loadu_pd(c.inv_scale_pair + l));
    vacc = _mm256_add_pd(
        vacc, _mm256_mul_pd(_mm256_loadu_pd(c.mw_pair + l), _mm256_mul_pd(d, d)));
  }
  const __m128d lo = _mm256_castpd256_pd128(vacc);
  const __m128d hi = _mm256_extractf128_pd(vacc, 1);
  const __m128d sum = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(sum) + _mm_cvtsd_f64(_mm_unpackhi_pd(sum, sum));
}

/// fp-contract pinned off for the same reason as eval_one_avx512: the
/// avx512f target enables FMA and -ffp-contract=fast would fuse the
/// mul/add pairs, making this tier's screen values drift from the others'.
__attribute__((target("avx512f,avx512dq"),
               optimize("fp-contract=off"))) double
delta_one_avx512(const DeltaCtx& c, double inv, const double* const* rows,
                 const double* dwt, std::size_t count) {
  const __m512d vinv = _mm512_set1_pd(inv);
  __m512d vacc = _mm512_setzero_pd();
  for (std::size_t l = 0; l < 2 * machine::kMetricCount; l += 8) {
    __m512d p = _mm512_loadu_pd(c.num + l);
    for (std::size_t t = 0; t < count; ++t) {
      p = _mm512_add_pd(p, _mm512_mul_pd(_mm512_set1_pd(dwt[t]),
                                         _mm512_loadu_pd(rows[t] + l)));
    }
    const __m512d d = _mm512_mul_pd(
        _mm512_sub_pd(_mm512_mul_pd(p, vinv), _mm512_loadu_pd(c.app_pair + l)),
        _mm512_loadu_pd(c.inv_scale_pair + l));
    vacc = _mm512_add_pd(
        vacc, _mm512_mul_pd(_mm512_loadu_pd(c.mw_pair + l), _mm512_mul_pd(d, d)));
  }
  // Masked extracts with an explicit zero source for the reduction — the
  // plain _mm512_reduce_add_pd helper routes through _mm512_undefined_pd
  // and trips GCC 12's -Wmaybe-uninitialized (same idiom as the exact
  // AVX-512 kernel above).
  const __m256d lo = _mm512_mask_extractf64x4_pd(_mm256_setzero_pd(), 0xF,
                                                 vacc, 0);
  const __m256d hi = _mm512_mask_extractf64x4_pd(_mm256_setzero_pd(), 0xF,
                                                 vacc, 1);
  const __m256d sum4 = _mm256_add_pd(lo, hi);
  const __m128d sum2 = _mm_add_pd(_mm256_castpd256_pd128(sum4),
                                  _mm256_extractf128_pd(sum4, 1));
  return _mm_cvtsd_f64(sum2) + _mm_cvtsd_f64(_mm_unpackhi_pd(sum2, sum2));
}

#endif  // SWAPP_GA_EVAL_SIMD

/// Maps a tier name to its kernel; `ok` reports whether this CPU can run
/// it.  "" means auto-select (env pin honoured, then best supported ISA).
DeltaFn delta_for_tier(const std::string& tier, bool& ok) {
  ok = true;
  if (tier == "generic") return &delta_one_generic;
#ifdef SWAPP_GA_EVAL_SIMD
  if (tier == "sse2") return &delta_one_sse2;
  if (tier == "avx2") {
    ok = __builtin_cpu_supports("avx2");
    return &delta_one_avx2;
  }
  if (tier == "avx512") {
    ok = __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
    return &delta_one_avx512;
  }
#endif
  ok = false;
  return &delta_one_generic;
}

DeltaFn select_delta() {
  // Same SWAPP_GA_EVAL pin as the exact kernels: pinning a tier pins both
  // dispatches, so a pinned run exercises one ISA end to end.
  if (const char* env = std::getenv("SWAPP_GA_EVAL")) {
    bool ok = false;
    DeltaFn fn = delta_for_tier(env, ok);
    SWAPP_REQUIRE(ok, "unknown or unsupported SWAPP_GA_EVAL tier '" +
                          std::string(env) +
                          "' (want generic|sse2|avx2|avx512)");
    return fn;
  }
#ifdef SWAPP_GA_EVAL_SIMD
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return &delta_one_avx512;
  }
  if (__builtin_cpu_supports("avx2")) return &delta_one_avx2;
  return &delta_one_sse2;
#else
  return &delta_one_generic;
#endif
}

/// Unlike g_eval this dispatch is an atomic: set_ga_delta_tier lets tests
/// and benchmarks sweep every supported tier within one process, including
/// while GA restarts run on pool threads (relaxed loads — tier switches
/// need no ordering because every tier computes the same screen).
std::atomic<DeltaFn> g_delta{select_delta()};

}  // namespace

bool set_ga_delta_tier(const std::string& tier) {
  if (tier.empty()) {
    g_delta.store(select_delta(), std::memory_order_relaxed);
    return true;
  }
  bool ok = false;
  const DeltaFn fn = delta_for_tier(tier, ok);
  if (!ok) return false;
  g_delta.store(fn, std::memory_order_relaxed);
  return true;
}

std::vector<std::string> ga_delta_supported_tiers() {
  std::vector<std::string> out{"generic"};
#ifdef SWAPP_GA_EVAL_SIMD
  out.push_back("sse2");
  if (__builtin_cpu_supports("avx2")) out.push_back("avx2");
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    out.push_back("avx512");
  }
#endif
  return out;
}

double GaEvalEngine::fitness_sparse(const double* genome,
                                    const std::size_t* nz,
                                    std::size_t nz_count,
                                    GaEvalScratch& scratch,
                                    double* distance_out,
                                    double* runtime_error_out) const {
  SWAPP_ASSERT(n_ > 0, "GaEvalEngine used before build()");
  if (scratch.share.size() < nz_count) scratch.share.resize(nz_count);
  const EvalCtx c{st_.data(),         smt_.data(),
                  pairs_.data(),      base_time_.data(),
                  app_st_.data(),     app_smt_.data(),
                  app_pair_.data(),   scale_.data(),
                  scale_pair_.data(), metric_weight_.data(),
                  app_compute_,       lambda_,
                  n_};
  return g_eval(c, genome, nz, nz_count, scratch.share.data(), distance_out,
                runtime_error_out);
}

void GaEvalEngine::evaluate_population(const GenomeRef* batch,
                                       std::size_t count,
                                       GaEvalScratch& scratch,
                                       double* fitness_out) const {
  SWAPP_ASSERT(n_ > 0, "GaEvalEngine used before build()");
  if (scratch.share.size() < n_) scratch.share.resize(n_);
  double* share = scratch.share.data();
  const EvalCtx c{st_.data(),         smt_.data(),
                  pairs_.data(),      base_time_.data(),
                  app_st_.data(),     app_smt_.data(),
                  app_pair_.data(),   scale_.data(),
                  scale_pair_.data(), metric_weight_.data(),
                  app_compute_,       lambda_,
                  n_};
  for (std::size_t b = 0; b < count; ++b) {
    const GenomeRef& ref = batch[b];
    SWAPP_ASSERT(ref.nz_count <= n_, "nz list longer than the suite");
    fitness_out[b] =
        g_eval(c, ref.genome, ref.nz, ref.nz_count, share, nullptr, nullptr);
  }
}

void GaEvalEngine::bind_blend(GaBlendState& state, const double* genome,
                              const std::size_t* nz,
                              std::size_t nz_count) const {
  SWAPP_ASSERT(n_ > 0, "GaEvalEngine used before build()");
  state.slots_.assign(nz, nz + nz_count);
  state.wt_.resize(nz_count);
  state.num_.fill(0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < nz_count; ++j) {
    const std::size_t k = nz[j];
    SWAPP_ASSERT(k < n_, "nz slot outside the suite");
    const double wt = genome[k] * base_time_[k];
    state.wt_[j] = wt;
    total += wt;
    const double* row = pairs_.data() + k * 2 * machine::kMetricCount;
    for (std::size_t l = 0; l < 2 * machine::kMetricCount; ++l) {
      state.num_[l] += wt * row[l];
    }
  }
  state.total_ = total;
  state.updates_ = 0;
  state.bound_ = true;
}

double GaEvalEngine::fitness_delta_scale1(const GaBlendState& state,
                                          std::size_t j,
                                          double factor) const {
  SWAPP_ASSERT(state.bound_ && j < state.slots_.size(),
               "delta screen on an unbound or out-of-range term");
  const double dwt = (factor - 1.0) * state.wt_[j];
  const double total = state.total_ + dwt;
  if (total <= 0.0) return 1e18;
  const double* row =
      pairs_.data() + state.slots_[j] * 2 * machine::kMetricCount;
  const DeltaCtx c{state.num_.data(), app_pair_.data(),
                   inv_scale_pair_.data(), mw_pair_.data()};
  const double* rows[1] = {row};
  const double dwts[1] = {dwt};
  return g_delta.load(std::memory_order_relaxed)(c, 1.0 / total, rows, dwts,
                                                 1);
}

double GaEvalEngine::fitness_delta_changes(const GaBlendState& state,
                                           const GaWeightChange* changes,
                                           std::size_t count) const {
  SWAPP_ASSERT(state.bound_, "delta screen on an unbound state");
  SWAPP_ASSERT(count <= kMaxDeltaChanges, "too many delta changes");
  const double* rows[kMaxDeltaChanges];
  double dwts[kMaxDeltaChanges];
  double total = state.total_;
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t k = changes[t].slot;
    SWAPP_ASSERT(k < n_, "delta change slot outside the suite");
    const double dwt = changes[t].delta_weight * base_time_[k];
    rows[t] = pairs_.data() + k * 2 * machine::kMetricCount;
    dwts[t] = dwt;
    total += dwt;
  }
  if (total <= 0.0) return 1e18;
  const DeltaCtx c{state.num_.data(), app_pair_.data(),
                   inv_scale_pair_.data(), mw_pair_.data()};
  return g_delta.load(std::memory_order_relaxed)(c, 1.0 / total, rows, dwts,
                                                 count);
}

void GaEvalEngine::apply_scale1(GaBlendState& state, std::size_t j,
                                double factor) const {
  SWAPP_ASSERT(state.bound_ && j < state.slots_.size(),
               "delta apply on an unbound or out-of-range term");
  const double dwt = (factor - 1.0) * state.wt_[j];
  const double* row =
      pairs_.data() + state.slots_[j] * 2 * machine::kMetricCount;
  for (std::size_t l = 0; l < 2 * machine::kMetricCount; ++l) {
    state.num_[l] += dwt * row[l];
  }
  state.total_ += dwt;
  state.wt_[j] *= factor;
  ++state.updates_;
}

}  // namespace swapp::core
