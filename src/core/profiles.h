// Input data models for the SWAPP projection pipeline.
//
// The paper's information hygiene is encoded in these types: a projection
// consumes (a) application profiles measured on the BASE machine only —
// hardware counters at a few core counts Ci and MPI profiles at core counts
// Cj — and (b) benchmark data (SPEC-style runtimes, IMB-style tables) for
// base AND target.  Nothing here ever holds a target-machine application
// measurement.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "machine/counters.h"
#include "mpi/profile.h"
#include "support/units.h"

namespace swapp::core {

/// Application data collected on the base system (paper Fig. 1, left side).
struct AppBaseData {
  std::string app;
  std::string base_machine;
  /// OpenMP threads per MPI task (1 = pure MPI).  Hybrid profiles must be
  /// collected with the same thread count the projection targets so node
  /// occupancy matches between application and benchmarks.
  int threads_per_rank = 1;

  /// MPI profiles at each profiled task count Cj (paper §2.4 step 1).
  std::map<int, mpi::MpiProfile> mpi_profiles;

  /// Hardware counters at each counter-collection count Ci (n ≤ 4 suffices
  /// per §3.1), in single-thread and SMT modes (§4's ST/SMT methodology).
  std::map<int, machine::PmuCounters> counters_st;
  std::map<int, machine::PmuCounters> counters_smt;

  /// Mean per-task compute seconds at each Cj (input to CCSM).
  std::map<int, Seconds> mean_compute;

  const mpi::MpiProfile& profile_at(int cores) const;
  /// Profiled task counts in ascending order.
  std::vector<int> profiled_core_counts() const;
  std::vector<int> counter_core_counts() const;
};

/// SPEC-style benchmark data at one fixed node occupancy per machine: the
/// flat view the ranking and the surrogate search consume.
struct SpecData {
  std::vector<std::string> names;
  std::map<std::string, machine::PmuCounters> base_counters_st;
  std::map<std::string, machine::PmuCounters> base_counters_smt;
  std::map<std::string, Seconds> base_runtime;
  /// machine name -> benchmark name -> runtime.
  std::map<std::string, std::map<std::string, Seconds>> target_runtime;

  Seconds runtime_on(const std::string& machine_name,
                     const std::string& benchmark) const;
};

/// The full benchmark library: SPEC-style throughput ("rate") data at every
/// published copy count (node occupancy), for the base and each target.
///
/// SPEC rate results are published per copy count; an application running Ck
/// tasks occupies min(Ck, cores/node) cores of each node, and the projection
/// must compare against benchmark data at that same occupancy — otherwise
/// shared-cache and memory-bandwidth pressure differ between benchmark and
/// application and the surrogate's base→target speedups are systematically
/// wrong for partially-filled nodes.
struct SpecLibrary {
  std::vector<std::string> names;
  std::string base_machine;
  int base_cores_per_node = 0;

  /// occupancy (copies per node) -> benchmark -> data, on the base machine.
  std::map<int, std::map<std::string, machine::PmuCounters>> base_counters_st;
  std::map<int, std::map<std::string, machine::PmuCounters>> base_counters_smt;
  std::map<int, std::map<std::string, Seconds>> base_runtime;

  struct TargetInfo {
    int cores_per_node = 0;
    /// occupancy -> benchmark -> runtime.
    std::map<int, std::map<std::string, Seconds>> runtime;
  };
  std::map<std::string, TargetInfo> targets;

  /// Node occupancy of an application with `ck` tasks on a machine with
  /// `cores_per_node` cores (block placement).
  static int occupancy_for(int ck, int cores_per_node);

  /// Flattens the library to the (base, target) occupancy pair relevant for
  /// a projection at Ck.  Uses the nearest collected occupancy when the
  /// exact one is absent.
  SpecData view(int base_occupancy, const std::string& target_machine,
                int target_occupancy) const;
};

}  // namespace swapp::core
