#include "core/ccsm.h"

#include <vector>

#include "support/error.h"

namespace swapp::core {

CcsmModel::CcsmModel(const std::map<int, Seconds>& compute_by_cores)
    : samples_(compute_by_cores) {
  SWAPP_REQUIRE(samples_.size() >= 2,
                "CCSM needs compute times at >= 2 task counts");
  std::vector<double> cores;
  std::vector<double> times;
  cores.reserve(samples_.size());
  times.reserve(samples_.size());
  for (const auto& [c, t] : samples_) {
    SWAPP_REQUIRE(t > 0.0, "CCSM compute times must be positive");
    cores.push_back(static_cast<double>(c));
    times.push_back(t);
    max_profiled_ = c;
  }
  fit_ = fit_scaling(cores, times);
}

double CcsmModel::gamma(int from_cores, int to_cores) const {
  SWAPP_REQUIRE(from_cores >= 1 && to_cores >= 1,
                "core counts must be positive");
  // Prefer exact profiled ratios when both counts were measured — the fit is
  // only needed to inter/extra-polate.
  const auto from_it = samples_.find(from_cores);
  const auto to_it = samples_.find(to_cores);
  if (from_it != samples_.end() && to_it != samples_.end()) {
    return to_it->second / from_it->second;
  }
  return fit_.scale_factor(static_cast<double>(from_cores),
                           static_cast<double>(to_cores));
}

Seconds CcsmModel::predict(int cores) const {
  const auto it = samples_.find(cores);
  if (it != samples_.end()) return it->second;
  return fit_(static_cast<double>(cores));
}

bool CcsmModel::gamma_reliable(int cores, double ch) const {
  if (cores <= max_profiled_) return true;
  return static_cast<double>(cores) < ch;
}

}  // namespace swapp::core
