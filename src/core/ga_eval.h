// GA evaluation engine: the surrogate search's innermost kernel over a
// transposed, metric-major (SoA) copy of the benchmark signatures.
//
// The GA objective (ga.h) blends benchmark metric vectors by runtime share
// and measures the rank-weighted distance to the application's signature in
// ST and SMT modes.  `Problem::fitness_fused` sweeps the array-of-structs
// `MetricVector` storage once per evaluation; this engine holds the same
// data transposed — for each metric i a contiguous array over the suite —
// plus the application-side vectors and scales as plain arrays, so the
// per-metric blend and the distance pass run over flat memory with no
// per-term gather through `MetricVector` objects.
//
// Two entry points sit on top of the layout:
//   * `fitness_sparse` evaluates one genome given its nonzero-term index
//     list (the `nz` scratch the breeding loop already maintains), touching
//     O(|nz|) terms instead of scanning every suite weight.
//   * `evaluate_population` scores a whole generation in one call over
//     reused caller-owned scratch, amortising setup across the population.
//
// Bit-identity contract: for every genome with non-negative weights whose
// `nz` list contains at least all strictly-positive positions, both entry
// points produce results bit-identical to the reference `fitness()` path
// (and to `fitness_fused`).  The argument, relied on throughout:
//   * every accumulator (runtime-share total, the 16+16 per-metric blends,
//     the distance sum) receives its additions in the same ascending-k /
//     ascending-i order as the reference;
//   * terms the reference skips (`g[k] == 0.0`) contribute exact `+0.0`
//     additions here, which cannot change the bits of a non-negative
//     accumulator;
//   * every arithmetic expression (share, deviation, penalty) is written
//     with the same shape as the reference, so the compiler emits the same
//     roundings.
// `ga_fitness_probe` (ga.h) and tests/test_ga_eval.cpp verify the contract.
//
// Delta evaluation (the screening fast path): the objective blend is linear
// in the weights, so a genome whose blended metric vector is cached in a
// `GaBlendState` can be re-screened after a few-weight change in O(M) —
// one accumulator update per metric lane — instead of the O(|nz|·M) full
// re-blend.  Screens are *approximate* by design (reciprocal-multiply
// replaces the per-lane divide, the post-rescale runtime penalty ~1e-31 is
// dropped, and the cached blend drifts by one rounding per committed
// update); consumers must confirm any apparently-improving candidate with
// one exact `fitness_sparse` before acting on it.  ga.cpp's polish loop is
// the canonical consumer: screen 4×|nz| candidates per sweep, confirm the
// survivors exactly, accept only on the exact value — which keeps the
// search's results bit-identical to full evaluation while skipping the
// exact evals for the (vast majority of) rejected candidates.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/counters.h"

namespace swapp::core {

/// Caller-owned scratch reused across evaluations (the engine itself is
/// immutable after `build`, so one engine can serve concurrent GA restarts
/// as long as each evaluation thread brings its own scratch).
struct GaEvalScratch {
  /// Per-nonzero-term runtime shares (capacity grows to the suite size).
  std::vector<double> share;
};

/// One genome prepared for batched evaluation: the weight array and its
/// nonzero-position list (ascending, containing every strictly-positive
/// position; extra zero-weight positions are harmless — see bit-identity
/// contract above).
struct GenomeRef {
  const double* genome = nullptr;
  const std::size_t* nz = nullptr;
  std::size_t nz_count = 0;
};

/// One weight edit for delta screening: `slot` indexes the suite and
/// `delta_weight` is the change in the raw weight (new − old).  Slots
/// outside the bound genome's nz list are allowed (an add-mutation).
struct GaWeightChange {
  std::size_t slot = 0;
  double delta_weight = 0.0;
};

/// Screens accept at most this many simultaneous weight changes (the
/// mutation path produces ≤3; one slot of headroom keeps the kernels'
/// change loop trivially bounded).
inline constexpr std::size_t kMaxDeltaChanges = 4;

/// Cached blend of one genome: the runtime-weighted total Σ wⱼtⱼ and the
/// 2·kMetricCount pair-interleaved blend numerators Σ wⱼtⱼ·mⱼₗ, plus the
/// per-term wⱼtⱼ products the scale-1 entry points perturb.  Bound by
/// `GaEvalEngine::bind_blend`; committed updates accumulate one rounding
/// each, so after `kRefreshInterval` updates `needs_refresh()` asks the
/// owner to re-bind from the live genome (the drift bound
/// tests/test_ga_eval.cpp measures).
class GaBlendState {
 public:
  /// Committed delta updates tolerated before a full re-bind is requested.
  static constexpr std::uint32_t kRefreshInterval = 64;

  bool bound() const noexcept { return bound_; }
  bool needs_refresh() const noexcept { return updates_ >= kRefreshInterval; }
  std::uint32_t updates() const noexcept { return updates_; }
  std::size_t term_count() const noexcept { return slots_.size(); }

 private:
  friend class GaEvalEngine;
  /// Pair-interleaved blend numerators (same lane order as the engine's
  /// `pairs_` tiling): num_[2i] = Σ wⱼtⱼ·st_i, num_[2i+1] = Σ wⱼtⱼ·smt_i.
  std::array<double, 2 * machine::kMetricCount> num_{};
  double total_ = 0.0;               ///< Σ wⱼtⱼ over the bound nz list
  std::vector<double> wt_;           ///< per-nz-term wⱼtⱼ products
  std::vector<std::size_t> slots_;   ///< the bound nz list (ascending)
  std::uint32_t updates_ = 0;
  bool bound_ = false;
};

class GaEvalEngine {
 public:
  GaEvalEngine() = default;

  /// Builds the metric-major arrays from suite-ordered AoS signatures plus
  /// the application-side vectors, scales, and penalty parameters.
  void build(const std::vector<machine::MetricVector>& bench_st,
             const std::vector<machine::MetricVector>& bench_smt,
             const std::vector<double>& base_time,
             const machine::MetricVector& app_st,
             const machine::MetricVector& app_smt,
             const std::array<double, machine::kMetricCount>& scale,
             const std::array<double, machine::kMetricCount>& metric_weight,
             double app_compute, double lambda);

  std::size_t size() const noexcept { return n_; }

  /// Sparse single-genome objective.  `nz`/`nz_count` list the genome's
  /// nonzero positions in ascending order.  Optionally reports the metric
  /// distance and relative runtime error (the two objective components).
  double fitness_sparse(const double* genome, const std::size_t* nz,
                        std::size_t nz_count, GaEvalScratch& scratch,
                        double* distance_out = nullptr,
                        double* runtime_error_out = nullptr) const;

  /// Batched entry point: writes `fitness_out[b]` for each genome in
  /// `batch[0 .. count)`.  Bit-identical to `count` `fitness_sparse` calls.
  void evaluate_population(const GenomeRef* batch, std::size_t count,
                           GaEvalScratch& scratch, double* fitness_out) const;

  // --- Delta evaluation (screening) -------------------------------------

  /// Caches `genome`'s blend in `state` (exact O(|nz|·M) build; the nz list
  /// is copied so the state outlives the genome buffer).
  void bind_blend(GaBlendState& state, const double* genome,
                  const std::size_t* nz, std::size_t nz_count) const;

  /// Screened objective after scaling the bound genome's j-th nz term by
  /// `factor` and renormalising globally (the polish move).  O(M): one
  /// fused pass over the cached numerators through the runtime-dispatched
  /// delta kernel.  Approximates the exact post-rescale fitness to ~1e-12
  /// absolute — callers must confirm with `fitness_sparse` before
  /// accepting.
  double fitness_delta_scale1(const GaBlendState& state, std::size_t j,
                              double factor) const;

  /// Screened objective after applying up to `kMaxDeltaChanges` raw weight
  /// edits to the bound genome and renormalising globally (the mutation
  /// path's perturb-only children).  Same accuracy contract as
  /// `fitness_delta_scale1`.
  double fitness_delta_changes(const GaBlendState& state,
                               const GaWeightChange* changes,
                               std::size_t count) const;

  /// Commits the scale-1 change into the cached blend (O(M) accumulator
  /// update, one more rounding of drift; bumps the update counter driving
  /// `needs_refresh()`).
  void apply_scale1(GaBlendState& state, std::size_t j, double factor) const;

  /// Metric-major signature array (`metric_major_st()[i * size() + k]` =
  /// metric i of benchmark k), exposed for tests and diagnostics.
  const std::vector<double>& metric_major_st() const noexcept { return st_; }
  const std::vector<double>& metric_major_smt() const noexcept { return smt_; }

 private:
  std::size_t n_ = 0;
  /// Metric-major signatures: `st_[i * n_ + k]` = metric i of benchmark k.
  /// This is the canonical transposed store (and the portable kernel's
  /// layout); `pairs_` below is a SIMD tiling derived from it.
  std::vector<double> st_;
  std::vector<double> smt_;
  /// ST/SMT pair-interleaved tiling for the SIMD kernels:
  /// `pairs_[k * 2 * kMetricCount + 2 * i]` = metric i of benchmark k in ST
  /// mode, `... + 2 * i + 1` = the same metric in SMT mode.  One vector load
  /// then covers the (st, smt) lane pair that the objective's distance pass
  /// divides by the same `scale_[i]`.
  std::vector<double> pairs_;
  std::vector<double> base_time_;
  std::array<double, machine::kMetricCount> app_st_{};
  std::array<double, machine::kMetricCount> app_smt_{};
  /// App-side and scale vectors in the same pair-interleaved order.
  std::array<double, 2 * machine::kMetricCount> app_pair_{};
  std::array<double, 2 * machine::kMetricCount> scale_pair_{};
  /// Delta-kernel precomputes: reciprocal scales and pair-duplicated metric
  /// weights, so the screen is pure mul/add over 2·kMetricCount lanes.
  std::array<double, 2 * machine::kMetricCount> inv_scale_pair_{};
  std::array<double, 2 * machine::kMetricCount> mw_pair_{};
  std::array<double, machine::kMetricCount> scale_{};
  std::array<double, machine::kMetricCount> metric_weight_{};
  double app_compute_ = 0.0;
  double lambda_ = 0.0;
};

/// Pins the delta-screen kernel tier at runtime ("generic" | "sse2" |
/// "avx2" | "avx512"; "" restores auto-selection, which also honours the
/// `SWAPP_GA_EVAL` env pin).  Returns false — leaving the tier unchanged —
/// if the CPU lacks the requested ISA.  Unlike the exact-eval dispatch
/// (resolved once before main), this is an atomic so tests and benchmarks
/// can sweep every supported tier in one process.
bool set_ga_delta_tier(const std::string& tier);

/// Delta tiers this CPU can run, in escalation order (always starts with
/// "generic").
std::vector<std::string> ga_delta_supported_tiers();

}  // namespace swapp::core
