// GA evaluation engine: the surrogate search's innermost kernel over a
// transposed, metric-major (SoA) copy of the benchmark signatures.
//
// The GA objective (ga.h) blends benchmark metric vectors by runtime share
// and measures the rank-weighted distance to the application's signature in
// ST and SMT modes.  `Problem::fitness_fused` sweeps the array-of-structs
// `MetricVector` storage once per evaluation; this engine holds the same
// data transposed — for each metric i a contiguous array over the suite —
// plus the application-side vectors and scales as plain arrays, so the
// per-metric blend and the distance pass run over flat memory with no
// per-term gather through `MetricVector` objects.
//
// Two entry points sit on top of the layout:
//   * `fitness_sparse` evaluates one genome given its nonzero-term index
//     list (the `nz` scratch the breeding loop already maintains), touching
//     O(|nz|) terms instead of scanning every suite weight.
//   * `evaluate_population` scores a whole generation in one call over
//     reused caller-owned scratch, amortising setup across the population.
//
// Bit-identity contract: for every genome with non-negative weights whose
// `nz` list contains at least all strictly-positive positions, both entry
// points produce results bit-identical to the reference `fitness()` path
// (and to `fitness_fused`).  The argument, relied on throughout:
//   * every accumulator (runtime-share total, the 16+16 per-metric blends,
//     the distance sum) receives its additions in the same ascending-k /
//     ascending-i order as the reference;
//   * terms the reference skips (`g[k] == 0.0`) contribute exact `+0.0`
//     additions here, which cannot change the bits of a non-negative
//     accumulator;
//   * every arithmetic expression (share, deviation, penalty) is written
//     with the same shape as the reference, so the compiler emits the same
//     roundings.
// `ga_fitness_probe` (ga.h) and tests/test_ga_eval.cpp verify the contract.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "machine/counters.h"

namespace swapp::core {

/// Caller-owned scratch reused across evaluations (the engine itself is
/// immutable after `build`, so one engine can serve concurrent GA restarts
/// as long as each evaluation thread brings its own scratch).
struct GaEvalScratch {
  /// Per-nonzero-term runtime shares (capacity grows to the suite size).
  std::vector<double> share;
};

/// One genome prepared for batched evaluation: the weight array and its
/// nonzero-position list (ascending, containing every strictly-positive
/// position; extra zero-weight positions are harmless — see bit-identity
/// contract above).
struct GenomeRef {
  const double* genome = nullptr;
  const std::size_t* nz = nullptr;
  std::size_t nz_count = 0;
};

class GaEvalEngine {
 public:
  GaEvalEngine() = default;

  /// Builds the metric-major arrays from suite-ordered AoS signatures plus
  /// the application-side vectors, scales, and penalty parameters.
  void build(const std::vector<machine::MetricVector>& bench_st,
             const std::vector<machine::MetricVector>& bench_smt,
             const std::vector<double>& base_time,
             const machine::MetricVector& app_st,
             const machine::MetricVector& app_smt,
             const std::array<double, machine::kMetricCount>& scale,
             const std::array<double, machine::kMetricCount>& metric_weight,
             double app_compute, double lambda);

  std::size_t size() const noexcept { return n_; }

  /// Sparse single-genome objective.  `nz`/`nz_count` list the genome's
  /// nonzero positions in ascending order.  Optionally reports the metric
  /// distance and relative runtime error (the two objective components).
  double fitness_sparse(const double* genome, const std::size_t* nz,
                        std::size_t nz_count, GaEvalScratch& scratch,
                        double* distance_out = nullptr,
                        double* runtime_error_out = nullptr) const;

  /// Batched entry point: writes `fitness_out[b]` for each genome in
  /// `batch[0 .. count)`.  Bit-identical to `count` `fitness_sparse` calls.
  void evaluate_population(const GenomeRef* batch, std::size_t count,
                           GaEvalScratch& scratch, double* fitness_out) const;

  /// Metric-major signature array (`metric_major_st()[i * size() + k]` =
  /// metric i of benchmark k), exposed for tests and diagnostics.
  const std::vector<double>& metric_major_st() const noexcept { return st_; }
  const std::vector<double>& metric_major_smt() const noexcept { return smt_; }

 private:
  std::size_t n_ = 0;
  /// Metric-major signatures: `st_[i * n_ + k]` = metric i of benchmark k.
  /// This is the canonical transposed store (and the portable kernel's
  /// layout); `pairs_` below is a SIMD tiling derived from it.
  std::vector<double> st_;
  std::vector<double> smt_;
  /// ST/SMT pair-interleaved tiling for the SIMD kernels:
  /// `pairs_[k * 2 * kMetricCount + 2 * i]` = metric i of benchmark k in ST
  /// mode, `... + 2 * i + 1` = the same metric in SMT mode.  One vector load
  /// then covers the (st, smt) lane pair that the objective's distance pass
  /// divides by the same `scale_[i]`.
  std::vector<double> pairs_;
  std::vector<double> base_time_;
  std::array<double, machine::kMetricCount> app_st_{};
  std::array<double, machine::kMetricCount> app_smt_{};
  /// App-side and scale vectors in the same pair-interleaved order.
  std::array<double, 2 * machine::kMetricCount> app_pair_{};
  std::array<double, 2 * machine::kMetricCount> scale_pair_{};
  std::array<double, machine::kMetricCount> scale_{};
  std::array<double, machine::kMetricCount> metric_weight_{};
  double app_compute_ = 0.0;
  double lambda_ = 0.0;
};

}  // namespace swapp::core
