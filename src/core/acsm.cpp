#include "core/acsm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"
#include "support/fit.h"

namespace swapp::core {
namespace {

/// Fraction of the largest observed value below which a reload metric is
/// treated as "contained in a lower level".
constexpr double kContainedFraction = 0.05;

std::vector<double> metric_series(
    const std::map<int, machine::PmuCounters>& samples,
    double machine::PmuCounters::*member) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& [cores, counters] : samples) out.push_back(counters.*member);
  return out;
}

}  // namespace

AcsmModel::AcsmModel(
    const std::map<int, machine::PmuCounters>& counters_by_cores,
    const machine::Machine& base)
    : samples_(counters_by_cores), base_(base) {
  SWAPP_REQUIRE(samples_.size() >= 2,
                "ACSM needs counters at >= 2 core counts");
  cores_.reserve(samples_.size());
  for (const auto& [cores, counters] : samples_) {
    cores_.push_back(static_cast<double>(cores));
  }

  // Ch: earliest predicted crossing among the reload metrics (paper's
  // example: the count where DATA_FROM_L3 reaches zero).
  ch_ = std::numeric_limits<double>::infinity();
  for (const auto member : {&machine::PmuCounters::data_from_l3_per_instr,
                            &machine::PmuCounters::data_from_local_mem_per_instr,
                            &machine::PmuCounters::data_from_remote_mem_per_instr}) {
    const std::vector<double> series = metric_series(samples_, member);
    const double peak = *std::max_element(series.begin(), series.end());
    if (peak <= 0.0) continue;
    const double crossing =
        extrapolate_zero_crossing(cores_, series, peak * kContainedFraction);
    ch_ = std::min(ch_, crossing);
  }
}

bool AcsmModel::needs_extrapolation(int ck) const {
  return samples_.find(ck) == samples_.end();
}

double AcsmModel::extrapolate_metric(const std::vector<double>& values,
                                     int ck) const {
  // Power-law fit in core count, clamped to non-negative; constant when the
  // series is flat or non-positive.
  bool positive = true;
  for (const double v : values) positive = positive && v > 0.0;
  if (!positive) return values.back();
  const PowerFit fit = fit_power(cores_, values);
  const double predicted = fit(static_cast<double>(ck));
  if (!std::isfinite(predicted) || predicted < 0.0) return 0.0;
  // A metric predicted below the containment threshold has dropped a level.
  const double peak = *std::max_element(values.begin(), values.end());
  return predicted < peak * kContainedFraction ? 0.0 : predicted;
}

machine::PmuCounters AcsmModel::counters_at(int ck) const {
  const auto exact = samples_.find(ck);
  if (exact != samples_.end()) return exact->second;

  // Start from the nearest sampled profile (in log space).
  const auto nearest = std::min_element(
      samples_.begin(), samples_.end(), [&](const auto& a, const auto& b) {
        const double da = std::abs(std::log(static_cast<double>(a.first)) -
                                   std::log(static_cast<double>(ck)));
        const double db = std::abs(std::log(static_cast<double>(b.first)) -
                                   std::log(static_cast<double>(ck)));
        return da < db;
      });
  machine::PmuCounters out = nearest->second;

  const auto extrapolate = [&](double machine::PmuCounters::*member) {
    out.*member = extrapolate_metric(metric_series(samples_, member), ck);
  };
  // G5 — the model's core purpose.
  extrapolate(&machine::PmuCounters::data_from_l2_per_instr);
  extrapolate(&machine::PmuCounters::data_from_l3_per_instr);
  extrapolate(&machine::PmuCounters::data_from_local_mem_per_instr);
  extrapolate(&machine::PmuCounters::data_from_remote_mem_per_instr);
  // G4 and G6 shrink with the footprint as well.
  extrapolate(&machine::PmuCounters::erat_miss_rate);
  extrapolate(&machine::PmuCounters::slb_miss_rate);
  extrapolate(&machine::PmuCounters::tlb_miss_rate);
  extrapolate(&machine::PmuCounters::memory_bandwidth_gbs);

  // Re-derive the memory-stall CPI from the synthesised reload mix using the
  // base machine's cache latencies, preserving the observed overlap ratio
  // (observed stall / latency-weighted reloads) of the nearest sample.
  const auto latency_weighted = [&](const machine::PmuCounters& c) {
    const auto& levels = base_.caches.levels();
    double sum = 0.0;
    for (const auto& level : levels) {
      if (level.name == "L2") sum += c.data_from_l2_per_instr * level.latency_cycles;
      if (level.name == "L3") sum += c.data_from_l3_per_instr * level.latency_cycles;
    }
    sum += c.data_from_local_mem_per_instr * base_.caches.memory().latency_cycles;
    sum += c.data_from_remote_mem_per_instr *
           base_.caches.memory().remote_latency_cycles;
    return sum;
  };
  const double observed = latency_weighted(nearest->second);
  if (observed > 0.0) {
    const double overlap_ratio = nearest->second.cpi_stall_mem / observed;
    out.cpi_stall_mem = latency_weighted(out) * overlap_ratio;
  }
  return out;
}

}  // namespace swapp::core
