// Application Cache Strong Scaling Model (paper §3.1).
//
// ACSM extrapolates the G5 reload metrics m5,1…m5,4 collected at a few core
// counts Ci to (a) find Ch — the core count at which the application's
// per-rank cache footprint drops into a lower cache level, producing
// hyper-scaling — and (b) synthesise a counter profile at an arbitrary
// target count Ck, so the compute projection (which matches counter
// signatures) uses counters that reflect the cache regime at Ck rather than
// at the counts where counters happened to be collected.
#pragma once

#include <map>
#include <vector>

#include "machine/counters.h"
#include "machine/machine.h"
#include "support/units.h"

namespace swapp::core {

class AcsmModel {
 public:
  /// Builds the model from counters at >= 2 core counts on the base machine.
  /// `base` supplies the cache-level latencies used to re-derive the memory
  /// stall component of a synthesised profile.
  AcsmModel(const std::map<int, machine::PmuCounters>& counters_by_cores,
            const machine::Machine& base);

  /// Core count at which hyper-scaling begins: the first count where a
  /// reload metric's extrapolation reaches (near) zero beyond the sampled
  /// range.  +infinity when no crossing is predicted.
  double hyper_scaling_cores() const noexcept { return ch_; }

  /// True when projecting at `ck` requires extrapolated counters (ck lies
  /// beyond the sampled counter range).
  bool needs_extrapolation(int ck) const;

  /// Counter profile to use when projecting at task count `ck`: the sampled
  /// profile when available, otherwise a synthesis with G4/G5/G6 metrics
  /// extrapolated and the memory-stall CPI re-derived from base-machine
  /// cache latencies.
  machine::PmuCounters counters_at(int ck) const;

 private:
  double extrapolate_metric(const std::vector<double>& values, int ck) const;

  std::map<int, machine::PmuCounters> samples_;
  std::vector<double> cores_;
  machine::Machine base_;
  double ch_ = 0.0;
};

}  // namespace swapp::core
