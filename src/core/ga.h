// Genetic-algorithm surrogate search (paper §2.3 step 5).
//
// A surrogate is a sparse, non-negatively weighted subset of the benchmark
// suite whose combined counter signature reproduces the application's
// signature (Eq. 2: P_app = Σ w_k · P_k).  The GA minimises the
// rank-weighted metric distance between Σ w_k · M_k and the application's
// metric vector — simultaneously in ST and SMT modes, per the paper's
// observation that surrogates should track the application across computing
// conditions — under a base-runtime consistency penalty that pins the scale
// of the weights: Σ w_k · T_k(base) must match the application's compute
// time on the base machine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/profiles.h"
#include "core/ranking.h"
#include "core/spec_index.h"
#include "machine/counters.h"

namespace swapp::core {

/// One selected benchmark with its coefficient w.
struct SurrogateTerm {
  std::string benchmark;
  double weight = 0.0;
  /// Position of `benchmark` in the suite order the search ran over
  /// (SpecData::names / SpecIndex slot k); kNoSlot for terms constructed
  /// outside the GA.  Lets hot paths resolve runtimes by array index
  /// instead of a string-map lookup per term.
  std::size_t slot = kNoSlot;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
};

/// The GA's result: the surrogate and its fit diagnostics.
struct Surrogate {
  std::vector<SurrogateTerm> terms;
  double fitness = 0.0;          ///< final objective value (lower is better)
  double metric_distance = 0.0;  ///< rank-weighted signature distance
  double runtime_error = 0.0;    ///< relative base-runtime mismatch

  /// Σ w_k · runtime of benchmark k on `machine_name` (Eq. 2 applied).
  Seconds project_runtime(const SpecData& spec,
                          const std::string& machine_name) const;
  /// Σ w_k · T_k(base).
  Seconds base_runtime(const SpecData& spec) const;

  /// Index-based overloads for the hot ranking/merge paths: terms resolve
  /// through their suite slots into the index's flat runtime arrays (no
  /// string-map lookup per term).  Bit-identical to the string versions for
  /// GA-produced surrogates; requires every term to carry a valid slot.
  Seconds project_runtime(const SpecIndex& index) const;
  Seconds base_runtime(const SpecIndex& index) const;
};

/// Polish-loop strategy for the deterministic local refinement that follows
/// the generation loop.
enum class PolishMode {
  /// Screen every one-weight candidate through the O(M) delta path and
  /// confirm apparent improvements with one exact eval before accepting.
  /// Acceptance decisions are made only on exact values, so the returned
  /// Surrogate is bit-identical to kFullEval — this is the default.
  kDeltaScreened = 0,
  /// The pre-delta behaviour: one exact `fitness_sparse` (plus a genome
  /// copy and rescale) per candidate.  Kept selectable as the ground truth
  /// the screened path is property-tested and benchmarked against.
  kFullEval = 1,
};

struct GaOptions {
  int population = 96;
  int generations = 240;
  int restarts = 5;  ///< independent GA runs; best result wins
  int max_terms = 6;           ///< sparsity cap on the surrogate
  double runtime_penalty = 2.0;  ///< λ on the consistency term
  std::uint64_t seed = 0x5eed0001;
  /// If > 0, a run stops early after this many consecutive generations
  /// without improving its best fitness.  Deterministic for a fixed seed;
  /// 0 (default) disables the exit so results match the full-length search.
  int stagnation_limit = 0;
  /// Polish strategy; both modes return bit-identical surrogates (the
  /// screen only decides which candidates get an exact eval).
  PolishMode polish = PolishMode::kDeltaScreened;
  /// Opt-in: score children that differ from their first parent in at most
  /// 3 weights through the parent's cached blend instead of an exact eval
  /// (the best individual is re-evaluated exactly before polish).  Screened
  /// population fitness can flip tournament/elitism comparisons, so this
  /// mode trades the search's bit-identity to the exact path for fewer
  /// full evaluations in converged populations — off by default.
  bool screen_mutations = false;
};

/// Runs the search.  `app_st`/`app_smt` are the application's counters on
/// the base machine in the two SMT modes; `weights` are the (target-adjusted)
/// metric-group weights; `app_base_compute` is the application's per-task
/// compute time on the base machine at the reference task count.
Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecData& spec,
                         Seconds app_base_compute,
                         const GaOptions& options = {});

/// Same search over a prebuilt `SpecIndex`: the benchmark metric vectors and
/// runtimes are copied from the index's arrays instead of being re-derived
/// from the string-keyed maps, which is what makes batched projections cheap
/// to set up.  Bit-identical to the `SpecData` overload for the same inputs.
Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecIndex& index,
                         Seconds app_base_compute,
                         const GaOptions& options = {});

/// Objective-kernel selector for `ga_fitness_probe`.
enum class GaKernel {
  /// Three-pass reference (metric_distance + runtime_error + combine), the
  /// ground truth every faster kernel is checked against.
  kReference = 0,
  /// PR 1's fused single-pass AoS kernel, kept compiled in as the speedup
  /// baseline for the SoA engine.
  kFused = 1,
  /// SoA engine, per-genome sparse evaluation (ga_eval.h).
  kSoaSparse = 2,
  /// SoA engine, whole-batch evaluation: all `iters` genome variants are
  /// prepared up front and scored in one `evaluate_population` call — the
  /// shape of the GA's per-generation population scoring.
  kSoaBatch = 3,
};

/// Benchmark hook (bench_micro) and bit-identity probe: a prebuilt GA
/// problem whose objective can be evaluated through any of the four kernels.
/// Building the problem (signature conversion, transposes, scales) happens
/// once in the constructor, so `run` times the kernels themselves.  Not
/// thread-safe: `run` reuses internal scratch across calls.
class GaFitnessProber {
 public:
  GaFitnessProber(const machine::PmuCounters& app_st,
                  const machine::PmuCounters& app_smt,
                  const GroupWeights& weights, const SpecData& spec,
                  Seconds app_base_compute);
  ~GaFitnessProber();

  /// Evaluates the objective on `genome` (one weight per suite benchmark,
  /// in `spec.names` order) `iters` times — each iteration perturbing one
  /// weight by a structure-preserving nudge — and returns the accumulated
  /// value.  All four kernels must return bit-identical accumulations for
  /// the same inputs (tests/test_ga_eval.cpp asserts exactly that).
  double run(const std::vector<double>& genome, int iters,
             GaKernel kernel) const;

  /// Runs the GA's polish loop on `genome` (normalised first) in the given
  /// mode and returns the polished fitness.  The loop keeps sweeping until
  /// it has both converged and completed at least `min_sweeps` sweeps, so
  /// both modes perform the same number of candidate visits — the
  /// BM_GaPolish benchmark's apples-to-apples shape.  The accept sequence
  /// (and therefore the result) is identical across modes.  `polished_out`
  /// (optional) receives the polished genome, so a benchmark can converge
  /// once and then time the steady all-reject regime the GA's winners put
  /// the loop in.
  double run_polish(const std::vector<double>& genome, int min_sweeps,
                    PolishMode mode,
                    std::vector<double>* polished_out = nullptr) const;

  /// Times the raw delta-screen kernel: binds the genome's blend once and
  /// performs `iters` one-weight screens (cycling term and factor),
  /// returning the accumulated screen values.  Pin the tier with
  /// `set_ga_delta_tier` (ga_eval.h) to probe a specific ISA.
  double run_delta(const std::vector<double>& genome, int iters) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience over GaFitnessProber (build + run).
double ga_fitness_probe(const machine::PmuCounters& app_st,
                        const machine::PmuCounters& app_smt,
                        const GroupWeights& weights, const SpecData& spec,
                        Seconds app_base_compute,
                        const std::vector<double>& genome, int iters,
                        GaKernel kernel);

}  // namespace swapp::core
