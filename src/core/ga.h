// Genetic-algorithm surrogate search (paper §2.3 step 5).
//
// A surrogate is a sparse, non-negatively weighted subset of the benchmark
// suite whose combined counter signature reproduces the application's
// signature (Eq. 2: P_app = Σ w_k · P_k).  The GA minimises the
// rank-weighted metric distance between Σ w_k · M_k and the application's
// metric vector — simultaneously in ST and SMT modes, per the paper's
// observation that surrogates should track the application across computing
// conditions — under a base-runtime consistency penalty that pins the scale
// of the weights: Σ w_k · T_k(base) must match the application's compute
// time on the base machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profiles.h"
#include "core/ranking.h"
#include "core/spec_index.h"
#include "machine/counters.h"

namespace swapp::core {

/// One selected benchmark with its coefficient w.
struct SurrogateTerm {
  std::string benchmark;
  double weight = 0.0;
};

/// The GA's result: the surrogate and its fit diagnostics.
struct Surrogate {
  std::vector<SurrogateTerm> terms;
  double fitness = 0.0;          ///< final objective value (lower is better)
  double metric_distance = 0.0;  ///< rank-weighted signature distance
  double runtime_error = 0.0;    ///< relative base-runtime mismatch

  /// Σ w_k · runtime of benchmark k on `machine_name` (Eq. 2 applied).
  Seconds project_runtime(const SpecData& spec,
                          const std::string& machine_name) const;
  /// Σ w_k · T_k(base).
  Seconds base_runtime(const SpecData& spec) const;
};

struct GaOptions {
  int population = 96;
  int generations = 240;
  int restarts = 5;  ///< independent GA runs; best result wins
  int max_terms = 6;           ///< sparsity cap on the surrogate
  double runtime_penalty = 2.0;  ///< λ on the consistency term
  std::uint64_t seed = 0x5eed0001;
  /// If > 0, a run stops early after this many consecutive generations
  /// without improving its best fitness.  Deterministic for a fixed seed;
  /// 0 (default) disables the exit so results match the full-length search.
  int stagnation_limit = 0;
};

/// Runs the search.  `app_st`/`app_smt` are the application's counters on
/// the base machine in the two SMT modes; `weights` are the (target-adjusted)
/// metric-group weights; `app_base_compute` is the application's per-task
/// compute time on the base machine at the reference task count.
Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecData& spec,
                         Seconds app_base_compute,
                         const GaOptions& options = {});

/// Same search over a prebuilt `SpecIndex`: the benchmark metric vectors and
/// runtimes are copied from the index's arrays instead of being re-derived
/// from the string-keyed maps, which is what makes batched projections cheap
/// to set up.  Bit-identical to the `SpecData` overload for the same inputs.
Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecIndex& index,
                         Seconds app_base_compute,
                         const GaOptions& options = {});

/// Benchmark hook (bench_micro): evaluates the GA objective on `genome`
/// (one weight per suite benchmark, in `spec.names` order) `iters` times and
/// returns the accumulated value.  `fused` selects the production
/// single-pass kernel; `false` selects the reference three-pass
/// implementation (metric distance + runtime error + combine) kept compiled
/// in so the fused path's speedup and bit-identical results stay measurable.
double ga_fitness_probe(const machine::PmuCounters& app_st,
                        const machine::PmuCounters& app_smt,
                        const GroupWeights& weights, const SpecData& spec,
                        Seconds app_base_compute,
                        const std::vector<double>& genome, int iters,
                        bool fused);

}  // namespace swapp::core
