// Compute-component performance projection (paper §2.3 + §3.1/§3.2).
//
// Pipeline: select/synthesise the application's counter profile for the
// requested task count Ck (ACSM), derive metric-group weights on the base
// and adjust them to the target (ranking), search for a surrogate (GA), and
// apply Eq. 2/Eq. 7: the projected per-task compute time on the target is
// the surrogate's weighted runtime there.  The CCSM scaling factor γ is
// folded into the base-runtime anchor: the GA constrains the surrogate to
// the application's per-task compute time *at Ck* (measured when Ck was
// profiled, CCSM-fitted otherwise), which is exactly γ · T(C_ref).
#pragma once

#include <string>

#include "core/acsm.h"
#include "core/ccsm.h"
#include "core/ga.h"
#include "core/profiles.h"
#include "core/ranking.h"
#include "core/spec_index.h"
#include "machine/machine.h"

namespace swapp::core {

struct ComputeProjectionOptions {
  GaOptions ga;
  bool use_acsm = true;             ///< ablation: counter extrapolation
  bool use_rank_adjustment = true;  ///< ablation: step-4 target adjustment
  /// If > 0, the GA surrogate search runs once at this reference task count
  /// and every other count reuses that surrogate with its weights rescaled
  /// by the CCSM anchor ratio (Eq. 7's γ folded into the Eq. 2 scale) — the
  /// paper's collect-once / project-many shape applied to the search itself.
  /// `Projector::project` honours it per call and `Projector::project_many`
  /// memoises the shared search across requests, so batched and sequential
  /// results stay byte-identical.  0 (default) searches at every count.
  /// (`project_compute` itself always searches at the count it is given;
  /// the reference indirection is the Projector's concern.)
  int surrogate_reference_cores = 0;
};

struct ComputeProjection {
  /// Projected per-task compute seconds on the target at Ck.
  Seconds target_compute = 0.0;
  /// The application's per-task compute anchor on the base at Ck.
  Seconds base_compute = 0.0;

  Surrogate surrogate;
  GroupWeights base_weights;
  GroupWeights adjusted_weights;
  double hyper_scaling_cores = 0.0;  ///< ACSM Ch
  double gamma = 1.0;                ///< CCSM factor, diagnostics
  bool extrapolated_counters = false;

  /// Target/base compute-speed ratio — the compute scale the WaitTime model
  /// consumes (paper §2.4 step 4).
  double compute_scale() const {
    return base_compute > 0.0 ? target_compute / base_compute : 1.0;
  }
};

ComputeProjection project_compute(const AppBaseData& app, const SpecData& spec,
                                  const machine::Machine& base,
                                  const std::string& target_machine, int ck,
                                  const ComputeProjectionOptions& options);

/// Same projection over a prebuilt `SpecIndex` (shared, read-only): skips
/// the per-call benchmark-table setup.  Bit-identical to the `SpecData`
/// overload built from the same library view.
ComputeProjection project_compute(const AppBaseData& app,
                                  const SpecIndex& index,
                                  const machine::Machine& base,
                                  const std::string& target_machine, int ck,
                                  const ComputeProjectionOptions& options);

}  // namespace swapp::core
