#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace swapp::core {

std::array<int, machine::kMetricGroupCount> GroupWeights::ranks() const {
  std::array<std::size_t, machine::kMetricGroupCount> order{};
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::array<int, machine::kMetricGroupCount> out{};
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    out[order[pos]] = static_cast<int>(pos) + 1;
  }
  return out;
}

GroupWeights base_group_weights(const machine::PmuCounters& app,
                                const machine::Machine& base) {
  const machine::ProcessorConfig& p = base.processor;

  // Per-group runtime contributions in cycles per instruction.  G1/G2 are
  // CPI components directly; G3–G6 are re-expressed in cycles through the
  // base machine's architectural cost parameters (paper: "the two steps
  // follow directly from the architectural specifications of the base").
  std::array<double, machine::kMetricGroupCount> contribution{};
  contribution[0] = app.cpi_completion;  // G1
  contribution[1] = app.cpi_stall_fp + app.cpi_stall_mem +
                    app.cpi_stall_branch + app.cpi_stall_other;  // G2
  contribution[2] = app.fp_per_instr / std::max(p.fp_per_cycle, 1e-9);  // G3
  contribution[3] = app.erat_miss_rate * p.erat_penalty_cycles +
                    app.slb_miss_rate * p.slb_penalty_cycles +
                    app.tlb_miss_rate * p.tlb_penalty_cycles;  // G4

  double reload_cycles = 0.0;  // G5: latency-weighted reload traffic
  for (const auto& level : base.caches.levels()) {
    if (level.name == "L2") {
      reload_cycles += app.data_from_l2_per_instr * level.latency_cycles;
    } else if (level.name == "L3") {
      reload_cycles += app.data_from_l3_per_instr * level.latency_cycles;
    }
  }
  reload_cycles += app.data_from_local_mem_per_instr *
                   base.caches.memory().latency_cycles;
  reload_cycles += app.data_from_remote_mem_per_instr *
                   base.caches.memory().remote_latency_cycles;
  contribution[4] = reload_cycles;

  // G6: cycles per instruction spent at the bandwidth ceiling if this
  // application's bandwidth demand were served alone.
  const double node_bw = base.caches.memory().node_bandwidth_gbs;
  contribution[5] =
      app.memory_bandwidth_gbs / std::max(node_bw, 1e-9) * app.total_cpi();

  const double total =
      std::accumulate(contribution.begin(), contribution.end(), 0.0);
  SWAPP_ASSERT(total > 0.0, "all metric-group contributions are zero");

  GroupWeights out;
  for (std::size_t g = 0; g < contribution.size(); ++g) {
    out.weight[g] = contribution[g] / total;
  }
  return out;
}

namespace {

/// Shared step-4 core over the precomputed suite decomposition plus base
/// and target runtimes for each benchmark k.  Both public overloads reduce
/// to this — the `SpecData` path computes the decomposition on the fly,
/// the `SpecIndex` path reuses the one `SpecIndex::build` cached — so the
/// two are bit-identical by construction (same additions, same order, same
/// expression shapes; `compute_suite_intensity` preserves the loop order
/// of the code it replaced).  Only the speedup-weighted pass below depends
/// on the target, so it is all a cached call pays for.
GroupWeights adjust_weights_impl(const GroupWeights& base_weights,
                                 const SuiteIntensity& suite,
                                 const double* base_time,
                                 const double* target_time) {
  const std::size_t n = suite.size();

  // Suite-wide mean speedup and per-group intensity-weighted mean speedup.
  double mean_speedup = 0.0;
  std::array<double, machine::kMetricGroupCount> weighted_speedup{};
  std::array<double, machine::kMetricGroupCount> intensity_sum{};
  for (std::size_t k = 0; k < n; ++k) {
    const double speedup = base_time[k] / target_time[k];
    mean_speedup += speedup;
    const std::array<double, machine::kMetricGroupCount>& intensity =
        suite.bench[k];
    for (std::size_t g = 0; g < machine::kMetricGroupCount; ++g) {
      weighted_speedup[g] += intensity[g] * speedup;
      intensity_sum[g] += intensity[g];
    }
  }
  mean_speedup /= static_cast<double>(n);

  // Groups whose heavy benchmarks speed up less than average grow in
  // importance on the target; cap the correction to keep it a re-weighting,
  // not a replacement, of the base analysis.
  GroupWeights out;
  double total = 0.0;
  for (std::size_t g = 0; g < machine::kMetricGroupCount; ++g) {
    double factor = 1.0;
    if (intensity_sum[g] > 1e-12 && mean_speedup > 0.0) {
      const double group_speedup = weighted_speedup[g] / intensity_sum[g];
      factor = std::clamp(mean_speedup / std::max(group_speedup, 1e-12),
                          0.5, 2.0);
    }
    out.weight[g] = base_weights.weight[g] * factor;
    total += out.weight[g];
  }
  SWAPP_ASSERT(total > 0.0, "adjusted weights vanished");
  for (double& w : out.weight) w /= total;
  return out;
}

}  // namespace

GroupWeights adjust_weights_to_target(const GroupWeights& base_weights,
                                      const SpecData& spec,
                                      const std::string& target_machine) {
  SWAPP_REQUIRE(!spec.names.empty(), "empty benchmark suite");
  std::vector<machine::MetricVector> vectors;
  std::vector<double> base_time;
  std::vector<double> target_time;
  vectors.reserve(spec.names.size());
  base_time.reserve(spec.names.size());
  target_time.reserve(spec.names.size());
  for (const std::string& name : spec.names) {
    vectors.push_back(machine::MetricVector::from_counters(
        spec.base_counters_st.at(name)));
    base_time.push_back(spec.base_runtime.at(name));
    target_time.push_back(spec.runtime_on(target_machine, name));
  }
  return adjust_weights_impl(base_weights, compute_suite_intensity(vectors),
                             base_time.data(), target_time.data());
}

GroupWeights adjust_weights_to_target(const GroupWeights& base_weights,
                                      const SpecIndex& index) {
  SWAPP_REQUIRE(index.size() > 0, "empty benchmark suite");
  // `SpecIndex::build` caches the decomposition; hand-assembled indexes
  // (tests) may lack it, in which case it is derived on the fly.
  if (index.intensity.size() == index.size()) {
    return adjust_weights_impl(base_weights, index.intensity,
                               index.base_time.data(),
                               index.target_time.data());
  }
  return adjust_weights_impl(base_weights,
                             compute_suite_intensity(index.bench_st),
                             index.base_time.data(), index.target_time.data());
}

}  // namespace swapp::core
