#include "core/spec_index.h"

#include <algorithm>

#include "support/error.h"

namespace swapp::core {

SuiteIntensity compute_suite_intensity(
    const std::vector<machine::MetricVector>& vectors) {
  SuiteIntensity out;
  const std::size_t n = vectors.size();
  // Per-metric normalisation scale: the suite mean (guards against zero).
  // Accumulation order (benchmark-major, then the per-metric floor) matches
  // the code this replaces in ranking.cpp bit for bit.
  out.scale.fill(0.0);
  for (const machine::MetricVector& v : vectors) {
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      out.scale[i] += v.values[i];
    }
  }
  for (double& s : out.scale) {
    s = std::max(s / static_cast<double>(n), 1e-12);
  }
  out.bench.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::array<double, machine::kMetricGroupCount>& g = out.bench[k];
    g.fill(0.0);
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      const auto group =
          static_cast<std::size_t>(machine::MetricVector::group_of(i));
      g[group] += vectors[k].values[i] / out.scale[i];
    }
  }
  return out;
}

SpecIndex SpecIndex::build(const SpecLibrary& lib,
                           const std::string& target_machine,
                           int base_occupancy, int target_occupancy) {
  SpecIndex index;
  index.target_machine = target_machine;
  index.base_occupancy = base_occupancy;
  index.target_occupancy = target_occupancy;
  index.data = lib.view(base_occupancy, target_machine, target_occupancy);

  const std::size_t n = index.data.names.size();
  index.bench_st.reserve(n);
  index.bench_smt.reserve(n);
  index.base_time.reserve(n);
  index.target_time.reserve(n);
  const auto& target_runtime = index.data.target_runtime.at(target_machine);
  for (const std::string& name : index.data.names) {
    index.bench_st.push_back(machine::MetricVector::from_counters(
        index.data.base_counters_st.at(name)));
    index.bench_smt.push_back(machine::MetricVector::from_counters(
        index.data.base_counters_smt.at(name)));
    index.base_time.push_back(index.data.base_runtime.at(name));
    const auto it = target_runtime.find(name);
    if (it == target_runtime.end()) {
      throw NotFound("no runtime of " + name + " on " + target_machine);
    }
    index.target_time.push_back(it->second);
  }
  index.intensity = compute_suite_intensity(index.bench_st);
  return index;
}

std::string SpecIndex::key_of(const std::string& target_machine,
                              int base_occupancy, int target_occupancy) {
  return target_machine + "|" + std::to_string(base_occupancy) + "|" +
         std::to_string(target_occupancy);
}

}  // namespace swapp::core
