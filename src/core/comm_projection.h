// Communication-component performance projection (paper §2.4).
//
// The application's MPI model — per routine, message size, and call count at
// task count Ck — is mapped onto the target machine's IMB-measured
// parameters P_Ck(m_i, S_k) (Eq. 3) to obtain T_transfer on the target.
// Isend/Irecv/Waitall phases are priced through the multi-Sendrecv benchmark
// (Eq. 1 separates library overhead from per-message time in flight).  The
// WaitTime model then computes, per routine class,
// T_wait = T_elapsed − T_transfer on the base (Eq. 4), scales it to the
// target by a blend of the projected compute speedup (load imbalance is
// compute skew) and the transfer speedup, and assembles Eq. 5/6:
// T_elapsed^target = T_transfer^target + T_wait^target.
#pragma once

#include <map>

#include "imb/suite.h"
#include "mpi/profile.h"
#include "support/units.h"

namespace swapp::core {

struct CommProjectionOptions {
  /// Weight of the compute speedup in the WaitTime scaling factor; the
  /// remainder follows the transfer speedup.  The paper notes WaitTime
  /// "highly depends on the computation projection".
  double wait_compute_alpha = 0.9;
  bool use_wait_model = true;       ///< ablation: drop T_wait entirely
  bool use_multi_sendrecv = true;   ///< ablation: price Waitall as blocking
                                    ///< Sendrecv instead of Eq. 1
};

/// Projection of one routine class (P2P-NB / P2P-B / COLLECTIVES).
struct ClassProjection {
  Seconds base_elapsed = 0.0;    ///< per-task elapsed in the base profile
  Seconds base_transfer = 0.0;   ///< IMB-priced transfer on the base
  Seconds base_wait = 0.0;       ///< Eq. 4 residual
  Seconds target_transfer = 0.0;
  Seconds target_wait = 0.0;

  Seconds target_total() const { return target_transfer + target_wait; }
};

struct CommProjection {
  std::map<mpi::RoutineClass, ClassProjection> by_class;

  Seconds base_total() const;
  Seconds target_total() const;
  const ClassProjection& of(mpi::RoutineClass c) const;
};

/// Projects the communication component at task count `ck`.
/// `compute_scale` is the projected target/base compute-speed ratio from the
/// compute projection (T_comp^target / T_comp^base at Ck).
CommProjection project_communication(const mpi::MpiProfile& profile, int ck,
                                     const imb::ImbDatabase& base_imb,
                                     const imb::ImbDatabase& target_imb,
                                     double compute_scale,
                                     const CommProjectionOptions& options);

}  // namespace swapp::core
