#include "core/projector.h"

#include <numeric>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/parallel.h"

namespace swapp::core {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

std::string compute_options_key(const ComputeProjectionOptions& o) {
  std::ostringstream ss;
  ss.precision(17);
  ss << o.ga.population << '|' << o.ga.generations << '|' << o.ga.restarts
     << '|' << o.ga.max_terms << '|' << o.ga.runtime_penalty << '|'
     << o.ga.seed << '|' << o.ga.stagnation_limit << '|' << o.use_acsm << '|'
     << o.use_rank_adjustment << '|' << o.surrogate_reference_cores;
  return ss.str();
}

ComputeProjection rescale_reference(const ComputeProjection& at_reference,
                                    const AppBaseData& app, int reference_ck,
                                    int ck) {
  ComputeProjection out = at_reference;
  const CcsmModel ccsm(app.mean_compute);
  const auto exact = app.mean_compute.find(ck);
  out.base_compute =
      exact != app.mean_compute.end() ? exact->second : ccsm.predict(ck);
  SWAPP_REQUIRE(out.base_compute > 0.0, "non-positive base compute anchor");
  SWAPP_ASSERT(at_reference.base_compute > 0.0,
               "reference projection has no base compute anchor");
  const double factor = out.base_compute / at_reference.base_compute;
  out.target_compute = at_reference.target_compute * factor;
  for (SurrogateTerm& t : out.surrogate.terms) t.weight *= factor;
  out.gamma = ccsm.gamma(reference_ck, ck);
  return out;
}

Projector::Projector(machine::Machine base, SpecLibrary spec,
                     imb::ImbDatabase base_imb)
    : base_(std::move(base)),
      spec_(std::move(spec)),
      base_imb_(std::move(base_imb)) {
  SWAPP_REQUIRE(!spec_.names.empty(), "SpecLibrary has no benchmarks");
}

void Projector::add_target(const std::string& machine_name,
                           imb::ImbDatabase imb) {
  SWAPP_REQUIRE(spec_.targets.count(machine_name) != 0,
                "SpecLibrary has no benchmark runtimes for " + machine_name);
  target_imb_.emplace(machine_name, std::move(imb));
}

std::pair<int, int> Projector::occupancies_for(
    const std::string& target_machine, int ck, int threads_per_rank) const {
  SWAPP_REQUIRE(threads_per_rank >= 1, "threads_per_rank must be >= 1");
  const auto target_it = spec_.targets.find(target_machine);
  if (target_it == spec_.targets.end()) {
    throw NotFound("SpecLibrary has no target: " + target_machine);
  }
  // A hybrid job occupies ck · threads hardware threads under block
  // placement, capped by the node size on each machine.
  const int demand = ck * threads_per_rank;
  const int base_occ = SpecLibrary::occupancy_for(demand, base_.cores_per_node);
  const int target_occ =
      SpecLibrary::occupancy_for(demand, target_it->second.cores_per_node);
  return {base_occ, target_occ};
}

SpecData Projector::spec_view(const std::string& target_machine, int ck,
                              int threads_per_rank) const {
  const auto [base_occ, target_occ] =
      occupancies_for(target_machine, ck, threads_per_rank);
  return spec_.view(base_occ, target_machine, target_occ);
}

ComputeProjection Projector::compute_component(
    const AppBaseData& app, const std::string& target_machine, int ck,
    const ComputeProjectionOptions& options, const SpecIndex* index,
    const ComputeProjection* shared_reference) const {
  const int reference = options.surrogate_reference_cores;
  if (reference > 0 && reference != ck) {
    // Search once at the reference count, then γ-rescale to ck.  The
    // memoised batch entry and a freshly-computed reference are the same
    // pure function of (app, target, options).
    if (shared_reference) {
      return rescale_reference(*shared_reference, app, reference, ck);
    }
    const SpecData view =
        spec_view(target_machine, reference, app.threads_per_rank);
    return rescale_reference(
        project_compute(app, view, base_, target_machine, reference, options),
        app, reference, ck);
  }
  if (shared_reference) return *shared_reference;  // ck == reference count
  if (index) {
    return project_compute(app, *index, base_, target_machine, ck, options);
  }
  const SpecData view = spec_view(target_machine, ck, app.threads_per_rank);
  return project_compute(app, view, base_, target_machine, ck, options);
}

CommProjection Projector::comm_component(const AppBaseData& app,
                                         const std::string& target_machine,
                                         int ck, double compute_scale,
                                         const ProjectionOptions& options)
    const {
  SWAPP_SPAN("comm.project");
  const auto imb_it = target_imb_.find(target_machine);
  if (imb_it == target_imb_.end()) {
    throw NotFound("target not registered: " + target_machine);
  }
  const mpi::MpiProfile& profile = app.profile_at(ck);

  if (options.decouple_components) {
    // Step 2 of §3.3: communication projection with the WaitTime model fed
    // by the projected compute speedup.
    return project_communication(profile, ck, base_imb_, imb_it->second,
                                 compute_scale, options.comm);
  }
  // Coupled ablation: the whole communication budget follows the compute
  // speedup — the strategy the paper's decomposition improves upon.
  CommProjection coupled;
  for (const auto& [routine, rp] : profile.routines) {
    ClassProjection& acc = coupled.by_class[mpi::routine_class(routine)];
    const Seconds elapsed =
        rp.total_elapsed / static_cast<double>(profile.ranks);
    acc.base_elapsed += elapsed;
    acc.target_transfer += elapsed * compute_scale;
  }
  return coupled;
}

ProjectionResult Projector::project(const AppBaseData& app,
                                    const std::string& target_machine, int ck,
                                    const ProjectionOptions& options) const {
  SWAPP_SPAN("projector.project");
  SWAPP_COUNT("projector.projections", 1);
  if (target_imb_.find(target_machine) == target_imb_.end()) {
    throw NotFound("target not registered: " + target_machine);
  }

  ProjectionResult result;
  result.app = app.app;
  result.target = target_machine;
  result.cores = ck;

  // Step 1+2 of §3.3: compute projection with CCSM/ACSM scaling, against
  // benchmark data at the occupancy Ck implies on each machine.
  result.compute =
      compute_component(app, target_machine, ck, options.compute,
                        /*index=*/nullptr, /*shared_reference=*/nullptr);
  result.comm = comm_component(app, target_machine, ck,
                               result.compute.compute_scale(), options);
  return result;
}

std::vector<ProjectionResult> Projector::project_many(
    const std::vector<ProjectionRequest>& requests) const {
  SWAPP_SPAN("projector.project_many");
  SWAPP_COUNT("projector.batch_requests", requests.size());
  // --- Plan (serial): shared intermediate artifacts ------------------------
  // Node kinds: spec indexes keyed by (target, occupancy pair) and shared
  // surrogate searches keyed by (app, target, reference count, options).
  // Both maps record first-appearance order, so the artifact vectors — and
  // with them every downstream merge — are a pure function of the request
  // list, independent of thread count.
  struct IndexJob {
    std::string target;
    int base_occ = 0;
    int target_occ = 0;
  };
  struct SharedJob {
    const AppBaseData* app = nullptr;
    std::string target;
    int reference = 0;
    ComputeProjectionOptions options;
    std::size_t index_slot = kNone;
  };
  struct Cell {
    std::size_t index_slot = kNone;
    std::size_t shared_slot = kNone;
  };

  std::map<std::string, std::size_t> index_slots;
  std::vector<IndexJob> index_jobs;
  std::map<std::string, std::size_t> shared_slots;
  std::vector<SharedJob> shared_jobs;
  std::vector<Cell> cells(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ProjectionRequest& r = requests[i];
    SWAPP_REQUIRE(r.app != nullptr, "ProjectionRequest has no app data");
    if (target_imb_.find(r.target) == target_imb_.end()) {
      throw NotFound("target not registered: " + r.target);
    }
    const int reference = r.options.compute.surrogate_reference_cores;
    const int search_ck = reference > 0 ? reference : r.cores;
    const auto [base_occ, target_occ] =
        occupancies_for(r.target, search_ck, r.app->threads_per_rank);

    const std::string view_key =
        SpecIndex::key_of(r.target, base_occ, target_occ);
    const auto [view_it, view_is_new] =
        index_slots.emplace(view_key, index_jobs.size());
    if (view_is_new) {
      index_jobs.push_back(IndexJob{r.target, base_occ, target_occ});
    }
    cells[i].index_slot = view_it->second;

    if (reference > 0) {
      std::ostringstream key;
      key << static_cast<const void*>(r.app) << '|' << r.target << '|'
          << reference << '|' << r.app->threads_per_rank << '|'
          << compute_options_key(r.options.compute);
      const auto [shared_it, shared_is_new] =
          shared_slots.emplace(key.str(), shared_jobs.size());
      if (shared_is_new) {
        shared_jobs.push_back(SharedJob{r.app, r.target, reference,
                                        r.options.compute,
                                        view_it->second});
      }
      cells[i].shared_slot = shared_it->second;
    }
  }

  // --- Execute: fan each artifact tier out over the pool -------------------
  // Tier 1: spec indexes (independent flattenings).
  std::vector<SpecIndex> indexes;
  {
    SWAPP_SPAN("projector.build_spec_indexes");
    indexes = parallel_map(index_jobs, [&](const IndexJob& job) {
      SWAPP_SPAN("spec_index.build");
      return SpecIndex::build(spec_, job.target, job.base_occ,
                              job.target_occ);
    });
  }
  // Tier 2: shared surrogate searches (independent; the GA's own restart
  // fan-out degrades to serial inside this region).
  std::vector<ComputeProjection> shared;
  {
    SWAPP_SPAN("projector.shared_searches");
    shared = parallel_map(shared_jobs, [&](const SharedJob& job) {
      return project_compute(*job.app, indexes[job.index_slot], base_,
                             job.target, job.reference, job.options);
    });
  }
  // Tier 3: the requests themselves, merged in input order.
  SWAPP_SPAN("projector.project_requests");
  std::vector<std::size_t> ids(requests.size());
  std::iota(ids.begin(), ids.end(), 0);
  return parallel_map(ids, [&](std::size_t i) {
    const ProjectionRequest& r = requests[i];
    ProjectionResult out;
    out.app = r.app->app;
    out.target = r.target;
    out.cores = r.cores;
    const SpecIndex* index = &indexes[cells[i].index_slot];
    const ComputeProjection* reference =
        cells[i].shared_slot != kNone ? &shared[cells[i].shared_slot]
                                      : nullptr;
    out.compute = compute_component(*r.app, r.target, r.cores,
                                    r.options.compute, index, reference);
    out.comm = comm_component(*r.app, r.target, r.cores,
                              out.compute.compute_scale(), r.options);
    return out;
  });
}

}  // namespace swapp::core
