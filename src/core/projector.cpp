#include "core/projector.h"

#include "support/error.h"

namespace swapp::core {

Projector::Projector(machine::Machine base, SpecLibrary spec,
                     imb::ImbDatabase base_imb)
    : base_(std::move(base)),
      spec_(std::move(spec)),
      base_imb_(std::move(base_imb)) {
  SWAPP_REQUIRE(!spec_.names.empty(), "SpecLibrary has no benchmarks");
}

void Projector::add_target(const std::string& machine_name,
                           imb::ImbDatabase imb) {
  SWAPP_REQUIRE(spec_.targets.count(machine_name) != 0,
                "SpecLibrary has no benchmark runtimes for " + machine_name);
  target_imb_.emplace(machine_name, std::move(imb));
}

SpecData Projector::spec_view(const std::string& target_machine, int ck,
                              int threads_per_rank) const {
  SWAPP_REQUIRE(threads_per_rank >= 1, "threads_per_rank must be >= 1");
  const auto target_it = spec_.targets.find(target_machine);
  if (target_it == spec_.targets.end()) {
    throw NotFound("SpecLibrary has no target: " + target_machine);
  }
  // A hybrid job occupies ck · threads hardware threads under block
  // placement, capped by the node size on each machine.
  const int demand = ck * threads_per_rank;
  const int base_occ = SpecLibrary::occupancy_for(demand, base_.cores_per_node);
  const int target_occ =
      SpecLibrary::occupancy_for(demand, target_it->second.cores_per_node);
  return spec_.view(base_occ, target_machine, target_occ);
}

ProjectionResult Projector::project(const AppBaseData& app,
                                    const std::string& target_machine, int ck,
                                    const ProjectionOptions& options) const {
  const auto imb_it = target_imb_.find(target_machine);
  if (imb_it == target_imb_.end()) {
    throw NotFound("target not registered: " + target_machine);
  }

  ProjectionResult result;
  result.app = app.app;
  result.target = target_machine;
  result.cores = ck;

  // Step 1+2 of §3.3: compute projection with CCSM/ACSM scaling, against
  // benchmark data at the occupancy Ck implies on each machine.
  const SpecData view = spec_view(target_machine, ck, app.threads_per_rank);
  result.compute =
      project_compute(app, view, base_, target_machine, ck, options.compute);

  const mpi::MpiProfile& profile = app.profile_at(ck);

  if (options.decouple_components) {
    // Step 2 of §3.3: communication projection with the WaitTime model fed
    // by the projected compute speedup.
    result.comm = project_communication(profile, ck, base_imb_,
                                        imb_it->second,
                                        result.compute.compute_scale(),
                                        options.comm);
  } else {
    // Coupled ablation: the whole communication budget follows the compute
    // speedup — the strategy the paper's decomposition improves upon.
    CommProjection coupled;
    for (const auto& [routine, rp] : profile.routines) {
      ClassProjection& acc = coupled.by_class[mpi::routine_class(routine)];
      const Seconds elapsed =
          rp.total_elapsed / static_cast<double>(profile.ranks);
      acc.base_elapsed += elapsed;
      acc.target_transfer += elapsed * result.compute.compute_scale();
    }
    result.comm = coupled;
  }
  return result;
}

}  // namespace swapp::core
