#include "core/profiles.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::core {

const mpi::MpiProfile& AppBaseData::profile_at(int cores) const {
  const auto it = mpi_profiles.find(cores);
  if (it == mpi_profiles.end()) {
    throw NotFound("no MPI profile for " + app + " at " +
                   std::to_string(cores) + " tasks");
  }
  return it->second;
}

std::vector<int> AppBaseData::profiled_core_counts() const {
  std::vector<int> out;
  out.reserve(mpi_profiles.size());
  for (const auto& [cores, profile] : mpi_profiles) out.push_back(cores);
  return out;
}

std::vector<int> AppBaseData::counter_core_counts() const {
  std::vector<int> out;
  out.reserve(counters_st.size());
  for (const auto& [cores, counters] : counters_st) out.push_back(cores);
  return out;
}

int SpecLibrary::occupancy_for(int ck, int cores_per_node) {
  SWAPP_REQUIRE(ck >= 1 && cores_per_node >= 1,
                "occupancy_for needs positive arguments");
  return std::min(ck, cores_per_node);
}

namespace {

/// Nearest key in a map (exact when present).
template <typename Map>
const typename Map::mapped_type& nearest_occupancy(const Map& by_occupancy,
                                                   int occupancy,
                                                   const char* what) {
  if (by_occupancy.empty()) {
    throw NotFound(std::string("SpecLibrary has no data for ") + what);
  }
  const auto exact = by_occupancy.find(occupancy);
  if (exact != by_occupancy.end()) return exact->second;
  const typename Map::mapped_type* best = nullptr;
  int best_distance = 0;
  for (const auto& [occ, data] : by_occupancy) {
    const int d = std::abs(occ - occupancy);
    if (best == nullptr || d < best_distance) {
      best = &data;
      best_distance = d;
    }
  }
  return *best;
}

}  // namespace

SpecData SpecLibrary::view(int base_occupancy,
                           const std::string& target_machine,
                           int target_occupancy) const {
  const auto target_it = targets.find(target_machine);
  if (target_it == targets.end()) {
    throw NotFound("SpecLibrary has no target: " + target_machine);
  }
  SpecData out;
  out.names = names;
  out.base_counters_st =
      nearest_occupancy(base_counters_st, base_occupancy, "base ST counters");
  out.base_counters_smt = nearest_occupancy(base_counters_smt, base_occupancy,
                                            "base SMT counters");
  out.base_runtime =
      nearest_occupancy(base_runtime, base_occupancy, "base runtimes");
  out.target_runtime[target_machine] = nearest_occupancy(
      target_it->second.runtime, target_occupancy, "target runtimes");
  return out;
}

Seconds SpecData::runtime_on(const std::string& machine_name,
                             const std::string& benchmark) const {
  const auto base_it = base_runtime.find(benchmark);
  if (base_it == base_runtime.end()) {
    throw NotFound("unknown benchmark: " + benchmark);
  }
  const auto machine_it = target_runtime.find(machine_name);
  if (machine_it == target_runtime.end()) {
    throw NotFound("no benchmark runtimes for machine: " + machine_name);
  }
  const auto it = machine_it->second.find(benchmark);
  if (it == machine_it->second.end()) {
    throw NotFound("no runtime of " + benchmark + " on " + machine_name);
  }
  return it->second;
}

}  // namespace swapp::core
