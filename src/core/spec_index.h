// Indexed benchmark-data view for batched projections.
//
// `SpecLibrary::view` flattens the occupancy-keyed library into the
// string-keyed `SpecData` maps every projection call consumes, and the GA
// then converts each benchmark's counters into a `MetricVector`.  Done per
// `Projector::project` call that work is pure overhead: the flattening and
// the conversions depend only on (target machine, base occupancy, target
// occupancy), never on the application.  A `SpecIndex` performs both once
// and keeps the results in suite-ordered arrays — the "arena" the batched
// engine shares across every request that projects against the same
// (target, occupancy) pair.  The arrays hold exactly the values the
// per-call path would recompute, so projections built on an index are
// bit-identical to projections built on a fresh `SpecData` view.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/profiles.h"
#include "machine/counters.h"

namespace swapp::core {

/// Suite-wide intensity decomposition consumed by ranking step 4
/// (`adjust_weights_to_target`): the per-metric normalisation scale (suite
/// mean, floored) plus each benchmark's per-group normalised intensity.  A
/// pure function of the suite's ST metric vectors — independent of the
/// application and of the target runtimes — so `SpecIndex::build`
/// precomputes it once and every adjustment against the index (one per
/// request in a batch) skips the O(n·M) recompute and runs only the
/// speedup-weighted pass.  Computed with exactly the loop order the
/// previously-inline code used, so cached and uncached paths are
/// bit-identical.
struct SuiteIntensity {
  std::array<double, machine::kMetricCount> scale{};
  /// bench[k][g] = Σ over metrics i in group g of vectors[k][i] / scale[i].
  std::vector<std::array<double, machine::kMetricGroupCount>> bench;

  std::size_t size() const noexcept { return bench.size(); }
};

/// Builds the decomposition from suite-ordered ST metric vectors.
SuiteIntensity compute_suite_intensity(
    const std::vector<machine::MetricVector>& vectors);

struct SpecIndex {
  std::string target_machine;
  int base_occupancy = 0;
  int target_occupancy = 0;

  /// The flattened view, built once (compatibility with every API that
  /// consumes `SpecData`).
  SpecData data;

  // Suite-ordered arrays (index k == position of data.names[k]): the GA's
  // working set, precomputed so `build_problem` is a copy instead of a walk
  // over three string-keyed maps.
  std::vector<machine::MetricVector> bench_st;
  std::vector<machine::MetricVector> bench_smt;
  std::vector<double> base_time;
  std::vector<double> target_time;

  /// Precomputed ranking-step-4 decomposition over `bench_st` (see
  /// SuiteIntensity above).  `adjust_weights_to_target(…, index)` consults
  /// it when its size matches the suite and recomputes otherwise, so
  /// hand-assembled indexes stay valid.
  SuiteIntensity intensity;

  std::size_t size() const noexcept { return base_time.size(); }

  /// Flattens `lib` at the given occupancy pair and precomputes the arrays.
  static SpecIndex build(const SpecLibrary& lib,
                         const std::string& target_machine, int base_occupancy,
                         int target_occupancy);

  /// Cache key for one (target, occupancy) pair.
  static std::string key_of(const std::string& target_machine,
                            int base_occupancy, int target_occupancy);
  std::string key() const {
    return key_of(target_machine, base_occupancy, target_occupancy);
  }
};

}  // namespace swapp::core
