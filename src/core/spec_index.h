// Indexed benchmark-data view for batched projections.
//
// `SpecLibrary::view` flattens the occupancy-keyed library into the
// string-keyed `SpecData` maps every projection call consumes, and the GA
// then converts each benchmark's counters into a `MetricVector`.  Done per
// `Projector::project` call that work is pure overhead: the flattening and
// the conversions depend only on (target machine, base occupancy, target
// occupancy), never on the application.  A `SpecIndex` performs both once
// and keeps the results in suite-ordered arrays — the "arena" the batched
// engine shares across every request that projects against the same
// (target, occupancy) pair.  The arrays hold exactly the values the
// per-call path would recompute, so projections built on an index are
// bit-identical to projections built on a fresh `SpecData` view.
#pragma once

#include <string>
#include <vector>

#include "core/profiles.h"
#include "machine/counters.h"

namespace swapp::core {

struct SpecIndex {
  std::string target_machine;
  int base_occupancy = 0;
  int target_occupancy = 0;

  /// The flattened view, built once (compatibility with every API that
  /// consumes `SpecData`).
  SpecData data;

  // Suite-ordered arrays (index k == position of data.names[k]): the GA's
  // working set, precomputed so `build_problem` is a copy instead of a walk
  // over three string-keyed maps.
  std::vector<machine::MetricVector> bench_st;
  std::vector<machine::MetricVector> bench_smt;
  std::vector<double> base_time;
  std::vector<double> target_time;

  std::size_t size() const noexcept { return base_time.size(); }

  /// Flattens `lib` at the given occupancy pair and precomputes the arrays.
  static SpecIndex build(const SpecLibrary& lib,
                         const std::string& target_machine, int base_occupancy,
                         int target_occupancy);

  /// Cache key for one (target, occupancy) pair.
  static std::string key_of(const std::string& target_machine,
                            int base_occupancy, int target_occupancy);
  std::string key() const {
    return key_of(target_machine, base_occupancy, target_occupancy);
  }
};

}  // namespace swapp::core
