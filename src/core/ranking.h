// Metric-group ranking and target adjustment (paper §2.3 steps 2–4).
//
// Step 2 relates each metric group to runtime on the base machine: every
// group's contribution is expressed in cycles-per-instruction attributable
// to that group, derived from the base architecture's cost parameters.
// Step 3 ranks groups by that contribution.  Step 4 adjusts the ranking for
// the target using only benchmark data: benchmarks whose signatures are
// heavy in a group reveal, through their base→target speedups, how much that
// group matters on the target.  A group whose heavy benchmarks speed up
// *less* than average gains weight on the target (it will dominate runtime
// there); one whose heavy benchmarks speed up more loses weight.
#pragma once

#include <array>
#include <string>

#include "core/profiles.h"
#include "core/spec_index.h"
#include "machine/counters.h"
#include "machine/machine.h"

namespace swapp::core {

/// Normalised per-group importance weights (sum to 1), ordered G1..G6.
struct GroupWeights {
  std::array<double, machine::kMetricGroupCount> weight{};

  double operator[](machine::MetricGroup g) const {
    return weight[static_cast<std::size_t>(g)];
  }
  /// 1-based rank (1 = most important) of each group.
  std::array<int, machine::kMetricGroupCount> ranks() const;
};

/// Step 2+3: group contributions to runtime on the base machine, from the
/// application's counters and the base processor's cost parameters.
GroupWeights base_group_weights(const machine::PmuCounters& app,
                                const machine::Machine& base);

/// Step 4: adjusts base weights to the target machine using benchmark
/// counter signatures (base) and benchmark runtimes (base and target).
GroupWeights adjust_weights_to_target(const GroupWeights& base_weights,
                                      const SpecData& spec,
                                      const std::string& target_machine);

/// Same adjustment over a prebuilt `SpecIndex` (target machine implied by
/// the index): the precomputed metric vectors and flat runtime arrays stand
/// in for the per-call counter conversions and string-map lookups.
/// Bit-identical to the `SpecData` overload for the same underlying data.
GroupWeights adjust_weights_to_target(const GroupWeights& base_weights,
                                      const SpecIndex& index);

}  // namespace swapp::core
