// The SWAPP facade: combined compute + communication projection (paper §3.3).
//
// Quickstart:
//
//   using namespace swapp;
//   core::Projector projector(base_machine, spec_data, base_imb);
//   projector.add_target("IBM POWER6 575", p6_imb);
//   core::ProjectionResult r =
//       projector.project(app_base_data, "IBM POWER6 575", /*ck=*/128);
//   std::cout << r.total_target() << "\n";
//
// `spec_data` must contain benchmark runtimes for every added target (the
// "published data" of §2.3 step 1); `app_base_data` holds only base-machine
// application profiles.  The projector never touches a target-machine
// application run.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/comm_projection.h"
#include "core/compute_projection.h"
#include "core/profiles.h"
#include "core/spec_index.h"
#include "imb/suite.h"
#include "machine/machine.h"

namespace swapp::core {

struct ProjectionOptions {
  ComputeProjectionOptions compute;
  CommProjectionOptions comm;
  /// Ablation: couple the components — scale the base total runtime by the
  /// compute speedup alone, ignoring the separate communication projection.
  bool decouple_components = true;
};

/// A full application projection at one task count on one target.
struct ProjectionResult {
  std::string app;
  std::string target;
  int cores = 0;

  ComputeProjection compute;
  CommProjection comm;

  /// Projected per-task compute + communication time — the quantity the
  /// paper compares against measured runtimes.
  Seconds total_target() const {
    return compute.target_compute + comm.target_total();
  }
  /// The application's base-machine total at the same count (diagnostics).
  Seconds total_base() const {
    return compute.base_compute + comm.base_total();
  }
};

/// One row of a batched projection (the service's request unit): project
/// `app` onto `target` at `cores` tasks under `options`.  `app` is borrowed
/// and must outlive the `project_many` call.
struct ProjectionRequest {
  const AppBaseData* app = nullptr;
  std::string target;
  int cores = 0;
  ProjectionOptions options;
};

/// Canonical key of the compute options that shape a surrogate search —
/// requests agree on it iff a shared search is valid between them.  Used by
/// the batch planner and the sweep planner to key shared-search artifacts.
std::string compute_options_key(const ComputeProjectionOptions& options);

/// Rescales a reference-count compute projection to task count `ck`: the
/// CCSM anchor at `ck` replaces the reference anchor, and the surrogate's
/// weights (and hence its Eq. 2 target runtime) scale by the same γ factor.
/// This is the exact function `project` applies when
/// `surrogate_reference_cores` is pinned — exposed so the sweep executor can
/// ride one search across core-count points bit-identically.
ComputeProjection rescale_reference(const ComputeProjection& at_reference,
                                    const AppBaseData& app, int reference_ck,
                                    int ck);

class Projector {
 public:
  Projector(machine::Machine base, SpecLibrary spec, imb::ImbDatabase base_imb);

  /// Registers a target's IMB tables.  Benchmark runtimes for the target
  /// must already be present in the SpecLibrary passed at construction.
  void add_target(const std::string& machine_name, imb::ImbDatabase imb);

  const machine::Machine& base() const noexcept { return base_; }
  const SpecLibrary& spec() const noexcept { return spec_; }

  /// The flat benchmark-data view a projection at `ck` onto
  /// `target_machine` consumes (occupancy-matched on both machines;
  /// hybrid jobs occupy ck · threads hardware threads).
  SpecData spec_view(const std::string& target_machine, int ck,
                     int threads_per_rank = 1) const;

  /// Projects `app` onto `target_machine` at task count `ck`.
  ProjectionResult project(const AppBaseData& app,
                           const std::string& target_machine, int ck,
                           const ProjectionOptions& options = {}) const;

  /// Batched projection — the collect-once / project-many engine.  Plans the
  /// requests into shared intermediate artifacts (one `SpecIndex` per
  /// (target, occupancy) pair; one GA surrogate search per (app, target,
  /// reference count, options) group when `surrogate_reference_cores` is
  /// set), executes independent plan nodes over the thread pool, and merges
  /// in input order.  `results[i]` is byte-identical to
  /// `project(*requests[i].app, requests[i].target, requests[i].cores,
  /// requests[i].options)` at every `SWAPP_THREADS` value — sharing only
  /// removes redundant recomputation, never changes a result.
  std::vector<ProjectionResult> project_many(
      const std::vector<ProjectionRequest>& requests) const;

 private:
  /// Node occupancies a projection at `ck` implies on (base, target).
  std::pair<int, int> occupancies_for(const std::string& target_machine,
                                      int ck, int threads_per_rank) const;

  /// Compute component with optional prebuilt artifacts: `index` is the
  /// spec view at the search count (nullable), `shared_reference` a
  /// memoised reference-count projection (nullable).  All four combinations
  /// produce byte-identical results.
  ComputeProjection compute_component(const AppBaseData& app,
                                      const std::string& target_machine,
                                      int ck,
                                      const ComputeProjectionOptions& options,
                                      const SpecIndex* index,
                                      const ComputeProjection* shared_reference)
      const;

  /// Communication component fed by the projected compute scale.
  CommProjection comm_component(const AppBaseData& app,
                                const std::string& target_machine, int ck,
                                double compute_scale,
                                const ProjectionOptions& options) const;

  machine::Machine base_;
  SpecLibrary spec_;
  imb::ImbDatabase base_imb_;
  std::map<std::string, imb::ImbDatabase> target_imb_;
};

}  // namespace swapp::core
