#include "core/ga.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <numeric>

#include "core/ga_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace swapp::core {

Seconds Surrogate::project_runtime(const SpecData& spec,
                                   const std::string& machine_name) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    total += t.weight * spec.runtime_on(machine_name, t.benchmark);
  }
  return total;
}

Seconds Surrogate::base_runtime(const SpecData& spec) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    total += t.weight * spec.base_runtime.at(t.benchmark);
  }
  return total;
}

Seconds Surrogate::project_runtime(const SpecIndex& index) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    SWAPP_ASSERT(t.slot < index.size(), "surrogate term carries no slot");
    total += t.weight * index.target_time[t.slot];
  }
  return total;
}

Seconds Surrogate::base_runtime(const SpecIndex& index) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    SWAPP_ASSERT(t.slot < index.size(), "surrogate term carries no slot");
    total += t.weight * index.base_time[t.slot];
  }
  return total;
}

namespace {

using Genome = std::vector<double>;  // one weight per suite benchmark
using NzList = std::vector<std::size_t>;  // sorted nonzero positions

struct Problem {
  std::vector<machine::MetricVector> bench_st;
  std::vector<machine::MetricVector> bench_smt;
  std::vector<double> bench_base_time;
  machine::MetricVector app_st;
  machine::MetricVector app_smt;
  std::array<double, machine::kMetricCount> scale{};
  std::array<double, machine::kMetricCount> metric_weight{};
  double app_compute = 0.0;
  double lambda = 2.0;
  /// SoA copy of the arrays above (metric-major signatures); the production
  /// evaluation path.  Built once per problem by finish_problem.
  GaEvalEngine engine;

  std::size_t size() const { return bench_base_time.size(); }

  /// Rescales the genome so Σ w_k T_k(base) = app compute time.  The metric
  /// distance is invariant under global rescaling, so this is always the
  /// optimal scale — the GA only has to search proportions.
  void normalise_scale(Genome& g) const {
    double total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      total += g[k] * bench_base_time[k];
    }
    if (total <= 0.0) return;
    const double factor = app_compute / total;
    for (double& w : g) w *= factor;
  }

  /// Same rescale driven off the genome's nonzero list.  Bit-identical to
  /// normalise_scale: zero weights contribute exact +0.0 to the total and
  /// are left at +0.0 by the (positive) factor either way.
  void normalise_scale_sparse(Genome& g, const NzList& nz) const {
    double total = 0.0;
    for (const std::size_t k : nz) {
      total += g[k] * bench_base_time[k];
    }
    if (total <= 0.0) return;
    const double factor = app_compute / total;
    for (const std::size_t k : nz) g[k] *= factor;
  }

  // Reference three-pass objective (metric_distance + runtime_error +
  // fitness).  The GA itself runs fitness_fused below; these stay compiled
  // in as the ground truth the fused kernel is benchmarked and checked
  // against (ga_fitness_probe).

  double metric_distance(const Genome& g) const {
    // Blend benchmark signatures by their share of the surrogate's runtime
    // (per-instruction rates combine by execution share).
    double share_total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      share_total += g[k] * bench_base_time[k];
    }
    if (share_total <= 0.0) return 1e18;

    double distance = 0.0;
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      double blend_st = 0.0;
      double blend_smt = 0.0;
      for (std::size_t k = 0; k < g.size(); ++k) {
        if (g[k] == 0.0) continue;
        const double share = g[k] * bench_base_time[k] / share_total;
        blend_st += share * bench_st[k].values[i];
        blend_smt += share * bench_smt[k].values[i];
      }
      const double d_st = (blend_st - app_st.values[i]) / scale[i];
      const double d_smt = (blend_smt - app_smt.values[i]) / scale[i];
      distance += metric_weight[i] * (d_st * d_st + d_smt * d_smt);
    }
    return distance;
  }

  double runtime_error(const Genome& g) const {
    double total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      total += g[k] * bench_base_time[k];
    }
    return std::abs(total - app_compute) / app_compute;
  }

  double fitness(const Genome& g) const {
    const double r = runtime_error(g);
    return metric_distance(g) + lambda * r * r;
  }

  /// Fused single-pass objective: one sweep over the genome's nonzero terms
  /// computes the runtime share, the ST/SMT signature blends, and the
  /// runtime penalty together.  Per-metric accumulation happens in the same
  /// ascending-k order as the reference path, and skipped zero terms only
  /// drop exact +0.0 additions, so the result is bit-identical to
  /// fitness() for every genome the GA produces (weights are >= 0).
  double fitness_fused(const Genome& g, double* distance_out = nullptr,
                       double* runtime_error_out = nullptr) const {
    double share_total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      if (g[k] != 0.0) share_total += g[k] * bench_base_time[k];
    }
    const double rerr = std::abs(share_total - app_compute) / app_compute;

    double distance;
    if (share_total <= 0.0) {
      distance = 1e18;
    } else {
      std::array<double, machine::kMetricCount> blend_st{};
      std::array<double, machine::kMetricCount> blend_smt{};
      for (std::size_t k = 0; k < g.size(); ++k) {
        if (g[k] == 0.0) continue;
        const double share = g[k] * bench_base_time[k] / share_total;
        const std::array<double, machine::kMetricCount>& st =
            bench_st[k].values;
        const std::array<double, machine::kMetricCount>& smt =
            bench_smt[k].values;
        for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
          blend_st[i] += share * st[i];
          blend_smt[i] += share * smt[i];
        }
      }
      distance = 0.0;
      for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
        const double d_st = (blend_st[i] - app_st.values[i]) / scale[i];
        const double d_smt = (blend_smt[i] - app_smt.values[i]) / scale[i];
        distance += metric_weight[i] * (d_st * d_st + d_smt * d_smt);
      }
    }
    if (distance_out) *distance_out = distance;
    if (runtime_error_out) *runtime_error_out = rerr;
    return distance + lambda * rerr * rerr;
  }
};

/// Zeroes the smallest positive weights until at most `max_terms` remain,
/// driven off the genome's nonzero list instead of rescanning every suite
/// position per drop.  Drop order matches the original full-scan version:
/// the smallest positive weight goes first, ties broken by lowest index
/// (`<` keeps the first occurrence, and `nz` is sorted ascending).  Dropped
/// positions are erased from `nz` so the list stays exact.
void prune_to(Genome& g, NzList& nz, int max_terms) {
  int positive = 0;
  for (const std::size_t k : nz) positive += (g[k] > 0.0);
  while (positive > max_terms) {
    std::size_t smallest_j = 0;
    double smallest_w = 1e300;
    for (std::size_t j = 0; j < nz.size(); ++j) {
      const double w = g[nz[j]];
      if (w > 0.0 && w < smallest_w) {
        smallest_w = w;
        smallest_j = j;
      }
    }
    g[nz[smallest_j]] = 0.0;
    nz.erase(nz.begin() + static_cast<std::ptrdiff_t>(smallest_j));
    --positive;
  }
}

/// Counters the polish loop reports back to its caller.
struct PolishStats {
  std::uint64_t exact_evals = 0;
  std::uint64_t screens = 0;
};

/// Deterministic local polish: multiplicative one-weight tweaks on
/// `polished` until no candidate improves the objective (and at least
/// `min_sweeps` sweeps have run — the GA passes 0; the benchmark prober
/// pins a sweep count so both modes make identical candidate visits).
///
/// kFullEval pays one exact eval (genome copy + rescale + fitness_sparse)
/// per candidate — the pre-delta behaviour.  kDeltaScreened screens each
/// candidate through the cached blend in O(M) first and only confirms
/// apparent improvements exactly.  Why the two modes accept identically:
///   * the screen approximates the exact post-rescale fitness to ~1e-12
///     absolute (reciprocal-multiply rounding, one delta step off the
///     bound blend, and the dropped post-rescale runtime penalty ~1e-31);
///   * the confirm margin 1e-9·(1+|fit|) dwarfs that error, so no
///     candidate the exact path would accept (f + 1e-12 < fit) can be
///     screened out, while spurious survivors die on their exact eval;
///   * acceptance tests only exact values — so the accept sequence, the
///     final genome, and the fitness are identical in both modes.
/// Accepted tweaks are committed into the blend via apply_scale1 (one
/// rounding of drift each); every GaBlendState::kRefreshInterval commits
/// the blend is re-bound from the live genome, bounding total drift.  The
/// blend never sees the global rescale the exact path applies — screen
/// values are scale-invariant, so it tracks the unnormalised trajectory.
double polish_genome(const Problem& prob, Genome& polished,
                     const NzList& polished_nz, double polished_fit,
                     PolishMode mode, int min_sweeps, GaEvalScratch& scratch,
                     PolishStats& stats) {
  if (polished_nz.empty()) return polished_fit;
  Genome candidate(polished.size(), 0.0);
  GaBlendState blend;
  const bool screened = mode == PolishMode::kDeltaScreened;
  if (screened) {
    prob.engine.bind_blend(blend, polished.data(), polished_nz.data(),
                           polished_nz.size());
  }
  int sweeps = 0;
  bool improved = true;
  while (improved || sweeps < min_sweeps) {
    improved = false;
    ++sweeps;
    for (std::size_t j = 0; j < polished_nz.size(); ++j) {
      const std::size_t k = polished_nz[j];
      if (polished[k] == 0.0) continue;
      for (const double factor : {0.8, 1.25, 0.95, 1.05}) {
        if (screened) {
          const double screen =
              prob.engine.fitness_delta_scale1(blend, j, factor);
          ++stats.screens;
          const double margin = 1e-9 * (1.0 + std::abs(polished_fit));
          if (!(screen < polished_fit + margin)) continue;
        }
        candidate = polished;
        candidate[k] *= factor;
        prob.normalise_scale_sparse(candidate, polished_nz);
        const double f = prob.engine.fitness_sparse(
            candidate.data(), polished_nz.data(), polished_nz.size(), scratch);
        ++stats.exact_evals;
        if (f + 1e-12 < polished_fit) {
          std::swap(polished, candidate);
          polished_fit = f;
          improved = true;
          if (screened) {
            prob.engine.apply_scale1(blend, j, factor);
            if (blend.needs_refresh()) {
              prob.engine.bind_blend(blend, polished.data(),
                                     polished_nz.data(), polished_nz.size());
            }
          }
        }
      }
    }
  }
  return polished_fit;
}

/// Collects per-slot weight differences between `child` and `parent` over
/// the union of their nonzero lists (both sorted ascending).  Returns the
/// number of differing slots, or 4 as soon as the diff exceeds the 3
/// changes the mutation screen handles — the caller then falls back to an
/// exact eval.
std::size_t genome_diff(const Genome& child, const NzList& child_nz,
                        const Genome& parent, const NzList& parent_nz,
                        GaWeightChange* out) {
  constexpr std::size_t kScreenable = 3;
  std::size_t count = 0;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < child_nz.size() || b < parent_nz.size()) {
    std::size_t k;
    if (b >= parent_nz.size() ||
        (a < child_nz.size() && child_nz[a] < parent_nz[b])) {
      k = child_nz[a++];
    } else if (a >= child_nz.size() || parent_nz[b] < child_nz[a]) {
      k = parent_nz[b++];
    } else {
      k = child_nz[a];
      ++a;
      ++b;
    }
    const double dw = child[k] - parent[k];
    if (dw != 0.0) {
      if (count == kScreenable) return kScreenable + 1;
      out[count++] = GaWeightChange{k, dw};
    }
  }
  return count;
}

/// Fills the application-side fields and the per-metric scales; the
/// benchmark arrays must already be in place.
void finish_problem(Problem& prob, const machine::PmuCounters& app_st,
                    const machine::PmuCounters& app_smt,
                    const GroupWeights& weights, Seconds app_base_compute,
                    const GaOptions& options) {
  SWAPP_REQUIRE(app_base_compute > 0.0,
                "application base compute time must be positive");
  prob.app_st = machine::MetricVector::from_counters(app_st);
  prob.app_smt = machine::MetricVector::from_counters(app_smt);
  prob.app_compute = app_base_compute;
  prob.lambda = options.runtime_penalty;

  // Per-metric scale: application magnitude, floored by the suite mean, so
  // near-zero application metrics don't explode the distance.
  for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
    double suite_mean = 0.0;
    for (const auto& v : prob.bench_st) suite_mean += v.values[i];
    suite_mean /= static_cast<double>(prob.bench_st.size());
    prob.scale[i] = std::max({std::abs(prob.app_st.values[i]),
                              0.25 * suite_mean, 1e-9});
    prob.metric_weight[i] =
        weights[machine::MetricVector::group_of(i)];
  }

  prob.engine.build(prob.bench_st, prob.bench_smt, prob.bench_base_time,
                    prob.app_st, prob.app_smt, prob.scale, prob.metric_weight,
                    prob.app_compute, prob.lambda);
}

Problem build_problem(const machine::PmuCounters& app_st,
                      const machine::PmuCounters& app_smt,
                      const GroupWeights& weights, const SpecData& spec,
                      Seconds app_base_compute, const GaOptions& options) {
  SWAPP_REQUIRE(!spec.names.empty(), "empty benchmark suite");
  Problem prob;
  for (const std::string& name : spec.names) {
    prob.bench_st.push_back(
        machine::MetricVector::from_counters(spec.base_counters_st.at(name)));
    prob.bench_smt.push_back(
        machine::MetricVector::from_counters(spec.base_counters_smt.at(name)));
    prob.bench_base_time.push_back(spec.base_runtime.at(name));
  }
  finish_problem(prob, app_st, app_smt, weights, app_base_compute, options);
  return prob;
}

Problem build_problem(const machine::PmuCounters& app_st,
                      const machine::PmuCounters& app_smt,
                      const GroupWeights& weights, const SpecIndex& index,
                      Seconds app_base_compute, const GaOptions& options) {
  SWAPP_REQUIRE(index.size() > 0, "empty benchmark suite");
  Problem prob;
  // The index's arrays hold exactly what the map walk above would produce
  // (same suite order, same conversions), so this is a plain copy.
  prob.bench_st = index.bench_st;
  prob.bench_smt = index.bench_smt;
  prob.bench_base_time = index.base_time;
  finish_problem(prob, app_st, app_smt, weights, app_base_compute, options);
  return prob;
}

/// One GA run over a pre-built (shared, read-only) Problem.
Surrogate find_surrogate_once(const Problem& prob, const SpecData& spec,
                              const GaOptions& options) {
  SWAPP_SPAN("ga.restart");
  std::uint64_t evals = 0;    // exact SoA-engine evaluations, flushed on exit
  std::uint64_t screens = 0;  // O(M) delta screens, flushed on exit
  Rng rng(options.seed);
  const std::size_t n = prob.size();

  const auto rebuild_nz = [](const Genome& g, NzList& nz) {
    nz.clear();
    for (std::size_t k = 0; k < g.size(); ++k) {
      if (g[k] > 0.0) nz.push_back(k);
    }
  };

  const auto fill_random_genome = [&](Genome& g, NzList& nz) {
    std::fill(g.begin(), g.end(), 0.0);
    const int terms = static_cast<int>(rng.range(2, 4));
    for (int t = 0; t < terms; ++t) {
      const auto k = static_cast<std::size_t>(rng.below(n));
      g[k] = prob.app_compute /
             (static_cast<double>(terms) * prob.bench_base_time[k]) *
             rng.uniform(0.5, 1.5);
    }
    rebuild_nz(g, nz);
    prob.normalise_scale_sparse(g, nz);
  };

  // Double-buffered population: genomes and their nonzero-index lists are
  // written in place each generation, so the breeding loop performs no
  // allocations after setup (nz lists are capped at n entries).
  const auto pop_size = static_cast<std::size_t>(options.population);
  std::vector<Genome> population(pop_size, Genome(n, 0.0));
  std::vector<Genome> next(pop_size, Genome(n, 0.0));
  std::vector<NzList> population_nz(pop_size);
  std::vector<NzList> next_nz(pop_size);
  for (std::size_t i = 0; i < pop_size; ++i) {
    population_nz[i].reserve(n);
    next_nz[i].reserve(n);
  }
  std::vector<double> fitness(pop_size, 0.0);

  // Whole-generation scoring through the SoA engine: one batched call per
  // generation over reused scratch (bit-identical to per-genome fitness()).
  // `first` skips individuals whose score is already known — the elites,
  // whose fitness carries over verbatim because the objective is a pure
  // function of (genome, nz) and elites are verbatim copies.
  GaEvalScratch scratch;
  std::vector<GenomeRef> refs(pop_size);
  const auto score_population = [&](std::size_t first) {
    for (std::size_t i = first; i < pop_size; ++i) {
      refs[i] = GenomeRef{population[i].data(), population_nz[i].data(),
                          population_nz[i].size()};
    }
    prob.engine.evaluate_population(refs.data() + first, pop_size - first,
                                    scratch, fitness.data() + first);
    evals += pop_size - first;
  };

  for (std::size_t i = 0; i < pop_size; ++i) {
    fill_random_genome(population[i], population_nz[i]);
  }
  score_population(0);

  const auto tournament = [&]() -> std::size_t {
    std::size_t best = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(options.population)));
    for (int t = 1; t < 3; ++t) {
      const auto c = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(options.population)));
      if (fitness[c] < fitness[best]) best = c;
    }
    return best;
  };

  // Scratch reused across generations and children.
  std::vector<std::size_t> order(pop_size);

  // Mutation-screening scratch (options.screen_mutations only): per-parent
  // cached blends bound lazily once per generation (the per-generation
  // re-bind is the drift refresh — screens never commit updates), the
  // per-child screen results, and the batch list for the children that
  // still need an exact eval.
  std::vector<GaBlendState> parent_blend;
  std::vector<int> parent_blend_gen;
  std::vector<char> child_screened;
  std::vector<double> screened_fit;
  std::vector<std::size_t> exact_index;
  std::vector<double> exact_fit;
  if (options.screen_mutations) {
    parent_blend.resize(pop_size);
    parent_blend_gen.assign(pop_size, -1);
    child_screened.assign(pop_size, 0);
    screened_fit.assign(pop_size, 0.0);
    exact_index.resize(pop_size);
    exact_fit.resize(pop_size);
  }

  double best_so_far = 1e300;
  int stagnant = 0;
  for (int gen = 0; gen < options.generations; ++gen) {
    // Elitism: keep the two best individuals (index tie-break keeps the
    // selection deterministic even under exact fitness ties).
    for (std::size_t i = 0; i < pop_size; ++i) order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 2, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        if (fitness[a] != fitness[b]) {
                          return fitness[a] < fitness[b];
                        }
                        return a < b;
                      });
    next[0] = population[order[0]];
    next[1] = population[order[1]];
    next_nz[0] = population_nz[order[0]];
    next_nz[1] = population_nz[order[1]];
    const double elite_fit0 = fitness[order[0]];
    const double elite_fit1 = fitness[order[1]];

    for (std::size_t filled = 2; filled < pop_size; ++filled) {
      const std::size_t pa = tournament();
      const std::size_t pb = tournament();
      const Genome& a = population[pa];
      const Genome& b = population[pb];
      Genome& child = next[filled];
      NzList& nz = next_nz[filled];
      for (std::size_t k = 0; k < n; ++k) {
        child[k] = rng.chance(0.5) ? a[k] : b[k];
      }
      // The nonzero index list is built once per child and kept current
      // through the mutations below (sorted ascending, exactly what a
      // rebuild would produce) — the evaluation engine then touches only
      // these positions.
      rebuild_nz(child, nz);
      // Mutations: perturb, add, drop.
      if (rng.chance(0.6)) {
        if (!nz.empty()) {
          const std::size_t k = nz[rng.below(nz.size())];
          child[k] *= std::exp(rng.normal(0.0, 0.35));
        }
      }
      if (rng.chance(0.25)) {
        const auto k = static_cast<std::size_t>(rng.below(n));
        if (child[k] == 0.0) {
          child[k] = prob.app_compute / (4.0 * prob.bench_base_time[k]) *
                     rng.uniform(0.2, 1.0);
          nz.insert(std::lower_bound(nz.begin(), nz.end(), k), k);
        }
      }
      if (rng.chance(0.15) && nz.size() > 1) {
        const auto j = static_cast<std::size_t>(rng.below(nz.size()));
        child[nz[j]] = 0.0;
        nz.erase(nz.begin() + static_cast<std::ptrdiff_t>(j));
      }
      prune_to(child, nz, options.max_terms);
      if (options.screen_mutations) {
        // Children within 3 weight changes of their first parent (identical
        // tournament picks, or crossover of near-duplicate parents in a
        // converged population) are scored through the parent's cached
        // blend instead of an exact eval.  The diff is taken before the
        // rescale below — the screen is scale-invariant, so it still
        // approximates the normalised child's fitness.
        GaWeightChange changes[kMaxDeltaChanges];
        const std::size_t diff =
            genome_diff(child, nz, a, population_nz[pa], changes);
        if (diff <= 3) {
          GaBlendState& blend = parent_blend[pa];
          if (parent_blend_gen[pa] != gen) {
            prob.engine.bind_blend(blend, a.data(), population_nz[pa].data(),
                                   population_nz[pa].size());
            parent_blend_gen[pa] = gen;
          }
          screened_fit[filled] =
              prob.engine.fitness_delta_changes(blend, changes, diff);
          child_screened[filled] = 1;
          ++screens;
        } else {
          child_screened[filled] = 0;
        }
      }
      prob.normalise_scale_sparse(child, nz);
    }
    std::swap(population, next);
    std::swap(population_nz, next_nz);
    // Elite scores carry over (verbatim copies of already-scored genomes).
    fitness[0] = elite_fit0;
    fitness[1] = elite_fit1;
    if (!options.screen_mutations) {
      score_population(2);
    } else {
      // Screened children keep their approximate score; the rest batch
      // through one exact evaluate_population call.
      std::size_t exact_count = 0;
      for (std::size_t i = 2; i < pop_size; ++i) {
        if (child_screened[i]) {
          fitness[i] = screened_fit[i];
        } else {
          refs[exact_count] = GenomeRef{population[i].data(),
                                        population_nz[i].data(),
                                        population_nz[i].size()};
          exact_index[exact_count] = i;
          ++exact_count;
        }
      }
      if (exact_count > 0) {
        prob.engine.evaluate_population(refs.data(), exact_count, scratch,
                                        exact_fit.data());
        for (std::size_t e = 0; e < exact_count; ++e) {
          fitness[exact_index[e]] = exact_fit[e];
        }
        evals += exact_count;
      }
    }
    double gen_best = 1e300;
    for (std::size_t i = 0; i < pop_size; ++i) {
      gen_best = std::min(gen_best, fitness[i]);
    }
    SWAPP_COUNT("ga.generations", 1);
    // Convergence series: one sample per generation, attributed to this
    // restart's span/thread, so a trace shows every restart's descent.
    SWAPP_TRACE_COUNTER("ga.best_fitness", gen_best);
    if (options.stagnation_limit > 0) {
      if (gen_best < best_so_far) {
        best_so_far = gen_best;
        stagnant = 0;
      } else if (++stagnant >= options.stagnation_limit) {
        SWAPP_COUNT("ga.stagnation_exits", 1);
        break;
      }
    }
  }

  std::size_t best = static_cast<std::size_t>(
      std::min_element(fitness.begin(), fitness.end()) - fitness.begin());

  // Deterministic local polish on the winner (polish_genome above): the
  // winner's nonzero structure is invariant under the (positive) tweak and
  // rescale factors, so its nz list serves every candidate.
  Genome polished = population[best];
  const NzList& polished_nz = population_nz[best];
  double polished_fit = fitness[best];
  if (options.screen_mutations) {
    // Population scores may be approximate in this mode; the polish
    // baseline (and the returned fitness) must be exact.
    polished_fit = prob.engine.fitness_sparse(
        polished.data(), polished_nz.data(), polished_nz.size(), scratch);
    ++evals;
  }
  PolishStats polish_stats;
  polished_fit = polish_genome(prob, polished, polished_nz, polished_fit,
                               options.polish, 0, scratch, polish_stats);
  evals += polish_stats.exact_evals;
  screens += polish_stats.screens;
  const Genome& g = polished;
  SWAPP_COUNT("ga.evals", evals);
  SWAPP_COUNT("ga.screens", screens);
  SWAPP_COUNT("ga.restarts", 1);

  Surrogate out;
  out.fitness = polished_fit;
  prob.engine.fitness_sparse(g.data(), polished_nz.data(), polished_nz.size(),
                             scratch, &out.metric_distance,
                             &out.runtime_error);
  for (const std::size_t k : polished_nz) {
    if (g[k] > 0.0) {
      out.terms.push_back(SurrogateTerm{spec.names[k], g[k], k});
    }
  }
  SWAPP_ASSERT(!out.terms.empty(), "GA produced an empty surrogate");
  return out;
}

/// Restart fan-out + bagging merge over a prebuilt problem.
Surrogate search_and_merge(const Problem& prob, const SpecData& spec,
                           Seconds app_base_compute,
                           const GaOptions& options) {
  SWAPP_SPAN("ga.search");
  SWAPP_COUNT("ga.searches", 1);
  SWAPP_REQUIRE(options.restarts >= 1, "GA needs at least one restart");

  // Restarts are fully independent (each derives its own seed from the
  // restart index), so they fan out over the thread pool; the bagging merge
  // below walks results in restart order, which keeps the output
  // bit-identical for every thread count.
  std::vector<int> restart_ids(static_cast<std::size_t>(options.restarts));
  std::iota(restart_ids.begin(), restart_ids.end(), 0);
  const std::vector<Surrogate> runs =
      parallel_map(restart_ids, [&](const int r) {
        GaOptions run = options;
        run.seed = options.seed +
                   0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r);
        return find_surrogate_once(prob, spec, run);
      });

  double best_fitness = runs.front().fitness;
  for (const Surrogate& s : runs) {
    best_fitness = std::min(best_fitness, s.fitness);
  }
  // Bagging: near-tied restarts (within 25% of the best objective) are
  // averaged.  Distinct surrogates can fit the counter signature equally
  // well yet imply different target runtimes; the ensemble mean is a far
  // more stable estimator than an arbitrary tie-break.  Suite slots ride
  // along so the merged terms keep their index-based fast path.
  struct MergedTerm {
    std::size_t slot = SurrogateTerm::kNoSlot;
    double weight = 0.0;
  };
  std::map<std::string, MergedTerm> merged;
  int contributors = 0;
  for (const Surrogate& s : runs) {
    if (s.fitness > best_fitness * 1.25 + 1e-12) continue;
    for (const SurrogateTerm& t : s.terms) {
      MergedTerm& m = merged[t.benchmark];
      m.slot = t.slot;
      m.weight += t.weight;
    }
    ++contributors;
  }
  SWAPP_ASSERT(contributors > 0, "no GA restart survived the fitness filter");

  Surrogate out;
  out.fitness = best_fitness;
  for (auto& [name, m] : merged) {
    out.terms.push_back(SurrogateTerm{
        name, m.weight / static_cast<double>(contributors), m.slot});
  }
  // Re-anchor the averaged weights to the base compute time (Eq. 2's scale).
  Seconds base_total = 0.0;
  for (const SurrogateTerm& t : out.terms) {
    base_total += t.weight * prob.bench_base_time[t.slot];
  }
  SWAPP_ASSERT(base_total > 0.0, "ensemble surrogate has zero base runtime");
  for (SurrogateTerm& t : out.terms) {
    t.weight *= app_base_compute / base_total;
  }
  // Diagnostics from the best single run.
  for (const Surrogate& s : runs) {
    if (s.fitness == best_fitness) {
      out.metric_distance = s.metric_distance;
      out.runtime_error = s.runtime_error;
      break;
    }
  }
  return out;
}

}  // namespace

Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecData& spec,
                         Seconds app_base_compute, const GaOptions& options) {
  const Problem prob = build_problem(app_st, app_smt, weights, spec,
                                     app_base_compute, options);
  return search_and_merge(prob, spec, app_base_compute, options);
}

Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecIndex& index,
                         Seconds app_base_compute, const GaOptions& options) {
  const Problem prob = build_problem(app_st, app_smt, weights, index,
                                     app_base_compute, options);
  return search_and_merge(prob, index.data, app_base_compute, options);
}

struct GaFitnessProber::Impl {
  Problem prob;
  // Scratch reused across run() calls (what the GA's generation loop does),
  // so the timed path performs no allocations once warm.
  mutable GaEvalScratch scratch;
  mutable std::vector<double> flat;
  mutable std::vector<GenomeRef> refs;
  mutable std::vector<double> fitness;
};

GaFitnessProber::GaFitnessProber(const machine::PmuCounters& app_st,
                                 const machine::PmuCounters& app_smt,
                                 const GroupWeights& weights,
                                 const SpecData& spec,
                                 Seconds app_base_compute)
    : impl_(new Impl{build_problem(app_st, app_smt, weights, spec,
                                   app_base_compute, GaOptions{}),
                     {}, {}, {}, {}}) {}

GaFitnessProber::~GaFitnessProber() = default;

double GaFitnessProber::run(const std::vector<double>& genome, int iters,
                            GaKernel kernel) const {
  const Problem& prob = impl_->prob;
  SWAPP_REQUIRE(genome.size() == prob.size(),
                "genome size must match the benchmark suite");
  const std::size_t n = genome.size();

  // Nonzero positions of the probe genome; the nudge below preserves the
  // zero/nonzero structure, so the list stays valid for every iteration.
  NzList nz;
  for (std::size_t k = 0; k < n; ++k) {
    if (genome[k] != 0.0) nz.push_back(k);
  }

  // Nudges one weight so the evaluation cannot be hoisted out of the loop.
  const auto nudge = [&](double* g, int it) {
    for (std::size_t k = 0; k < n; ++k) {
      if (g[k] != 0.0) {
        g[k] = genome[k] * (1.0 + 1e-12 * static_cast<double>(it & 7));
        break;
      }
    }
  };

  GaEvalScratch& scratch = impl_->scratch;
  if (kernel == GaKernel::kSoaBatch) {
    // Batched shape: materialise every iteration's nudged variant up front,
    // score the whole batch in one call, then accumulate in iteration order
    // (the same order the scalar kernels add in).
    const auto count = static_cast<std::size_t>(iters);
    impl_->flat.resize(count * n);
    impl_->refs.resize(count);
    impl_->fitness.resize(count);
    for (std::size_t it = 0; it < count; ++it) {
      double* g = impl_->flat.data() + it * n;
      std::copy(genome.begin(), genome.end(), g);
      nudge(g, static_cast<int>(it));
      impl_->refs[it] = GenomeRef{g, nz.data(), nz.size()};
    }
    prob.engine.evaluate_population(impl_->refs.data(), count, scratch,
                                    impl_->fitness.data());
    double acc = 0.0;
    for (const double f : impl_->fitness) acc += f;
    return acc;
  }

  Genome g = genome;
  double acc = 0.0;
  for (int it = 0; it < iters; ++it) {
    nudge(g.data(), it);
    switch (kernel) {
      case GaKernel::kReference:
        acc += prob.fitness(g);
        break;
      case GaKernel::kFused:
        acc += prob.fitness_fused(g);
        break;
      default:
        acc += prob.engine.fitness_sparse(g.data(), nz.data(), nz.size(),
                                          scratch);
        break;
    }
  }
  return acc;
}

double GaFitnessProber::run_polish(const std::vector<double>& genome,
                                   int min_sweeps, PolishMode mode,
                                   std::vector<double>* polished_out) const {
  const Problem& prob = impl_->prob;
  SWAPP_REQUIRE(genome.size() == prob.size(),
                "genome size must match the benchmark suite");
  Genome g = genome;
  NzList nz;
  for (std::size_t k = 0; k < g.size(); ++k) {
    if (g[k] > 0.0) nz.push_back(k);
  }
  SWAPP_REQUIRE(!nz.empty(), "polish probe needs a genome with positive terms");
  prob.normalise_scale_sparse(g, nz);
  const double fit = prob.engine.fitness_sparse(g.data(), nz.data(), nz.size(),
                                                impl_->scratch);
  PolishStats stats;
  const double polished_fit = polish_genome(prob, g, nz, fit, mode,
                                            min_sweeps, impl_->scratch, stats);
  if (polished_out != nullptr) *polished_out = g;
  return polished_fit;
}

double GaFitnessProber::run_delta(const std::vector<double>& genome,
                                  int iters) const {
  const Problem& prob = impl_->prob;
  SWAPP_REQUIRE(genome.size() == prob.size(),
                "genome size must match the benchmark suite");
  Genome g = genome;
  NzList nz;
  for (std::size_t k = 0; k < g.size(); ++k) {
    if (g[k] > 0.0) nz.push_back(k);
  }
  SWAPP_REQUIRE(!nz.empty(), "delta probe needs a genome with positive terms");
  prob.normalise_scale_sparse(g, nz);
  GaBlendState blend;
  prob.engine.bind_blend(blend, g.data(), nz.data(), nz.size());
  static constexpr double kFactors[4] = {0.8, 1.25, 0.95, 1.05};
  double acc = 0.0;
  for (int it = 0; it < iters; ++it) {
    const std::size_t j = static_cast<std::size_t>(it) % nz.size();
    acc += prob.engine.fitness_delta_scale1(blend, j, kFactors[it & 3]);
  }
  return acc;
}

double ga_fitness_probe(const machine::PmuCounters& app_st,
                        const machine::PmuCounters& app_smt,
                        const GroupWeights& weights, const SpecData& spec,
                        Seconds app_base_compute,
                        const std::vector<double>& genome, int iters,
                        GaKernel kernel) {
  return GaFitnessProber(app_st, app_smt, weights, spec, app_base_compute)
      .run(genome, iters, kernel);
}

}  // namespace swapp::core
