#include "core/ga.h"

#include <algorithm>
#include <map>
#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace swapp::core {

Seconds Surrogate::project_runtime(const SpecData& spec,
                                   const std::string& machine_name) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    total += t.weight * spec.runtime_on(machine_name, t.benchmark);
  }
  return total;
}

Seconds Surrogate::base_runtime(const SpecData& spec) const {
  Seconds total = 0.0;
  for (const SurrogateTerm& t : terms) {
    total += t.weight * spec.base_runtime.at(t.benchmark);
  }
  return total;
}

namespace {

using Genome = std::vector<double>;  // one weight per suite benchmark

struct Problem {
  std::vector<machine::MetricVector> bench_st;
  std::vector<machine::MetricVector> bench_smt;
  std::vector<double> bench_base_time;
  machine::MetricVector app_st;
  machine::MetricVector app_smt;
  std::array<double, machine::kMetricCount> scale{};
  std::array<double, machine::kMetricCount> metric_weight{};
  double app_compute = 0.0;
  double lambda = 2.0;

  std::size_t size() const { return bench_base_time.size(); }

  /// Rescales the genome so Σ w_k T_k(base) = app compute time.  The metric
  /// distance is invariant under global rescaling, so this is always the
  /// optimal scale — the GA only has to search proportions.
  void normalise_scale(Genome& g) const {
    double total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      total += g[k] * bench_base_time[k];
    }
    if (total <= 0.0) return;
    const double factor = app_compute / total;
    for (double& w : g) w *= factor;
  }

  double metric_distance(const Genome& g) const {
    // Blend benchmark signatures by their share of the surrogate's runtime
    // (per-instruction rates combine by execution share).
    double share_total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      share_total += g[k] * bench_base_time[k];
    }
    if (share_total <= 0.0) return 1e18;

    double distance = 0.0;
    for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
      double blend_st = 0.0;
      double blend_smt = 0.0;
      for (std::size_t k = 0; k < g.size(); ++k) {
        if (g[k] == 0.0) continue;
        const double share = g[k] * bench_base_time[k] / share_total;
        blend_st += share * bench_st[k].values[i];
        blend_smt += share * bench_smt[k].values[i];
      }
      const double d_st = (blend_st - app_st.values[i]) / scale[i];
      const double d_smt = (blend_smt - app_smt.values[i]) / scale[i];
      distance += metric_weight[i] * (d_st * d_st + d_smt * d_smt);
    }
    return distance;
  }

  double runtime_error(const Genome& g) const {
    double total = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) {
      total += g[k] * bench_base_time[k];
    }
    return std::abs(total - app_compute) / app_compute;
  }

  double fitness(const Genome& g) const {
    const double r = runtime_error(g);
    return metric_distance(g) + lambda * r * r;
  }
};

int nonzero_count(const Genome& g) {
  int n = 0;
  for (const double w : g) n += (w > 0.0);
  return n;
}

void prune_to(Genome& g, int max_terms) {
  while (nonzero_count(g) > max_terms) {
    std::size_t smallest = 0;
    double smallest_w = 1e300;
    for (std::size_t k = 0; k < g.size(); ++k) {
      if (g[k] > 0.0 && g[k] < smallest_w) {
        smallest_w = g[k];
        smallest = k;
      }
    }
    g[smallest] = 0.0;
  }
}

}  // namespace

namespace {

Surrogate find_surrogate_once(const machine::PmuCounters& app_st,
                              const machine::PmuCounters& app_smt,
                              const GroupWeights& weights,
                              const SpecData& spec, Seconds app_base_compute,
                              const GaOptions& options) {
  SWAPP_REQUIRE(app_base_compute > 0.0,
                "application base compute time must be positive");
  SWAPP_REQUIRE(!spec.names.empty(), "empty benchmark suite");

  Problem prob;
  prob.app_st = machine::MetricVector::from_counters(app_st);
  prob.app_smt = machine::MetricVector::from_counters(app_smt);
  prob.app_compute = app_base_compute;
  prob.lambda = options.runtime_penalty;
  for (const std::string& name : spec.names) {
    prob.bench_st.push_back(
        machine::MetricVector::from_counters(spec.base_counters_st.at(name)));
    prob.bench_smt.push_back(
        machine::MetricVector::from_counters(spec.base_counters_smt.at(name)));
    prob.bench_base_time.push_back(spec.base_runtime.at(name));
  }

  // Per-metric scale: application magnitude, floored by the suite mean, so
  // near-zero application metrics don't explode the distance.
  for (std::size_t i = 0; i < machine::kMetricCount; ++i) {
    double suite_mean = 0.0;
    for (const auto& v : prob.bench_st) suite_mean += v.values[i];
    suite_mean /= static_cast<double>(prob.bench_st.size());
    prob.scale[i] = std::max({std::abs(prob.app_st.values[i]),
                              0.25 * suite_mean, 1e-9});
    prob.metric_weight[i] =
        weights[machine::MetricVector::group_of(i)];
  }

  Rng rng(options.seed);
  const std::size_t n = prob.size();

  const auto random_genome = [&] {
    Genome g(n, 0.0);
    const int terms = static_cast<int>(rng.range(2, 4));
    for (int t = 0; t < terms; ++t) {
      const auto k = static_cast<std::size_t>(rng.below(n));
      g[k] = prob.app_compute /
             (static_cast<double>(terms) * prob.bench_base_time[k]) *
             rng.uniform(0.5, 1.5);
    }
    prob.normalise_scale(g);
    return g;
  };

  std::vector<Genome> population;
  std::vector<double> fitness;
  population.reserve(static_cast<std::size_t>(options.population));
  for (int i = 0; i < options.population; ++i) {
    population.push_back(random_genome());
    fitness.push_back(prob.fitness(population.back()));
  }

  const auto tournament = [&]() -> const Genome& {
    std::size_t best = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(options.population)));
    for (int t = 1; t < 3; ++t) {
      const auto c = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(options.population)));
      if (fitness[c] < fitness[best]) best = c;
    }
    return population[best];
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    // Elitism: keep the two best individuals.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return fitness[a] < fitness[b];
              });

    std::vector<Genome> next;
    next.reserve(population.size());
    next.push_back(population[order[0]]);
    next.push_back(population[order[1]]);

    while (next.size() < population.size()) {
      const Genome& a = tournament();
      const Genome& b = tournament();
      Genome child(n, 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        child[k] = rng.chance(0.5) ? a[k] : b[k];
      }
      // Mutations: perturb, add, drop.
      if (rng.chance(0.6)) {
        std::vector<std::size_t> nz;
        for (std::size_t k = 0; k < n; ++k) {
          if (child[k] > 0.0) nz.push_back(k);
        }
        if (!nz.empty()) {
          const std::size_t k = nz[rng.below(nz.size())];
          child[k] *= std::exp(rng.normal(0.0, 0.35));
        }
      }
      if (rng.chance(0.25)) {
        const auto k = static_cast<std::size_t>(rng.below(n));
        if (child[k] == 0.0) {
          child[k] = prob.app_compute / (4.0 * prob.bench_base_time[k]) *
                     rng.uniform(0.2, 1.0);
        }
      }
      if (rng.chance(0.15) && nonzero_count(child) > 1) {
        std::vector<std::size_t> nz;
        for (std::size_t k = 0; k < n; ++k) {
          if (child[k] > 0.0) nz.push_back(k);
        }
        child[nz[rng.below(nz.size())]] = 0.0;
      }
      prune_to(child, options.max_terms);
      prob.normalise_scale(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    for (std::size_t i = 0; i < population.size(); ++i) {
      fitness[i] = prob.fitness(population[i]);
    }
  }

  std::size_t best = static_cast<std::size_t>(
      std::min_element(fitness.begin(), fitness.end()) - fitness.begin());

  // Deterministic local polish: multiplicative coordinate tweaks on the
  // winner until no single-weight change improves the objective.
  Genome polished = population[best];
  double polished_fit = fitness[best];
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (polished[k] == 0.0) continue;
      for (const double factor : {0.8, 1.25, 0.95, 1.05}) {
        Genome candidate = polished;
        candidate[k] *= factor;
        prob.normalise_scale(candidate);
        const double f = prob.fitness(candidate);
        if (f + 1e-12 < polished_fit) {
          polished = std::move(candidate);
          polished_fit = f;
          improved = true;
        }
      }
    }
  }
  const Genome& g = polished;

  Surrogate out;
  out.fitness = polished_fit;
  out.metric_distance = prob.metric_distance(g);
  out.runtime_error = prob.runtime_error(g);
  for (std::size_t k = 0; k < n; ++k) {
    if (g[k] > 0.0) {
      out.terms.push_back(SurrogateTerm{spec.names[k], g[k]});
    }
  }
  SWAPP_ASSERT(!out.terms.empty(), "GA produced an empty surrogate");
  return out;
}

}  // namespace

Surrogate find_surrogate(const machine::PmuCounters& app_st,
                         const machine::PmuCounters& app_smt,
                         const GroupWeights& weights, const SpecData& spec,
                         Seconds app_base_compute, const GaOptions& options) {
  SWAPP_REQUIRE(options.restarts >= 1, "GA needs at least one restart");
  std::vector<Surrogate> runs;
  runs.reserve(static_cast<std::size_t>(options.restarts));
  double best_fitness = 0.0;
  for (int r = 0; r < options.restarts; ++r) {
    GaOptions run = options;
    run.seed = options.seed +
               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r);
    runs.push_back(find_surrogate_once(app_st, app_smt, weights, spec,
                                       app_base_compute, run));
    if (r == 0 || runs.back().fitness < best_fitness) {
      best_fitness = runs.back().fitness;
    }
  }
  // Bagging: near-tied restarts (within 25% of the best objective) are
  // averaged.  Distinct surrogates can fit the counter signature equally
  // well yet imply different target runtimes; the ensemble mean is a far
  // more stable estimator than an arbitrary tie-break.
  std::map<std::string, double> merged;
  int contributors = 0;
  for (const Surrogate& s : runs) {
    if (s.fitness > best_fitness * 1.25 + 1e-12) continue;
    for (const SurrogateTerm& t : s.terms) merged[t.benchmark] += t.weight;
    ++contributors;
  }
  SWAPP_ASSERT(contributors > 0, "no GA restart survived the fitness filter");

  Surrogate out;
  out.fitness = best_fitness;
  for (auto& [name, weight] : merged) {
    out.terms.push_back(
        SurrogateTerm{name, weight / static_cast<double>(contributors)});
  }
  // Re-anchor the averaged weights to the base compute time (Eq. 2's scale).
  const Seconds base_total = out.base_runtime(spec);
  SWAPP_ASSERT(base_total > 0.0, "ensemble surrogate has zero base runtime");
  for (SurrogateTerm& t : out.terms) {
    t.weight *= app_base_compute / base_total;
  }
  // Diagnostics from the best single run.
  for (const Surrogate& s : runs) {
    if (s.fitness == best_fitness) {
      out.metric_distance = s.metric_distance;
      out.runtime_error = s.runtime_error;
      break;
    }
  }
  return out;
}

}  // namespace swapp::core
