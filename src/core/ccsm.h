// Compute Component Strong Scaling Model (paper §3.2).
//
// CCSM fits the mean per-task compute time from the base-machine MPI
// profiles against task count with the strong-scaling law
// T(C) = a·C^(−b) + c and exposes the scaling factor γ between two counts
// (Eq. 7's γ).  The curve-fitting machinery is support/fit.h; this class
// adds the profile plumbing and the ACSM guard: beyond the hyper-scaling
// count Ch the fitted law is flagged as unreliable.
#pragma once

#include <map>

#include "support/fit.h"
#include "support/units.h"

namespace swapp::core {

class CcsmModel {
 public:
  /// `compute_by_cores`: mean per-task compute seconds at each profiled Cj.
  explicit CcsmModel(const std::map<int, Seconds>& compute_by_cores);

  const ScalingFit& fit() const noexcept { return fit_; }

  /// γ scaling the per-task compute time from `from_cores` to `to_cores`.
  double gamma(int from_cores, int to_cores) const;

  /// Predicted per-task compute time at `cores` on the machine the profiles
  /// came from (used for diagnostics and tests).
  Seconds predict(int cores) const;

  /// True when `cores` lies beyond both the profiled range and the ACSM
  /// hyper-scaling point `ch` — the regime where §3.3 says γ "will not be
  /// applicable" without the ACSM-corrected counters.
  bool gamma_reliable(int cores, double ch) const;

 private:
  std::map<int, Seconds> samples_;
  ScalingFit fit_;
  int max_profiled_ = 0;
};

}  // namespace swapp::core
