#include "core/compute_projection.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "support/error.h"

namespace swapp::core {
namespace {

/// Nearest sampled counter profile in log-core-count space.
const machine::PmuCounters& nearest_counters(
    const std::map<int, machine::PmuCounters>& samples, int ck) {
  SWAPP_REQUIRE(!samples.empty(), "no counter samples");
  const machine::PmuCounters* best = nullptr;
  double best_distance = 1e300;
  for (const auto& [cores, counters] : samples) {
    const double d = std::abs(std::log(static_cast<double>(cores)) -
                              std::log(static_cast<double>(ck)));
    if (d < best_distance) {
      best_distance = d;
      best = &counters;
    }
  }
  return *best;
}

/// Shared pipeline; `index` is an optional prebuilt view over the same data
/// as `spec` (the batched path), used to skip the GA's per-call table setup.
ComputeProjection project_compute_impl(const AppBaseData& app,
                                       const SpecData& spec,
                                       const SpecIndex* index,
                                       const machine::Machine& base,
                                       const std::string& target_machine,
                                       int ck,
                                       const ComputeProjectionOptions& options) {
  SWAPP_REQUIRE(!app.counters_st.empty(), "no ST counter profiles collected");
  SWAPP_REQUIRE(!app.counters_smt.empty(),
                "no SMT counter profiles collected");
  SWAPP_REQUIRE(!app.mean_compute.empty(), "no compute-time profiles");

  SWAPP_SPAN("compute.project");
  ComputeProjection out;

  // --- ACSM: counter profile for Ck ----------------------------------------
  machine::PmuCounters counters_st;
  machine::PmuCounters counters_smt;
  {
    SWAPP_SPAN("compute.acsm");
    if (options.use_acsm && app.counters_st.size() >= 2) {
      const AcsmModel acsm_st(app.counters_st, base);
      const AcsmModel acsm_smt(app.counters_smt, base);
      out.hyper_scaling_cores = acsm_st.hyper_scaling_cores();
      out.extrapolated_counters = acsm_st.needs_extrapolation(ck);
      counters_st = acsm_st.counters_at(ck);
      counters_smt = acsm_smt.counters_at(ck);
    } else {
      counters_st = nearest_counters(app.counters_st, ck);
      counters_smt = nearest_counters(app.counters_smt, ck);
      out.hyper_scaling_cores = std::numeric_limits<double>::infinity();
    }
  }

  // --- CCSM: base compute anchor at Ck --------------------------------------
  {
    SWAPP_SPAN("compute.ccsm");
    const CcsmModel ccsm(app.mean_compute);
    const auto exact = app.mean_compute.find(ck);
    out.base_compute =
        exact != app.mean_compute.end() ? exact->second : ccsm.predict(ck);
    SWAPP_REQUIRE(out.base_compute > 0.0, "non-positive base compute anchor");
    out.gamma = ccsm.gamma(app.mean_compute.begin()->first, ck);
  }

  // --- Ranking: steps 2–4 -----------------------------------------------------
  {
    SWAPP_SPAN("compute.ranking");
    out.base_weights = base_group_weights(counters_st, base);
    // The index overload reuses precomputed metric vectors and flat runtime
    // arrays; bit-identical to the SpecData path (same shared core).
    out.adjusted_weights =
        !options.use_rank_adjustment
            ? out.base_weights
            : (index ? adjust_weights_to_target(out.base_weights, *index)
                     : adjust_weights_to_target(out.base_weights, spec,
                                                target_machine));
  }

  // --- GA surrogate + Eq. 2 ---------------------------------------------------
  {
    SWAPP_SPAN("compute.surrogate_search");
    out.surrogate =
        index ? find_surrogate(counters_st, counters_smt, out.adjusted_weights,
                               *index, out.base_compute, options.ga)
              : find_surrogate(counters_st, counters_smt, out.adjusted_weights,
                               spec, out.base_compute, options.ga);
  }
  {
    SWAPP_SPAN("compute.combine");
    // Slot-based projection on the batched path: GA terms carry their suite
    // slot, so Eq. 2 sums straight out of the index's target-runtime array.
    out.target_compute = index
                             ? out.surrogate.project_runtime(*index)
                             : out.surrogate.project_runtime(spec,
                                                             target_machine);
  }
  SWAPP_ASSERT(out.target_compute > 0.0,
               "surrogate projected non-positive compute time");
  return out;
}

}  // namespace

ComputeProjection project_compute(const AppBaseData& app, const SpecData& spec,
                                  const machine::Machine& base,
                                  const std::string& target_machine, int ck,
                                  const ComputeProjectionOptions& options) {
  return project_compute_impl(app, spec, nullptr, base, target_machine, ck,
                              options);
}

ComputeProjection project_compute(const AppBaseData& app,
                                  const SpecIndex& index,
                                  const machine::Machine& base,
                                  const std::string& target_machine, int ck,
                                  const ComputeProjectionOptions& options) {
  return project_compute_impl(app, index.data, &index, base, target_machine,
                              ck, options);
}

}  // namespace swapp::core
