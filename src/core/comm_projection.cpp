#include "core/comm_projection.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::core {

Seconds CommProjection::base_total() const {
  Seconds total = 0.0;
  for (const auto& [cls, projection] : by_class) {
    total += projection.base_elapsed;
  }
  return total;
}

Seconds CommProjection::target_total() const {
  Seconds total = 0.0;
  for (const auto& [cls, projection] : by_class) {
    total += projection.target_total();
  }
  return total;
}

const ClassProjection& CommProjection::of(mpi::RoutineClass c) const {
  static const ClassProjection kEmpty{};
  const auto it = by_class.find(c);
  return it == by_class.end() ? kEmpty : it->second;
}

namespace {

double per_task(double aggregate, int ranks) {
  return ranks > 0 ? aggregate / static_cast<double>(ranks) : 0.0;
}

}  // namespace

CommProjection project_communication(const mpi::MpiProfile& profile, int ck,
                                     const imb::ImbDatabase& base_imb,
                                     const imb::ImbDatabase& target_imb,
                                     double compute_scale,
                                     const CommProjectionOptions& options) {
  SWAPP_REQUIRE(profile.ranks >= 1, "profile has no tasks");
  SWAPP_REQUIRE(compute_scale > 0.0, "compute scale must be positive");

  CommProjection out;

  for (const auto& [routine, rp] : profile.routines) {
    const mpi::RoutineClass cls = mpi::routine_class(routine);
    ClassProjection& acc = out.by_class[cls];

    // Every routine's elapsed time participates in the class's Eq. 4 budget;
    // Isend/Irecv posting time is already inside the multi-Sendrecv
    // measurements, so only Waitall buckets are priced for P2P-NB.
    acc.base_elapsed += per_task(rp.total_elapsed, profile.ranks);
    if (routine == mpi::Routine::kIsend || routine == mpi::Routine::kIrecv) {
      continue;
    }

    for (const auto& [bytes, bucket] : rp.by_size) {
      const double calls =
          per_task(static_cast<double>(bucket.calls), profile.ranks);
      if (calls <= 0.0) continue;

      Seconds base_per_call = 0.0;
      Seconds target_per_call = 0.0;
      if (routine == mpi::Routine::kWaitall) {
        if (options.use_multi_sendrecv) {
          // The profile's peer-distance data tells each machine how much of
          // the exchange stays on a node (different cores-per-node ⇒
          // different intra-node shares on base and target).
          base_per_call = base_imb.multi_sendrecv_time(
              bucket.avg_in_flight, bytes, ck,
              base_imb.intra_node_fraction(bucket.avg_rank_distance));
          target_per_call = target_imb.multi_sendrecv_time(
              bucket.avg_in_flight, bytes, ck,
              target_imb.intra_node_fraction(bucket.avg_rank_distance));
        } else {
          // Ablation: each in-flight message priced as a blocking Sendrecv.
          base_per_call =
              bucket.avg_in_flight *
              base_imb.lookup(mpi::Routine::kSendrecv, bytes, ck);
          target_per_call =
              bucket.avg_in_flight *
              target_imb.lookup(mpi::Routine::kSendrecv, bytes, ck);
        }
      } else {
        base_per_call = base_imb.lookup(routine, bytes, ck);
        target_per_call = target_imb.lookup(routine, bytes, ck);
      }
      acc.base_transfer += calls * base_per_call;
      acc.target_transfer += calls * target_per_call;
    }
  }

  // Eq. 4 residual and Eq. 5 wait scaling, per class.
  for (auto& [cls, acc] : out.by_class) {
    acc.base_wait = std::max(0.0, acc.base_elapsed - acc.base_transfer);
    if (!options.use_wait_model) {
      acc.target_wait = 0.0;
      continue;
    }
    // WaitTime is dominated by compute load imbalance, so its scale follows
    // the projected compute speedup, with a secondary transfer-speedup term.
    // The transfer ratio is clamped around the compute scale: when the base
    // transfer is a sliver of the class budget (e.g. all-intra-node runs) the
    // raw ratio is numerically meaningless and must not leak into the wait.
    double comm_scale = acc.base_transfer > 0.0
                            ? acc.target_transfer / acc.base_transfer
                            : compute_scale;
    comm_scale =
        std::clamp(comm_scale, 0.2 * compute_scale, 5.0 * compute_scale);
    const double wait_scale =
        options.wait_compute_alpha * compute_scale +
        (1.0 - options.wait_compute_alpha) * comm_scale;
    acc.target_wait = acc.base_wait * wait_scale;
  }
  return out;
}

}  // namespace swapp::core
