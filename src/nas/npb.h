// Classic (single-zone) NAS Parallel Benchmark skeletons: CG, MG, FT.
//
// The paper evaluates SWAPP on the Multi-Zone benchmarks, whose
// communication is almost entirely nonblocking neighbour exchange.  These
// three classic NPB skeletons extend the workload library with the
// communication patterns NAS-MZ never exercises:
//
//   * CG — conjugate gradient: sparse matrix-vector products
//     (latency-bound, pointer-chasing compute) with transpose exchanges on a
//     2-D process grid and two small Allreduce dot products per iteration;
//   * MG — multigrid V-cycles: stencil compute across 9 grid levels with
//     face exchanges whose message sizes span four orders of magnitude;
//   * FT — 3-D FFT: compute-dense pencil transforms punctuated by a global
//     Alltoall transpose each iteration (the bandwidth-hostile pattern).
//
// They serve as beyond-paper validation targets for the projection pipeline
// (bench_npb_extension) and as additional example applications.
#pragma once

#include <memory>
#include <string>

#include "mpi/world.h"
#include "nas/zones.h"  // ProblemClass
#include "workload/kernel.h"

namespace swapp::nas {

enum class NpbBenchmark { kCG, kMG, kFT };

std::string to_string(NpbBenchmark b);

/// Solver kernel characteristics for each benchmark.
const workload::Kernel& npb_kernel_for(NpbBenchmark b);

/// A configured classic-NPB instance.
class NpbApp {
 public:
  NpbApp(NpbBenchmark b, ProblemClass c);

  NpbBenchmark benchmark() const noexcept { return benchmark_; }
  ProblemClass problem_class() const noexcept { return class_; }
  /// "CG.C" style identifier.
  std::string name() const;
  /// Ranks must be a power of two (and a square for CG's 2-D grid when > 2).
  bool supports_ranks(int ranks) const;

  void run_rank(mpi::RankCtx& ctx) const;

  std::unique_ptr<mpi::World> run(const machine::Machine& m, int ranks,
                                  machine::SmtMode smt =
                                      machine::SmtMode::kSingleThread) const;

 private:
  void run_cg(mpi::RankCtx& ctx) const;
  void run_mg(mpi::RankCtx& ctx) const;
  void run_ft(mpi::RankCtx& ctx) const;

  NpbBenchmark benchmark_;
  ProblemClass class_;
  double total_points_ = 0.0;  ///< problem elements (rows / grid points)
  int iterations_ = 0;
};

}  // namespace swapp::nas
