#include "nas/nas_app.h"

#include <memory>

#include "support/error.h"

namespace swapp::nas {

const workload::Kernel& kernel_for(Benchmark b) {
  static const workload::Kernel bt = [] {
    workload::Kernel k;
    k.name = "bt-solver";
    // Block-tridiagonal solves: FP dense, good ILP, large per-point state.
    k.fp_fraction = 0.42;
    k.load_fraction = 0.30;
    k.store_fraction = 0.12;
    k.branch_fraction = 0.04;
    k.ilp = 3.6;
    k.vectorizable = 0.35;
    k.bytes_per_point = 160;
    k.locality_theta = 0.55;
    k.streaming_fraction = 0.80;
    k.mlp = 6;
    k.tlb_hostility = 0.015;
    k.remote_access_fraction = 0.15;
    k.instructions_per_point = 11000;
    return k;
  }();
  static const workload::Kernel sp = [] {
    workload::Kernel k;
    k.name = "sp-solver";
    // Scalar pentadiagonal: lighter per point, more streaming.
    k.fp_fraction = 0.40;
    k.load_fraction = 0.31;
    k.store_fraction = 0.13;
    k.branch_fraction = 0.04;
    k.ilp = 3.4;
    k.vectorizable = 0.45;
    k.bytes_per_point = 140;
    k.locality_theta = 0.60;
    k.streaming_fraction = 0.85;
    k.mlp = 7;
    k.tlb_hostility = 0.015;
    k.remote_access_fraction = 0.12;
    k.instructions_per_point = 7000;
    return k;
  }();
  static const workload::Kernel lu = [] {
    workload::Kernel k;
    k.name = "lu-solver";
    // SSOR sweeps: wavefront dependencies limit ILP; modest vectorisation.
    k.fp_fraction = 0.41;
    k.load_fraction = 0.30;
    k.store_fraction = 0.11;
    k.branch_fraction = 0.06;
    k.ilp = 3.0;
    k.vectorizable = 0.30;
    k.bytes_per_point = 130;
    k.locality_theta = 0.52;
    k.streaming_fraction = 0.65;
    k.pointer_chasing = 0.02;
    k.mlp = 5;
    k.tlb_hostility = 0.05;  // strided plane sweeps touch many pages
    k.remote_access_fraction = 0.12;
    k.instructions_per_point = 9000;
    return k;
  }();
  switch (b) {
    case Benchmark::kBT: return bt;
    case Benchmark::kSP: return sp;
    case Benchmark::kLU: return lu;
  }
  throw InternalError("unknown Benchmark");
}

NasApp::NasApp(Benchmark b, ProblemClass c)
    : benchmark_(b), class_(c), spec_(grid_spec(b, c)) {}

std::string NasApp::name() const {
  return to_string(benchmark_) + "." + to_string(class_);
}

int NasApp::max_ranks() const { return spec_.zone_count(); }

const std::vector<NasApp::RankPlan>& NasApp::plans_for(int ranks) const {
  auto it = plan_cache_.find(ranks);
  if (it != plan_cache_.end()) return it->second;

  const Decomposition decomp(benchmark_, class_, ranks);
  std::vector<RankPlan> plans(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    plans[static_cast<std::size_t>(r)].points = decomp.rank_points(r);
  }
  for (const Decomposition::BoundaryMessage& m : decomp.messages()) {
    plans[static_cast<std::size_t>(m.from_rank)].sends.push_back(
        {.peer = m.to_rank, .bytes = m.bytes, .tag = m.tag});
    plans[static_cast<std::size_t>(m.to_rank)].recvs.push_back(
        {.peer = m.from_rank, .bytes = m.bytes, .tag = m.tag});
  }
  return plan_cache_.emplace(ranks, std::move(plans)).first->second;
}

void NasApp::run_rank(mpi::RankCtx& ctx) const {
  const int ranks = ctx.size();
  SWAPP_REQUIRE(ranks <= max_ranks(),
                name() + " supports at most " + std::to_string(max_ranks()) +
                    " ranks");
  const RankPlan& plan = plans_for(ranks)[static_cast<std::size_t>(ctx.rank())];
  const workload::Kernel& solver = kernel();

  // Setup: root distributes zone metadata (sizes, ownership).
  const Bytes metadata =
      static_cast<Bytes>(spec_.zone_count()) * 16u;
  ctx.bcast(0, metadata);

  constexpr int kResidualInterval = 25;
  constexpr Bytes kResidualBytes = 40;  // five norms, double precision

  for (int step = 0; step < spec_.timesteps; ++step) {
    // Boundary exchange: all ghost faces in flight, one Waitall.
    if (ranks > 1) {
      std::vector<mpi::Request> requests;
      requests.reserve(plan.recvs.size() + plan.sends.size());
      for (const RankPlan::Wire& w : plan.recvs) {
        requests.push_back(ctx.irecv(w.peer, w.bytes, w.tag));
      }
      for (const RankPlan::Wire& w : plan.sends) {
        requests.push_back(ctx.isend(w.peer, w.bytes, w.tag));
      }
      if (!requests.empty()) ctx.waitall(requests);
    }

    // Solver sweep over all owned zones.
    ctx.compute(solver, plan.points);

    // Residual norm for convergence monitoring.
    if (ranks > 1 && (step + 1) % kResidualInterval == 0) {
      ctx.reduce(0, kResidualBytes);
    }
  }

  // Verification reduction.
  if (ranks > 1) ctx.reduce(0, kResidualBytes);
}

std::unique_ptr<mpi::World> NasApp::run(const machine::Machine& m, int ranks,
                                        machine::SmtMode smt,
                                        int threads_per_rank) const {
  // Build plans before spawning so the cache is never mutated mid-run.
  plans_for(ranks);
  auto world = std::make_unique<mpi::World>(
      m, ranks,
      mpi::World::Options{.smt = smt,
                          .app_name = name(),
                          .threads_per_rank = threads_per_rank});
  world->run([this](mpi::RankCtx& ctx) { run_rank(ctx); });
  return world;
}

}  // namespace swapp::nas
