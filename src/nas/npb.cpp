#include "nas/npb.h"

#include <cmath>

#include "support/error.h"

namespace swapp::nas {

std::string to_string(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kCG: return "CG";
    case NpbBenchmark::kMG: return "MG";
    case NpbBenchmark::kFT: return "FT";
  }
  throw InternalError("unknown NpbBenchmark");
}

const workload::Kernel& npb_kernel_for(NpbBenchmark b) {
  static const workload::Kernel cg = [] {
    workload::Kernel k;
    k.name = "cg-spmv";
    // Sparse matrix-vector product: indirect access dominates.
    k.fp_fraction = 0.30;
    k.load_fraction = 0.42;
    k.store_fraction = 0.08;
    k.branch_fraction = 0.06;
    k.ilp = 2.2;
    k.vectorizable = 0.10;
    k.bytes_per_point = 220;  // row + index + value streams
    k.locality_theta = 0.65;
    k.streaming_fraction = 0.35;
    k.pointer_chasing = 0.20;
    k.mlp = 3;
    k.tlb_hostility = 0.06;
    k.instructions_per_point = 900;
    k.sweep_passes = 1.0;
    return k;
  }();
  static const workload::Kernel mg = [] {
    workload::Kernel k;
    k.name = "mg-stencil";
    // 27-point stencil smoother: streaming with strong reuse.
    k.fp_fraction = 0.42;
    k.load_fraction = 0.32;
    k.store_fraction = 0.12;
    k.branch_fraction = 0.03;
    k.ilp = 3.5;
    k.vectorizable = 0.55;
    k.bytes_per_point = 80;
    k.locality_theta = 0.60;
    k.streaming_fraction = 0.85;
    k.mlp = 8;
    k.tlb_hostility = 0.015;
    k.instructions_per_point = 300;
    k.sweep_passes = 2.0;
    return k;
  }();
  static const workload::Kernel ft = [] {
    workload::Kernel k;
    k.name = "ft-fft";
    // 1-D pencil FFTs: FP dense, cache-friendly butterflies.
    k.fp_fraction = 0.48;
    k.load_fraction = 0.30;
    k.store_fraction = 0.14;
    k.branch_fraction = 0.03;
    k.ilp = 3.8;
    k.vectorizable = 0.65;
    k.bytes_per_point = 16;  // complex double
    k.locality_theta = 0.35;
    k.streaming_fraction = 0.60;
    k.mlp = 6;
    k.tlb_hostility = 0.02;
    k.instructions_per_point = 450;  // ~5·log2(n) flops per element per pass
    k.sweep_passes = 3.0;
    return k;
  }();
  switch (b) {
    case NpbBenchmark::kCG: return cg;
    case NpbBenchmark::kMG: return mg;
    case NpbBenchmark::kFT: return ft;
  }
  throw InternalError("unknown NpbBenchmark");
}

NpbApp::NpbApp(NpbBenchmark b, ProblemClass c) : benchmark_(b), class_(c) {
  // Reference sizes per the NPB specification; iteration counts are halved
  // (like the MZ skeletons) to keep simulation turnaround short.
  const bool d = (c == ProblemClass::kD);
  switch (b) {
    case NpbBenchmark::kCG:
      total_points_ = d ? 1.5e6 : 1.5e5;  // matrix rows
      iterations_ = 38;                   // 75 CG iterations halved
      break;
    case NpbBenchmark::kMG:
      total_points_ = d ? 1024.0 * 1024 * 1024 : 512.0 * 512 * 512;
      iterations_ = d ? 25 : 10;  // V-cycles
      break;
    case NpbBenchmark::kFT:
      total_points_ = d ? 2048.0 * 1024 * 1024 : 512.0 * 512 * 512;
      iterations_ = d ? 13 : 10;
      break;
  }
}

std::string NpbApp::name() const {
  return to_string(benchmark_) + "." + to_string(class_);
}

bool NpbApp::supports_ranks(int ranks) const {
  if (ranks < 2) return false;
  return (ranks & (ranks - 1)) == 0;  // power of two
}

void NpbApp::run_rank(mpi::RankCtx& ctx) const {
  SWAPP_REQUIRE(supports_ranks(ctx.size()),
                name() + " needs a power-of-two rank count >= 2");
  ctx.bcast(0, 1024);  // problem setup
  switch (benchmark_) {
    case NpbBenchmark::kCG: run_cg(ctx); break;
    case NpbBenchmark::kMG: run_mg(ctx); break;
    case NpbBenchmark::kFT: run_ft(ctx); break;
  }
  ctx.reduce(0, 40);  // verification norm
}

void NpbApp::run_cg(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  // 2-D process grid: rows × cols, cols = rows or 2·rows (as in NPB CG).
  int rows = 1;
  while (rows * rows * 4 <= n) rows *= 2;
  const int cols = n / rows;
  const int my_row = ctx.rank() / cols;
  const int my_col = ctx.rank() % cols;
  const workload::Kernel& spmv = npb_kernel_for(NpbBenchmark::kCG);
  const double my_rows = total_points_ / n;
  // Vector segment exchanged along the transpose direction each iteration.
  const Bytes segment =
      static_cast<Bytes>(total_points_ / std::max(rows, cols) * 8.0);

  for (int it = 0; it < iterations_; ++it) {
    // SpMV over the local block.
    ctx.compute(spmv, my_rows);
    // Transpose exchange with the mirrored rank in the process grid
    // (fold exchange when the grid is rectangular, as NPB CG does).
    const int peer = rows == cols ? my_col * cols + my_row
                                  : (ctx.rank() + n / 2) % n;
    if (peer != ctx.rank()) {
      std::vector<mpi::Request> reqs;
      reqs.push_back(ctx.irecv(peer, segment, it));
      reqs.push_back(ctx.isend(peer, segment, it));
      ctx.waitall(reqs);
    }
    // Two dot products per iteration (rho, alpha).
    ctx.allreduce(16);
    ctx.allreduce(16);
  }
}

void NpbApp::run_mg(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  const workload::Kernel& stencil = npb_kernel_for(NpbBenchmark::kMG);
  // Levels from the full grid down to a coarse 8³-ish grid.
  const int levels = 7;
  const int right = (ctx.rank() + 1) % n;
  const int left = (ctx.rank() + n - 1) % n;

  for (int cycle = 0; cycle < iterations_; ++cycle) {
    // Down-sweep then up-sweep: coarser levels shrink by 8× per step.
    for (int pass = 0; pass < 2; ++pass) {
      for (int level = 0; level < levels; ++level) {
        const int depth = pass == 0 ? level : levels - 1 - level;
        const double level_points =
            total_points_ / std::pow(8.0, depth) / n;
        if (level_points < 1.0) continue;
        // Face exchange: message size follows the level's face area.
        const Bytes face = static_cast<Bytes>(
            std::max(64.0, std::pow(level_points, 2.0 / 3.0) * 8.0));
        std::vector<mpi::Request> reqs;
        reqs.push_back(ctx.irecv(left, face, depth));
        reqs.push_back(ctx.irecv(right, face, levels + depth));
        reqs.push_back(ctx.isend(right, face, depth));
        reqs.push_back(ctx.isend(left, face, levels + depth));
        ctx.waitall(reqs);
        ctx.compute(stencil, level_points);
      }
    }
    ctx.allreduce(8);  // residual norm
  }
}

void NpbApp::run_ft(mpi::RankCtx& ctx) const {
  const int n = ctx.size();
  const workload::Kernel& fft = npb_kernel_for(NpbBenchmark::kFT);
  const double my_points = total_points_ / n;
  // Global transpose: every pair exchanges its slab slice.
  const Bytes per_pair =
      static_cast<Bytes>(std::max(64.0, my_points * 16.0 / n));

  for (int it = 0; it < iterations_; ++it) {
    ctx.compute(fft, my_points);   // local pencil FFTs
    ctx.alltoall(per_pair);        // global transpose
    ctx.compute(fft, my_points);   // FFT along the transposed dimension
    if ((it + 1) % 5 == 0) ctx.allreduce(16);  // checksum
  }
}

std::unique_ptr<mpi::World> NpbApp::run(const machine::Machine& m, int ranks,
                                        machine::SmtMode smt) const {
  auto world = std::make_unique<mpi::World>(
      m, ranks, mpi::World::Options{.smt = smt, .app_name = name()});
  world->run([this](mpi::RankCtx& ctx) { run_rank(ctx); });
  return world;
}

}  // namespace swapp::nas
