// NAS Multi-Zone problem geometry and zone-to-rank load balancing.
//
// The Multi-Zone benchmarks partition an aggregate 3-D grid into a 2-D array
// of zones (NAS technical report NAS-03-010):
//   * BT-MZ — zone widths grow geometrically (largest/smallest zone area
//     ≈ 20×), deliberately stressing load balance; classes C/D use 16×16 /
//     32×32 zones;
//   * SP-MZ — uniform zones, same zone counts as BT-MZ;
//   * LU-MZ — fixed 4×4 = 16 uniform zones (so at most 16 MPI tasks, which
//     is why the paper's Table 1 and Fig. 6 report LU at a single task
//     count).
// Zones are assigned to ranks by a greedy longest-processing-time bin pack,
// mirroring the benchmark's own load-balancing step.  The residual imbalance
// of BT-MZ at high rank counts is the source of the WaitTime the paper's
// communication model must capture.
#pragma once

#include <string>
#include <vector>

#include "support/units.h"

namespace swapp::nas {

enum class Benchmark { kBT, kSP, kLU };
enum class ProblemClass { kC, kD };

std::string to_string(Benchmark b);
std::string to_string(ProblemClass c);

/// Aggregate grid and zone-array shape for one benchmark/class.
struct GridSpec {
  int gx = 0;       ///< aggregate grid points, x
  int gy = 0;       ///< aggregate grid points, y
  int gz = 0;       ///< aggregate grid points, z
  int x_zones = 0;  ///< zones along x
  int y_zones = 0;  ///< zones along y
  int timesteps = 0;

  int zone_count() const { return x_zones * y_zones; }
  double total_points() const {
    return static_cast<double>(gx) * gy * gz;
  }
};

GridSpec grid_spec(Benchmark b, ProblemClass c);

/// One zone of the aggregate grid.
struct Zone {
  int id = 0;
  int ix = 0;  ///< zone column
  int iy = 0;  ///< zone row
  double nx = 0.0;  ///< grid points along x in this zone
  double ny = 0.0;  ///< grid points along y
  int nz = 0;

  double points() const { return nx * ny * static_cast<double>(nz); }
};

/// A complete decomposition: zones, their owners, and the cross-rank
/// boundary-exchange message list.
class Decomposition {
 public:
  /// Builds the zone array for (b, c) and assigns zones to `ranks` ranks.
  /// Requires 1 <= ranks <= zone count.
  Decomposition(Benchmark b, ProblemClass c, int ranks);

  const GridSpec& spec() const noexcept { return spec_; }
  int ranks() const noexcept { return ranks_; }
  const std::vector<Zone>& zones() const noexcept { return zones_; }
  int owner(int zone_id) const { return owners_.at(static_cast<std::size_t>(zone_id)); }

  /// Total grid points owned by a rank.
  double rank_points(int rank) const {
    return rank_points_.at(static_cast<std::size_t>(rank));
  }
  /// max(rank_points) / mean(rank_points) — the structural load imbalance.
  double imbalance() const;

  /// One boundary-exchange message (per timestep, per direction).
  struct BoundaryMessage {
    int from_zone = 0;
    int to_zone = 0;
    int from_rank = 0;
    int to_rank = 0;
    Bytes bytes = 0;
    int tag = 0;
  };
  /// Cross-rank messages only (intra-rank copies are local).
  const std::vector<BoundaryMessage>& messages() const noexcept {
    return messages_;
  }

 private:
  GridSpec spec_;
  int ranks_ = 0;
  std::vector<Zone> zones_;
  std::vector<int> owners_;
  std::vector<double> rank_points_;
  std::vector<BoundaryMessage> messages_;
};

}  // namespace swapp::nas
