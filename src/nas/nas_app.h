// Runnable NAS Multi-Zone application skeletons over the simulated MPI.
//
// Each skeleton reproduces the structure the paper's projection depends on:
//   * setup broadcast of the zone metadata (MPI_Bcast);
//   * per timestep: a nonblocking boundary exchange — Isend/Irecv per
//     cross-rank zone face followed by one Waitall — then the per-zone
//     solver sweep (compute);
//   * a periodic small residual reduction (MPI_Reduce).
// There are no blocking point-to-point calls, matching the paper's note that
// the NAS-MZ codes have no P2P-B routines and that Isend/Irecv/Waitall map to
// multi-Sendrecv with one sequence.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mpi/world.h"
#include "nas/zones.h"
#include "workload/kernel.h"

namespace swapp::nas {

/// Solver kernel characteristics for a benchmark (BT block-tridiagonal,
/// SP scalar-pentadiagonal, LU SSOR).
const workload::Kernel& kernel_for(Benchmark b);

/// A configured NAS-MZ instance.
class NasApp {
 public:
  NasApp(Benchmark b, ProblemClass c);

  Benchmark benchmark() const noexcept { return benchmark_; }
  ProblemClass problem_class() const noexcept { return class_; }
  /// "BT-MZ.C" style identifier.
  std::string name() const;
  /// Maximum usable MPI tasks (the zone count; 16 for LU-MZ).
  int max_ranks() const;
  const workload::Kernel& kernel() const { return kernel_for(benchmark_); }

  /// The full benchmark body for one rank.  Pass to mpi::World::run.
  /// `ranks` must equal the world size and be <= max_ranks().
  void run_rank(mpi::RankCtx& ctx) const;

  /// Convenience: runs the app on `m` with `ranks` tasks and returns the
  /// completed world (profile, counters, wall time).  `threads_per_rank > 1`
  /// runs the hybrid MPI/OpenMP mode (each rank's solver sweep is
  /// thread-parallel — the configuration the paper's §6 targets).
  std::unique_ptr<mpi::World> run(const machine::Machine& m, int ranks,
                                  machine::SmtMode smt =
                                      machine::SmtMode::kSingleThread,
                                  int threads_per_rank = 1) const;

 private:
  struct RankPlan {
    double points = 0.0;  ///< owned grid points
    struct Wire {
      int peer;
      Bytes bytes;
      int tag;
    };
    std::vector<Wire> sends;
    std::vector<Wire> recvs;
  };
  /// Decomposition and per-rank message plans are cached per rank count.
  const std::vector<RankPlan>& plans_for(int ranks) const;

  Benchmark benchmark_;
  ProblemClass class_;
  GridSpec spec_;
  mutable std::map<int, std::vector<RankPlan>> plan_cache_;
};

}  // namespace swapp::nas
