#include "nas/zones.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace swapp::nas {

std::string to_string(Benchmark b) {
  switch (b) {
    case Benchmark::kBT: return "BT-MZ";
    case Benchmark::kSP: return "SP-MZ";
    case Benchmark::kLU: return "LU-MZ";
  }
  throw InternalError("unknown Benchmark");
}

std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::kC: return "C";
    case ProblemClass::kD: return "D";
  }
  throw InternalError("unknown ProblemClass");
}

GridSpec grid_spec(Benchmark b, ProblemClass c) {
  // Aggregate sizes follow NAS-03-010; timestep counts are halved relative
  // to the reference inputs to keep simulation turnaround short — this
  // rescales every runtime identically, so projections and errors are
  // unaffected.
  GridSpec g;
  if (c == ProblemClass::kC) {
    g.gx = 480;
    g.gy = 320;
    g.gz = 28;
  } else {
    g.gx = 1632;
    g.gy = 1216;
    g.gz = 34;
  }
  switch (b) {
    case Benchmark::kBT:
      g.x_zones = (c == ProblemClass::kC) ? 16 : 32;
      g.y_zones = g.x_zones;
      g.timesteps = (c == ProblemClass::kC) ? 100 : 125;
      break;
    case Benchmark::kSP:
      g.x_zones = (c == ProblemClass::kC) ? 16 : 32;
      g.y_zones = g.x_zones;
      g.timesteps = (c == ProblemClass::kC) ? 150 : 150;
      break;
    case Benchmark::kLU:
      g.x_zones = 4;
      g.y_zones = 4;
      g.timesteps = (c == ProblemClass::kC) ? 125 : 150;
      break;
  }
  return g;
}

namespace {

/// Per-dimension zone widths.  BT-MZ widths follow a geometric progression
/// with a √20 span per dimension (so zone areas span ≈ 20×); SP-MZ and LU-MZ
/// are uniform.
std::vector<double> zone_widths(int zones, double total, bool geometric) {
  std::vector<double> w(static_cast<std::size_t>(zones));
  if (!geometric || zones == 1) {
    std::fill(w.begin(), w.end(), total / zones);
    return w;
  }
  const double span = std::sqrt(20.0);
  const double ratio = std::pow(span, 1.0 / (zones - 1));
  double sum = 0.0;
  for (int i = 0; i < zones; ++i) {
    w[static_cast<std::size_t>(i)] = std::pow(ratio, i);
    sum += w[static_cast<std::size_t>(i)];
  }
  for (double& x : w) x *= total / sum;
  return w;
}

}  // namespace

Decomposition::Decomposition(Benchmark b, ProblemClass c, int ranks)
    : spec_(grid_spec(b, c)), ranks_(ranks) {
  SWAPP_REQUIRE(ranks >= 1, "need at least one rank");
  SWAPP_REQUIRE(ranks <= spec_.zone_count(),
                to_string(b) + " supports at most " +
                    std::to_string(spec_.zone_count()) + " ranks");

  const bool geometric = (b == Benchmark::kBT);
  const std::vector<double> wx =
      zone_widths(spec_.x_zones, spec_.gx, geometric);
  const std::vector<double> wy =
      zone_widths(spec_.y_zones, spec_.gy, geometric);

  zones_.reserve(static_cast<std::size_t>(spec_.zone_count()));
  for (int iy = 0; iy < spec_.y_zones; ++iy) {
    for (int ix = 0; ix < spec_.x_zones; ++ix) {
      Zone z;
      z.id = iy * spec_.x_zones + ix;
      z.ix = ix;
      z.iy = iy;
      z.nx = wx[static_cast<std::size_t>(ix)];
      z.ny = wy[static_cast<std::size_t>(iy)];
      z.nz = spec_.gz;
      zones_.push_back(z);
    }
  }

  // Greedy longest-processing-time assignment (the benchmark's own
  // load-balancing strategy): biggest zones first, each to the currently
  // least-loaded rank.
  owners_.assign(zones_.size(), 0);
  rank_points_.assign(static_cast<std::size_t>(ranks), 0.0);
  std::vector<int> order(zones_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int bz) {
    const double pa = zones_[static_cast<std::size_t>(a)].points();
    const double pb = zones_[static_cast<std::size_t>(bz)].points();
    if (pa != pb) return pa > pb;
    return a < bz;  // deterministic tie-break
  });
  for (const int zid : order) {
    const auto lightest =
        std::min_element(rank_points_.begin(), rank_points_.end());
    const int rank = static_cast<int>(lightest - rank_points_.begin());
    owners_[static_cast<std::size_t>(zid)] = rank;
    *lightest += zones_[static_cast<std::size_t>(zid)].points();
  }

  // Cross-rank boundary messages: each zone sends one ghost-layer face (five
  // flow variables, double precision) to each of its up to four neighbours.
  constexpr double kVars = 5.0;
  constexpr double kBytesPerValue = 8.0;
  const auto zone_at = [&](int ix, int iy) -> const Zone& {
    return zones_[static_cast<std::size_t>(iy * spec_.x_zones + ix)];
  };
  for (const Zone& z : zones_) {
    const auto emit = [&](const Zone& to, double face_points) {
      const int from_rank = owners_[static_cast<std::size_t>(z.id)];
      const int to_rank = owners_[static_cast<std::size_t>(to.id)];
      if (from_rank == to_rank) return;  // local copy, no MPI
      BoundaryMessage msg;
      msg.from_zone = z.id;
      msg.to_zone = to.id;
      msg.from_rank = from_rank;
      msg.to_rank = to_rank;
      msg.bytes = static_cast<Bytes>(face_points * kVars * kBytesPerValue);
      msg.tag = z.id * spec_.zone_count() + to.id;
      messages_.push_back(msg);
    };
    if (z.ix + 1 < spec_.x_zones) {
      emit(zone_at(z.ix + 1, z.iy), z.ny * z.nz);
    }
    if (z.ix > 0) {
      emit(zone_at(z.ix - 1, z.iy), z.ny * z.nz);
    }
    if (z.iy + 1 < spec_.y_zones) {
      emit(zone_at(z.ix, z.iy + 1), z.nx * z.nz);
    }
    if (z.iy > 0) {
      emit(zone_at(z.ix, z.iy - 1), z.nx * z.nz);
    }
  }
}

double Decomposition::imbalance() const {
  const double total =
      std::accumulate(rank_points_.begin(), rank_points_.end(), 0.0);
  const double mean = total / static_cast<double>(ranks_);
  const double max = *std::max_element(rank_points_.begin(),
                                       rank_points_.end());
  return mean > 0.0 ? max / mean : 1.0;
}

}  // namespace swapp::nas
