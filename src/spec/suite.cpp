#include "spec/suite.h"

#include "support/error.h"
#include "workload/compute_model.h"

namespace swapp::spec {
namespace {

workload::Kernel base_kernel(std::string name) {
  workload::Kernel k;
  k.name = std::move(name);
  return k;
}

std::vector<Benchmark> build_suite() {
  std::vector<Benchmark> out;

  {  // bwaves — blast-wave CFD: streaming, bandwidth-hungry, large arrays.
    workload::Kernel k = base_kernel("bwaves");
    k.fp_fraction = 0.44; k.load_fraction = 0.33; k.store_fraction = 0.14;
    k.branch_fraction = 0.03; k.ilp = 3.8; k.vectorizable = 0.7;
    k.bytes_per_point = 240; k.locality_theta = 0.85;
    k.streaming_fraction = 0.92; k.mlp = 8; k.tlb_hostility = 0.015;
    k.instructions_per_point = 900;
    out.push_back({k, 3.0e6, 8});
  }
  {  // gamess — quantum chemistry: cache-resident, FP/ILP dense.
    workload::Kernel k = base_kernel("gamess");
    k.fp_fraction = 0.48; k.load_fraction = 0.26; k.store_fraction = 0.08;
    k.branch_fraction = 0.06; k.ilp = 4.5; k.vectorizable = 0.2;
    k.bytes_per_point = 48; k.locality_theta = 0.18;
    k.streaming_fraction = 0.4; k.mlp = 4; k.tlb_hostility = 0.004;
    k.instructions_per_point = 2400;
    out.push_back({k, 2.5e5, 30});
  }
  {  // milc — lattice QCD: irregular strided access, moderate bandwidth.
    workload::Kernel k = base_kernel("milc");
    k.fp_fraction = 0.40; k.load_fraction = 0.34; k.store_fraction = 0.12;
    k.branch_fraction = 0.04; k.ilp = 3.0; k.vectorizable = 0.35;
    k.bytes_per_point = 180; k.locality_theta = 0.70;
    k.streaming_fraction = 0.55; k.mlp = 6; k.tlb_hostility = 0.06;
    k.remote_access_fraction = 0.25;
    k.instructions_per_point = 1100;
    out.push_back({k, 2.0e6, 10});
  }
  {  // zeusmp — astrophysics stencil: streaming with moderate reuse.
    workload::Kernel k = base_kernel("zeusmp");
    k.fp_fraction = 0.41; k.load_fraction = 0.32; k.store_fraction = 0.13;
    k.branch_fraction = 0.04; k.ilp = 3.4; k.vectorizable = 0.5;
    k.bytes_per_point = 150; k.locality_theta = 0.55;
    k.streaming_fraction = 0.80; k.mlp = 8; k.tlb_hostility = 0.02;
    k.instructions_per_point = 3000;
    out.push_back({k, 6.0e5, 16});
  }
  {  // gromacs — molecular dynamics: compute-dense, good locality.
    workload::Kernel k = base_kernel("gromacs");
    k.fp_fraction = 0.46; k.load_fraction = 0.27; k.store_fraction = 0.09;
    k.branch_fraction = 0.07; k.ilp = 3.9; k.vectorizable = 0.6;
    k.bytes_per_point = 64; k.locality_theta = 0.28;
    k.streaming_fraction = 0.5; k.mlp = 5; k.tlb_hostility = 0.008;
    k.branch_predictability = 0.93;
    k.instructions_per_point = 1900;
    out.push_back({k, 5.0e5, 25});
  }
  {  // cactusADM — numerical relativity: big stencil, vectorisable.
    workload::Kernel k = base_kernel("cactusADM");
    k.fp_fraction = 0.50; k.load_fraction = 0.30; k.store_fraction = 0.11;
    k.branch_fraction = 0.02; k.ilp = 4.2; k.vectorizable = 0.8;
    k.bytes_per_point = 330; k.locality_theta = 0.75;
    k.streaming_fraction = 0.88; k.mlp = 8; k.tlb_hostility = 0.012;
    k.instructions_per_point = 1500;
    out.push_back({k, 1.5e6, 9});
  }
  {  // leslie3d — combustion CFD: streaming stencil, memory heavy.
    workload::Kernel k = base_kernel("leslie3d");
    k.fp_fraction = 0.43; k.load_fraction = 0.33; k.store_fraction = 0.13;
    k.branch_fraction = 0.03; k.ilp = 3.5; k.vectorizable = 0.55;
    k.bytes_per_point = 210; k.locality_theta = 0.65;
    k.streaming_fraction = 0.85; k.mlp = 8; k.tlb_hostility = 0.02;
    k.instructions_per_point = 1200;
    out.push_back({k, 2.2e6, 10});
  }
  {  // namd — molecular dynamics: compute-bound with branchy inner loops.
    workload::Kernel k = base_kernel("namd");
    k.fp_fraction = 0.45; k.load_fraction = 0.28; k.store_fraction = 0.08;
    k.branch_fraction = 0.10; k.ilp = 3.6; k.vectorizable = 0.3;
    k.bytes_per_point = 72; k.locality_theta = 0.30;
    k.streaming_fraction = 0.45; k.mlp = 4; k.tlb_hostility = 0.01;
    k.branch_predictability = 0.88;
    k.instructions_per_point = 2100;
    out.push_back({k, 4.0e5, 24});
  }
  {  // dealII — finite elements: pointer-rich, branchy, irregular.
    workload::Kernel k = base_kernel("dealII");
    k.fp_fraction = 0.30; k.load_fraction = 0.36; k.store_fraction = 0.12;
    k.branch_fraction = 0.12; k.ilp = 2.4; k.vectorizable = 0.1;
    k.bytes_per_point = 130; k.locality_theta = 0.45;
    k.streaming_fraction = 0.30; k.pointer_chasing = 0.15; k.mlp = 3;
    k.tlb_hostility = 0.05; k.branch_predictability = 0.85;
    k.instructions_per_point = 1400;
    out.push_back({k, 1.0e6, 10});
  }
  {  // soplex — LP solver: sparse, latency-bound pointer chasing.
    workload::Kernel k = base_kernel("soplex");
    k.fp_fraction = 0.22; k.load_fraction = 0.40; k.store_fraction = 0.10;
    k.branch_fraction = 0.14; k.ilp = 2.0; k.vectorizable = 0.05;
    k.bytes_per_point = 110; k.locality_theta = 0.60;
    k.streaming_fraction = 0.20; k.pointer_chasing = 0.30; k.mlp = 2;
    k.tlb_hostility = 0.10; k.branch_predictability = 0.80;
    k.instructions_per_point = 900;
    out.push_back({k, 1.4e6, 10});
  }
  {  // povray — ray tracing: tiny footprint, branch-dominated.
    workload::Kernel k = base_kernel("povray");
    k.fp_fraction = 0.34; k.load_fraction = 0.28; k.store_fraction = 0.07;
    k.branch_fraction = 0.18; k.ilp = 2.6; k.vectorizable = 0.05;
    k.bytes_per_point = 24; k.locality_theta = 0.15;
    k.streaming_fraction = 0.25; k.mlp = 3; k.tlb_hostility = 0.005;
    k.branch_predictability = 0.78;
    k.instructions_per_point = 3000;
    out.push_back({k, 1.2e5, 40});
  }
  {  // calculix — structural mechanics: mixed solver/stencil behaviour.
    workload::Kernel k = base_kernel("calculix");
    k.fp_fraction = 0.38; k.load_fraction = 0.31; k.store_fraction = 0.11;
    k.branch_fraction = 0.08; k.ilp = 3.0; k.vectorizable = 0.3;
    k.bytes_per_point = 140; k.locality_theta = 0.50;
    k.streaming_fraction = 0.65; k.mlp = 5; k.tlb_hostility = 0.02;
    k.instructions_per_point = 5000;
    out.push_back({k, 1.2e5, 25});
  }
  {  // GemsFDTD — electromagnetics: streaming with TLB pressure.
    workload::Kernel k = base_kernel("GemsFDTD");
    k.fp_fraction = 0.40; k.load_fraction = 0.34; k.store_fraction = 0.14;
    k.branch_fraction = 0.03; k.ilp = 3.3; k.vectorizable = 0.5;
    k.bytes_per_point = 280; k.locality_theta = 0.80;
    k.streaming_fraction = 0.82; k.mlp = 8; k.tlb_hostility = 0.08;
    k.instructions_per_point = 1000;
    out.push_back({k, 2.4e6, 8});
  }
  {  // tonto — quantum crystallography: cache-friendly FP.
    workload::Kernel k = base_kernel("tonto");
    k.fp_fraction = 0.44; k.load_fraction = 0.27; k.store_fraction = 0.09;
    k.branch_fraction = 0.07; k.ilp = 3.7; k.vectorizable = 0.25;
    k.bytes_per_point = 56; k.locality_theta = 0.22;
    k.streaming_fraction = 0.45; k.mlp = 4; k.tlb_hostility = 0.006;
    k.instructions_per_point = 2000;
    out.push_back({k, 3.5e5, 28});
  }
  {  // lbm — lattice Boltzmann: the bandwidth extreme of the suite.
    workload::Kernel k = base_kernel("lbm");
    k.fp_fraction = 0.36; k.load_fraction = 0.35; k.store_fraction = 0.17;
    k.branch_fraction = 0.01; k.ilp = 4.0; k.vectorizable = 0.75;
    k.bytes_per_point = 400; k.locality_theta = 0.95;
    k.streaming_fraction = 0.97; k.mlp = 10; k.tlb_hostility = 0.01;
    k.instructions_per_point = 700;
    out.push_back({k, 4.0e6, 8});
  }
  {  // wrf — weather: broad mix of stencils and physics kernels.
    workload::Kernel k = base_kernel("wrf");
    k.fp_fraction = 0.39; k.load_fraction = 0.31; k.store_fraction = 0.11;
    k.branch_fraction = 0.08; k.ilp = 3.2; k.vectorizable = 0.4;
    k.bytes_per_point = 160; k.locality_theta = 0.55;
    k.streaming_fraction = 0.70; k.mlp = 6; k.tlb_hostility = 0.02;
    k.instructions_per_point = 4500;
    out.push_back({k, 2.0e5, 25});
  }
  {  // sphinx3 — speech recognition: integer/branch heavy, modest FP.
    workload::Kernel k = base_kernel("sphinx3");
    k.fp_fraction = 0.24; k.load_fraction = 0.36; k.store_fraction = 0.08;
    k.branch_fraction = 0.16; k.ilp = 2.2; k.vectorizable = 0.1;
    k.bytes_per_point = 90; k.locality_theta = 0.38;
    k.streaming_fraction = 0.35; k.pointer_chasing = 0.18; k.mlp = 3;
    k.tlb_hostility = 0.04; k.branch_predictability = 0.82;
    k.instructions_per_point = 1200;
    out.push_back({k, 8.0e5, 14});
  }

  return out;
}

}  // namespace

const std::vector<Benchmark>& suite() {
  static const std::vector<Benchmark> kSuite = build_suite();
  return kSuite;
}

const Benchmark& benchmark_by_name(const std::string& name) {
  for (const Benchmark& b : suite()) {
    if (b.name() == name) return b;
  }
  throw NotFound("unknown SPEC-like benchmark: " + name);
}

BenchmarkRun run_benchmark(const Benchmark& b, const machine::Machine& m,
                           machine::SmtMode mode, int copies) {
  if (copies <= 0) copies = m.cores_per_node;
  SWAPP_REQUIRE(copies <= m.cores_per_node,
                "more benchmark copies than cores per node");
  const workload::ComputeContext ctx{.active_cores_per_node = copies,
                                     .smt = mode};
  workload::ComputeSample total{};
  total.counters = machine::PmuCounters{};
  const workload::ComputeSample sweep =
      workload::evaluate(b.kernel, b.points, m, ctx);
  // Sweeps are identical passes over the same data; scale instead of looping.
  BenchmarkRun run;
  run.name = b.name();
  run.runtime = sweep.seconds * b.sweeps;
  run.counters = sweep.counters;
  run.counters.instructions *= b.sweeps;
  run.counters.cycles *= b.sweeps;
  run.counters.seconds *= b.sweeps;
  return run;
}

std::vector<BenchmarkRun> run_suite(const machine::Machine& m,
                                    machine::SmtMode mode, int copies) {
  std::vector<BenchmarkRun> out;
  out.reserve(suite().size());
  for (const Benchmark& b : suite()) {
    out.push_back(run_benchmark(b, m, mode, copies));
  }
  return out;
}

}  // namespace swapp::spec
