// Synthetic SPEC CPU2006-style compute benchmark suite.
//
// The paper's compute projection (§2.1, §2.3) uses SPEC CPU2006 as the pool
// of surrogate candidates: serial, compute-intensive benchmarks whose
// hardware-counter signatures span the space of application behaviours, with
// published runtimes on both the base and every target machine.  SPEC is
// licensed and cannot be redistributed, so this module defines sixteen
// synthetic kernels — named after the CFP2006 components they are modelled
// on — with deliberately diverse microarchitectural characteristics:
// bandwidth-streaming (lbm, bwaves), cache-resident FP (gamess, tonto),
// latency/pointer-bound (soplex, dealII), branchy (povray, sphinx3),
// stencil codes (zeusmp, leslie3d, cactusADM, GemsFDTD), and mixed
// workloads (wrf, calculix, gromacs, namd, milc).
//
// What matters to SWAPP is not that these match the real SPEC codes but that
// the surrogate search faces the same problem: finding a weighted subset of
// benchmark signatures that reconstructs an application's signature.
#pragma once

#include <string>
#include <vector>

#include "machine/counters.h"
#include "machine/machine.h"
#include "workload/kernel.h"

namespace swapp::spec {

/// One benchmark: a kernel with a fixed reference problem size and a fixed
/// number of interior iterations (so total work is machine-independent).
struct Benchmark {
  workload::Kernel kernel;
  double points = 1e6;    ///< problem size (working set = points · B/pt)
  double sweeps = 10.0;   ///< times the kernel passes over the data

  const std::string& name() const { return kernel.name; }
};

/// The seventeen-benchmark suite, in a fixed, documented order.
const std::vector<Benchmark>& suite();

/// Lookup by name; throws NotFound.
const Benchmark& benchmark_by_name(const std::string& name);

/// Result of one benchmark execution on one machine.
struct BenchmarkRun {
  std::string name;
  Seconds runtime = 0.0;
  machine::PmuCounters counters;
};

/// Runs one benchmark in SPEC throughput ("rate") mode with `copies` active
/// copies per node (0 = one per core, a fully loaded node).  SPEC rate
/// results are published at several copy counts; SWAPP selects the count
/// matching the application's node occupancy at the projected Ck, so shared
/// caches and memory bandwidth are divided consistently between benchmark
/// and application.  Returns the per-copy runtime and counters.
BenchmarkRun run_benchmark(const Benchmark& b, const machine::Machine& m,
                           machine::SmtMode mode, int copies = 0);

/// Runs the whole suite at one occupancy.
std::vector<BenchmarkRun> run_suite(const machine::Machine& m,
                                    machine::SmtMode mode, int copies = 0);

}  // namespace swapp::spec
