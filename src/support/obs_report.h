// Human-readable rendering of a metrics snapshot through support/table —
// the printer behind `swapp stats` and the batch CLI's stderr summary.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace swapp {

/// Pretty-prints the snapshot as up to three tables (counters, gauges,
/// histograms), skipping kinds with no entries.  Histogram rows report
/// count, mean, p50/p95 (bucket-resolution), and max.  `filter_prefix`
/// non-empty keeps only metrics whose name starts with it.
void print_metrics(std::ostream& os, const obs::MetricsSnapshot& snapshot,
                   const std::string& filter_prefix = {});

}  // namespace swapp
