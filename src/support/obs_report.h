// Human-readable rendering of a metrics snapshot through support/table —
// the printer behind `swapp stats` and the batch CLI's stderr summary —
// plus per-name span rollups over a recorded trace (`swapp stats --trace`).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace swapp {

/// Pretty-prints the snapshot as up to three tables (counters, gauges,
/// histograms), skipping kinds with no entries.  Histogram rows report
/// count, mean, p50/p95 (bucket-resolution), and max.  `filter_prefix`
/// non-empty keeps only metrics whose name starts with it.
void print_metrics(std::ostream& os, const obs::MetricsSnapshot& snapshot,
                   const std::string& filter_prefix = {});

/// Per-name aggregate over the spans of one trace.
struct SpanRollup {
  std::string name;
  std::size_t count = 0;   ///< spans with this name
  double total_us = 0.0;   ///< inclusive: sum of dur_us
  double self_us = 0.0;    ///< exclusive: total minus direct-children time
  double max_us = 0.0;     ///< longest single span (inclusive)
};

/// Aggregates spans by name.  A span's self-time is its duration minus the
/// summed durations of its direct children (by parent id), clamped at zero:
/// pool fan-out stitches workers' spans onto the dispatching caller's span,
/// so concurrent children can legitimately out-sum their parent's wall
/// time.  Counter samples are ignored.  Sorted by descending self_us (ties
/// by name, so the order is deterministic).
std::vector<SpanRollup> rollup_spans(
    const std::vector<obs::TraceEvent>& events);

/// Pretty-prints a rollup as one table: count, total/self/max in ms, and
/// each name's share of the summed self-time.
void print_span_rollup(std::ostream& os,
                       const std::vector<SpanRollup>& rollups);

}  // namespace swapp
