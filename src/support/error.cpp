#include "support/error.h"

#include <sstream>

namespace swapp::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "SWAPP_ASSERT failed: (" << expr << ") at " << file << ":" << line
     << " — " << message;
  throw InternalError(os.str());
}

}  // namespace swapp::detail
