// Unit helpers.  Simulated time is a double in seconds everywhere; byte
// counts are std::uint64_t.  These constants keep machine configurations and
// workload definitions readable.
#pragma once

#include <cstdint>

namespace swapp {

using Bytes = std::uint64_t;
using Seconds = double;

inline constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024u;
}
inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024u * 1024u;
}
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024u * 1024u * 1024u;
}

inline constexpr Seconds operator""_us(long double v) {
  return static_cast<Seconds>(v) * 1e-6;
}
inline constexpr Seconds operator""_us(unsigned long long v) {
  return static_cast<Seconds>(v) * 1e-6;
}
inline constexpr Seconds operator""_ns(long double v) {
  return static_cast<Seconds>(v) * 1e-9;
}
inline constexpr Seconds operator""_ns(unsigned long long v) {
  return static_cast<Seconds>(v) * 1e-9;
}
inline constexpr Seconds operator""_ms(long double v) {
  return static_cast<Seconds>(v) * 1e-3;
}
inline constexpr Seconds operator""_ms(unsigned long long v) {
  return static_cast<Seconds>(v) * 1e-3;
}

/// Gigahertz to cycle period in seconds.
inline constexpr Seconds cycle_seconds(double ghz) { return 1e-9 / ghz; }

}  // namespace swapp
