#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double percentile(std::span<const double> xs, double q) {
  SWAPP_REQUIRE(!xs.empty(), "percentile of empty sample");
  SWAPP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percent_error(double projected, double actual) {
  SWAPP_REQUIRE(actual != 0.0, "percent_error with zero actual value");
  return std::abs(projected - actual) / std::abs(actual) * 100.0;
}

double signed_percent_error(double projected, double actual) {
  SWAPP_REQUIRE(actual != 0.0, "signed_percent_error with zero actual value");
  return (projected - actual) / std::abs(actual) * 100.0;
}

double fraction_above(std::span<const double> projected,
                      std::span<const double> actual) {
  SWAPP_REQUIRE(projected.size() == actual.size(),
                "fraction_above requires equal-length samples");
  SWAPP_REQUIRE(!projected.empty(), "fraction_above of empty samples");
  std::size_t above = 0;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    if (projected[i] > actual[i]) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(projected.size());
}

ErrorSummary summarize_errors(std::span<const double> percent_errors) {
  ErrorSummary out;
  RunningStats s;
  for (double e : percent_errors) s.add(std::abs(e));
  out.mean_abs_error = s.mean();
  out.stddev = s.stddev();
  out.max_abs_error = s.max();
  out.count = s.count();
  return out;
}

}  // namespace swapp
