#include "support/interp.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp {

LogLogInterpolator::LogLogInterpolator(std::span<const double> x,
                                       std::span<const double> y) {
  SWAPP_REQUIRE(x.size() == y.size(), "interpolator size mismatch");
  SWAPP_REQUIRE(!x.empty(), "interpolator needs at least one point");
  lx_.reserve(x.size());
  ly_.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    SWAPP_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "interpolator needs positive data");
    if (i > 0) {
      SWAPP_REQUIRE(x[i] > x[i - 1], "interpolator x must be increasing");
    }
    lx_.push_back(std::log(x[i]));
    ly_.push_back(std::log(y[i]));
  }
}

double LogLogInterpolator::min_x() const {
  SWAPP_REQUIRE(!empty(), "empty interpolator");
  return std::exp(lx_.front());
}

double LogLogInterpolator::max_x() const {
  SWAPP_REQUIRE(!empty(), "empty interpolator");
  return std::exp(lx_.back());
}

double LogLogInterpolator::operator()(double x) const {
  SWAPP_REQUIRE(!empty(), "lookup in empty interpolator");
  SWAPP_REQUIRE(x > 0.0, "interpolator lookup needs positive x");
  const double lx = std::log(x);
  if (lx_.size() == 1) return std::exp(ly_.front());

  // Locate the segment; clamp to the end segments for extrapolation.
  std::size_t hi = std::upper_bound(lx_.begin(), lx_.end(), lx) - lx_.begin();
  hi = std::clamp<std::size_t>(hi, 1, lx_.size() - 1);
  const std::size_t lo = hi - 1;
  const double t = (lx - lx_[lo]) / (lx_[hi] - lx_[lo]);
  return std::exp(ly_[lo] + t * (ly_[hi] - ly_[lo]));
}

void CoreSizeTable::insert(int cores, double bytes, double seconds) {
  SWAPP_REQUIRE(cores > 0, "core count must be positive");
  SWAPP_REQUIRE(bytes > 0.0, "message size must be positive");
  SWAPP_REQUIRE(seconds > 0.0, "sample time must be positive");
  rows_[cores][bytes] = seconds;
}

std::vector<int> CoreSizeTable::core_counts() const {
  std::vector<int> out;
  out.reserve(rows_.size());
  for (const auto& [cores, row] : rows_) out.push_back(cores);
  return out;
}

std::vector<CoreSizeTable::Sample> CoreSizeTable::samples() const {
  std::vector<Sample> out;
  for (const auto& [cores, row] : rows_) {
    for (const auto& [bytes, seconds] : row) {
      out.push_back(Sample{cores, bytes, seconds});
    }
  }
  return out;
}

double CoreSizeTable::lookup(int cores, double bytes) const {
  if (rows_.empty()) throw NotFound("lookup in empty CoreSizeTable");
  SWAPP_REQUIRE(cores > 0 && bytes > 0.0, "lookup needs positive arguments");

  const auto row_value = [&](const std::map<double, double>& row) {
    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(row.size());
    ys.reserve(row.size());
    for (const auto& [b, t] : row) {
      xs.push_back(b);
      ys.push_back(t);
    }
    return LogLogInterpolator(xs, ys)(bytes);
  };

  if (rows_.size() == 1) return row_value(rows_.begin()->second);

  std::vector<double> core_xs;
  std::vector<double> core_ys;
  core_xs.reserve(rows_.size());
  core_ys.reserve(rows_.size());
  for (const auto& [c, row] : rows_) {
    core_xs.push_back(static_cast<double>(c));
    core_ys.push_back(row_value(row));
  }
  return LogLogInterpolator(core_xs, core_ys)(static_cast<double>(cores));
}

}  // namespace swapp
