// Parallel execution substrate: a lazily-started, reusable thread pool.
//
// SWAPP's hot loops — GA restarts, figure rows, batched projections — are
// embarrassingly parallel: every work item is a pure function of its inputs.
// `parallel_for` / `parallel_map` fan such loops out over a process-wide pool
// while keeping three guarantees the rest of the system relies on:
//
//   * Determinism.  Work items only communicate through their own result
//     slot, and `parallel_map` returns results in input order, so any
//     computation whose items are independent produces bit-identical output
//     for every thread count (including 1).
//   * Serial degradation.  With one configured thread (or a single item) the
//     loop runs inline on the calling thread — no pool, no synchronisation —
//     so `SWAPP_THREADS=1` is exactly the serial program.
//   * Nesting safety.  A parallel region entered from inside another
//     parallel region runs serially on the current thread instead of
//     deadlocking on the shared pool (GA restarts inside a parallel figure
//     row just run inline).
//
// Sizing: `SWAPP_THREADS` (env) overrides std::thread::hardware_concurrency;
// `set_thread_count()` overrides both at runtime (the hook the determinism
// tests use).  Workers start on first parallel use and are reused across
// calls; exceptions thrown by work items are captured and the first one is
// rethrown on the calling thread after the region completes.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace swapp {

/// Threads a parallel region currently fans out over (>= 1).
std::size_t thread_count();

/// Parses a SWAPP_THREADS-style value: a positive decimal integer with no
/// trailing characters.  Throws InvalidArgument (with the offending text)
/// for anything else — zero, negatives, non-numeric strings — instead of
/// silently falling back to a default.
std::size_t parse_thread_count(const std::string& value);

/// Overrides the pool size; 0 restores the default (SWAPP_THREADS env var,
/// else hardware concurrency).  Stops and restarts workers as needed.  Must
/// not be called from inside a parallel region.
void set_thread_count(std::size_t n);

/// True while the calling thread is executing a parallel work item (worker
/// or participating caller).  Regions opened here run serially.
bool in_parallel_region() noexcept;

/// Runs fn(0) … fn(n-1), each exactly once, in parallel over the pool.
/// Blocks until all items finish.  The first exception thrown by any item is
/// rethrown here (remaining items may be skipped once an item has thrown).
///
/// Executors claim *runs* of consecutive indices from the shared counter
/// (one atomic fetch_add per run instead of per item), with the run length
/// auto-sized from the item count and thread count — long fine-grained loops
/// claim runs of up to 64, coarse loops degrade to runs of 1, which is
/// exactly the historical per-item claiming.  Chunking only changes which
/// executor runs an item, never what the item computes or where it writes,
/// so the determinism guarantee above is unaffected.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// `parallel_for` with an explicit claim-run length (`chunk == 0` selects
/// the same auto-sizing as `parallel_for`; any other value is used as-is,
/// including lengths larger than `n`, which degenerate to one executor
/// claiming everything).  Exposed for the determinism/coverage tests; hot
/// paths should normally let `parallel_for` size the runs.
void parallel_for_chunked(std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& fn);

/// Maps `fn` over `items`, returning results in input order.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  using R = std::decay_t<decltype(fn(items.front()))>;
  std::vector<std::optional<R>> slots(items.size());
  parallel_for(items.size(),
               [&](std::size_t i) { slots[i].emplace(fn(items[i])); });
  std::vector<R> out;
  out.reserve(items.size());
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace swapp
