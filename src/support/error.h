// Error handling primitives for the SWAPP library.
//
// All SWAPP components throw swapp::Error (or a subclass) on contract
// violations and unrecoverable conditions.  Hot simulation paths use
// SWAPP_ASSERT, which is compiled in for all build types: a performance
// projection produced by a silently-corrupted simulator is worse than no
// projection at all.
#pragma once

#include <stdexcept>
#include <string>

namespace swapp {

/// Base class for all errors thrown by the SWAPP library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when requested data (profile, benchmark table, machine) is absent.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a SWAPP bug, not user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown when a file cannot be opened or created.  Carries the offending
/// path as data (not just prose), so callers can react to *which* file
/// failed — the CLI uses this to reject a bad --trace/--metrics/--out path
/// before any work happens instead of after all of it.
class FileError : public Error {
 public:
  FileError(const std::string& what, std::string path)
      : Error(what + ": " + path), path_(std::move(path)) {}
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace swapp

/// Always-on assertion.  `msg` may use std::string concatenation.
#define SWAPP_ASSERT(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::swapp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

/// Precondition check that throws InvalidArgument instead of InternalError.
#define SWAPP_REQUIRE(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      throw ::swapp::InvalidArgument(std::string("precondition failed: ") + \
                                     (msg));                                \
    }                                                                       \
  } while (false)
