// Curve-fitting utilities for the SWAPP scaling models.
//
// CCSM (paper §3.2) fits the application's compute time against core count
// with a strong-scaling law T(C) = a·C^(−b) + c; ACSM (paper §3.1)
// extrapolates decreasing per-instruction cache-traffic metrics to find the
// core count where they reach zero.  Both reduce to the small least-squares
// problems implemented here.
#pragma once

#include <span>

namespace swapp {

/// Result of a simple linear regression y ≈ slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const { return slope * x + intercept; }
};

/// Ordinary least squares on (x, y) pairs.  Requires ≥ 2 points.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Power law y ≈ a·x^b, fitted in log-log space.  Requires x, y > 0.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const;
};

PowerFit fit_power(std::span<const double> x, std::span<const double> y);

/// Strong-scaling law T(C) = a·C^(−b) + c with a ≥ 0, b ∈ [0, 3], c ≥ 0.
///
/// `c` captures the serial (non-scaling) fraction, `b` the scaling quality
/// (b = 1 is ideal strong scaling).  Fitted by golden-section search on `b`
/// with a constrained linear solve for (a, c) at each candidate.
struct ScalingFit {
  double a = 0.0;
  double b = 1.0;
  double c = 0.0;
  double rms_residual = 0.0;

  double operator()(double cores) const;
  /// Ratio T(to_cores) / T(from_cores): the CCSM scaling factor γ.
  double scale_factor(double from_cores, double to_cores) const;
};

ScalingFit fit_scaling(std::span<const double> cores,
                       std::span<const double> time);

/// Extrapolates a positive, decreasing metric m(C) (e.g. data-from-L3 per
/// instruction) to the core count where it falls below `threshold`.
///
/// Fits m(C) = a·C^(−b) on the provided samples and solves for C.  Returns
/// +infinity when the metric is not decreasing (no crossing exists).
double extrapolate_zero_crossing(std::span<const double> cores,
                                 std::span<const double> metric,
                                 double threshold);

}  // namespace swapp
