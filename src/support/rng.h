// Deterministic pseudo-random number generation.
//
// Every stochastic component of SWAPP (the genetic algorithm, workload jitter,
// placement shuffles) draws from an explicitly-seeded Rng so that experiments
// and tests are bit-reproducible across runs and machines.  The generator is
// xoshiro256** seeded through SplitMix64, following the reference
// implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace swapp {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with
/// <random> distributions, but the member helpers below are preferred: they
/// are guaranteed stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire reduction.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal variate (Marsaglia polar method, deterministic).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p) noexcept;

  /// Derives an independent child generator (for per-rank streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace swapp
