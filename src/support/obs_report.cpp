#include "support/obs_report.h"

#include <ostream>

#include "support/table.h"

namespace swapp {
namespace {

bool keep(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.rfind(prefix, 0) == 0;
}

}  // namespace

void print_metrics(std::ostream& os, const obs::MetricsSnapshot& snapshot,
                   const std::string& filter_prefix) {
  TextTable counters({"Counter", "Value"});
  for (const obs::CounterValue& c : snapshot.counters) {
    if (!keep(c.name, filter_prefix)) continue;
    counters.add_row({c.name, std::to_string(c.value)});
  }
  if (counters.row_count() > 0) counters.print(os);

  TextTable gauges({"Gauge", "Value"});
  for (const obs::GaugeValue& g : snapshot.gauges) {
    if (!keep(g.name, filter_prefix)) continue;
    gauges.add_row({g.name, TextTable::num(g.value, 3)});
  }
  if (gauges.row_count() > 0) gauges.print(os);

  TextTable histograms(
      {"Histogram", "Count", "Mean", "p50", "p95", "Max"});
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (!keep(h.name, filter_prefix)) continue;
    histograms.add_row({h.name, std::to_string(h.count),
                        TextTable::num(h.mean(), 2),
                        TextTable::num(h.quantile(0.50), 2),
                        TextTable::num(h.quantile(0.95), 2),
                        TextTable::num(h.max, 2)});
  }
  if (histograms.row_count() > 0) histograms.print(os);
}

}  // namespace swapp
