#include "support/obs_report.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <unordered_map>

#include "support/table.h"

namespace swapp {
namespace {

bool keep(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.rfind(prefix, 0) == 0;
}

}  // namespace

void print_metrics(std::ostream& os, const obs::MetricsSnapshot& snapshot,
                   const std::string& filter_prefix) {
  TextTable counters({"Counter", "Value"});
  for (const obs::CounterValue& c : snapshot.counters) {
    if (!keep(c.name, filter_prefix)) continue;
    counters.add_row({c.name, std::to_string(c.value)});
  }
  if (counters.row_count() > 0) counters.print(os);

  TextTable gauges({"Gauge", "Value"});
  for (const obs::GaugeValue& g : snapshot.gauges) {
    if (!keep(g.name, filter_prefix)) continue;
    gauges.add_row({g.name, TextTable::num(g.value, 3)});
  }
  if (gauges.row_count() > 0) gauges.print(os);

  TextTable histograms(
      {"Histogram", "Count", "Mean", "p50", "p95", "Max"});
  for (const obs::HistogramValue& h : snapshot.histograms) {
    if (!keep(h.name, filter_prefix)) continue;
    histograms.add_row({h.name, std::to_string(h.count),
                        TextTable::num(h.mean(), 2),
                        TextTable::num(h.quantile(0.50), 2),
                        TextTable::num(h.quantile(0.95), 2),
                        TextTable::num(h.max, 2)});
  }
  if (histograms.row_count() > 0) histograms.print(os);
}

std::vector<SpanRollup> rollup_spans(
    const std::vector<obs::TraceEvent>& events) {
  // Pass 1: per-parent sum of direct-children durations.
  std::unordered_map<std::uint64_t, double> child_us;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceEvent::Kind::kSpan) continue;
    if (e.parent != 0) child_us[e.parent] += e.dur_us;
  }
  // Pass 2: aggregate by name (std::map: deterministic iteration order).
  std::map<std::string, SpanRollup> by_name;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceEvent::Kind::kSpan) continue;
    SpanRollup& r = by_name[e.name];
    r.name = e.name;
    r.count += 1;
    r.total_us += e.dur_us;
    r.max_us = std::max(r.max_us, e.dur_us);
    const auto it = child_us.find(e.id);
    const double children = it == child_us.end() ? 0.0 : it->second;
    r.self_us += std::max(0.0, e.dur_us - children);
  }
  std::vector<SpanRollup> out;
  out.reserve(by_name.size());
  for (auto& [name, r] : by_name) out.push_back(std::move(r));
  std::sort(out.begin(), out.end(), [](const SpanRollup& a,
                                       const SpanRollup& b) {
    return a.self_us != b.self_us ? a.self_us > b.self_us : a.name < b.name;
  });
  return out;
}

void print_span_rollup(std::ostream& os,
                       const std::vector<SpanRollup>& rollups) {
  double self_sum = 0.0;
  for (const SpanRollup& r : rollups) self_sum += r.self_us;
  TextTable table({"Span", "Count", "Total ms", "Self ms", "Self %",
                   "Max ms"});
  for (const SpanRollup& r : rollups) {
    const double share =
        self_sum > 0.0 ? 100.0 * r.self_us / self_sum : 0.0;
    table.add_row({r.name, std::to_string(r.count),
                   TextTable::num(r.total_us / 1000.0, 3),
                   TextTable::num(r.self_us / 1000.0, 3),
                   TextTable::num(share, 1),
                   TextTable::num(r.max_us / 1000.0, 3)});
  }
  if (table.row_count() > 0) table.print(os);
}

}  // namespace swapp
