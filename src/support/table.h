// Plain-text table formatting for the benchmark harness.  Every experiment
// binary prints its rows through TextTable so the output mirrors the paper's
// tables and figure series in a diff-friendly, column-aligned layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swapp {

/// Column-aligned text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Writes the table as CSV (header + rows, comma-separated, quoted as
  /// needed) for downstream plotting.
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swapp
