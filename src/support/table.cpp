#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace swapp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SWAPP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  SWAPP_REQUIRE(row.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::write_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

}  // namespace swapp
