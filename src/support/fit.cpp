#include "support/fit.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "support/error.h"

namespace swapp {
namespace {

double r_squared_of(std::span<const double> y, std::span<const double> yhat) {
  double my = 0.0;
  for (double v : y) my += v;
  my /= static_cast<double>(y.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_tot += (y[i] - my) * (y[i] - my);
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
  }
  if (ss_tot == 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  SWAPP_REQUIRE(x.size() == y.size(), "fit_linear size mismatch");
  SWAPP_REQUIRE(x.size() >= 2, "fit_linear needs at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit out;
  if (denom == 0.0) {
    out.slope = 0.0;
    out.intercept = sy / n;
  } else {
    out.slope = (n * sxy - sx * sy) / denom;
    out.intercept = (sy - out.slope * sx) / n;
  }
  std::vector<double> yhat(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) yhat[i] = out(x[i]);
  out.r_squared = r_squared_of(y, yhat);
  return out;
}

double PowerFit::operator()(double x) const { return a * std::pow(x, b); }

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  SWAPP_REQUIRE(x.size() == y.size(), "fit_power size mismatch");
  SWAPP_REQUIRE(x.size() >= 2, "fit_power needs at least two points");
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    SWAPP_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "fit_power needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit out;
  out.a = std::exp(lin.intercept);
  out.b = lin.slope;
  std::vector<double> yhat(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) yhat[i] = out(x[i]);
  out.r_squared = r_squared_of(y, yhat);
  return out;
}

double ScalingFit::operator()(double cores) const {
  return a * std::pow(cores, -b) + c;
}

double ScalingFit::scale_factor(double from_cores, double to_cores) const {
  const double from = (*this)(from_cores);
  SWAPP_ASSERT(from > 0.0, "scaling fit evaluates to non-positive time");
  return (*this)(to_cores) / from;
}

namespace {

// For fixed b, solve min ||a·x^-b + c - y||² s.t. a, c ≥ 0 in closed form,
// falling back to the boundary solutions when the unconstrained optimum is
// outside the feasible region.
ScalingFit solve_given_b(std::span<const double> cores,
                         std::span<const double> time, double b) {
  const std::size_t n = cores.size();
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = std::pow(cores[i], -b);

  const auto dn = static_cast<double>(n);
  double su = 0.0;
  double sy = 0.0;
  double suu = 0.0;
  double suy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    su += u[i];
    sy += time[i];
    suu += u[i] * u[i];
    suy += u[i] * time[i];
  }
  const double denom = dn * suu - su * su;
  double a = 0.0;
  double c = 0.0;
  if (denom > 0.0) {
    a = (dn * suy - su * sy) / denom;
    c = (sy - a * su) / dn;
  }
  if (a < 0.0) {  // boundary a = 0: constant model
    a = 0.0;
    c = sy / dn;
  }
  if (c < 0.0) {  // boundary c = 0: pure power model
    c = 0.0;
    a = suu > 0.0 ? suy / suu : 0.0;
    a = std::max(a, 0.0);
  }
  ScalingFit fit;
  fit.a = a;
  fit.b = b;
  fit.c = c;
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = fit(cores[i]) - time[i];
    ss += r * r;
  }
  fit.rms_residual = std::sqrt(ss / dn);
  return fit;
}

}  // namespace

ScalingFit fit_scaling(std::span<const double> cores,
                       std::span<const double> time) {
  SWAPP_REQUIRE(cores.size() == time.size(), "fit_scaling size mismatch");
  SWAPP_REQUIRE(cores.size() >= 2, "fit_scaling needs at least two points");
  for (std::size_t i = 0; i < cores.size(); ++i) {
    SWAPP_REQUIRE(cores[i] > 0.0, "fit_scaling needs positive core counts");
    SWAPP_REQUIRE(time[i] >= 0.0, "fit_scaling needs non-negative times");
  }

  // Coarse grid on b, then golden-section refinement around the best cell.
  ScalingFit best = solve_given_b(cores, time, 0.0);
  for (double b = 0.05; b <= 3.0; b += 0.05) {
    const ScalingFit candidate = solve_given_b(cores, time, b);
    if (candidate.rms_residual < best.rms_residual) best = candidate;
  }
  double lo = std::max(0.0, best.b - 0.05);
  double hi = std::min(3.0, best.b + 0.05);
  constexpr double kPhi = 0.6180339887498949;
  for (int iter = 0; iter < 48; ++iter) {
    const double m1 = hi - kPhi * (hi - lo);
    const double m2 = lo + kPhi * (hi - lo);
    const ScalingFit f1 = solve_given_b(cores, time, m1);
    const ScalingFit f2 = solve_given_b(cores, time, m2);
    if (f1.rms_residual < f2.rms_residual) {
      hi = m2;
      if (f1.rms_residual < best.rms_residual) best = f1;
    } else {
      lo = m1;
      if (f2.rms_residual < best.rms_residual) best = f2;
    }
  }
  return best;
}

double extrapolate_zero_crossing(std::span<const double> cores,
                                 std::span<const double> metric,
                                 double threshold) {
  SWAPP_REQUIRE(cores.size() == metric.size(),
                "extrapolate_zero_crossing size mismatch");
  SWAPP_REQUIRE(cores.size() >= 2,
                "extrapolate_zero_crossing needs at least two points");
  SWAPP_REQUIRE(threshold > 0.0, "threshold must be positive");

  // A non-decreasing metric never crosses: report +inf.
  bool decreasing = false;
  for (std::size_t i = 1; i < metric.size(); ++i) {
    if (metric[i] < metric[i - 1]) decreasing = true;
    if (metric[i] > metric[i - 1] * 1.05) return
        std::numeric_limits<double>::infinity();
  }
  if (!decreasing) return std::numeric_limits<double>::infinity();

  // Guard against zeros before the log-log fit (already crossed).
  std::vector<double> cs;
  std::vector<double> ms;
  for (std::size_t i = 0; i < metric.size(); ++i) {
    if (metric[i] <= threshold) return cores[i];
    cs.push_back(cores[i]);
    ms.push_back(metric[i]);
  }
  const PowerFit fit = fit_power(cs, ms);
  if (fit.b >= 0.0) return std::numeric_limits<double>::infinity();
  // Solve a·C^b = threshold  =>  C = (threshold / a)^(1/b).
  return std::pow(threshold / fit.a, 1.0 / fit.b);
}

}  // namespace swapp
