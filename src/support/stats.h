// Descriptive statistics used throughout the experiment harness: error
// magnitudes, standard deviations, and sample summaries reported next to the
// paper's numbers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swapp {

/// One-pass accumulator for mean / variance (Welford) and extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);
/// Linear-interpolated percentile; `q` in [0, 1].
double percentile(std::span<const double> xs, double q);

/// |projected - actual| / actual, in percent.  Requires actual != 0.
double percent_error(double projected, double actual);

/// Signed (projected - actual) / actual, in percent.
double signed_percent_error(double projected, double actual);

/// Fraction of pairs where projected > actual (the paper reports 54%).
double fraction_above(std::span<const double> projected,
                      std::span<const double> actual);

/// Summary of a sample of percent errors, as reported in the paper's §4.
struct ErrorSummary {
  double mean_abs_error = 0.0;  ///< average |error| magnitude, percent
  double stddev = 0.0;          ///< std-dev of |error| magnitudes
  double max_abs_error = 0.0;
  std::size_t count = 0;
};

ErrorSummary summarize_errors(std::span<const double> percent_errors);

}  // namespace swapp
