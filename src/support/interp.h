// Interpolation over benchmark parameter tables.
//
// The communication projection (paper §2.4 step 4) maps the application's MPI
// model — (routine, message size, call count) at a core count — onto the
// target-machine parameters P_Cj(m_i, S_k) measured by the IMB-style sweeps.
// Message-size and core-count grids are sampled at powers of two, so lookups
// between samples interpolate in log-log space, where MPI cost curves are
// near piecewise-linear.
#pragma once

#include <map>
#include <span>
#include <vector>

namespace swapp {

/// Monotone 1-D interpolator in log(x)/log(y) space with linear-tail
/// extrapolation beyond the sampled range.
class LogLogInterpolator {
 public:
  LogLogInterpolator() = default;

  /// Builds from parallel arrays; x must be strictly increasing and > 0,
  /// y must be > 0.
  LogLogInterpolator(std::span<const double> x, std::span<const double> y);

  bool empty() const noexcept { return lx_.empty(); }
  double min_x() const;
  double max_x() const;

  /// Interpolated (or extrapolated) value at `x` (> 0).
  double operator()(double x) const;

 private:
  std::vector<double> lx_;
  std::vector<double> ly_;
};

/// 2-D table keyed by (cores, message size) with log-log interpolation in
/// both dimensions: first in message size within each sampled core count,
/// then in core count across the per-row results.
class CoreSizeTable {
 public:
  /// Inserts a sample; duplicates overwrite.
  void insert(int cores, double bytes, double seconds);

  bool empty() const noexcept { return rows_.empty(); }
  std::vector<int> core_counts() const;

  /// One stored sample (for persistence and inspection).
  struct Sample {
    int cores;
    double bytes;
    double seconds;
  };
  /// All samples in deterministic (cores, bytes) order.
  std::vector<Sample> samples() const;

  /// Time for a message of `bytes` at `cores`.  Interpolates/extrapolates in
  /// both dimensions.  Throws NotFound on an empty table.
  double lookup(int cores, double bytes) const;

 private:
  // cores -> (bytes -> seconds); kept sorted for interpolation.
  std::map<int, std::map<double, double>> rows_;
};

}  // namespace swapp
