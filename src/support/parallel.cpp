#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/error.h"

namespace swapp {
namespace {

thread_local bool t_in_region = false;

/// Marks the calling thread as inside a parallel region for the guard's
/// lifetime (exception-safe; a caller participating in its own region must
/// be flagged so nested regions degrade to serial instead of deadlocking).
struct RegionGuard {
  RegionGuard() { t_in_region = true; }
  ~RegionGuard() { t_in_region = false; }
};

std::size_t default_thread_count() {
  if (const char* env = std::getenv("SWAPP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    std::lock_guard<std::mutex> config(config_mutex_);
    stop_workers();
  }

  std::size_t threads() {
    std::lock_guard<std::mutex> config(config_mutex_);
    return configured();
  }

  void set_threads(std::size_t n) {
    SWAPP_REQUIRE(!t_in_region,
                  "set_thread_count must not be called from a parallel region");
    std::lock_guard<std::mutex> config(config_mutex_);
    if (override_ == n) return;
    stop_workers();  // next run() restarts at the new size
    override_ = n;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (t_in_region) {  // nested region: stay on this thread
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::unique_lock<std::mutex> config(config_mutex_);
    const std::size_t threads = configured();
    if (threads <= 1 || n == 1) {
      config.unlock();
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    ensure_workers(threads - 1);  // the caller is the remaining executor
    {
      std::lock_guard<std::mutex> job(job_mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      abort_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      active_workers_ = workers_.size();
      ++generation_;
    }
    job_cv_.notify_all();
    {
      RegionGuard in_region;
      work();
    }
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> job(job_mutex_);
      done_cv_.wait(job, [&] { return active_workers_ == 0; });
      error = error_;
      error_ = nullptr;
      job_fn_ = nullptr;
    }
    config.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  std::size_t configured() const {
    if (override_ > 0) return override_;
    static const std::size_t kDefault = default_thread_count();
    return kDefault;
  }

  void ensure_workers(std::size_t count) {
    if (workers_.size() == count) return;
    stop_workers();
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void stop_workers() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> job(job_mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    stop_ = false;
  }

  void worker_main() {
    RegionGuard in_region;
    std::uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> job(job_mutex_);
        job_cv_.wait(job, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
      }
      work();
      {
        std::lock_guard<std::mutex> job(job_mutex_);
        if (--active_workers_ == 0) done_cv_.notify_one();
      }
    }
  }

  /// Claims and executes items until the job is drained or aborted.  Runs on
  /// workers and on the calling thread alike.
  void work() {
    while (!abort_.load(std::memory_order_relaxed)) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_n_) break;
      try {
        (*job_fn_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> job(job_mutex_);
        if (!error_) error_ = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
      }
    }
  }

  /// Serialises top-level regions and configuration changes.
  std::mutex config_mutex_;
  std::size_t override_ = 0;  ///< 0 = use the env/hardware default
  std::vector<std::thread> workers_;

  /// Guards the current job's bookkeeping; job_cv_ wakes workers for a new
  /// generation, done_cv_ wakes the caller when every worker has drained.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t active_workers_ = 0;
  std::exception_ptr error_;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> abort_{false};
};

}  // namespace

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().set_threads(n); }

bool in_parallel_region() noexcept { return t_in_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  Pool::instance().run(n, fn);
}

}  // namespace swapp
