#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace swapp {
namespace {

thread_local bool t_in_region = false;

/// Marks the calling thread as inside a parallel region for the guard's
/// lifetime (exception-safe; a caller participating in its own region must
/// be flagged so nested regions degrade to serial instead of deadlocking).
struct RegionGuard {
  RegionGuard() { t_in_region = true; }
  ~RegionGuard() { t_in_region = false; }
};

std::size_t default_thread_count() {
  if (const char* env = std::getenv("SWAPP_THREADS")) {
    return parse_thread_count(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    std::lock_guard<std::mutex> config(config_mutex_);
    stop_workers();
  }

  std::size_t threads() {
    std::lock_guard<std::mutex> config(config_mutex_);
    return configured();
  }

  void set_threads(std::size_t n) {
    SWAPP_REQUIRE(!t_in_region,
                  "set_thread_count must not be called from a parallel region");
    std::lock_guard<std::mutex> config(config_mutex_);
    if (override_ == n) return;
    stop_workers();  // next run() restarts at the new size
    override_ = n;
  }

  /// `chunk` is the claim-run length (0 = auto-size from n and the pool
  /// width; see auto_chunk below).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           std::size_t chunk) {
    if (n == 0) return;
    if (t_in_region) {  // nested region: stay on this thread
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::unique_lock<std::mutex> config(config_mutex_);
    const std::size_t threads = configured();
    if (threads <= 1 || n == 1) {
      config.unlock();
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    ensure_workers(threads - 1);  // the caller is the remaining executor
    SWAPP_GAUGE_SET("pool.threads", static_cast<double>(threads));
    SWAPP_COUNT("pool.jobs", 1);
    {
      std::lock_guard<std::mutex> job(job_mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      job_chunk_ = chunk > 0 ? chunk : auto_chunk(n, threads);
      // Workers adopt the caller's innermost span as their logical parent,
      // so spans opened inside work items stitch into the caller's trace
      // tree; the post timestamp feeds the queue-wait histogram.
      job_parent_span_ = obs::current_span_id();
      job_post_us_ = obs::metrics_enabled() ? obs::trace_now_us() : 0.0;
      next_.store(0, std::memory_order_relaxed);
      abort_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      active_workers_ = workers_.size();
      ++generation_;
    }
    job_cv_.notify_all();
    {
      RegionGuard in_region;
      work();
    }
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> job(job_mutex_);
      done_cv_.wait(job, [&] { return active_workers_ == 0; });
      error = error_;
      error_ = nullptr;
      job_fn_ = nullptr;
    }
    config.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  std::size_t configured() const {
    if (override_ > 0) return override_;
    static const std::size_t kDefault = default_thread_count();
    return kDefault;
  }

  void ensure_workers(std::size_t count) {
    if (workers_.size() == count) return;
    stop_workers();
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void stop_workers() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> job(job_mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    stop_ = false;
  }

  void worker_main() {
    RegionGuard in_region;
    std::uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> job(job_mutex_);
        job_cv_.wait(job, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        if (obs::metrics_enabled() && job_post_us_ > 0.0) {
          SWAPP_OBSERVE("pool.queue_wait_us",
                        obs::trace_now_us() - job_post_us_);
        }
      }
      work();
      {
        std::lock_guard<std::mutex> job(job_mutex_);
        if (--active_workers_ == 0) done_cv_.notify_one();
      }
    }
  }

  /// Claim-run length for an `n`-item job over `threads` executors.  Aims
  /// for ~8 runs per executor so stragglers can still be rebalanced, capped
  /// at 64 so one claim never monopolises a long tail.  Jobs too small to
  /// split (n below 8 × threads) get runs of 1 — the historical per-item
  /// claiming — which covers every coarse call site (GA restarts, figure
  /// rows) where items are few and expensive.
  static std::size_t auto_chunk(std::size_t n, std::size_t threads) {
    const std::size_t chunk = n / (threads * 8);
    return std::clamp<std::size_t>(chunk, 1, 64);
  }

  /// Claims and executes runs of `job_chunk_` consecutive items until the
  /// job is drained or aborted.  Runs on workers and on the calling thread
  /// alike.  One fetch_add claims the half-open index run
  /// [base, base + job_chunk_); the claimer executes the in-range part in
  /// ascending order.  Every index is still executed exactly once, so the
  /// chunk size is invisible to the work items themselves.
  void work() {
    // Worker-side spans attach to the span that dispatched this job (no-op
    // on the caller, whose own span stack already carries it).
    obs::LogicalParentScope trace_parent(job_parent_span_);
    const std::size_t chunk = job_chunk_;
    while (!abort_.load(std::memory_order_relaxed)) {
      const std::size_t base = next_.fetch_add(chunk, std::memory_order_relaxed);
      if (base >= job_n_) break;
      const std::size_t end = std::min(base + chunk, job_n_);
      for (std::size_t i = base; i < end; ++i) {
        if (abort_.load(std::memory_order_relaxed)) return;
        const bool measure = obs::metrics_enabled();
        const double started_us = measure ? obs::trace_now_us() : 0.0;
        try {
          (*job_fn_)(i);
        } catch (...) {
          std::lock_guard<std::mutex> job(job_mutex_);
          if (!error_) error_ = std::current_exception();
          abort_.store(true, std::memory_order_relaxed);
        }
        if (measure) {
          const double task_us = obs::trace_now_us() - started_us;
          SWAPP_COUNT("pool.tasks", 1);
          SWAPP_COUNT("pool.busy_us", static_cast<std::uint64_t>(task_us));
          SWAPP_OBSERVE("pool.task_us", task_us);
        }
      }
    }
  }

  /// Serialises top-level regions and configuration changes.
  std::mutex config_mutex_;
  std::size_t override_ = 0;  ///< 0 = use the env/hardware default
  std::vector<std::thread> workers_;

  /// Guards the current job's bookkeeping; job_cv_ wakes workers for a new
  /// generation, done_cv_ wakes the caller when every worker has drained.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;  ///< claim-run length for the current job
  std::uint64_t job_parent_span_ = 0;  ///< dispatcher's span (trace stitch)
  double job_post_us_ = 0.0;           ///< job post time (queue-wait metric)
  std::size_t active_workers_ = 0;
  std::exception_ptr error_;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> abort_{false};
};

}  // namespace

std::size_t parse_thread_count(const std::string& value) {
  // stol alone is too lenient (leading whitespace, signs, trailing text), so
  // the digits-only check comes first; stol then only guards overflow.
  const bool all_digits =
      !value.empty() &&
      std::all_of(value.begin(), value.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  long v = -1;
  if (all_digits) {
    try {
      v = std::stol(value);
    } catch (const std::exception&) {
      v = -1;  // out of range
    }
  }
  SWAPP_REQUIRE(v >= 1,
                "SWAPP_THREADS must be a positive integer, got '" + value +
                    "'");
  return static_cast<std::size_t>(v);
}

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().set_threads(n); }

bool in_parallel_region() noexcept { return t_in_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  Pool::instance().run(n, fn, 0);
}

void parallel_for_chunked(std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& fn) {
  Pool::instance().run(n, fn, chunk);
}

}  // namespace swapp
