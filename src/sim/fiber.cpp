#include "sim/fiber.h"

#include <cstdint>

#include "support/error.h"

namespace swapp::sim {
namespace {

// The single running fiber on this thread (the simulation is single-threaded;
// thread_local keeps tests that run simulations on worker threads safe).
thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  SWAPP_REQUIRE(body_ != nullptr, "fiber body must be callable");
  SWAPP_REQUIRE(stack_bytes >= 16 * 1024, "fiber stack too small");
  SWAPP_ASSERT(getcontext(&context_) == 0, "getcontext failed");
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_context_;
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    failure_ = std::current_exception();
  }
  finished_ = true;
  // Returning lets ucontext switch to uc_link (= return_context_).
}

void Fiber::resume() {
  SWAPP_ASSERT(g_current_fiber == nullptr,
               "resume() called from inside a fiber");
  SWAPP_ASSERT(!finished_, "resume() on a finished fiber");
  started_ = true;
  g_current_fiber = this;
  SWAPP_ASSERT(swapcontext(&return_context_, &context_) == 0,
               "swapcontext into fiber failed");
  g_current_fiber = nullptr;
  rethrow_if_failed();
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  SWAPP_ASSERT(self != nullptr, "yield() called outside a fiber");
  g_current_fiber = nullptr;
  SWAPP_ASSERT(swapcontext(&self->context_, &self->return_context_) == 0,
               "swapcontext out of fiber failed");
  g_current_fiber = self;
}

bool Fiber::in_fiber() noexcept { return g_current_fiber != nullptr; }

void Fiber::rethrow_if_failed() {
  if (failure_) {
    auto failure = failure_;
    failure_ = nullptr;
    std::rethrow_exception(failure);
  }
}

}  // namespace swapp::sim
