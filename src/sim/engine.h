// Deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a time-ordered event queue with
// FIFO tie-breaking (events at equal timestamps fire in insertion order), so
// every simulation is exactly reproducible.  Simulated processes (MPI ranks,
// benchmark drivers) run on fibers and interact with the clock through
// Process::advance / block / unblock_at.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.h"
#include "support/units.h"

namespace swapp::sim {

class Engine;

/// A simulated process: a named fiber with blocking primitives.
///
/// Created through Engine::spawn; lifetime is owned by the engine.  All
/// member functions other than unblock_at must be called from inside the
/// process's own fiber.
class Process {
 public:
  const std::string& name() const noexcept { return name_; }
  std::uint32_t id() const noexcept { return id_; }
  bool finished() const noexcept { return fiber_->finished(); }

  /// Advances this process's local view of time by `dt`: the process sleeps
  /// and resumes once the clock reaches now() + dt.
  void advance(Seconds dt);

  /// Suspends until another party calls unblock_at().  Returns the
  /// simulation time at which the process was resumed.
  Seconds block();

  /// Schedules this process to resume at simulation time `when` (clamped to
  /// the current time if in the past).  Callable from any context.  Calling
  /// it for a process that is not blocked is an error.
  void unblock_at(Seconds when);

  /// True while the process is waiting inside block().
  bool blocked() const noexcept { return blocked_; }

  Engine& engine() noexcept { return engine_; }

 private:
  friend class Engine;
  Process(Engine& engine, std::uint32_t id, std::string name,
          std::function<void(Process&)> body, std::size_t stack_bytes);

  Engine& engine_;
  std::uint32_t id_;
  std::string name_;
  std::unique_ptr<Fiber> fiber_;
  bool blocked_ = false;
  bool resume_scheduled_ = false;
};

/// The simulation engine: clock + event queue + process table.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time in seconds.
  Seconds now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now).
  void schedule_at(Seconds when, std::function<void()> fn);

  /// Schedules `fn` to run `dt` seconds from now.
  void schedule_in(Seconds dt, std::function<void()> fn);

  /// Creates a process whose body starts executing at time `start`.
  /// The returned pointer stays valid for the engine's lifetime.
  Process& spawn(std::string name, std::function<void(Process&)> body,
                 Seconds start = 0.0,
                 std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Runs until the event queue drains.  Throws InternalError if processes
  /// remain blocked with no pending events (deadlock), or propagates the
  /// first exception thrown by a process body.
  void run();

  /// Number of processes that have not finished their body.
  std::size_t live_process_count() const noexcept;

  /// Total events dispatched so far (for micro-benchmarks and tests).
  std::uint64_t events_dispatched() const noexcept { return dispatched_; }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO within a timestamp
    }
  };

  void resume_process(Process& p);

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace swapp::sim
