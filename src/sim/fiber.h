// Stackful cooperative fibers built on POSIX ucontext.
//
// Simulated MPI ranks are written as ordinary blocking C++ code (the same way
// the real NAS-MZ and IMB sources are written); each rank runs on a fiber and
// the discrete-event engine switches between them.  This is the execution
// model used by mature network simulators (e.g. SimGrid): one OS thread, many
// user-level contexts, fully deterministic scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace swapp::sim {

/// A single user-level execution context.
///
/// The fiber's body runs when `resume()` is called and control returns to the
/// caller when the body calls `yield()` or returns.  Fibers are not
/// thread-safe: the whole simulation is single-threaded by design.
class Fiber {
 public:
  /// Default stack: generous enough for the deepest simulated call chains
  /// (collective algorithms recursing over log2(ranks) levels).
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control into the fiber until it yields or finishes.
  /// Must be called from outside any fiber (the scheduler context).
  void resume();

  /// Transfers control from the currently-running fiber back to the
  /// scheduler.  Must be called from inside a fiber body.
  static void yield();

  /// True once the body has returned.  Resuming a finished fiber throws.
  bool finished() const noexcept { return finished_; }

  /// True while any fiber body is executing on this thread.
  static bool in_fiber() noexcept;

  /// If the fiber body exited with an exception, rethrows it in the caller
  /// of resume(); otherwise a no-op.
  void rethrow_if_failed();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  std::exception_ptr failure_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace swapp::sim
