#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace swapp::sim {

Process::Process(Engine& engine, std::uint32_t id, std::string name,
                 std::function<void(Process&)> body, std::size_t stack_bytes)
    : engine_(engine), id_(id), name_(std::move(name)) {
  fiber_ = std::make_unique<Fiber>([this, body = std::move(body)] { body(*this); },
                                   stack_bytes);
}

void Process::advance(Seconds dt) {
  SWAPP_REQUIRE(dt >= 0.0, "cannot advance time backwards");
  SWAPP_ASSERT(Fiber::in_fiber(), "advance() called outside process context");
  if (dt == 0.0) return;
  blocked_ = true;
  resume_scheduled_ = true;
  engine_.schedule_in(dt, [this] {
    blocked_ = false;
    resume_scheduled_ = false;
    fiber_->resume();
  });
  Fiber::yield();
}

Seconds Process::block() {
  SWAPP_ASSERT(Fiber::in_fiber(), "block() called outside process context");
  blocked_ = true;
  resume_scheduled_ = false;
  Fiber::yield();
  return engine_.now();
}

void Process::unblock_at(Seconds when) {
  SWAPP_ASSERT(blocked_, "unblock_at() on a process that is not blocked");
  SWAPP_ASSERT(!resume_scheduled_, "process already scheduled to resume");
  resume_scheduled_ = true;
  const Seconds t = std::max(when, engine_.now());
  engine_.schedule_at(t, [this] {
    blocked_ = false;
    resume_scheduled_ = false;
    fiber_->resume();
  });
}

void Engine::schedule_at(Seconds when, std::function<void()> fn) {
  SWAPP_REQUIRE(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(Seconds dt, std::function<void()> fn) {
  schedule_at(now_ + dt, std::move(fn));
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       Seconds start, std::size_t stack_bytes) {
  auto proc = std::unique_ptr<Process>(new Process(
      *this, static_cast<std::uint32_t>(processes_.size()), std::move(name),
      std::move(body), stack_bytes));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  schedule_at(start, [&ref] { ref.fiber_->resume(); });
  return ref;
}

void Engine::run() {
  while (!queue_.empty()) {
    // Copy out before pop: fn may schedule further events.
    Event ev = queue_.top();
    queue_.pop();
    SWAPP_ASSERT(ev.time >= now_, "event queue delivered a past event");
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
  if (live_process_count() > 0) {
    std::string stuck;
    for (const auto& p : processes_) {
      if (!p->finished()) {
        if (!stuck.empty()) stuck += ", ";
        stuck += p->name();
      }
    }
    throw InternalError("simulation deadlock: no events pending but " +
                        std::to_string(live_process_count()) +
                        " process(es) blocked: " + stuck);
  }
}

std::size_t Engine::live_process_count() const noexcept {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

}  // namespace swapp::sim
