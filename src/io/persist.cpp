#include "io/persist.h"

#include <fstream>
#include <functional>
#include <map>
#include <utility>

#include "io/record.h"
#include "support/error.h"

namespace swapp::io {
namespace {

constexpr int kImbVersion = 1;
constexpr int kSpecVersion = 1;
constexpr int kAppVersion = 1;
constexpr int kSurrogateVersion = 1;

// --- PmuCounters as a flat field list (order is part of the format) ---------

void write_counters(RecordWriter& w, const machine::PmuCounters& c) {
  w.field(c.instructions)
      .field(c.cycles)
      .field(c.seconds)
      .field(c.cpi_completion)
      .field(c.cpi_stall_fp)
      .field(c.cpi_stall_mem)
      .field(c.cpi_stall_branch)
      .field(c.cpi_stall_other)
      .field(c.fp_per_instr)
      .field(c.fp_vector_fraction)
      .field(c.erat_miss_rate)
      .field(c.slb_miss_rate)
      .field(c.tlb_miss_rate)
      .field(c.data_from_l2_per_instr)
      .field(c.data_from_l3_per_instr)
      .field(c.data_from_local_mem_per_instr)
      .field(c.data_from_remote_mem_per_instr)
      .field(c.memory_bandwidth_gbs);
}

constexpr std::size_t kCounterFieldCount = 18;

machine::PmuCounters read_counters(const Record& r, std::size_t offset) {
  SWAPP_REQUIRE(r.fields.size() >= offset + kCounterFieldCount,
                "truncated counter record");
  machine::PmuCounters c;
  std::size_t i = offset;
  c.instructions = r.num(i++);
  c.cycles = r.num(i++);
  c.seconds = r.num(i++);
  c.cpi_completion = r.num(i++);
  c.cpi_stall_fp = r.num(i++);
  c.cpi_stall_mem = r.num(i++);
  c.cpi_stall_branch = r.num(i++);
  c.cpi_stall_other = r.num(i++);
  c.fp_per_instr = r.num(i++);
  c.fp_vector_fraction = r.num(i++);
  c.erat_miss_rate = r.num(i++);
  c.slb_miss_rate = r.num(i++);
  c.tlb_miss_rate = r.num(i++);
  c.data_from_l2_per_instr = r.num(i++);
  c.data_from_l3_per_instr = r.num(i++);
  c.data_from_local_mem_per_instr = r.num(i++);
  c.data_from_remote_mem_per_instr = r.num(i++);
  c.memory_bandwidth_gbs = r.num(i++);
  return c;
}

void write_table(RecordWriter& w, const std::string& tag,
                 const std::string& name, const CoreSizeTable& table) {
  for (const CoreSizeTable::Sample& s : table.samples()) {
    w.row(tag).field(name).field(s.cores).field(s.bytes).field(s.seconds);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ImbDatabase
// ---------------------------------------------------------------------------

void write_imb_database(std::ostream& os, const imb::ImbDatabase& db) {
  RecordWriter w(os, "imb-database", kImbVersion);
  w.row("machine").field(db.machine_name).field(db.cores_per_node);
  for (const auto& [routine, table] : db.tables) {
    write_table(w, "table", mpi::to_string(routine), table);
  }
  write_table(w, "msr", "far-x1", db.multi_sendrecv_x1);
  write_table(w, "msr", "far-x2", db.multi_sendrecv_x2);
  write_table(w, "msr", "near-x1", db.multi_sendrecv_near_x1);
  write_table(w, "msr", "near-x2", db.multi_sendrecv_near_x2);
}

namespace {

mpi::Routine routine_from_name(const std::string& name) {
  for (const mpi::Routine r :
       {mpi::Routine::kSend, mpi::Routine::kRecv, mpi::Routine::kSendrecv,
        mpi::Routine::kIsend, mpi::Routine::kIrecv, mpi::Routine::kWaitall,
        mpi::Routine::kBarrier, mpi::Routine::kBcast, mpi::Routine::kReduce,
        mpi::Routine::kAllreduce, mpi::Routine::kAllgather,
        mpi::Routine::kAlltoall}) {
    if (mpi::to_string(r) == name) return r;
  }
  throw InvalidArgument("unknown MPI routine in data file: " + name);
}

}  // namespace

imb::ImbDatabase read_imb_database(std::istream& is) {
  RecordReader reader(is, "imb-database", kImbVersion);
  imb::ImbDatabase db;
  Record r;
  while (reader.next(r)) {
    if (r.tag == "machine") {
      db.machine_name = r.str(0);
      db.cores_per_node = static_cast<int>(r.integer(1));
    } else if (r.tag == "table") {
      db.tables[routine_from_name(r.str(0))].insert(
          static_cast<int>(r.integer(1)), r.num(2), r.num(3));
    } else if (r.tag == "msr") {
      const std::string& which = r.str(0);
      CoreSizeTable* table = nullptr;
      if (which == "far-x1") table = &db.multi_sendrecv_x1;
      else if (which == "far-x2") table = &db.multi_sendrecv_x2;
      else if (which == "near-x1") table = &db.multi_sendrecv_near_x1;
      else if (which == "near-x2") table = &db.multi_sendrecv_near_x2;
      else throw InvalidArgument("unknown msr table: " + which);
      table->insert(static_cast<int>(r.integer(1)), r.num(2), r.num(3));
    } else {
      throw InvalidArgument("unknown imb-database record: " + r.tag);
    }
  }
  SWAPP_REQUIRE(!db.machine_name.empty(),
                "imb-database file has no machine record");
  return db;
}

// ---------------------------------------------------------------------------
// SpecLibrary
// ---------------------------------------------------------------------------

void write_spec_library(std::ostream& os, const core::SpecLibrary& lib) {
  RecordWriter w(os, "spec-library", kSpecVersion);
  w.row("base").field(lib.base_machine).field(lib.base_cores_per_node);
  for (const std::string& name : lib.names) w.row("benchmark").field(name);
  for (const auto& [occ, by_name] : lib.base_counters_st) {
    for (const auto& [name, counters] : by_name) {
      write_counters(w.row("counters-st").field(name).field(occ), counters);
    }
  }
  for (const auto& [occ, by_name] : lib.base_counters_smt) {
    for (const auto& [name, counters] : by_name) {
      write_counters(w.row("counters-smt").field(name).field(occ), counters);
    }
  }
  for (const auto& [occ, by_name] : lib.base_runtime) {
    for (const auto& [name, seconds] : by_name) {
      w.row("base-runtime").field(name).field(occ).field(seconds);
    }
  }
  for (const auto& [machine, info] : lib.targets) {
    w.row("target").field(machine).field(info.cores_per_node);
    for (const auto& [occ, by_name] : info.runtime) {
      for (const auto& [name, seconds] : by_name) {
        w.row("target-runtime")
            .field(machine)
            .field(name)
            .field(occ)
            .field(seconds);
      }
    }
  }
}

core::SpecLibrary read_spec_library(std::istream& is) {
  RecordReader reader(is, "spec-library", kSpecVersion);
  core::SpecLibrary lib;
  Record r;
  while (reader.next(r)) {
    if (r.tag == "base") {
      lib.base_machine = r.str(0);
      lib.base_cores_per_node = static_cast<int>(r.integer(1));
    } else if (r.tag == "benchmark") {
      lib.names.push_back(r.str(0));
    } else if (r.tag == "counters-st") {
      lib.base_counters_st[static_cast<int>(r.integer(1))][r.str(0)] =
          read_counters(r, 2);
    } else if (r.tag == "counters-smt") {
      lib.base_counters_smt[static_cast<int>(r.integer(1))][r.str(0)] =
          read_counters(r, 2);
    } else if (r.tag == "base-runtime") {
      lib.base_runtime[static_cast<int>(r.integer(1))][r.str(0)] = r.num(2);
    } else if (r.tag == "target") {
      lib.targets[r.str(0)].cores_per_node = static_cast<int>(r.integer(1));
    } else if (r.tag == "target-runtime") {
      lib.targets[r.str(0)].runtime[static_cast<int>(r.integer(2))]
          [r.str(1)] = r.num(3);
    } else {
      throw InvalidArgument("unknown spec-library record: " + r.tag);
    }
  }
  SWAPP_REQUIRE(!lib.names.empty(), "spec-library file has no benchmarks");
  return lib;
}

// ---------------------------------------------------------------------------
// AppBaseData
// ---------------------------------------------------------------------------

void write_app_data(std::ostream& os, const core::AppBaseData& data) {
  RecordWriter w(os, "app-base-data", kAppVersion);
  w.row("app")
      .field(data.app)
      .field(data.base_machine)
      .field(data.threads_per_rank);
  for (const auto& [cores, counters] : data.counters_st) {
    write_counters(w.row("counters-st").field(cores), counters);
  }
  for (const auto& [cores, counters] : data.counters_smt) {
    write_counters(w.row("counters-smt").field(cores), counters);
  }
  for (const auto& [cores, seconds] : data.mean_compute) {
    w.row("mean-compute").field(cores).field(seconds);
  }
  for (const auto& [cores, profile] : data.mpi_profiles) {
    w.row("profile")
        .field(cores)
        .field(profile.application)
        .field(profile.wall_time);
    for (const mpi::TaskBreakdown& task : profile.per_task) {
      w.row("task").field(cores).field(task.compute).field(task.communication);
    }
    for (const auto& [routine, rp] : profile.routines) {
      // Totals are accumulated per event during profiling, not per bucket;
      // re-summing buckets on load lands on different low-order bits, so the
      // exact totals are part of the format.
      w.row("routine")
          .field(cores)
          .field(mpi::to_string(routine))
          .field(static_cast<std::uint64_t>(rp.total_calls))
          .field(rp.total_elapsed);
      for (const auto& [bytes, bucket] : rp.by_size) {
        w.row("bucket")
            .field(cores)
            .field(mpi::to_string(routine))
            .field(static_cast<std::uint64_t>(bytes))
            .field(static_cast<std::uint64_t>(bucket.calls))
            .field(bucket.elapsed)
            .field(bucket.avg_in_flight)
            .field(bucket.avg_rank_distance);
      }
    }
  }
}

core::AppBaseData read_app_data(std::istream& is) {
  RecordReader reader(is, "app-base-data", kAppVersion);
  core::AppBaseData data;
  // Exact per-routine totals ("routine" rows); files written before those
  // rows existed fall back to the bucket sums accumulated below.
  std::map<std::pair<int, mpi::Routine>, std::pair<std::uint64_t, Seconds>>
      exact_totals;
  Record r;
  while (reader.next(r)) {
    if (r.tag == "app") {
      data.app = r.str(0);
      data.base_machine = r.str(1);
      data.threads_per_rank =
          r.fields.size() > 2 ? static_cast<int>(r.integer(2)) : 1;
    } else if (r.tag == "counters-st") {
      data.counters_st[static_cast<int>(r.integer(0))] = read_counters(r, 1);
    } else if (r.tag == "counters-smt") {
      data.counters_smt[static_cast<int>(r.integer(0))] = read_counters(r, 1);
    } else if (r.tag == "mean-compute") {
      data.mean_compute[static_cast<int>(r.integer(0))] = r.num(1);
    } else if (r.tag == "profile") {
      mpi::MpiProfile& p = data.mpi_profiles[static_cast<int>(r.integer(0))];
      p.ranks = static_cast<int>(r.integer(0));
      p.application = r.str(1);
      p.wall_time = r.num(2);
    } else if (r.tag == "task") {
      mpi::MpiProfile& p = data.mpi_profiles[static_cast<int>(r.integer(0))];
      p.per_task.push_back(
          mpi::TaskBreakdown{.compute = r.num(1), .communication = r.num(2)});
    } else if (r.tag == "routine") {
      exact_totals[{static_cast<int>(r.integer(0)),
                    routine_from_name(r.str(1))}] = {
          static_cast<std::uint64_t>(r.integer(2)), r.num(3)};
    } else if (r.tag == "bucket") {
      mpi::MpiProfile& p = data.mpi_profiles[static_cast<int>(r.integer(0))];
      const mpi::Routine routine = routine_from_name(r.str(1));
      mpi::RoutineProfile& rp = p.routines[routine];
      rp.routine = routine;
      mpi::SizeBucket& b =
          rp.by_size[static_cast<Bytes>(r.integer(2))];
      b.bytes = static_cast<Bytes>(r.integer(2));
      b.calls = static_cast<std::uint64_t>(r.integer(3));
      b.elapsed = r.num(4);
      b.avg_in_flight = r.num(5);
      b.avg_rank_distance = r.num(6);
      rp.total_calls += b.calls;
      rp.total_elapsed += b.elapsed;
    } else {
      throw InvalidArgument("unknown app-base-data record: " + r.tag);
    }
  }
  for (const auto& [key, totals] : exact_totals) {
    const auto profile_it = data.mpi_profiles.find(key.first);
    if (profile_it == data.mpi_profiles.end()) continue;
    const auto routine_it = profile_it->second.routines.find(key.second);
    if (routine_it == profile_it->second.routines.end()) continue;
    routine_it->second.total_calls = totals.first;
    routine_it->second.total_elapsed = totals.second;
  }
  SWAPP_REQUIRE(!data.app.empty(), "app-base-data file has no app record");
  return data;
}

// ---------------------------------------------------------------------------
// ComputeProjection
// ---------------------------------------------------------------------------

void write_compute_projection(std::ostream& os,
                              const core::ComputeProjection& p) {
  RecordWriter w(os, "swapp-surrogate", kSurrogateVersion);
  w.row("anchor")
      .field(p.target_compute)
      .field(p.base_compute)
      .field(p.hyper_scaling_cores)
      .field(p.gamma)
      .field(p.extrapolated_counters ? 1 : 0);
  w.row("fit")
      .field(p.surrogate.fitness)
      .field(p.surrogate.metric_distance)
      .field(p.surrogate.runtime_error);
  for (const core::SurrogateTerm& t : p.surrogate.terms) {
    // kNoSlot is serialised as -1 (slot is a size_t in memory).
    const std::int64_t slot =
        t.slot == core::SurrogateTerm::kNoSlot
            ? -1
            : static_cast<std::int64_t>(t.slot);
    w.row("term").field(t.benchmark).field(t.weight).field(slot);
  }
  auto weights_row = [&w](const std::string& tag,
                          const core::GroupWeights& weights) {
    w.row(tag);
    for (const double v : weights.weight) w.field(v);
  };
  weights_row("base-weights", p.base_weights);
  weights_row("adjusted-weights", p.adjusted_weights);
}

core::ComputeProjection read_compute_projection(std::istream& is) {
  RecordReader reader(is, "swapp-surrogate", kSurrogateVersion);
  core::ComputeProjection p;
  bool have_anchor = false;
  auto read_weights = [](const Record& rec, core::GroupWeights& weights) {
    SWAPP_REQUIRE(rec.fields.size() == machine::kMetricGroupCount,
                  "surrogate weights row has wrong arity");
    for (std::size_t i = 0; i < machine::kMetricGroupCount; ++i) {
      weights.weight[i] = rec.num(i);
    }
  };
  Record r;
  while (reader.next(r)) {
    if (r.tag == "anchor") {
      p.target_compute = r.num(0);
      p.base_compute = r.num(1);
      p.hyper_scaling_cores = r.num(2);
      p.gamma = r.num(3);
      p.extrapolated_counters = r.integer(4) != 0;
      have_anchor = true;
    } else if (r.tag == "fit") {
      p.surrogate.fitness = r.num(0);
      p.surrogate.metric_distance = r.num(1);
      p.surrogate.runtime_error = r.num(2);
    } else if (r.tag == "term") {
      core::SurrogateTerm t;
      t.benchmark = r.str(0);
      t.weight = r.num(1);
      const std::int64_t slot = r.integer(2);
      t.slot = slot < 0 ? core::SurrogateTerm::kNoSlot
                        : static_cast<std::size_t>(slot);
      p.surrogate.terms.push_back(std::move(t));
    } else if (r.tag == "base-weights") {
      read_weights(r, p.base_weights);
    } else if (r.tag == "adjusted-weights") {
      read_weights(r, p.adjusted_weights);
    } else {
      throw InvalidArgument("unknown swapp-surrogate record: " + r.tag);
    }
  }
  SWAPP_REQUIRE(have_anchor, "swapp-surrogate file has no anchor record");
  return p;
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

namespace {

template <typename WriteFn>
void save_file(const std::filesystem::path& path, WriteFn&& write) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open for writing: " + path.string());
  write(os);
  os.flush();
  if (!os) throw Error("write failed: " + path.string());
}

template <typename ReadFn>
auto load_file(const std::filesystem::path& path, ReadFn&& read) {
  std::ifstream is(path);
  if (!is) throw NotFound("cannot open: " + path.string());
  return read(is);
}

}  // namespace

void save_imb_database(const std::filesystem::path& path,
                       const imb::ImbDatabase& db) {
  save_file(path, [&](std::ostream& os) { write_imb_database(os, db); });
}

imb::ImbDatabase load_imb_database(const std::filesystem::path& path) {
  return load_file(path,
                   [](std::istream& is) { return read_imb_database(is); });
}

void save_spec_library(const std::filesystem::path& path,
                       const core::SpecLibrary& lib) {
  save_file(path, [&](std::ostream& os) { write_spec_library(os, lib); });
}

core::SpecLibrary load_spec_library(const std::filesystem::path& path) {
  return load_file(path,
                   [](std::istream& is) { return read_spec_library(is); });
}

void save_app_data(const std::filesystem::path& path,
                   const core::AppBaseData& data) {
  save_file(path, [&](std::ostream& os) { write_app_data(os, data); });
}

core::AppBaseData load_app_data(const std::filesystem::path& path) {
  return load_file(path, [](std::istream& is) { return read_app_data(is); });
}

void save_compute_projection(const std::filesystem::path& path,
                             const core::ComputeProjection& p) {
  save_file(path,
            [&](std::ostream& os) { write_compute_projection(os, p); });
}

core::ComputeProjection load_compute_projection(
    const std::filesystem::path& path) {
  return load_file(path,
                   [](std::istream& is) { return read_compute_projection(is); });
}

}  // namespace swapp::io
