// Line-oriented record serialisation.
//
// SWAPP's persistence format is deliberately boring: one record per line,
// whitespace-separated fields, strings quoted with backslash escapes, a
// `#`-prefixed header naming the record kind and format version.  It is
// diff-able, greppable, and stable across platforms — what you want for
// benchmark databases that get collected on one system, archived, and
// consumed years later on another (exactly the "published benchmark data"
// workflow of the paper).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.h"

namespace swapp::io {

/// Writes records to a stream.  Each row() call emits one line.
class RecordWriter {
 public:
  RecordWriter(std::ostream& os, const std::string& kind, int version);

  /// Starts a new record of the given tag.
  RecordWriter& row(const std::string& tag);
  RecordWriter& field(const std::string& value);  ///< quoted string
  RecordWriter& field(double value);              ///< round-trip precision
  RecordWriter& field(std::int64_t value);
  RecordWriter& field(int value) { return field(static_cast<std::int64_t>(value)); }
  RecordWriter& field(std::uint64_t value);

  /// Flushes the pending record (also called by row() and the destructor).
  void finish();
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

 private:
  std::ostream& os_;
  std::ostringstream line_;
  bool pending_ = false;
};

/// One parsed record: a tag plus its fields.
struct Record {
  std::string tag;
  std::vector<std::string> fields;

  const std::string& str(std::size_t i) const;
  double num(std::size_t i) const;
  std::int64_t integer(std::size_t i) const;
};

/// Reads records written by RecordWriter; validates kind and version.
class RecordReader {
 public:
  RecordReader(std::istream& is, const std::string& expected_kind,
               int expected_version);

  /// Next record, or false at end of stream.
  bool next(Record& out);

 private:
  std::istream& is_;
};

/// Escapes/unescapes one string field.
std::string quote(const std::string& s);
std::string unquote(const std::string& s);

}  // namespace swapp::io
