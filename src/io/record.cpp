#include "io/record.h"

#include <cctype>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

namespace swapp::io {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  out += '"';
  return out;
}

std::string unquote(const std::string& s) {
  SWAPP_REQUIRE(s.size() >= 2 && s.front() == '"' && s.back() == '"',
                "malformed quoted string: " + s);
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    if (s[i] == '\\' && i + 2 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

RecordWriter::RecordWriter(std::ostream& os, const std::string& kind,
                           int version)
    : os_(os) {
  os_ << "#swapp " << quote(kind) << " v" << version << '\n';
}

RecordWriter& RecordWriter::row(const std::string& tag) {
  finish();
  line_.str({});
  line_ << tag;
  pending_ = true;
  return *this;
}

RecordWriter& RecordWriter::field(const std::string& value) {
  SWAPP_ASSERT(pending_, "field() before row()");
  line_ << ' ' << quote(value);
  return *this;
}

RecordWriter& RecordWriter::field(double value) {
  SWAPP_ASSERT(pending_, "field() before row()");
  line_ << ' ' << std::setprecision(17) << value;
  return *this;
}

RecordWriter& RecordWriter::field(std::int64_t value) {
  SWAPP_ASSERT(pending_, "field() before row()");
  line_ << ' ' << value;
  return *this;
}

RecordWriter& RecordWriter::field(std::uint64_t value) {
  SWAPP_ASSERT(pending_, "field() before row()");
  line_ << ' ' << value;
  return *this;
}

void RecordWriter::finish() {
  if (pending_) {
    os_ << line_.str() << '\n';
    pending_ = false;
  }
}

RecordWriter::~RecordWriter() { finish(); }

const std::string& Record::str(std::size_t i) const {
  SWAPP_REQUIRE(i < fields.size(), "record field index out of range");
  return fields[i];
}

double Record::num(std::size_t i) const {
  const std::string& f = str(i);
  try {
    return std::stod(f);
  } catch (const std::exception&) {
    throw InvalidArgument("expected a number, got: " + f);
  }
}

std::int64_t Record::integer(std::size_t i) const {
  const std::string& f = str(i);
  try {
    return std::stoll(f);
  } catch (const std::exception&) {
    throw InvalidArgument("expected an integer, got: " + f);
  }
}

namespace {

/// Splits one line into tag + fields, honouring quoted strings.
Record parse_line(const std::string& line) {
  Record out;
  std::size_t i = 0;
  const auto skip_space = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  const auto take_token = [&]() -> std::string {
    skip_space();
    if (i >= line.size()) return {};
    if (line[i] == '"') {
      const std::size_t start = i;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
        } else if (line[i] == '"') {
          ++i;
          break;
        } else {
          ++i;
        }
      }
      return unquote(line.substr(start, i - start));
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    return line.substr(start, i - start);
  };

  out.tag = take_token();
  while (true) {
    skip_space();
    if (i >= line.size()) break;
    out.fields.push_back(take_token());
  }
  return out;
}

}  // namespace

RecordReader::RecordReader(std::istream& is, const std::string& expected_kind,
                           int expected_version)
    : is_(is) {
  std::string header;
  SWAPP_REQUIRE(static_cast<bool>(std::getline(is_, header)),
                "empty stream: no swapp header");
  const Record h = parse_line(header);
  SWAPP_REQUIRE(h.tag == "#swapp", "not a swapp data file");
  SWAPP_REQUIRE(h.fields.size() >= 2, "malformed swapp header");
  const std::string kind = h.fields[0];
  if (kind != expected_kind) {
    throw InvalidArgument("expected a '" + expected_kind + "' file, found '" +
                          kind + "'");
  }
  const std::string version = h.fields[1];
  const std::string expected = "v" + std::to_string(expected_version);
  if (version != expected) {
    throw InvalidArgument("unsupported " + kind + " version " + version +
                          " (this build reads " + expected + ")");
  }
}

bool RecordReader::next(Record& out) {
  std::string line;
  while (std::getline(is_, line)) {
    if (line.empty() || line[0] == '#') continue;
    out = parse_line(line);
    return true;
  }
  return false;
}

}  // namespace swapp::io
