// Persistence for SWAPP's data artifacts.
//
// The projection workflow naturally splits across time and teams: benchmark
// databases for a target system are collected (or published) once and reused
// for every application; application base profiles are collected by the
// application team once and projected onto many candidates.  These functions
// store each artifact as a versioned, line-oriented text file (io/record.h):
//
//   * imb::ImbDatabase         — the Eq. 3 parameter tables per machine;
//   * core::SpecLibrary        — SPEC-style runtimes/counters per occupancy;
//   * core::AppBaseData        — application MPI profiles + counters;
//   * core::ComputeProjection  — a finished GA surrogate search (anchors,
//                                terms, weights), so warm caches can replay
//                                projections without re-running the GA.
//
// Round-tripping is exact up to double formatting (which uses round-trip
// precision), so saved and freshly-measured databases project identically.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/compute_projection.h"
#include "core/profiles.h"
#include "imb/suite.h"

namespace swapp::io {

// --- streams ---------------------------------------------------------------
void write_imb_database(std::ostream& os, const imb::ImbDatabase& db);
imb::ImbDatabase read_imb_database(std::istream& is);

void write_spec_library(std::ostream& os, const core::SpecLibrary& lib);
core::SpecLibrary read_spec_library(std::istream& is);

void write_app_data(std::ostream& os, const core::AppBaseData& data);
core::AppBaseData read_app_data(std::istream& is);

void write_compute_projection(std::ostream& os,
                              const core::ComputeProjection& p);
core::ComputeProjection read_compute_projection(std::istream& is);

// --- files -----------------------------------------------------------------
void save_imb_database(const std::filesystem::path& path,
                       const imb::ImbDatabase& db);
imb::ImbDatabase load_imb_database(const std::filesystem::path& path);

void save_spec_library(const std::filesystem::path& path,
                       const core::SpecLibrary& lib);
core::SpecLibrary load_spec_library(const std::filesystem::path& path);

void save_app_data(const std::filesystem::path& path,
                   const core::AppBaseData& data);
core::AppBaseData load_app_data(const std::filesystem::path& path);

void save_compute_projection(const std::filesystem::path& path,
                             const core::ComputeProjection& p);
core::ComputeProjection load_compute_projection(
    const std::filesystem::path& path);

}  // namespace swapp::io
