// Export/import of traces and metric snapshots.
//
// Two trace formats from the same records:
//   * Chrome trace-event JSON — an object with a `traceEvents` array of
//     `ph:"X"` complete events (spans) and `ph:"C"` counter samples, loadable
//     in chrome://tracing and Perfetto.  Nesting renders per thread by time
//     inclusion; the explicit span/parent ids ride along in `args` so tools
//     can re-stitch cross-thread edges.
//   * JSONL — one JSON object per line, the streaming/grep-friendly form.
//
// Metric snapshots serialise as JSONL (one metric per line) and read back
// with `read_metrics_jsonl`, which parses exactly what the writer emits —
// the `swapp stats` subcommand and the smoke tests consume this.
//
// `write_trace_file` picks the format from the extension: `.jsonl` writes
// JSONL, anything else the Chrome format.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace swapp::obs {

void write_trace_chrome(std::ostream& os,
                        const std::vector<TraceEvent>& events);
void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events);
void write_trace_file(const std::filesystem::path& path,
                      const std::vector<TraceEvent>& events);

/// Parses JSONL trace lines as emitted by `write_trace_jsonl`.  Throws
/// swapp::InvalidArgument on malformed input.
std::vector<TraceEvent> read_trace_jsonl(std::istream& is);

/// Lenient JSONL trace reading for operator-supplied files.
struct TraceReadReport {
  std::vector<TraceEvent> events;
  std::size_t skipped_lines = 0;
};

/// Like read_trace_jsonl, but a line that fails to parse — malformed, or the
/// truncated tail of a file cut mid-write — is skipped with one warning on
/// `warn` naming the line number and reason, instead of aborting the whole
/// read.  `swapp stats --trace` uses this so one bad line cannot hide an
/// otherwise fine trace.
TraceReadReport read_trace_jsonl_lenient(std::istream& is, std::ostream& warn);

void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot);
void write_metrics_file(const std::filesystem::path& path,
                        const MetricsSnapshot& snapshot);

/// Parses JSONL metric lines as emitted by `write_metrics_jsonl`.  Throws
/// swapp::InvalidArgument on malformed input.
MetricsSnapshot read_metrics_jsonl(std::istream& is);
MetricsSnapshot load_metrics_file(const std::filesystem::path& path);

/// Prometheus text exposition of a snapshot (`swapp stats --prometheus`):
/// counters as `<name>_total`, gauges plain, histograms as cumulative
/// `<name>_bucket{le="..."}` series ending in le="+Inf" plus `_sum` and
/// `_count`.  Metric names are prefixed "swapp_" and sanitised (every
/// character outside [a-zA-Z0-9_] becomes '_').
void write_metrics_prometheus(std::ostream& os,
                              const MetricsSnapshot& snapshot);

/// Probes that `path` can be opened for writing and throws swapp::FileError
/// naming the path otherwise.  Existing content is preserved; a file created
/// only by the probe is removed again.  CLI flags that write at process exit
/// (--trace/--metrics/--out) call this up front, so a bad path fails before
/// the run instead of after it.
void require_writable(const std::filesystem::path& path);

/// Escapes a string for embedding in a JSON double-quoted literal.
std::string json_escape(const std::string& s);

}  // namespace swapp::obs
