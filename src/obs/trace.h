// Span tracer: RAII spans with parent/child nesting that survives thread-pool
// fan-out, buffered per thread and drained to JSONL or Chrome trace-event
// files (obs/export.h).
//
// Model: a `Span` opens on construction and closes on destruction.  Its
// parent is the innermost span open on the same thread, or — when the thread
// has none, as a pool worker does — the *logical parent* installed by
// `LogicalParentScope`.  `support/parallel` installs the dispatching caller's
// current span as every worker's logical parent, so a trace taken across a
// `parallel_for` stitches into one tree: GA restart spans on four workers all
// hang off the caller's "ga.search" span.
//
// Every record carries a stable small thread id (registration order) and the
// span's own id, so exporters can emit both flat JSONL and nested Chrome
// trace events.  Counter samples (`trace_counter`) ride in the same buffers
// and become `ph:"C"` events — the GA uses them for per-generation
// convergence series.
//
// Disabled (the default), a Span construction is one relaxed atomic load;
// compile with SWAPP_OBS_COMPILED_OUT to remove the macros entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swapp::obs {

/// Runtime switch for span/counter recording.
bool tracing_enabled() noexcept;
void set_tracing_enabled(bool on) noexcept;

/// One completed trace record.
struct TraceEvent {
  enum class Kind { kSpan, kCounter };
  Kind kind = Kind::kSpan;
  std::string name;
  std::uint64_t id = 0;      ///< span id; 0 for counter samples
  std::uint64_t parent = 0;  ///< enclosing span id; 0 = root
  std::uint32_t tid = 0;     ///< stable per-thread id (registration order)
  double start_us = 0.0;     ///< µs since the process trace epoch
  double dur_us = 0.0;       ///< spans only
  double value = 0.0;        ///< counter samples only
};

class Span {
 public:
  /// `name` must outlive the span (string literals at every call site).
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id, or 0 when tracing was disabled at construction.
  std::uint64_t id() const noexcept { return id_; }

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
};

/// Innermost open span on this thread (else its logical parent, else 0) —
/// what a fan-out should install as its workers' logical parent.
std::uint64_t current_span_id() noexcept;

/// Scoped override of this thread's fallback parent; used by the thread pool
/// so worker-side spans attach to the dispatching caller's span.
class LogicalParentScope {
 public:
  explicit LogicalParentScope(std::uint64_t parent_id) noexcept;
  ~LogicalParentScope();

  LogicalParentScope(const LogicalParentScope&) = delete;
  LogicalParentScope& operator=(const LogicalParentScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// Records a named sample at the current time (Chrome `ph:"C"` counter
/// track).  No-op while tracing is disabled.
void trace_counter(const char* name, double value) noexcept;

/// Monotonic µs since the process trace epoch.
double trace_now_us() noexcept;

/// Moves every completed record out of every thread buffer, sorted by start
/// time (ties by id).  Spans still open stay with their thread and appear in
/// a later drain once closed.
std::vector<TraceEvent> drain_trace();

/// Open spans on the calling thread (test hook: 0 after balanced RAII).
std::size_t open_span_count() noexcept;

}  // namespace swapp::obs

#ifndef SWAPP_OBS_COMPILED_OUT

#define SWAPP_OBS_CONCAT_(a, b) a##b
#define SWAPP_OBS_CONCAT(a, b) SWAPP_OBS_CONCAT_(a, b)

/// Opens a span for the rest of the enclosing scope.
#define SWAPP_SPAN(name) \
  const ::swapp::obs::Span SWAPP_OBS_CONCAT(swapp_span_, __LINE__){name}

#define SWAPP_TRACE_COUNTER(name, value)                \
  do {                                                  \
    if (::swapp::obs::tracing_enabled()) [[unlikely]] { \
      ::swapp::obs::trace_counter(name, value);         \
    }                                                   \
  } while (false)

#else  // SWAPP_OBS_COMPILED_OUT

#define SWAPP_SPAN(name) \
  do {                   \
  } while (false)
#define SWAPP_TRACE_COUNTER(name, value) \
  do {                                   \
  } while (false)

#endif  // SWAPP_OBS_COMPILED_OUT
