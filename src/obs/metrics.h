// Metrics registry: named counters, gauges, and fixed-bucket histograms for
// the hot paths of the projection pipeline (GA generations, pool dispatch,
// cache lookups).
//
// Design constraints, in order:
//   * Zero overhead when disabled.  The SWAPP_COUNT/SWAPP_OBSERVE/... macros
//     compile to nothing under SWAPP_OBS_COMPILED_OUT; when compiled in they
//     cost one relaxed atomic load while metrics are disabled (the default).
//   * Lock-cheap when enabled.  Every thread records into its own shard —
//     a per-thread slot array guarded by a mutex only that thread and the
//     (rare) snapshot reader ever touch — so hot paths never contend.
//   * Deterministic snapshots.  `snapshot()` merges all shards (including
//     those of exited threads) and reports metrics sorted by name.
//
// Metric names are stable dotted strings ("cache.memory_hits",
// "pool.task_us"); histograms use log2 buckets, so they need no per-metric
// configuration and merge trivially.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swapp::obs {

/// Runtime switch for metric recording.  Off by default: the macros and
/// handle methods below become a single relaxed load.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Log2 histogram buckets: bucket i counts observations in [2^(i-1), 2^i)
/// (bucket 0 counts values < 1).  32 buckets cover [0, ~2e9] — microsecond
/// latencies up to half an hour.
inline constexpr std::size_t kHistogramBuckets = 32;

/// Bucket index an observation lands in (values are clamped to the range).
std::size_t histogram_bucket(double value) noexcept;
/// Inclusive upper bound of bucket `i` (for quantile estimates).
double histogram_bucket_bound(std::size_t i) noexcept;

// --- recording handles ------------------------------------------------------
// A handle resolves a name to a registry slot once (first use; thread-safe)
// and records through thread-local shards afterwards.  Handles are cheap to
// copy and safe to keep in function-local statics.

class Counter {
 public:
  explicit Counter(const std::string& name);
  void add(std::uint64_t n) const noexcept;
  void increment() const noexcept { add(1); }

 private:
  std::size_t id_;
};

/// Gauges are last-write-wins process-wide values (pool size, batch size);
/// they skip the shards and write one atomic.
class Gauge {
 public:
  explicit Gauge(const std::string& name);
  void set(double value) const noexcept;

 private:
  std::size_t id_;
};

class Histogram {
 public:
  explicit Histogram(const std::string& name);
  void observe(double value) const noexcept;

 private:
  std::size_t id_;
};

// --- snapshots --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Bucket-resolution quantile estimate (upper bound of the bucket the
  /// q-quantile observation fell in); q in [0, 1].
  double quantile(double q) const;
};

/// All registered metrics, shards merged, sorted by name.  Metrics that were
/// registered but never recorded report zero values.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* counter(const std::string& name) const;
  const GaugeValue* gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;
};

MetricsSnapshot metrics_snapshot();

/// Zeroes every shard and gauge (registrations survive).  Test/CLI hook; not
/// meant to run concurrently with recording threads.
void reset_metrics();

}  // namespace swapp::obs

// --- recording macros -------------------------------------------------------
// The macro forms register on first execution (function-local static) and
// are the idiomatic way to instrument a hot path:
//
//   SWAPP_COUNT("ga.generations", 1);
//   SWAPP_OBSERVE("pool.task_us", elapsed_us);
//   SWAPP_GAUGE_SET("pool.threads", n);
//
// Define SWAPP_OBS_COMPILED_OUT to compile every macro to nothing (the
// disabled-path benchmark then measures a program with no instrumentation).
#ifndef SWAPP_OBS_COMPILED_OUT

#define SWAPP_COUNT(name, n)                            \
  do {                                                  \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] { \
      static const ::swapp::obs::Counter swapp_c(name); \
      swapp_c.add(n);                                   \
    }                                                   \
  } while (false)

#define SWAPP_GAUGE_SET(name, value)                  \
  do {                                                \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] { \
      static const ::swapp::obs::Gauge swapp_g(name); \
      swapp_g.set(value);                             \
    }                                                 \
  } while (false)

#define SWAPP_OBSERVE(name, value)                        \
  do {                                                    \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] {   \
      static const ::swapp::obs::Histogram swapp_h(name); \
      swapp_h.observe(value);                             \
    }                                                     \
  } while (false)

#else  // SWAPP_OBS_COMPILED_OUT

#define SWAPP_COUNT(name, n) \
  do {                       \
  } while (false)
#define SWAPP_GAUGE_SET(name, value) \
  do {                               \
  } while (false)
#define SWAPP_OBSERVE(name, value) \
  do {                             \
  } while (false)

#endif  // SWAPP_OBS_COMPILED_OUT
