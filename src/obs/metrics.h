// Metrics registry: named counters, gauges, and fixed-bucket histograms for
// the hot paths of the projection pipeline (GA generations, pool dispatch,
// cache lookups).
//
// Design constraints, in order:
//   * Zero overhead when disabled.  The SWAPP_COUNT/SWAPP_OBSERVE/... macros
//     compile to nothing under SWAPP_OBS_COMPILED_OUT; when compiled in they
//     cost one relaxed atomic load while metrics are disabled (the default).
//   * Lock-cheap when enabled.  Every thread records into its own shard —
//     a per-thread slot array guarded by a mutex only that thread and the
//     (rare) snapshot reader ever touch — so hot paths never contend.
//   * Deterministic snapshots.  `snapshot()` merges all shards (including
//     those of exited threads) and reports metrics sorted by name.
//
// Metric names are stable dotted strings ("cache.memory_hits",
// "pool.task_us"); histograms use log2 buckets, so they need no per-metric
// configuration and merge trivially.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swapp::obs {

/// Runtime switch for metric recording.  Off by default: the macros and
/// handle methods below become a single relaxed load.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

// --- sampling ---------------------------------------------------------------
// Sampling is what makes metrics affordable *always on* in the daemon: each
// recording site keeps only a `rate` fraction of its records — decided by a
// per-thread xorshift draw against the site's atomic threshold, so the skip
// path touches no lock and no shard — and the kept records carry weight
// 1/rate, so snapshot counts, sums, and bucket tallies are re-inflated into
// unbiased estimates.  Rate 1.0 (the default) bypasses the RNG entirely and
// stays exact, so nothing changes for tests or one-shot CLI runs.

/// Sets the default sample rate for every metric, in (0, 1].  Existing and
/// future registrations both pick it up (prefix overrides win).
void set_metrics_sampling(double rate);

/// Per-metric policy: metrics whose name starts with `prefix` sample at
/// `rate` instead of the default (longest matching prefix wins).  The daemon
/// pins its low-frequency server./cache./planner. metrics to 1.0 this way,
/// so operator-facing counters and latency quantiles stay exact while the
/// hot GA/pool paths are decimated.
void set_metrics_sampling(const std::string& prefix, double rate);

/// Effective sample rate the named metric would record at.
double metrics_sampling(const std::string& name);

/// Restores rate 1.0 everywhere and drops all prefix overrides (test hook).
void reset_metrics_sampling();

/// Log2 histogram buckets: bucket i counts observations in [2^(i-1), 2^i)
/// (bucket 0 counts values < 1).  32 buckets cover [0, ~2e9] — microsecond
/// latencies up to half an hour.
inline constexpr std::size_t kHistogramBuckets = 32;

/// Bucket index an observation lands in (values are clamped to the range).
std::size_t histogram_bucket(double value) noexcept;
/// Inclusive upper bound of bucket `i` (for quantile estimates).
double histogram_bucket_bound(std::size_t i) noexcept;

// --- recording handles ------------------------------------------------------
// A handle resolves a name to a registry slot once (first use; thread-safe)
// and records through thread-local shards afterwards.  Handles are cheap to
// copy and safe to keep in function-local statics.

namespace detail {
/// Per-slot sampling cell (stable address inside the registry); handles read
/// its atomic threshold lock-free on every record.
struct SamplePolicy;
}  // namespace detail

class Counter {
 public:
  explicit Counter(const std::string& name);
  void add(std::uint64_t n) const noexcept;
  void increment() const noexcept { add(1); }

 private:
  std::size_t id_;
  const detail::SamplePolicy* policy_;
};

/// Gauges are last-write-wins process-wide values (pool size, batch size);
/// they skip the shards and write one atomic.
class Gauge {
 public:
  explicit Gauge(const std::string& name);
  void set(double value) const noexcept;

 private:
  std::size_t id_;
};

class Histogram {
 public:
  explicit Histogram(const std::string& name);
  void observe(double value) const noexcept;

 private:
  std::size_t id_;
  const detail::SamplePolicy* policy_;
};

// --- snapshots --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate with within-bucket linear interpolation: the
  /// q-quantile rank is located in its log2 bucket and placed linearly
  /// between the bucket's bounds, clamped into [min, max]; q in [0, 1].
  /// Exact for q=0 (min) and q=1 (max); within one bucket's span otherwise.
  double quantile(double q) const;
};

/// All registered metrics, shards merged, sorted by name.  Metrics that were
/// registered but never recorded report zero values.  Under sampling, counts
/// and bucket tallies are the rounded sums of the kept records' 1/rate
/// weights (unbiased estimates); histogram min/max reflect only the kept
/// observations.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* counter(const std::string& name) const;
  const GaugeValue* gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;
};

MetricsSnapshot metrics_snapshot();

/// Zeroes every shard and gauge (registrations survive).  Test/CLI hook; not
/// meant to run concurrently with recording threads.
void reset_metrics();

}  // namespace swapp::obs

// --- recording macros -------------------------------------------------------
// The macro forms register on first execution (function-local static) and
// are the idiomatic way to instrument a hot path:
//
//   SWAPP_COUNT("ga.generations", 1);
//   SWAPP_OBSERVE("pool.task_us", elapsed_us);
//   SWAPP_GAUGE_SET("pool.threads", n);
//
// Define SWAPP_OBS_COMPILED_OUT to compile every macro to nothing (the
// disabled-path benchmark then measures a program with no instrumentation).
#ifndef SWAPP_OBS_COMPILED_OUT

#define SWAPP_COUNT(name, n)                            \
  do {                                                  \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] { \
      static const ::swapp::obs::Counter swapp_c(name); \
      swapp_c.add(n);                                   \
    }                                                   \
  } while (false)

#define SWAPP_GAUGE_SET(name, value)                  \
  do {                                                \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] { \
      static const ::swapp::obs::Gauge swapp_g(name); \
      swapp_g.set(value);                             \
    }                                                 \
  } while (false)

#define SWAPP_OBSERVE(name, value)                        \
  do {                                                    \
    if (::swapp::obs::metrics_enabled()) [[unlikely]] {   \
      static const ::swapp::obs::Histogram swapp_h(name); \
      swapp_h.observe(value);                             \
    }                                                     \
  } while (false)

#else  // SWAPP_OBS_COMPILED_OUT

#define SWAPP_COUNT(name, n) \
  do {                       \
  } while (false)
#define SWAPP_GAUGE_SET(name, value) \
  do {                               \
  } while (false)
#define SWAPP_OBSERVE(name, value) \
  do {                             \
  } while (false)

#endif  // SWAPP_OBS_COMPILED_OUT
