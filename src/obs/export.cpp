#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace swapp::obs {
namespace {

/// Timestamps/durations print at fixed nanosecond resolution; generic
/// values (fitness samples, metric sums) at round-trip precision.
std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string round_trip(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

void write_event_object(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"swapp\",";
  if (e.kind == TraceEvent::Kind::kSpan) {
    os << "\"ph\":\"X\",\"ts\":" << fixed3(e.start_us)
       << ",\"dur\":" << fixed3(e.dur_us);
  } else {
    os << "\"ph\":\"C\",\"ts\":" << fixed3(e.start_us);
  }
  os << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{";
  if (e.kind == TraceEvent::Kind::kSpan) {
    os << "\"id\":" << e.id << ",\"parent\":" << e.parent;
  } else {
    os << "\"value\":" << round_trip(e.value) << ",\"parent\":" << e.parent;
  }
  os << "}}";
}

// --- minimal field extraction for the reader --------------------------------
// The readers only accept what the writers above emit: flat objects with
// known keys.  Extraction scans for `"key":` and parses the value in place.

std::size_t find_key(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  SWAPP_REQUIRE(at != std::string::npos,
                "trace/metrics line is missing key '" + key + "': " + line);
  return at + needle.size();
}

std::string string_field(const std::string& line, const std::string& key) {
  std::size_t at = find_key(line, key);
  SWAPP_REQUIRE(at < line.size() && line[at] == '"',
                "expected string value for '" + key + "': " + line);
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    char c = line[at];
    if (c == '\\' && at + 1 < line.size()) {
      ++at;
      c = line[at];
      if (c == 'n') c = '\n';
      if (c == 't') c = '\t';
    }
    out.push_back(c);
    ++at;
  }
  SWAPP_REQUIRE(at < line.size(), "unterminated string in line: " + line);
  return out;
}

double number_field(const std::string& line, const std::string& key) {
  const std::size_t at = find_key(line, key);
  std::size_t parsed = 0;
  const double value = std::stod(line.substr(at), &parsed);
  SWAPP_REQUIRE(parsed > 0, "expected number for '" + key + "': " + line);
  return value;
}

std::vector<std::uint64_t> array_field(const std::string& line,
                                       const std::string& key) {
  std::size_t at = find_key(line, key);
  SWAPP_REQUIRE(at < line.size() && line[at] == '[',
                "expected array for '" + key + "': " + line);
  ++at;
  std::vector<std::uint64_t> out;
  while (at < line.size() && line[at] != ']') {
    std::size_t parsed = 0;
    out.push_back(std::stoull(line.substr(at), &parsed));
    at += parsed;
    if (at < line.size() && line[at] == ',') ++at;
  }
  SWAPP_REQUIRE(at < line.size(), "unterminated array in line: " + line);
  return out;
}

TraceEvent parse_trace_line(const std::string& line) {
  TraceEvent e;
  const std::string ph = string_field(line, "ph");
  SWAPP_REQUIRE(ph == "X" || ph == "C", "unknown trace phase: " + ph);
  e.kind = ph == "X" ? TraceEvent::Kind::kSpan : TraceEvent::Kind::kCounter;
  e.name = string_field(line, "name");
  e.tid = static_cast<std::uint32_t>(number_field(line, "tid"));
  e.start_us = number_field(line, "ts");
  e.parent = static_cast<std::uint64_t>(number_field(line, "parent"));
  if (e.kind == TraceEvent::Kind::kSpan) {
    e.id = static_cast<std::uint64_t>(number_field(line, "id"));
    e.dur_us = number_field(line, "dur");
  } else {
    e.value = number_field(line, "value");
  }
  return e;
}

template <typename Fn>
void for_each_line(std::istream& is, Fn&& fn) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    fn(line);
  }
}

std::ofstream open_for_write(const std::filesystem::path& path) {
  std::ofstream os(path);
  if (!os.good()) throw FileError("cannot open for writing", path.string());
  return os;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
/// (the registry's dots, mostly) to '_' and prefix "swapp_".
std::string prometheus_name(const std::string& name) {
  std::string out = "swapp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_trace_chrome(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_event_object(os, events[i]);
  }
  os << "\n]}\n";
}

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    write_event_object(os, e);
    os << "\n";
  }
}

void write_trace_file(const std::filesystem::path& path,
                      const std::vector<TraceEvent>& events) {
  std::ofstream os = open_for_write(path);
  if (path.extension() == ".jsonl") {
    write_trace_jsonl(os, events);
  } else {
    write_trace_chrome(os, events);
  }
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& is) {
  std::vector<TraceEvent> out;
  for_each_line(is, [&](const std::string& line) {
    out.push_back(parse_trace_line(line));
  });
  return out;
}

TraceReadReport read_trace_jsonl_lenient(std::istream& is,
                                         std::ostream& warn) {
  TraceReadReport report;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
      report.events.push_back(parse_trace_line(line));
    } catch (const std::exception& e) {  // std::stod can throw non-swapp too
      ++report.skipped_lines;
      warn << "warning: trace line " << line_number << " skipped: "
           << e.what() << "\n";
    }
  }
  return report;
}

void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const CounterValue& c : snapshot.counters) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(c.name)
       << "\",\"value\":" << c.value << "}\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
       << "\",\"value\":" << round_trip(g.value) << "}\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
       << "\",\"count\":" << h.count << ",\"sum\":" << round_trip(h.sum)
       << ",\"min\":" << round_trip(h.min) << ",\"max\":" << round_trip(h.max)
       << ",\"buckets\":[";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b > 0) os << ",";
      os << h.buckets[b];
    }
    os << "]}\n";
  }
}

void write_metrics_file(const std::filesystem::path& path,
                        const MetricsSnapshot& snapshot) {
  std::ofstream os = open_for_write(path);
  write_metrics_jsonl(os, snapshot);
}

MetricsSnapshot read_metrics_jsonl(std::istream& is) {
  MetricsSnapshot out;
  for_each_line(is, [&](const std::string& line) {
    const std::string type = string_field(line, "type");
    const std::string name = string_field(line, "name");
    if (type == "counter") {
      out.counters.push_back(CounterValue{
          name, static_cast<std::uint64_t>(number_field(line, "value"))});
    } else if (type == "gauge") {
      out.gauges.push_back(GaugeValue{name, number_field(line, "value")});
    } else if (type == "histogram") {
      HistogramValue h;
      h.name = name;
      h.count = static_cast<std::uint64_t>(number_field(line, "count"));
      h.sum = number_field(line, "sum");
      h.min = number_field(line, "min");
      h.max = number_field(line, "max");
      const std::vector<std::uint64_t> buckets = array_field(line, "buckets");
      SWAPP_REQUIRE(buckets.size() == kHistogramBuckets,
                    "histogram bucket count mismatch in: " + line);
      std::copy(buckets.begin(), buckets.end(), h.buckets.begin());
      out.histograms.push_back(std::move(h));
    } else {
      throw InvalidArgument("unknown metric line type: " + type);
    }
  });
  return out;
}

MetricsSnapshot load_metrics_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  SWAPP_REQUIRE(is.good(), "cannot open metrics file: " + path.string());
  return read_metrics_jsonl(is);
}

void write_metrics_prometheus(std::ostream& os,
                              const MetricsSnapshot& snapshot) {
  for (const CounterValue& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name) + "_total";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << round_trip(g.value) << "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      // Collapse empty interior buckets: scrapers only need the occupied
      // boundaries plus the mandatory +Inf terminator.
      if (h.buckets[b] == 0 && b + 1 < kHistogramBuckets) continue;
      if (b + 1 < kHistogramBuckets) {
        os << name << "_bucket{le=\"" << round_trip(histogram_bucket_bound(b))
           << "\"} " << cumulative << "\n";
      }
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum " << round_trip(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
  }
}

void require_writable(const std::filesystem::path& path) {
  std::error_code ec;
  const bool existed = std::filesystem::exists(path, ec);
  bool writable = false;
  {
    // Append mode: probes writability without touching existing content.
    std::ofstream probe(path, std::ios::app);
    writable = probe.good();
  }
  if (!existed) std::filesystem::remove(path, ec);  // leave no empty file
  if (!writable) throw FileError("cannot open for writing", path.string());
}

}  // namespace swapp::obs
