#include "obs/window.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace swapp::obs {

MetricsSnapshot snapshot_delta(const MetricsSnapshot& newer,
                               const MetricsSnapshot& older) {
  MetricsSnapshot out;

  // Both sides are sorted by name (the registry snapshot guarantees it), so
  // a single merge walk pairs them up.  `older` can only be missing names —
  // registration is append-only — and a missing name deltas from zero.
  out.counters.reserve(newer.counters.size());
  std::size_t j = 0;
  for (const CounterValue& c : newer.counters) {
    while (j < older.counters.size() && older.counters[j].name < c.name) ++j;
    std::uint64_t base = 0;
    if (j < older.counters.size() && older.counters[j].name == c.name) {
      base = older.counters[j].value;
    }
    out.counters.push_back(
        CounterValue{c.name, c.value >= base ? c.value - base : 0});
  }

  // Gauges are last-write-wins values, not rates; the window reports the
  // newest reading.
  out.gauges = newer.gauges;

  out.histograms.reserve(newer.histograms.size());
  j = 0;
  for (const HistogramValue& h : newer.histograms) {
    while (j < older.histograms.size() && older.histograms[j].name < h.name) {
      ++j;
    }
    const HistogramValue* base = nullptr;
    if (j < older.histograms.size() && older.histograms[j].name == h.name) {
      base = &older.histograms[j];
    }
    HistogramValue d;
    d.name = h.name;
    std::size_t first = kHistogramBuckets;
    std::size_t last = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t was = base != nullptr ? base->buckets[b] : 0;
      d.buckets[b] = h.buckets[b] >= was ? h.buckets[b] - was : 0;
      if (d.buckets[b] > 0) {
        first = std::min(first, b);
        last = b;
      }
      d.count += d.buckets[b];
    }
    if (d.count > 0) {
      d.sum = base != nullptr ? h.sum - base->sum : h.sum;
      // The window's true extremes are unknowable from cumulative ones;
      // estimate from the occupied bucket bounds, clamped into the
      // cumulative range (window observations are a subset of lifetime).
      const double lo = first == 0 ? 0.0 : histogram_bucket_bound(first - 1);
      d.min = std::max(h.min, lo);
      d.max = std::min(h.max, histogram_bucket_bound(last));
      if (d.min > d.max) d.min = d.max;
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

MetricsWindow::MetricsWindow(std::size_t slots) : slots_(slots) {
  SWAPP_REQUIRE(slots >= 1, "MetricsWindow needs at least one slot");
}

void MetricsWindow::rotate(MetricsSnapshot cumulative, double now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(Slot{now_us, std::move(cumulative)});
  while (ring_.size() > slots_) ring_.pop_front();
}

MetricsWindow::Delta MetricsWindow::delta_over(double seconds,
                                               const MetricsSnapshot& current,
                                               double now_us) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Delta out;
  if (ring_.empty()) return out;
  // The newest entry at least `seconds` old; when the ring is younger than
  // the horizon, the oldest entry is the best available baseline.
  const double cutoff_us = now_us - seconds * 1e6;
  const Slot* base = &ring_.front();
  for (const Slot& slot : ring_) {
    if (slot.t_us <= cutoff_us) {
      base = &slot;
    } else {
      break;
    }
  }
  out.seconds = std::max(0.0, (now_us - base->t_us) / 1e6);
  out.metrics = snapshot_delta(current, base->snapshot);
  return out;
}

std::size_t MetricsWindow::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace swapp::obs
