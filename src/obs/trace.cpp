#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace swapp::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Completed records of one thread.  The owner appends; drain swaps the
/// vector out.  Both take the buffer's own mutex (uncontended in steady
/// state: drains are rare).
struct Buffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

class BufferRegistry {
 public:
  /// Leaky singleton — worker threads may record during static destruction.
  static BufferRegistry& instance() {
    static BufferRegistry* r = new BufferRegistry;
    return *r;
  }

  std::shared_ptr<Buffer> register_thread(std::uint32_t* tid_out) {
    auto buffer = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    *tid_out = next_tid_++;
    buffers_.push_back(buffer);
    return buffer;
  }

  std::vector<TraceEvent> drain() {
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buffers = buffers_;
    }
    std::vector<TraceEvent> out;
    for (const std::shared_ptr<Buffer>& buffer : buffers) {
      std::vector<TraceEvent> taken;
      {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        taken.swap(buffer->events);
      }
      out.insert(out.end(), std::make_move_iterator(taken.begin()),
                 std::make_move_iterator(taken.end()));
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.id < b.id;
              });
    return out;
  }

 private:
  std::mutex mutex_;
  std::uint32_t next_tid_ = 0;
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// Per-thread trace state: the open-span stack, the fallback parent a
/// fan-out installed, and this thread's buffer.
struct ThreadState {
  std::uint32_t tid = 0;
  std::uint64_t logical_parent = 0;
  std::vector<std::uint64_t> stack;
  std::shared_ptr<Buffer> buffer;

  ThreadState() { buffer = BufferRegistry::instance().register_thread(&tid); }
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

void record(TraceEvent event) {
  ThreadState& state = thread_state();
  event.tid = state.tid;
  std::lock_guard<std::mutex> lock(state.buffer->mutex);
  state.buffer->events.push_back(std::move(event));
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
  if (on) trace_epoch();  // pin the epoch before the first span
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

double trace_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   trace_epoch())
      .count();
}

Span::Span(const char* name) noexcept : name_(name) {
  if (!tracing_enabled()) [[likely]] {
    return;
  }
  ThreadState& state = thread_state();
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = state.stack.empty() ? state.logical_parent : state.stack.back();
  state.stack.push_back(id_);
  start_us_ = trace_now_us();
}

Span::~Span() {
  if (id_ == 0) return;  // tracing was off at construction
  ThreadState& state = thread_state();
  // RAII scoping guarantees LIFO order on each thread's stack.
  if (!state.stack.empty() && state.stack.back() == id_) {
    state.stack.pop_back();
  }
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = name_;
  event.id = id_;
  event.parent = parent_;
  event.start_us = start_us_;
  event.dur_us = trace_now_us() - start_us_;
  record(std::move(event));
}

std::uint64_t current_span_id() noexcept {
  if (!tracing_enabled()) return 0;
  const ThreadState& state = thread_state();
  return state.stack.empty() ? state.logical_parent : state.stack.back();
}

LogicalParentScope::LogicalParentScope(std::uint64_t parent_id) noexcept
    : saved_(thread_state().logical_parent) {
  thread_state().logical_parent = parent_id;
}

LogicalParentScope::~LogicalParentScope() {
  thread_state().logical_parent = saved_;
}

void trace_counter(const char* name, double value) noexcept {
  if (!tracing_enabled()) return;
  ThreadState& state = thread_state();
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.name = name;
  event.parent =
      state.stack.empty() ? state.logical_parent : state.stack.back();
  event.start_us = trace_now_us();
  event.value = value;
  record(std::move(event));
}

std::vector<TraceEvent> drain_trace() {
  return BufferRegistry::instance().drain();
}

std::size_t open_span_count() noexcept { return thread_state().stack.size(); }

}  // namespace swapp::obs
