// Windowed metric aggregation for long-running processes.
//
// A `MetricsWindow` is a ring of timestamped cumulative `MetricsSnapshot`s,
// rotated on a fixed cadence (the projection daemon ticks it once per
// second).  Any "last N seconds" question is then the delta between the
// *current* cumulative snapshot and the ring entry closest to N seconds ago
// — which means a window answer reflects activity up to this instant, never
// waits for the next rotation, and needs no per-slot merging at query time.
// The ring's span (slots x rotation cadence) bounds how far back a query can
// reach; older history simply falls off the end.
//
// Deltas of log2 histograms keep exact counts, sums, and bucket tallies
// (they subtract), but true min/max of just the window are not recoverable
// from cumulative extremes — they are estimated from the window's lowest and
// highest occupied bucket bounds, clamped into the cumulative [min, max], so
// `HistogramValue::quantile` interpolation stays sane.
//
// Thread safety: rotate() and delta_over() lock the ring's mutex; recording
// threads never touch the window at all (they write to the registry shards),
// so windowing adds zero cost to hot paths.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "obs/metrics.h"

namespace swapp::obs {

/// Per-name delta `newer - older` of two cumulative snapshots.  Metrics
/// missing from `older` (registered since) count from zero; counter and
/// bucket deltas clamp at zero so a reset_metrics between the snapshots
/// cannot go negative.  Gauges are last-write values, so the delta carries
/// `newer`'s reading unchanged.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& newer,
                               const MetricsSnapshot& older);

class MetricsWindow {
 public:
  /// A ring holding up to `slots` rotations (>= 1).
  explicit MetricsWindow(std::size_t slots);

  /// Appends one timestamped cumulative snapshot, dropping the oldest entry
  /// past capacity.  `now_us` is the caller's clock (obs::trace_now_us), so
  /// tests can drive synthetic time.
  void rotate(MetricsSnapshot cumulative, double now_us);

  struct Delta {
    /// Wall time the delta actually covers — the ring may not reach the
    /// full requested horizon (young process) or may only have an older
    /// entry (coarse rotation), so rates must divide by this, not by the
    /// requested seconds.
    double seconds = 0.0;
    MetricsSnapshot metrics;
  };

  /// Activity of roughly the last `seconds`: current minus the newest ring
  /// entry at least that old (falling back to the oldest entry when none
  /// is).  An empty ring yields a zero-second empty delta.
  Delta delta_over(double seconds, const MetricsSnapshot& current,
                   double now_us) const;

  std::size_t size() const;
  std::size_t capacity() const noexcept { return slots_; }

 private:
  struct Slot {
    double t_us = 0.0;
    MetricsSnapshot snapshot;
  };

  mutable std::mutex mutex_;
  std::size_t slots_;
  std::deque<Slot> ring_;
};

}  // namespace swapp::obs
