#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "support/error.h"

namespace swapp::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Per-histogram accumulator inside a shard.
struct HistSlot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// One thread's private metric storage.  Only the owning thread records;
/// the snapshot/reset reader takes the same mutex briefly, so the lock is
/// uncontended on the hot path.
struct Shard {
  std::mutex mutex;
  std::vector<std::uint64_t> counters;
  std::vector<HistSlot> histograms;
};

class Registry {
 public:
  /// Leaky singleton: shards outlive any recording thread and macro-static
  /// handles may fire during static destruction.
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  std::size_t register_counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return register_in(counter_names_, counter_ids_, name);
  }

  std::size_t register_gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t id = register_in(gauge_names_, gauge_ids_, name);
    gauges_.resize(gauge_names_.size(), 0.0);
    return id;
  }

  std::size_t register_histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return register_in(histogram_names_, histogram_ids_, name);
  }

  void set_gauge(std::size_t id, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[id] = value;
  }

  /// The calling thread's shard, created and registered on first use.
  Shard& local_shard() {
    thread_local std::shared_ptr<Shard> shard = [this] {
      auto s = std::make_shared<Shard>();
      std::lock_guard<std::mutex> lock(mutex_);
      shards_.push_back(s);
      return s;
    }();
    return *shard;
  }

  MetricsSnapshot snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    out.counters.resize(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      out.counters[i].name = counter_names_[i];
    }
    out.gauges.resize(gauge_names_.size());
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      out.gauges[i] = GaugeValue{gauge_names_[i], gauges_[i]};
    }
    out.histograms.resize(histogram_names_.size());
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      out.histograms[i].name = histogram_names_[i];
    }
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      for (std::size_t i = 0; i < shard->counters.size(); ++i) {
        out.counters[i].value += shard->counters[i];
      }
      for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
        const HistSlot& slot = shard->histograms[i];
        if (slot.count == 0) continue;
        HistogramValue& h = out.histograms[i];
        if (h.count == 0) {
          h.min = slot.min;
          h.max = slot.max;
        } else {
          h.min = std::min(h.min, slot.min);
          h.max = std::max(h.max, slot.max);
        }
        h.count += slot.count;
        h.sum += slot.sum;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          h.buckets[b] += slot.buckets[b];
        }
      }
    }
    sort_by_name(out.counters);
    sort_by_name(out.gauges);
    sort_by_name(out.histograms);
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (double& g : gauges_) g = 0.0;
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      std::fill(shard->counters.begin(), shard->counters.end(), 0);
      std::fill(shard->histograms.begin(), shard->histograms.end(),
                HistSlot{});
    }
  }

 private:
  static std::size_t register_in(std::vector<std::string>& names,
                                 std::map<std::string, std::size_t>& ids,
                                 const std::string& name) {
    SWAPP_REQUIRE(!name.empty(), "metric name must not be empty");
    const auto [it, inserted] = ids.emplace(name, names.size());
    if (inserted) names.push_back(name);
    return it->second;
  }

  template <typename T>
  static void sort_by_name(std::vector<T>& values) {
    std::sort(values.begin(), values.end(),
              [](const T& a, const T& b) { return a.name < b.name; });
  }

  std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::map<std::string, std::size_t> counter_ids_;
  std::vector<std::string> gauge_names_;
  std::map<std::string, std::size_t> gauge_ids_;
  std::vector<double> gauges_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, std::size_t> histogram_ids_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::size_t histogram_bucket(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  const auto v = static_cast<std::uint64_t>(std::min(value, 1e18));
  const auto width = static_cast<std::size_t>(std::bit_width(v));
  return std::min(width, kHistogramBuckets - 1);
}

double histogram_bucket_bound(std::size_t i) noexcept {
  if (i == 0) return 1.0;
  return static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(i, 62));
}

Counter::Counter(const std::string& name)
    : id_(Registry::instance().register_counter(name)) {}

void Counter::add(std::uint64_t n) const noexcept {
  Shard& shard = Registry::instance().local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.counters.size() <= id_) shard.counters.resize(id_ + 1, 0);
  shard.counters[id_] += n;
}

Gauge::Gauge(const std::string& name)
    : id_(Registry::instance().register_gauge(name)) {}

void Gauge::set(double value) const noexcept {
  Registry::instance().set_gauge(id_, value);
}

Histogram::Histogram(const std::string& name)
    : id_(Registry::instance().register_histogram(name)) {}

void Histogram::observe(double value) const noexcept {
  Shard& shard = Registry::instance().local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.histograms.size() <= id_) shard.histograms.resize(id_ + 1);
  HistSlot& slot = shard.histograms[id_];
  if (slot.count == 0) {
    slot.min = value;
    slot.max = value;
  } else {
    slot.min = std::min(slot.min, value);
    slot.max = std::max(slot.max, value);
  }
  ++slot.count;
  slot.sum += value;
  ++slot.buckets[histogram_bucket(value)];
}

double HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank && seen > 0) {
      return std::min(histogram_bucket_bound(b), max);
    }
  }
  return max;
}

namespace {
template <typename T>
const T* find_by_name(const std::vector<T>& values, const std::string& name) {
  for (const T& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}
}  // namespace

const CounterValue* MetricsSnapshot::counter(const std::string& name) const {
  return find_by_name(counters, name);
}
const GaugeValue* MetricsSnapshot::gauge(const std::string& name) const {
  return find_by_name(gauges, name);
}
const HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  return find_by_name(histograms, name);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

void reset_metrics() { Registry::instance().reset(); }

}  // namespace swapp::obs
