#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "support/error.h"

namespace swapp::obs {

namespace detail {

/// Sampling thresholds compare the top 53 bits of a xorshift draw against
/// rate * 2^53, so any rate in (0, 1) maps to an exactly-representable
/// integer cut.  kSampleAlways marks rate 1.0 and skips the draw entirely —
/// the default path stays exact, not merely unbiased.
inline constexpr std::uint64_t kSampleAlways = ~std::uint64_t{0};
inline constexpr double kSampleScale = 9007199254740992.0;  // 2^53

struct SamplePolicy {
  std::atomic<std::uint64_t> threshold{kSampleAlways};
  std::atomic<double> weight{1.0};  ///< 1/rate: re-inflation per kept record
};

}  // namespace detail

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Per-thread xorshift64 state for sampling draws.  Seeded via SplitMix64
/// over a global sequence counter, so threads decimate independently without
/// any shared state on the record path.
std::uint64_t sample_draw() noexcept {
  thread_local std::uint64_t state = [] {
    static std::atomic<std::uint64_t> seq{0x9e3779b97f4a7c15ull};
    std::uint64_t z = seq.fetch_add(0x9e3779b97f4a7c15ull,
                                    std::memory_order_relaxed);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z | 1;  // xorshift must not start at 0
  }();
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Decides whether this record is kept; on true, `weight` holds the 1/rate
/// factor the record must carry.  The skip path is one relaxed load, one
/// xorshift, one compare — no locks, no shard access.
bool sample(const detail::SamplePolicy& policy, double& weight) noexcept {
  const std::uint64_t threshold =
      policy.threshold.load(std::memory_order_relaxed);
  if (threshold == detail::kSampleAlways) return true;  // exact path
  if ((sample_draw() >> 11) >= threshold) return false;
  weight = policy.weight.load(std::memory_order_relaxed);
  return true;
}

/// Per-histogram accumulator inside a shard.  Tallies are doubles so
/// sampled records can add fractional 1/rate weights; the snapshot rounds
/// back to integer counts.
struct HistSlot {
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<double, kHistogramBuckets> buckets{};
};

/// One thread's private metric storage.  Only the owning thread records;
/// the snapshot/reset reader takes the same mutex briefly, so the lock is
/// uncontended on the hot path.
struct Shard {
  std::mutex mutex;
  std::vector<double> counters;
  std::vector<HistSlot> histograms;
};

class Registry {
 public:
  /// Leaky singleton: shards outlive any recording thread and macro-static
  /// handles may fire during static destruction.
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  std::size_t register_counter(const std::string& name,
                               const detail::SamplePolicy** policy) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t id = register_in(counter_names_, counter_ids_, name);
    grow_policies(counter_policies_, counter_names_);
    *policy = &counter_policies_[id];
    return id;
  }

  std::size_t register_gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t id = register_in(gauge_names_, gauge_ids_, name);
    gauges_.resize(gauge_names_.size(), 0.0);
    return id;
  }

  std::size_t register_histogram(const std::string& name,
                                 const detail::SamplePolicy** policy) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t id =
        register_in(histogram_names_, histogram_ids_, name);
    grow_policies(histogram_policies_, histogram_names_);
    *policy = &histogram_policies_[id];
    return id;
  }

  void set_gauge(std::size_t id, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[id] = value;
  }

  /// The calling thread's shard, created and registered on first use.
  Shard& local_shard() {
    thread_local std::shared_ptr<Shard> shard = [this] {
      auto s = std::make_shared<Shard>();
      std::lock_guard<std::mutex> lock(mutex_);
      shards_.push_back(s);
      return s;
    }();
    return *shard;
  }

  MetricsSnapshot snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    std::vector<double> counter_totals(counter_names_.size(), 0.0);
    std::vector<HistSlot> hist_totals(histogram_names_.size());
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      for (std::size_t i = 0; i < shard->counters.size(); ++i) {
        counter_totals[i] += shard->counters[i];
      }
      for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
        const HistSlot& slot = shard->histograms[i];
        if (slot.count <= 0.0) continue;
        HistSlot& h = hist_totals[i];
        if (h.count <= 0.0) {
          h.min = slot.min;
          h.max = slot.max;
        } else {
          h.min = std::min(h.min, slot.min);
          h.max = std::max(h.max, slot.max);
        }
        h.count += slot.count;
        h.sum += slot.sum;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          h.buckets[b] += slot.buckets[b];
        }
      }
    }
    out.counters.resize(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      out.counters[i].name = counter_names_[i];
      out.counters[i].value = round_tally(counter_totals[i]);
    }
    out.gauges.resize(gauge_names_.size());
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      out.gauges[i] = GaugeValue{gauge_names_[i], gauges_[i]};
    }
    out.histograms.resize(histogram_names_.size());
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      HistogramValue& h = out.histograms[i];
      h.name = histogram_names_[i];
      const HistSlot& total = hist_totals[i];
      // Buckets round individually and the count is their sum, so quantile
      // ranks always land inside a bucket even after rounding.
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] = round_tally(total.buckets[b]);
        h.count += h.buckets[b];
      }
      h.sum = total.sum;
      h.min = h.count > 0 ? total.min : 0.0;
      h.max = h.count > 0 ? total.max : 0.0;
    }
    sort_by_name(out.counters);
    sort_by_name(out.gauges);
    sort_by_name(out.histograms);
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (double& g : gauges_) g = 0.0;
    for (const std::shared_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mutex);
      std::fill(shard->counters.begin(), shard->counters.end(), 0.0);
      std::fill(shard->histograms.begin(), shard->histograms.end(),
                HistSlot{});
    }
  }

  void set_default_rate(double rate) {
    std::lock_guard<std::mutex> lock(mutex_);
    default_rate_ = rate;
    reapply_policies();
  }

  void set_prefix_rate(const std::string& prefix, double rate) {
    std::lock_guard<std::mutex> lock(mutex_);
    prefix_rates_[prefix] = rate;
    reapply_policies();
  }

  void reset_sampling() {
    std::lock_guard<std::mutex> lock(mutex_);
    default_rate_ = 1.0;
    prefix_rates_.clear();
    reapply_policies();
  }

  double effective_rate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return rate_for(name);
  }

 private:
  static std::size_t register_in(std::vector<std::string>& names,
                                 std::map<std::string, std::size_t>& ids,
                                 const std::string& name) {
    SWAPP_REQUIRE(!name.empty(), "metric name must not be empty");
    const auto [it, inserted] = ids.emplace(name, names.size());
    if (inserted) names.push_back(name);
    return it->second;
  }

  /// Policies live in a deque so their addresses are stable across growth —
  /// handles keep raw pointers for lock-free reads on every record.
  void grow_policies(std::deque<detail::SamplePolicy>& policies,
                     const std::vector<std::string>& names) {
    while (policies.size() < names.size()) {
      policies.emplace_back();
      apply_rate(policies.back(), rate_for(names[policies.size() - 1]));
    }
  }

  /// Longest matching prefix override, else the default.
  double rate_for(const std::string& name) const {
    double rate = default_rate_;
    std::size_t best = 0;
    for (const auto& [prefix, r] : prefix_rates_) {
      if (prefix.size() >= best && name.rfind(prefix, 0) == 0) {
        best = prefix.size();
        rate = r;
      }
    }
    return rate;
  }

  static void apply_rate(detail::SamplePolicy& policy, double rate) {
    if (rate >= 1.0) {
      policy.weight.store(1.0, std::memory_order_relaxed);
      policy.threshold.store(detail::kSampleAlways, std::memory_order_relaxed);
    } else {
      policy.weight.store(1.0 / rate, std::memory_order_relaxed);
      policy.threshold.store(
          static_cast<std::uint64_t>(rate * detail::kSampleScale),
          std::memory_order_relaxed);
    }
  }

  void reapply_policies() {
    for (std::size_t i = 0; i < counter_policies_.size(); ++i) {
      apply_rate(counter_policies_[i], rate_for(counter_names_[i]));
    }
    for (std::size_t i = 0; i < histogram_policies_.size(); ++i) {
      apply_rate(histogram_policies_[i], rate_for(histogram_names_[i]));
    }
  }

  static std::uint64_t round_tally(double v) {
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }

  template <typename T>
  static void sort_by_name(std::vector<T>& values) {
    std::sort(values.begin(), values.end(),
              [](const T& a, const T& b) { return a.name < b.name; });
  }

  std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::map<std::string, std::size_t> counter_ids_;
  std::deque<detail::SamplePolicy> counter_policies_;
  std::vector<std::string> gauge_names_;
  std::map<std::string, std::size_t> gauge_ids_;
  std::vector<double> gauges_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, std::size_t> histogram_ids_;
  std::deque<detail::SamplePolicy> histogram_policies_;
  std::vector<std::shared_ptr<Shard>> shards_;
  double default_rate_ = 1.0;
  std::map<std::string, double> prefix_rates_;
};

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_metrics_sampling(double rate) {
  SWAPP_REQUIRE(rate > 0.0 && rate <= 1.0,
                "sample rate must be in (0, 1], got " + std::to_string(rate));
  Registry::instance().set_default_rate(rate);
}

void set_metrics_sampling(const std::string& prefix, double rate) {
  SWAPP_REQUIRE(rate > 0.0 && rate <= 1.0,
                "sample rate must be in (0, 1], got " + std::to_string(rate));
  SWAPP_REQUIRE(!prefix.empty(), "sampling prefix must not be empty");
  Registry::instance().set_prefix_rate(prefix, rate);
}

double metrics_sampling(const std::string& name) {
  return Registry::instance().effective_rate(name);
}

void reset_metrics_sampling() { Registry::instance().reset_sampling(); }

std::size_t histogram_bucket(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  const auto v = static_cast<std::uint64_t>(std::min(value, 1e18));
  const auto width = static_cast<std::size_t>(std::bit_width(v));
  return std::min(width, kHistogramBuckets - 1);
}

double histogram_bucket_bound(std::size_t i) noexcept {
  if (i == 0) return 1.0;
  return static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(i, 62));
}

Counter::Counter(const std::string& name)
    : id_(Registry::instance().register_counter(name, &policy_)) {}

void Counter::add(std::uint64_t n) const noexcept {
  double weight = 1.0;
  if (!sample(*policy_, weight)) return;
  Shard& shard = Registry::instance().local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.counters.size() <= id_) shard.counters.resize(id_ + 1, 0.0);
  shard.counters[id_] += static_cast<double>(n) * weight;
}

Gauge::Gauge(const std::string& name)
    : id_(Registry::instance().register_gauge(name)) {}

void Gauge::set(double value) const noexcept {
  Registry::instance().set_gauge(id_, value);
}

Histogram::Histogram(const std::string& name)
    : id_(Registry::instance().register_histogram(name, &policy_)) {}

void Histogram::observe(double value) const noexcept {
  double weight = 1.0;
  if (!sample(*policy_, weight)) return;
  Shard& shard = Registry::instance().local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.histograms.size() <= id_) shard.histograms.resize(id_ + 1);
  HistSlot& slot = shard.histograms[id_];
  if (slot.count <= 0.0) {
    slot.min = value;
    slot.max = value;
  } else {
    slot.min = std::min(slot.min, value);
    slot.max = std::max(slot.max, value);
  }
  slot.count += weight;
  slot.sum += value * weight;
  slot.buckets[histogram_bucket(value)] += weight;
}

double HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank) {
      // Place the rank linearly between the bucket's bounds; the clamp into
      // [min, max] keeps the edges exact (q=0 -> min, q=1 -> max) and stops
      // a sparse top bucket from over-reporting.
      const double lo = b == 0 ? 0.0 : histogram_bucket_bound(b - 1);
      const double hi = histogram_bucket_bound(b);
      const double frac =
          (rank - before) / static_cast<double>(buckets[b]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
  }
  return max;
}

namespace {
template <typename T>
const T* find_by_name(const std::vector<T>& values, const std::string& name) {
  for (const T& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}
}  // namespace

const CounterValue* MetricsSnapshot::counter(const std::string& name) const {
  return find_by_name(counters, name);
}
const GaugeValue* MetricsSnapshot::gauge(const std::string& name) const {
  return find_by_name(gauges, name);
}
const HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  return find_by_name(histograms, name);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

void reset_metrics() { Registry::instance().reset(); }

}  // namespace swapp::obs
