// Common MPI-layer types: routine identifiers, requests, routine classes.
//
// Routine identity matters to SWAPP: the communication model is a function of
// MPI routine, message size and call count (paper §2.4 step 2), and the
// figures break projection error down by routine class (P2P-NB, P2P-B,
// COLLECTIVES).
#pragma once

#include <cstdint>
#include <string>

namespace swapp::mpi {

enum class Routine {
  kSend,
  kRecv,
  kSendrecv,
  kIsend,
  kIrecv,
  kWaitall,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kAlltoall,
};

/// The paper's figure categories.
enum class RoutineClass {
  kPointToPointBlocking,     ///< "P2P-B"
  kPointToPointNonblocking,  ///< "P2P-NB" (Isend/Irecv/Waitall)
  kCollective,               ///< "COLLECTIVES"
};

std::string to_string(Routine r);
std::string to_string(RoutineClass c);
RoutineClass routine_class(Routine r);
/// True for routines whose profile entries the communication model projects
/// directly (Waitall carries the nonblocking wait; Isend/Irecv only post).
bool is_collective(Routine r);

/// Handle for a nonblocking operation.
struct Request {
  std::uint64_t id = 0;
};

}  // namespace swapp::mpi
