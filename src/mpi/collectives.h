// Algorithmic cost model for MPI collectives.
//
// Collectives complete after an algorithm-derived time on top of the
// synchronised entry of all ranks: binomial trees for rooted small-message
// collectives, Rabenseifner reduce-scatter/allgather for Allreduce, ring
// Allgather, pairwise Alltoall under link contention.  On BlueGene/P,
// Bcast/Reduce/Allreduce use the dedicated collective-tree network instead,
// as the real machine does.
#pragma once

#include "machine/machine.h"
#include "mpi/types.h"
#include "net/network.h"
#include "support/units.h"

namespace swapp::mpi {

/// Time from synchronised entry to completion for one collective call.
Seconds collective_cost(const machine::Machine& m, const net::Network& network,
                        Routine routine, Bytes bytes, int nranks);

}  // namespace swapp::mpi
