#include "mpi/world.h"

#include <algorithm>
#include <cmath>

#include "mpi/collectives.h"
#include "support/error.h"

namespace swapp::mpi {

// ---------------------------------------------------------------------------
// RankCtx — thin forwarding layer with profiling around each call.
// ---------------------------------------------------------------------------

int RankCtx::size() const noexcept { return world_->ranks(); }

Seconds RankCtx::now() const noexcept { return world_->engine_.now(); }

machine::SmtMode RankCtx::smt_mode() const noexcept {
  return world_->options_.smt;
}

const machine::Machine& RankCtx::machine() const noexcept {
  return world_->machine_;
}

namespace {

// SplitMix64 finaliser: cheap, well-mixed deterministic hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void RankCtx::compute(const workload::Kernel& kernel, double points) {
  World::RankState& s = world_->states_[rank_];
  const workload::ComputeContext ctx{
      .active_cores_per_node = world_->active_cores_on_node_of(rank_),
      .smt = world_->options_.smt,
      .omp_threads = world_->options_.threads_per_rank,
      .omp = world_->options_.omp};
  const workload::ComputeSample sample =
      workload::evaluate(kernel, points, world_->machine_, ctx);
  s.counters.accumulate(sample.counters);
  // Deterministic OS/system noise: daemons, page faults, network interrupts.
  const std::uint64_t h = mix64(
      (static_cast<std::uint64_t>(rank_) << 32) ^ s.compute_calls++);
  const double noise = static_cast<double>(h >> 11) * 0x1.0p-53;
  s.proc->advance(sample.seconds *
                  (1.0 + world_->machine_.os_jitter * noise));
}

void RankCtx::compute_for(Seconds duration) {
  world_->states_[rank_].proc->advance(duration);
}

void RankCtx::send(int dst, Bytes bytes, int tag) {
  auto call = world_->call_begin(rank_);
  world_->isend_impl(rank_, dst, bytes, tag, /*blocking=*/true);
  world_->call_end(rank_, Routine::kSend, bytes, call);
}

void RankCtx::recv(int src, Bytes bytes, int tag) {
  auto call = world_->call_begin(rank_);
  const std::uint64_t id = world_->irecv_impl(rank_, src, bytes, tag);
  const std::uint64_t ids[] = {id};
  world_->await_requests(rank_, ids);
  World::RankState& s = world_->states_[rank_];
  s.proc->advance(world_->machine_.mpi.recv_overhead);
  s.requests.erase(id);
  world_->call_end(rank_, Routine::kRecv, bytes, call);
}

void RankCtx::sendrecv(int dst, Bytes send_bytes, int src, Bytes recv_bytes,
                       int tag) {
  auto call = world_->call_begin(rank_);
  const std::uint64_t rid = world_->irecv_impl(rank_, src, recv_bytes, tag);
  const std::uint64_t sid =
      world_->isend_impl(rank_, dst, send_bytes, tag, /*blocking=*/false);
  const std::uint64_t ids[] = {rid, sid};
  world_->await_requests(rank_, ids);
  World::RankState& s = world_->states_[rank_];
  s.proc->advance(world_->machine_.mpi.recv_overhead);
  s.requests.erase(rid);
  s.requests.erase(sid);
  world_->call_end(rank_, Routine::kSendrecv, std::max(send_bytes, recv_bytes),
                   call);
}

Request RankCtx::isend(int dst, Bytes bytes, int tag) {
  auto call = world_->call_begin(rank_);
  const std::uint64_t id =
      world_->isend_impl(rank_, dst, bytes, tag, /*blocking=*/false);
  world_->call_end(rank_, Routine::kIsend, bytes, call);
  return Request{id};
}

Request RankCtx::irecv(int src, Bytes bytes, int tag) {
  auto call = world_->call_begin(rank_);
  const std::uint64_t id = world_->irecv_impl(rank_, src, bytes, tag);
  world_->call_end(rank_, Routine::kIrecv, bytes, call);
  return Request{id};
}

void RankCtx::waitall(std::span<const Request> requests) {
  auto call = world_->call_begin(rank_);
  World::RankState& s = world_->states_[rank_];
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  Bytes total_bytes = 0;
  double distance_weighted = 0.0;
  int recvs = 0;
  for (const Request& r : requests) {
    const auto it = s.requests.find(r.id);
    SWAPP_REQUIRE(it != s.requests.end(), "waitall on unknown request");
    ids.push_back(r.id);
    total_bytes += it->second.bytes;
    distance_weighted += static_cast<double>(it->second.bytes) *
                         std::abs(it->second.peer - rank_);
    if (it->second.is_recv) ++recvs;
  }
  world_->await_requests(rank_, ids);
  // Per-request completion bookkeeping (request finalisation, status copy).
  s.proc->advance(static_cast<double>(ids.size()) *
                  world_->machine_.mpi.nonblocking_post_overhead);
  for (const std::uint64_t id : ids) s.requests.erase(id);
  // Bucket by the mean outstanding-message size: the multi-Sendrecv model
  // prices x messages of this size, which matches a mixed-size exchange
  // because transfer cost is near-linear in bytes.
  const Bytes mean_bytes = std::max<Bytes>(
      1, ids.empty() ? 1 : total_bytes / ids.size());
  const double mean_distance =
      total_bytes > 0 ? distance_weighted / static_cast<double>(total_bytes)
                      : 1.0;
  world_->call_end(rank_, Routine::kWaitall, mean_bytes, call,
                   std::max(1.0, static_cast<double>(recvs)), mean_distance);
}

void RankCtx::barrier() {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kBarrier, 0, 8);
  world_->call_end(rank_, Routine::kBarrier, 8, call);
}

void RankCtx::bcast(int root, Bytes bytes) {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kBcast, root, bytes);
  world_->call_end(rank_, Routine::kBcast, bytes, call);
}

void RankCtx::reduce(int root, Bytes bytes) {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kReduce, root, bytes);
  world_->call_end(rank_, Routine::kReduce, bytes, call);
}

void RankCtx::allreduce(Bytes bytes) {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kAllreduce, 0, bytes);
  world_->call_end(rank_, Routine::kAllreduce, bytes, call);
}

void RankCtx::allgather(Bytes bytes_per_rank) {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kAllgather, 0, bytes_per_rank);
  world_->call_end(rank_, Routine::kAllgather, bytes_per_rank, call);
}

void RankCtx::alltoall(Bytes bytes_per_pair) {
  auto call = world_->call_begin(rank_);
  world_->collective_enter(rank_, Routine::kAlltoall, 0, bytes_per_pair);
  world_->call_end(rank_, Routine::kAlltoall, bytes_per_pair, call);
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

namespace {

int ranks_per_node_for(const machine::Machine& m, int threads_per_rank) {
  SWAPP_REQUIRE(threads_per_rank >= 1, "threads_per_rank must be >= 1");
  SWAPP_REQUIRE(threads_per_rank <= m.cores_per_node,
                "more threads per rank than cores per node");
  return std::max(1, m.cores_per_node / threads_per_rank);
}

int nodes_for(const machine::Machine& m, int ranks, int threads_per_rank) {
  const int rpn = ranks_per_node_for(m, threads_per_rank);
  return (ranks + rpn - 1) / rpn;
}

}  // namespace

World::World(const machine::Machine& m, int ranks, Options options)
    : machine_(m),
      nranks_(ranks),
      options_(std::move(options)),
      ranks_per_node_(ranks_per_node_for(m, options_.threads_per_rank)),
      network_(m.network, nodes_for(m, ranks, options_.threads_per_rank)),
      states_(static_cast<std::size_t>(ranks)),
      node_nic_free_(
          static_cast<std::size_t>(nodes_for(m, ranks,
                                             options_.threads_per_rank)),
          0.0) {
  SWAPP_REQUIRE(ranks >= 1, "world needs at least one rank");
  contexts_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    contexts_.push_back(std::unique_ptr<RankCtx>(new RankCtx(*this, r)));
  }
}

World::~World() = default;

int World::node_of(int r) const { return r / ranks_per_node_; }

int World::active_cores_on_node_of(int r) const {
  const int node = node_of(r);
  const int ranks_on_node =
      std::min(ranks_per_node_, nranks_ - node * ranks_per_node_);
  return std::min(machine_.cores_per_node,
                  ranks_on_node * options_.threads_per_rank);
}

Seconds World::path_latency(int src, int dst) const {
  return network_.latency(node_of(src), node_of(dst));
}

double World::path_bandwidth_gbs(int src, int dst) const {
  return network_.bandwidth_gbs(node_of(src), node_of(dst));
}

Seconds World::dispatch(int src, int dst, Bytes bytes, Seconds ready) {
  const double bw = path_bandwidth_gbs(src, dst);
  const Seconds serialisation = static_cast<double>(bytes) / (bw * 1e9);
  const int src_node = node_of(src);
  const int dst_node = node_of(dst);
  if (src_node == dst_node) {
    // Shared-memory transport does not occupy the network adapter.
    return ready + serialisation + path_latency(src, dst);
  }
  Seconds& nic_free = node_nic_free_[static_cast<std::size_t>(src_node)];
  const Seconds depart = std::max(nic_free, ready);
  nic_free = depart + serialisation;
  return depart + serialisation + path_latency(src, dst);
}

std::uint64_t World::new_request(int owner, Bytes bytes, int peer,
                                 bool is_recv) {
  const std::uint64_t id = next_request_id_++;
  states_[static_cast<std::size_t>(owner)].requests.emplace(
      id, RequestState{.determined = false,
                       .complete_time = 0.0,
                       .bytes = bytes,
                       .peer = peer,
                       .is_recv = is_recv});
  return id;
}

void World::determine(int owner, std::uint64_t request_id,
                      Seconds complete_time) {
  auto& requests = states_[static_cast<std::size_t>(owner)].requests;
  const auto it = requests.find(request_id);
  SWAPP_ASSERT(it != requests.end(), "determine() on unknown request");
  SWAPP_ASSERT(!it->second.determined, "request determined twice");
  it->second.determined = true;
  it->second.complete_time = complete_time;
}

void World::maybe_wake(int owner) {
  RankState& s = states_[static_cast<std::size_t>(owner)];
  if (s.wait_kind != WaitKind::kBlocked) return;
  Seconds latest = engine_.now();
  for (const std::uint64_t id : s.waiting_on) {
    const auto it = s.requests.find(id);
    SWAPP_ASSERT(it != s.requests.end(), "waiting on unknown request");
    if (!it->second.determined) return;  // still incomplete
    latest = std::max(latest, it->second.complete_time);
  }
  s.wait_kind = WaitKind::kNone;
  s.waiting_on.clear();
  s.proc->unblock_at(latest);
}

Seconds World::await_requests(int rank, std::span<const std::uint64_t> ids) {
  RankState& s = states_[static_cast<std::size_t>(rank)];
  while (true) {
    bool all_determined = true;
    Seconds latest = engine_.now();
    for (const std::uint64_t id : ids) {
      const auto it = s.requests.find(id);
      SWAPP_ASSERT(it != s.requests.end(), "await on unknown request");
      if (!it->second.determined) {
        all_determined = false;
        break;
      }
      latest = std::max(latest, it->second.complete_time);
    }
    if (all_determined) {
      if (latest > engine_.now()) s.proc->advance(latest - engine_.now());
      return latest;
    }
    s.wait_kind = WaitKind::kBlocked;
    s.waiting_on.assign(ids.begin(), ids.end());
    s.proc->block();  // resumed by maybe_wake at the latest completion
  }
}

std::uint64_t World::isend_impl(int src, int dst, Bytes bytes, int tag,
                                bool blocking) {
  SWAPP_REQUIRE(dst >= 0 && dst < nranks_, "send destination out of range");
  SWAPP_REQUIRE(dst != src, "self-messaging is not modelled");
  RankState& s = states_[static_cast<std::size_t>(src)];
  RankState& d = states_[static_cast<std::size_t>(dst)];
  const machine::MpiLibraryConfig& mpi = machine_.mpi;
  const Seconds t0 = engine_.now();
  const Seconds cpu =
      blocking ? mpi.send_overhead : mpi.nonblocking_post_overhead;
  const std::uint64_t req = new_request(src, bytes, dst, /*is_recv=*/false);

  if (bytes <= mpi.eager_threshold) {
    const Seconds arrival = dispatch(src, dst, bytes, t0 + cpu);
    // The sender's buffer is reusable once the payload is on the wire.
    determine(src, req, arrival - path_latency(src, dst));
    // Match against a posted receive at the destination.
    bool matched = false;
    for (auto it = d.posted.begin(); it != d.posted.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        determine(dst, it->request_id, std::max(arrival, it->post_time));
        d.posted.erase(it);
        matched = true;
        maybe_wake(dst);
        break;
      }
    }
    if (!matched) {
      d.unexpected.push_back(
          PendingMessage{.src = src, .tag = tag, .bytes = bytes,
                         .arrival = arrival});
    }
  } else {
    // Rendezvous: the payload moves only after the receive is posted.
    bool matched = false;
    for (auto it = d.posted.begin(); it != d.posted.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        const Seconds start = std::max(t0 + cpu + mpi.rendezvous_overhead,
                                       it->post_time);
        const Seconds arrival = dispatch(src, dst, bytes, start);
        determine(src, req, arrival);
        determine(dst, it->request_id, arrival);
        d.posted.erase(it);
        matched = true;
        maybe_wake(dst);
        break;
      }
    }
    if (!matched) {
      d.rendezvous.push_back(PendingRendezvous{.src = src,
                                               .tag = tag,
                                               .bytes = bytes,
                                               .sender_ready = t0 + cpu,
                                               .send_request_id = req});
    }
  }

  s.proc->advance(cpu);
  if (blocking) {
    const std::uint64_t ids[] = {req};
    await_requests(src, ids);
    s.requests.erase(req);
  }
  return req;
}

std::uint64_t World::irecv_impl(int self, int src, Bytes bytes, int tag) {
  SWAPP_REQUIRE(src >= 0 && src < nranks_, "recv source out of range");
  SWAPP_REQUIRE(src != self, "self-messaging is not modelled");
  RankState& s = states_[static_cast<std::size_t>(self)];
  const machine::MpiLibraryConfig& mpi = machine_.mpi;
  const Seconds t0 = engine_.now();
  const std::uint64_t req = new_request(self, bytes, src, /*is_recv=*/true);

  bool matched = false;
  // Eager messages already sent (possibly still in flight).
  for (auto it = s.unexpected.begin(); it != s.unexpected.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      determine(self, req, std::max(t0, it->arrival));
      s.unexpected.erase(it);
      matched = true;
      break;
    }
  }
  // Rendezvous senders waiting for this post.
  if (!matched) {
    for (auto it = s.rendezvous.begin(); it != s.rendezvous.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        const Seconds start =
            std::max(it->sender_ready + mpi.rendezvous_overhead, t0);
        const Seconds arrival = dispatch(it->src, self, it->bytes, start);
        determine(self, req, arrival);
        determine(it->src, it->send_request_id, arrival);
        const int sender = it->src;
        s.rendezvous.erase(it);
        matched = true;
        maybe_wake(sender);
        break;
      }
    }
  }
  if (!matched) {
    s.posted.push_back(PostedRecv{.src = src,
                                  .tag = tag,
                                  .bytes = bytes,
                                  .request_id = req,
                                  .post_time = t0});
  }
  s.proc->advance(mpi.nonblocking_post_overhead);
  return req;
}

void World::collective_enter(int rank, Routine routine, int root, Bytes bytes) {
  RankState& s = states_[static_cast<std::size_t>(rank)];
  const auto idx = static_cast<std::size_t>(s.next_collective++);
  if (collectives_.size() <= idx) {
    collectives_.resize(idx + 1);
    collectives_[idx] =
        CollectiveSlot{.routine = routine, .root = root, .bytes = bytes};
  }
  CollectiveSlot& slot = collectives_[idx];
  if (slot.arrived == 0) {
    slot.routine = routine;
    slot.root = root;
    slot.bytes = bytes;
  } else {
    SWAPP_ASSERT(slot.routine == routine,
                 "collective mismatch: ranks disagree on the routine");
  }
  slot.arrived += 1;
  slot.max_entry = std::max(slot.max_entry, engine_.now());

  if (slot.arrived == nranks_) {
    const Seconds done =
        slot.max_entry +
        collective_cost(machine_, network_, routine, bytes, nranks_);
    // Wake everyone else (they are all blocked in this slot), then advance
    // this last-arriving rank to the completion time.
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank) continue;
      states_[static_cast<std::size_t>(r)].proc->unblock_at(done);
    }
    if (done > engine_.now()) s.proc->advance(done - engine_.now());
  } else {
    s.proc->block();
  }
}

World::ProfiledCall World::call_begin(int rank) {
  RankState& s = states_[static_cast<std::size_t>(rank)];
  const Seconds entry = engine_.now();
  s.breakdown.compute += entry - s.last_mpi_exit;
  return ProfiledCall{.entry = entry};
}

void World::call_end(int rank, Routine routine, Bytes bytes, ProfiledCall call,
                     double in_flight, double rank_distance) {
  RankState& s = states_[static_cast<std::size_t>(rank)];
  const Seconds exit = engine_.now();
  const Seconds elapsed = exit - call.entry;
  s.breakdown.communication += elapsed;
  s.last_mpi_exit = exit;

  RoutineProfile& rp = profile_.routines[routine];
  rp.routine = routine;
  rp.total_elapsed += elapsed;
  rp.total_calls += 1;
  SizeBucket& bucket = rp.by_size[bytes];
  const double prior = static_cast<double>(bucket.calls);
  bucket.bytes = bytes;
  bucket.avg_in_flight =
      (bucket.avg_in_flight * prior + in_flight) / (prior + 1.0);
  bucket.avg_rank_distance =
      (bucket.avg_rank_distance * prior + rank_distance) / (prior + 1.0);
  bucket.calls += 1;
  bucket.elapsed += elapsed;
}

void World::run(std::function<void(RankCtx&)> body) {
  SWAPP_REQUIRE(!ran_, "World::run may only be called once");
  ran_ = true;
  for (int r = 0; r < nranks_; ++r) {
    engine_.spawn("rank" + std::to_string(r),
                  [this, r, &body](sim::Process& proc) {
                    RankState& s = states_[static_cast<std::size_t>(r)];
                    s.proc = &proc;
                    body(*contexts_[static_cast<std::size_t>(r)]);
                    s.finish_time = engine_.now();
                    s.breakdown.compute += engine_.now() - s.last_mpi_exit;
                  });
  }
  engine_.run();
  build_profile();
}

void World::build_profile() {
  profile_.application = options_.app_name;
  profile_.ranks = nranks_;
  profile_.per_task.clear();
  profile_.per_task.reserve(states_.size());
  Seconds wall = 0.0;
  aggregate_counters_ = machine::PmuCounters{};
  for (const RankState& s : states_) {
    profile_.per_task.push_back(s.breakdown);
    wall = std::max(wall, s.finish_time);
    aggregate_counters_.accumulate(s.counters);
  }
  profile_.wall_time = wall;
}

Seconds World::wall_time() const {
  SWAPP_REQUIRE(ran_, "wall_time() before run()");
  return profile_.wall_time;
}

const MpiProfile& World::profile() const {
  SWAPP_REQUIRE(ran_, "profile() before run()");
  return profile_;
}

const machine::PmuCounters& World::counters() const {
  SWAPP_REQUIRE(ran_, "counters() before run()");
  return aggregate_counters_;
}

}  // namespace swapp::mpi
