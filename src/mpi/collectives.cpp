#include "mpi/collectives.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::mpi {
namespace {

int stages_for(int nranks) {
  return nranks <= 1
             ? 0
             : static_cast<int>(
                   std::ceil(std::log2(static_cast<double>(nranks))));
}

}  // namespace

Seconds collective_cost(const machine::Machine& m, const net::Network& network,
                        Routine routine, Bytes bytes, int nranks) {
  SWAPP_REQUIRE(nranks >= 1, "collective needs at least one rank");
  if (nranks == 1) return m.mpi.send_overhead;  // self-completion bookkeeping

  // The Network instance is sized by the caller's placement (hybrid-aware).
  const int nodes = std::min(network.nodes(), nranks);
  // Representative path for the algorithm's per-stage message: halfway
  // across the participating nodes (intra-node when the job fits one node).
  const int far_node = nodes / 2;
  const Seconds lat = network.latency(0, far_node);
  const double bw_gbs = network.bandwidth_gbs(0, far_node);
  const Seconds o = m.mpi.send_overhead + m.mpi.recv_overhead;
  const int stages = stages_for(nranks);
  const double n = static_cast<double>(nranks);

  const auto ser = [&](double b) { return b / (bw_gbs * 1e9); };
  const auto reduce_compute = [&](double b) {
    return b / (m.mpi.reduction_bandwidth_gbs * 1e9);
  };
  const double b = static_cast<double>(bytes);

  const bool tree = m.mpi.use_collective_tree &&
                    network.config().has_collective_tree &&
                    (routine == Routine::kBcast || routine == Routine::kReduce ||
                     routine == Routine::kAllreduce);
  if (tree) {
    const Seconds tree_time = network.collective_tree_time(nodes, bytes);
    switch (routine) {
      case Routine::kBcast:
        return o + tree_time;
      case Routine::kReduce:
        // Combines at line rate while flowing up the tree.
        return o + tree_time + reduce_compute(b) / std::max(1.0, n / 8.0);
      case Routine::kAllreduce:
        // Up (reduce) + down (broadcast) through the tree.
        return o + 2.0 * tree_time + reduce_compute(b) / std::max(1.0, n / 8.0);
      default:
        break;
    }
  }

  switch (routine) {
    case Routine::kBarrier:
      // Dissemination barrier with 8-byte tokens.
      return stages * (o + lat + ser(8.0));
    case Routine::kBcast:
      if (bytes <= m.mpi.eager_threshold) {
        // Binomial tree.
        return stages * (o + lat + ser(b));
      }
      // Scatter + ring allgather (van de Geijn) for large payloads.
      return stages * (o + lat) + 2.0 * ser(b) * (n - 1.0) / n +
             m.mpi.rendezvous_overhead;
    case Routine::kReduce:
      if (bytes <= m.mpi.eager_threshold) {
        return stages * (o + lat + ser(b) + reduce_compute(b));
      }
      return stages * (o + lat) + 2.0 * ser(b) * (n - 1.0) / n +
             reduce_compute(b) + m.mpi.rendezvous_overhead;
    case Routine::kAllreduce:
      // Rabenseifner: reduce-scatter + allgather.
      return 2.0 * stages * (o + lat) + 2.0 * ser(b) * (n - 1.0) / n +
             reduce_compute(b);
    case Routine::kAllgather:
      // Ring: n-1 steps of the per-rank contribution.
      return (n - 1.0) * (o + lat + ser(b));
    case Routine::kAlltoall: {
      // Pairwise exchange under contention.
      const double contended =
          bw_gbs / std::max(1.0, network.config().contention_factor);
      return (n - 1.0) * (o + lat + b / (contended * 1e9));
    }
    default:
      throw InvalidArgument("collective_cost: " + to_string(routine) +
                            " is not a collective");
  }
}

}  // namespace swapp::mpi
