// MPI profile data model — the simulated equivalent of the IBM Parallel
// Environment profiling library the paper uses (§2.2).
//
// A profile contains exactly what the paper lists:
//   1. every MPI routine called, with aggregate timing;
//   2. the message-size distribution per routine (size, call count, elapsed);
//   3. the per-task breakdown of execution time into compute and
//      communication (Waitall wait time counts as communication).
// Additionally, Waitall buckets record the average number of messages in
// flight, which parameterises the paper's multi-Sendrecv surrogate (Eq. 1's
// x factor).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpi/types.h"
#include "support/units.h"

namespace swapp::mpi {

/// Per-(routine, message size) statistics.
struct SizeBucket {
  Bytes bytes = 0;
  std::uint64_t calls = 0;
  Seconds elapsed = 0.0;
  /// For Waitall buckets: mean count of outstanding nonblocking messages per
  /// call (the multi-Sendrecv sequence length x in Eq. 1).  1 elsewhere.
  double avg_in_flight = 1.0;
  /// Mean |peer − self| rank distance of the messages in this bucket (the
  /// communication-topology information PE-style profilers record).  Under
  /// block placement a machine with P cores per node serves a message of
  /// rank distance d intra-node with probability ≈ max(0, 1 − d/P), which is
  /// how the projection splits traffic between the intra- and inter-node
  /// benchmark tables.
  double avg_rank_distance = 1.0;

  Seconds mean_elapsed() const {
    return calls == 0 ? 0.0 : elapsed / static_cast<double>(calls);
  }
};

/// All activity of one routine, aggregated over ranks.
struct RoutineProfile {
  Routine routine = Routine::kSend;
  std::map<Bytes, SizeBucket> by_size;
  Seconds total_elapsed = 0.0;
  std::uint64_t total_calls = 0;
};

/// Per-task execution-time breakdown (paper §2.2 item 3).
struct TaskBreakdown {
  Seconds compute = 0.0;
  Seconds communication = 0.0;
  Seconds total() const { return compute + communication; }
};

/// A complete application MPI profile at one rank count.
struct MpiProfile {
  std::string application;
  int ranks = 0;
  Seconds wall_time = 0.0;  ///< slowest task's total time

  std::map<Routine, RoutineProfile> routines;
  std::vector<TaskBreakdown> per_task;

  /// Mean per-task compute time.
  Seconds mean_compute() const;
  /// Mean per-task communication time.
  Seconds mean_communication() const;
  /// Fraction of execution time spent communicating (paper Table 1).
  double communication_fraction() const;
  /// Mean per-task elapsed time of one routine (0 when absent).
  Seconds mean_routine_elapsed(Routine r) const;
  /// Mean per-task elapsed of a whole routine class.
  Seconds mean_class_elapsed(RoutineClass c) const;

  bool has_routine(Routine r) const { return routines.count(r) != 0; }
};

}  // namespace swapp::mpi
