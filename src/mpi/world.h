// Simulated MPI runtime.
//
// World launches one fiber per rank over the discrete-event engine and gives
// each rank the blocking MPI-style API of RankCtx, so simulated applications
// (the NAS-MZ skeletons, the IMB suite) read exactly like their real MPI
// sources.  Message timing follows a LogGP-style decomposition:
//
//   * CPU overhead per call (MpiLibraryConfig) — Eq. 1's library overhead;
//   * NIC serialisation — consecutive sends from one rank share its NIC;
//   * wire time — latency + bytes/bandwidth from the topology model;
//   * eager vs. rendezvous protocol at the library's eager threshold.
//
// Collectives synchronise all ranks and complete after an algorithmic cost
// model (collectives.cpp); on BlueGene/P the Bcast/Reduce/Allreduce cost
// comes from the dedicated collective-tree network.
//
// A built-in PE-style profiler (profile.h) records every routine's
// message-size distribution and each task's compute/communication split —
// the inputs to SWAPP's communication model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/counters.h"
#include "machine/machine.h"
#include "mpi/profile.h"
#include "mpi/types.h"
#include "net/network.h"
#include "sim/engine.h"
#include "workload/compute_model.h"
#include "workload/kernel.h"

namespace swapp::mpi {

class World;

/// Per-rank handle passed to the rank body.  All calls must be made from the
/// rank's own fiber.
class RankCtx {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;
  Seconds now() const noexcept;
  machine::SmtMode smt_mode() const noexcept;
  const machine::Machine& machine() const noexcept;

  /// Runs `points` of `kernel` on this rank: advances simulated time by the
  /// compute model's prediction and accrues PMU counters.
  void compute(const workload::Kernel& kernel, double points);
  /// Advances raw time attributed to computation (setup phases etc.).
  void compute_for(Seconds duration);

  // --- point to point -------------------------------------------------------
  void send(int dst, Bytes bytes, int tag = 0);
  void recv(int src, Bytes bytes, int tag = 0);
  void sendrecv(int dst, Bytes send_bytes, int src, Bytes recv_bytes,
                int tag = 0);
  Request isend(int dst, Bytes bytes, int tag = 0);
  Request irecv(int src, Bytes bytes, int tag = 0);
  void waitall(std::span<const Request> requests);

  // --- collectives ------------------------------------------------------------
  void barrier();
  void bcast(int root, Bytes bytes);
  void reduce(int root, Bytes bytes);
  void allreduce(Bytes bytes);
  void allgather(Bytes bytes_per_rank);
  void alltoall(Bytes bytes_per_pair);

 private:
  friend class World;
  RankCtx(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// The simulated MPI job.
class World {
 public:
  struct Options {
    machine::SmtMode smt = machine::SmtMode::kSingleThread;
    std::string app_name = "app";
    /// OpenMP threads per MPI rank (hybrid mode): ranks are placed
    /// cores_per_node / threads to a node and each compute() call uses the
    /// thread-level model.
    int threads_per_rank = 1;
    workload::OmpModel omp;
  };

  World(const machine::Machine& m, int ranks, Options options);
  World(const machine::Machine& m, int ranks)
      : World(m, ranks, Options{}) {}
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `body` on every rank to completion.  May be called once.
  void run(std::function<void(RankCtx&)> body);

  int ranks() const noexcept { return nranks_; }
  const machine::Machine& machine() const noexcept { return machine_; }

  /// Results, valid after run():
  Seconds wall_time() const;
  const MpiProfile& profile() const;
  /// Instruction-weighted PMU counters over all ranks' compute() calls.
  const machine::PmuCounters& counters() const;
  /// Active hardware threads on the node of rank `r` (block placement,
  /// ranks × threads_per_rank).
  int active_cores_on_node_of(int r) const;
  /// Node hosting rank `r` under hybrid-aware block placement.
  int node_of(int r) const;
  /// Ranks that fit one node (cores_per_node / threads_per_rank).
  int ranks_per_node() const noexcept { return ranks_per_node_; }

 private:
  friend class RankCtx;

  // --- matching state --------------------------------------------------------
  struct RequestState {
    bool determined = false;  ///< completion time is known
    Seconds complete_time = 0.0;
    Bytes bytes = 0;
    int peer = -1;
    bool is_recv = false;
  };
  struct PendingMessage {  // eager message awaiting a matching recv
    int src;
    int tag;
    Bytes bytes;
    Seconds arrival;
  };
  struct PostedRecv {
    int src;
    int tag;
    Bytes bytes;
    std::uint64_t request_id;
    Seconds post_time;
  };
  struct PendingRendezvous {  // send awaiting the matching recv post
    int src;
    int tag;
    Bytes bytes;
    Seconds sender_ready;
    std::uint64_t send_request_id;  ///< 0 for a blocking send
  };
  enum class WaitKind { kNone, kBlocked };
  struct RankState {
    sim::Process* proc = nullptr;
    std::deque<PendingMessage> unexpected;
    std::deque<PostedRecv> posted;
    std::deque<PendingRendezvous> rendezvous;
    std::unordered_map<std::uint64_t, RequestState> requests;
    WaitKind wait_kind = WaitKind::kNone;
    std::vector<std::uint64_t> waiting_on;
    // profiling
    Seconds last_mpi_exit = 0.0;
    TaskBreakdown breakdown;
    machine::PmuCounters counters;
    Seconds finish_time = 0.0;
    int next_collective = 0;
    std::uint64_t compute_calls = 0;
  };
  struct CollectiveSlot {
    Routine routine = Routine::kBarrier;
    int root = 0;
    Bytes bytes = 0;
    int arrived = 0;
    Seconds max_entry = 0.0;
  };

  // --- internals --------------------------------------------------------------
  Seconds path_latency(int src, int dst) const;
  double path_bandwidth_gbs(int src, int dst) const;
  /// Books NIC serialisation for `bytes` departing `src` not before `ready`;
  /// returns the arrival time at dst.
  Seconds dispatch(int src, int dst, Bytes bytes, Seconds ready);

  std::uint64_t new_request(int owner, Bytes bytes, int peer, bool is_recv);
  void determine(int owner, std::uint64_t request_id, Seconds complete_time);
  void maybe_wake(int owner);
  /// Waits (in the calling rank's fiber) until all ids are determined, then
  /// advances to the latest completion.  Returns that time.
  Seconds await_requests(int rank, std::span<const std::uint64_t> ids);

  // Unprofiled primitives used by both the public API and sendrecv.
  std::uint64_t isend_impl(int src, int dst, Bytes bytes, int tag,
                           bool blocking);
  std::uint64_t irecv_impl(int dst, int src, Bytes bytes, int tag);
  void collective_enter(int rank, Routine routine, int root, Bytes bytes);

  // Profiling wrappers.
  struct ProfiledCall {
    Seconds entry;
  };
  ProfiledCall call_begin(int rank);
  void call_end(int rank, Routine routine, Bytes bytes, ProfiledCall call,
                double in_flight = 1.0, double rank_distance = 1.0);

  void build_profile();

  machine::Machine machine_;
  int nranks_;
  Options options_;
  int ranks_per_node_ = 1;
  net::Network network_;
  sim::Engine engine_;
  std::vector<RankState> states_;
  /// Outgoing-link availability per node: all ranks of a node share its
  /// network adapter, so their sends serialise against each other.
  std::vector<Seconds> node_nic_free_;
  std::vector<std::unique_ptr<RankCtx>> contexts_;
  std::vector<CollectiveSlot> collectives_;
  std::uint64_t next_request_id_ = 1;
  bool ran_ = false;

  MpiProfile profile_;
  machine::PmuCounters aggregate_counters_;
};

}  // namespace swapp::mpi
