#include "mpi/types.h"

#include "support/error.h"

namespace swapp::mpi {

std::string to_string(Routine r) {
  switch (r) {
    case Routine::kSend: return "MPI_Send";
    case Routine::kRecv: return "MPI_Recv";
    case Routine::kSendrecv: return "MPI_Sendrecv";
    case Routine::kIsend: return "MPI_Isend";
    case Routine::kIrecv: return "MPI_Irecv";
    case Routine::kWaitall: return "MPI_Waitall";
    case Routine::kBarrier: return "MPI_Barrier";
    case Routine::kBcast: return "MPI_Bcast";
    case Routine::kReduce: return "MPI_Reduce";
    case Routine::kAllreduce: return "MPI_Allreduce";
    case Routine::kAllgather: return "MPI_Allgather";
    case Routine::kAlltoall: return "MPI_Alltoall";
  }
  throw InternalError("unknown Routine");
}

std::string to_string(RoutineClass c) {
  switch (c) {
    case RoutineClass::kPointToPointBlocking: return "P2P-B";
    case RoutineClass::kPointToPointNonblocking: return "P2P-NB";
    case RoutineClass::kCollective: return "COLLECTIVES";
  }
  throw InternalError("unknown RoutineClass");
}

RoutineClass routine_class(Routine r) {
  switch (r) {
    case Routine::kSend:
    case Routine::kRecv:
    case Routine::kSendrecv:
      return RoutineClass::kPointToPointBlocking;
    case Routine::kIsend:
    case Routine::kIrecv:
    case Routine::kWaitall:
      return RoutineClass::kPointToPointNonblocking;
    default:
      return RoutineClass::kCollective;
  }
}

bool is_collective(Routine r) {
  return routine_class(r) == RoutineClass::kCollective;
}

}  // namespace swapp::mpi
