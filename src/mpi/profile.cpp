#include "mpi/profile.h"

namespace swapp::mpi {

Seconds MpiProfile::mean_compute() const {
  if (per_task.empty()) return 0.0;
  Seconds sum = 0.0;
  for (const TaskBreakdown& t : per_task) sum += t.compute;
  return sum / static_cast<double>(per_task.size());
}

Seconds MpiProfile::mean_communication() const {
  if (per_task.empty()) return 0.0;
  Seconds sum = 0.0;
  for (const TaskBreakdown& t : per_task) sum += t.communication;
  return sum / static_cast<double>(per_task.size());
}

double MpiProfile::communication_fraction() const {
  const Seconds compute = mean_compute();
  const Seconds comm = mean_communication();
  const Seconds total = compute + comm;
  return total > 0.0 ? comm / total : 0.0;
}

Seconds MpiProfile::mean_routine_elapsed(Routine r) const {
  const auto it = routines.find(r);
  if (it == routines.end() || ranks == 0) return 0.0;
  return it->second.total_elapsed / static_cast<double>(ranks);
}

Seconds MpiProfile::mean_class_elapsed(RoutineClass c) const {
  Seconds sum = 0.0;
  for (const auto& [routine, profile] : routines) {
    if (routine_class(routine) == c && ranks > 0) {
      sum += profile.total_elapsed / static_cast<double>(ranks);
    }
  }
  return sum;
}

}  // namespace swapp::mpi
