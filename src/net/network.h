// Interconnect models.
//
// The communication projection consumes interconnect behaviour exclusively
// through per-message transfer times (paper Eq. 1: library overhead plus time
// in flight), measured by the IMB-style benchmarks on base and target.  The
// models here supply the "time in flight" part: a LogGP-style cost — one-way
// latency plus serialisation at the link bandwidth — extended with topology
// distance (fat-tree levels, 3-D torus hops, Federation's two-level switch)
// and a contention factor for dense traffic patterns.  BlueGene/P
// additionally exposes its dedicated collective-tree network, which the MPI
// layer uses for Bcast/Reduce/Allreduce exactly as the real machine does.
#pragma once

#include <array>
#include <string>

#include "support/units.h"

namespace swapp::net {

enum class TopologyKind {
  kFatTree,     ///< InfiniBand-style folded Clos
  kTorus3D,     ///< BlueGene/P main network
  kFederation,  ///< IBM HPS two-level switch (POWER5+ base system)
};

std::string to_string(TopologyKind kind);

struct NetworkConfig {
  TopologyKind kind = TopologyKind::kFatTree;

  double link_bandwidth_gbs = 1.0;  ///< one-direction link bandwidth
  Seconds base_latency = 2_us;      ///< fixed wire + adapter latency
  Seconds per_hop_latency = 100_ns; ///< added per switch/router traversal

  int fat_tree_radix = 16;  ///< nodes per leaf switch (fat tree / Federation)

  /// Torus dimensions; {0,0,0} = derive a near-cubic shape from node count.
  std::array<int, 3> torus_dims = {0, 0, 0};

  bool has_collective_tree = false;  ///< BG/P dedicated tree network
  Seconds tree_per_hop_latency = 60_ns;
  double tree_bandwidth_gbs = 0.7;

  double intra_node_bandwidth_gbs = 4.0;  ///< shared-memory transport
  Seconds intra_node_latency = 400_ns;

  /// Bandwidth divisor applied when many messages share links (dense
  /// patterns such as alltoall); 1 = no contention modelled.
  double contention_factor = 1.5;
};

/// A concrete interconnect instance for a given node count.
class Network {
 public:
  Network(NetworkConfig config, int nodes);

  const NetworkConfig& config() const noexcept { return config_; }
  int nodes() const noexcept { return nodes_; }

  /// Switch/router traversals between two nodes (0 for the same node).
  int hops(int node_a, int node_b) const;

  /// Wire time for one message: latency (incl. per-hop) + serialisation.
  /// Does not include MPI library overheads — those belong to the machine's
  /// MPI configuration (Eq. 1 separates the two).
  Seconds transfer_time(int node_a, int node_b, Bytes bytes) const;

  /// Wire time under a congested pattern (bandwidth divided by the
  /// contention factor).  Used by dense collectives.
  Seconds congested_transfer_time(int node_a, int node_b, Bytes bytes) const;

  /// Depth of the BG/P collective tree spanning `participating_nodes`.
  /// Only valid when config().has_collective_tree.
  int collective_tree_depth(int participating_nodes) const;

  /// One traversal of the collective tree with `bytes` payload.
  Seconds collective_tree_time(int participating_nodes, Bytes bytes) const;

  /// Wire latency component only (no serialisation): intra-node latency for
  /// the same node, base + per-hop latency otherwise.
  Seconds latency(int node_a, int node_b) const;

  /// Bandwidth of the path in GB/s (intra-node or link bandwidth).
  double bandwidth_gbs(int node_a, int node_b) const;

  /// Diameter in hops (worst-case node pair) — used by tests and reports.
  int diameter() const;

 private:
  std::array<int, 3> torus_coords(int node) const;

  NetworkConfig config_;
  int nodes_;
  std::array<int, 3> dims_ = {1, 1, 1};
};

}  // namespace swapp::net
