#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::net {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree:
      return "fat-tree (InfiniBand)";
    case TopologyKind::kTorus3D:
      return "3-D torus";
    case TopologyKind::kFederation:
      return "Federation HPS";
  }
  return "unknown";
}

namespace {

std::array<int, 3> derive_torus_dims(int nodes) {
  // Near-cubic factorisation: greedily peel the largest factor <= cbrt.
  std::array<int, 3> dims = {1, 1, 1};
  int remaining = nodes;
  for (int axis = 0; axis < 2; ++axis) {
    const int target = static_cast<int>(std::round(
        std::pow(static_cast<double>(remaining), 1.0 / (3.0 - axis))));
    int best = 1;
    for (int d = 1; d <= remaining; ++d) {
      if (remaining % d == 0 && std::abs(d - target) < std::abs(best - target)) {
        best = d;
      }
    }
    dims[axis] = best;
    remaining /= best;
  }
  dims[2] = remaining;
  return dims;
}

}  // namespace

Network::Network(NetworkConfig config, int nodes)
    : config_(config), nodes_(nodes) {
  SWAPP_REQUIRE(nodes_ >= 1, "network needs at least one node");
  SWAPP_REQUIRE(config_.link_bandwidth_gbs > 0.0,
                "link bandwidth must be positive");
  SWAPP_REQUIRE(config_.fat_tree_radix >= 2, "fat-tree radix must be >= 2");
  if (config_.kind == TopologyKind::kTorus3D) {
    if (config_.torus_dims == std::array<int, 3>{0, 0, 0}) {
      dims_ = derive_torus_dims(nodes_);
    } else {
      dims_ = config_.torus_dims;
      SWAPP_REQUIRE(dims_[0] * dims_[1] * dims_[2] >= nodes_,
                    "torus dimensions too small for node count");
    }
  }
}

std::array<int, 3> Network::torus_coords(int node) const {
  std::array<int, 3> c{};
  c[0] = node % dims_[0];
  c[1] = (node / dims_[0]) % dims_[1];
  c[2] = node / (dims_[0] * dims_[1]);
  return c;
}

int Network::hops(int node_a, int node_b) const {
  SWAPP_REQUIRE(node_a >= 0 && node_a < nodes_, "node_a out of range");
  SWAPP_REQUIRE(node_b >= 0 && node_b < nodes_, "node_b out of range");
  if (node_a == node_b) return 0;
  switch (config_.kind) {
    case TopologyKind::kFatTree:
    case TopologyKind::kFederation: {
      // Same leaf switch: up + down.  Different leaves: through the spine.
      const int leaf_a = node_a / config_.fat_tree_radix;
      const int leaf_b = node_b / config_.fat_tree_radix;
      return leaf_a == leaf_b ? 2 : 4;
    }
    case TopologyKind::kTorus3D: {
      const auto ca = torus_coords(node_a);
      const auto cb = torus_coords(node_b);
      int total = 0;
      for (int axis = 0; axis < 3; ++axis) {
        const int d = std::abs(ca[axis] - cb[axis]);
        total += std::min(d, dims_[axis] - d);  // wraparound links
      }
      return total;
    }
  }
  return 1;
}

Seconds Network::transfer_time(int node_a, int node_b, Bytes bytes) const {
  return latency(node_a, node_b) +
         static_cast<double>(bytes) / (bandwidth_gbs(node_a, node_b) * 1e9);
}

Seconds Network::latency(int node_a, int node_b) const {
  if (node_a == node_b) return config_.intra_node_latency;
  return config_.base_latency + hops(node_a, node_b) * config_.per_hop_latency;
}

double Network::bandwidth_gbs(int node_a, int node_b) const {
  return node_a == node_b ? config_.intra_node_bandwidth_gbs
                          : config_.link_bandwidth_gbs;
}

Seconds Network::congested_transfer_time(int node_a, int node_b,
                                         Bytes bytes) const {
  if (node_a == node_b) {
    return transfer_time(node_a, node_b, bytes);
  }
  const int h = hops(node_a, node_b);
  const Seconds latency = config_.base_latency + h * config_.per_hop_latency;
  const double effective_bw =
      config_.link_bandwidth_gbs / std::max(1.0, config_.contention_factor);
  return latency + static_cast<double>(bytes) / (effective_bw * 1e9);
}

int Network::collective_tree_depth(int participating_nodes) const {
  SWAPP_REQUIRE(config_.has_collective_tree,
                "this network has no collective tree");
  SWAPP_REQUIRE(participating_nodes >= 1, "need at least one participant");
  // The BG/P tree is a binary tree over the partition.
  return static_cast<int>(
      std::ceil(std::log2(static_cast<double>(participating_nodes) + 1.0)));
}

Seconds Network::collective_tree_time(int participating_nodes,
                                      Bytes bytes) const {
  const int depth = collective_tree_depth(participating_nodes);
  return depth * config_.tree_per_hop_latency +
         static_cast<double>(bytes) / (config_.tree_bandwidth_gbs * 1e9);
}

int Network::diameter() const {
  switch (config_.kind) {
    case TopologyKind::kFatTree:
    case TopologyKind::kFederation:
      return nodes_ <= config_.fat_tree_radix ? 2 : 4;
    case TopologyKind::kTorus3D:
      return dims_[0] / 2 + dims_[1] / 2 + dims_[2] / 2;
  }
  return 0;
}

}  // namespace swapp::net
