#include "machine/overrides.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <iomanip>
#include <sstream>
#include <utility>

#include "support/error.h"

namespace swapp::machine {
namespace {

// Accessor pair for one registry field.  Setters receive the validated
// resolved value; cache/memory setters rebuild the hierarchy because
// CacheHierarchy only exposes const views of its configuration.
struct FieldImpl {
  OverrideField meta;
  std::function<double(const Machine&)> get;
  std::function<void(Machine&, double)> set;
};

constexpr double kUs = 1e-6;
constexpr double kNs = 1e-9;
constexpr double kKiB = 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

const CacheLevelConfig& cache_level(const Machine& m, const std::string& name) {
  for (const auto& level : m.caches.levels()) {
    if (level.name == name) return level;
  }
  throw InvalidArgument("machine \"" + m.name + "\" has no cache level " +
                        name);
}

void mutate_cache_level(Machine& m, const std::string& name,
                        const std::function<void(CacheLevelConfig&)>& fn) {
  std::vector<CacheLevelConfig> levels = m.caches.levels();
  MemoryConfig memory = m.caches.memory();
  bool found = false;
  for (auto& level : levels) {
    if (level.name == name) {
      fn(level);
      found = true;
    }
  }
  if (!found) {
    throw InvalidArgument("machine \"" + m.name + "\" has no cache level " +
                          name);
  }
  m.caches = CacheHierarchy(std::move(levels), memory);
}

void mutate_memory(Machine& m, const std::function<void(MemoryConfig&)>& fn) {
  std::vector<CacheLevelConfig> levels = m.caches.levels();
  MemoryConfig memory = m.caches.memory();
  fn(memory);
  m.caches = CacheHierarchy(std::move(levels), memory);
}

FieldImpl processor_field(std::string name, bool integral, double lo,
                          double hi, double ProcessorConfig::* member) {
  return {
      {std::move(name), OverrideSide::kCompute, integral, lo, hi},
      [member](const Machine& m) { return m.processor.*member; },
      [member](Machine& m, double v) { m.processor.*member = v; },
  };
}

FieldImpl processor_int_field(std::string name, double lo, double hi,
                              int ProcessorConfig::* member) {
  return {
      {std::move(name), OverrideSide::kCompute, true, lo, hi},
      [member](const Machine& m) {
        return static_cast<double>(m.processor.*member);
      },
      [member](Machine& m, double v) {
        m.processor.*member = static_cast<int>(v);
      },
  };
}

FieldImpl cache_field(const std::string& level) {
  return {
      {"cache." + level + ".capacity_kib", OverrideSide::kCompute, false, 1.0,
       1048576.0},
      [level](const Machine& m) {
        return static_cast<double>(cache_level(m, level).capacity) / kKiB;
      },
      [level](Machine& m, double v) {
        mutate_cache_level(m, level, [v](CacheLevelConfig& c) {
          c.capacity = static_cast<Bytes>(std::llround(v * kKiB));
        });
      },
  };
}

FieldImpl cache_latency_field(const std::string& level) {
  return {
      {"cache." + level + ".latency_cycles", OverrideSide::kCompute, false,
       1.0, 10000.0},
      [level](const Machine& m) { return cache_level(m, level).latency_cycles; },
      [level](Machine& m, double v) {
        mutate_cache_level(m, level,
                           [v](CacheLevelConfig& c) { c.latency_cycles = v; });
      },
  };
}

FieldImpl memory_field(std::string name, double lo, double hi,
                       double MemoryConfig::* member) {
  return {
      {std::move(name), OverrideSide::kCompute, false, lo, hi},
      [member](const Machine& m) { return m.caches.memory().*member; },
      [member](Machine& m, double v) {
        mutate_memory(m, [member, v](MemoryConfig& mem) { mem.*member = v; });
      },
  };
}

FieldImpl network_field(std::string name, double lo, double hi, double scale,
                        Seconds net::NetworkConfig::* member) {
  return {
      {std::move(name), OverrideSide::kComm, false, lo, hi},
      [member, scale](const Machine& m) { return m.network.*member / scale; },
      [member, scale](Machine& m, double v) { m.network.*member = v * scale; },
  };
}

FieldImpl network_double_field(std::string name, double lo, double hi,
                               double net::NetworkConfig::* member) {
  return {
      {std::move(name), OverrideSide::kComm, false, lo, hi},
      [member](const Machine& m) { return m.network.*member; },
      [member](Machine& m, double v) { m.network.*member = v; },
  };
}

FieldImpl mpi_seconds_field(std::string name, double lo, double hi,
                            Seconds MpiLibraryConfig::* member) {
  return {
      {std::move(name), OverrideSide::kComm, false, lo, hi},
      [member](const Machine& m) { return m.mpi.*member / kUs; },
      [member](Machine& m, double v) { m.mpi.*member = v * kUs; },
  };
}

std::vector<FieldImpl> build_registry() {
  std::vector<FieldImpl> fields;

  // Processor microarchitecture (compute side).
  fields.push_back(processor_field("processor.frequency_ghz", false, 0.1,
                                   100.0, &ProcessorConfig::frequency_ghz));
  fields.push_back(processor_int_field("processor.issue_width", 1.0, 32.0,
                                       &ProcessorConfig::issue_width));
  fields.push_back(processor_field("processor.fp_latency_cycles", false, 1.0,
                                   100.0, &ProcessorConfig::fp_latency_cycles));
  fields.push_back(processor_field("processor.fp_per_cycle", false, 0.1, 64.0,
                                   &ProcessorConfig::fp_per_cycle));
  fields.push_back(processor_field("processor.simd_width", false, 1.0, 64.0,
                                   &ProcessorConfig::simd_width));
  fields.push_back(
      processor_field("processor.branch_penalty_cycles", false, 0.0, 100.0,
                      &ProcessorConfig::branch_penalty_cycles));
  fields.push_back(
      processor_field("processor.predictor_strength", false, 0.0, 1.0,
                      &ProcessorConfig::predictor_strength));
  fields.push_back(processor_field("processor.ooo_window_factor", false, 0.0,
                                   1.0, &ProcessorConfig::ooo_window_factor));
  fields.push_back(
      processor_int_field("processor.max_outstanding_misses", 1.0, 1024.0,
                          &ProcessorConfig::max_outstanding_misses));
  fields.push_back(processor_field("processor.prefetch_strength", false, 0.0,
                                   1.0, &ProcessorConfig::prefetch_strength));
  fields.push_back(processor_int_field("processor.smt_ways", 1.0, 8.0,
                                       &ProcessorConfig::smt_ways));
  fields.push_back(
      processor_field("processor.smt_issue_efficiency", false, 0.05, 1.0,
                      &ProcessorConfig::smt_issue_efficiency));

  // Cache hierarchy and memory system (compute side).
  for (const char* level : {"L1", "L2", "L3"}) {
    fields.push_back(cache_field(level));
    fields.push_back(cache_latency_field(level));
  }
  fields.push_back(memory_field("memory.latency_cycles", 1.0, 10000.0,
                                &MemoryConfig::latency_cycles));
  fields.push_back(memory_field("memory.remote_latency_cycles", 1.0, 20000.0,
                                &MemoryConfig::remote_latency_cycles));
  fields.push_back(memory_field("memory.node_bandwidth_gbs", 0.1, 10000.0,
                                &MemoryConfig::node_bandwidth_gbs));
  fields.push_back({
      {"memory_per_core_gib", OverrideSide::kCompute, false, 0.0625, 1024.0},
      [](const Machine& m) {
        return static_cast<double>(m.memory_per_core) / kGiB;
      },
      [](Machine& m, double v) {
        m.memory_per_core = static_cast<Bytes>(std::llround(v * kGiB));
      },
  });

  // Node geometry and noise feed both pipelines: occupancy shapes the SPEC
  // runs and the MPI rank placement; jitter perturbs compute phases and the
  // wait-time simulation alike.
  fields.push_back({
      {"cores_per_node", OverrideSide::kBoth, true, 1.0, 4096.0},
      [](const Machine& m) { return static_cast<double>(m.cores_per_node); },
      [](Machine& m, double v) { m.cores_per_node = static_cast<int>(v); },
  });
  fields.push_back({
      {"os_jitter", OverrideSide::kBoth, false, 0.0, 0.5},
      [](const Machine& m) { return m.os_jitter; },
      [](Machine& m, double v) { m.os_jitter = v; },
  });

  // Interconnect (comm side).
  fields.push_back(network_double_field("network.link_bandwidth_gbs", 0.01,
                                        10000.0,
                                        &net::NetworkConfig::link_bandwidth_gbs));
  fields.push_back(network_field("network.base_latency_us", 0.001, 10000.0,
                                 kUs, &net::NetworkConfig::base_latency));
  fields.push_back(network_field("network.per_hop_latency_ns", 0.0, 1000000.0,
                                 kNs, &net::NetworkConfig::per_hop_latency));
  fields.push_back(
      network_double_field("network.intra_node_bandwidth_gbs", 0.01, 10000.0,
                           &net::NetworkConfig::intra_node_bandwidth_gbs));
  fields.push_back(network_field("network.intra_node_latency_us", 0.001,
                                 1000.0, kUs,
                                 &net::NetworkConfig::intra_node_latency));
  fields.push_back(
      network_double_field("network.contention_factor", 1.0, 100.0,
                           &net::NetworkConfig::contention_factor));

  // MPI library (comm side).
  fields.push_back(mpi_seconds_field("mpi.send_overhead_us", 0.0, 1000.0,
                                     &MpiLibraryConfig::send_overhead));
  fields.push_back(mpi_seconds_field("mpi.recv_overhead_us", 0.0, 1000.0,
                                     &MpiLibraryConfig::recv_overhead));
  fields.push_back(
      mpi_seconds_field("mpi.nonblocking_post_overhead_us", 0.0, 1000.0,
                        &MpiLibraryConfig::nonblocking_post_overhead));
  fields.push_back({
      {"mpi.eager_threshold_kib", OverrideSide::kComm, false, 0.0, 1048576.0},
      [](const Machine& m) {
        return static_cast<double>(m.mpi.eager_threshold) / kKiB;
      },
      [](Machine& m, double v) {
        m.mpi.eager_threshold = static_cast<Bytes>(std::llround(v * kKiB));
      },
  });
  fields.push_back(mpi_seconds_field("mpi.rendezvous_overhead_us", 0.0, 1000.0,
                                     &MpiLibraryConfig::rendezvous_overhead));
  fields.push_back({
      {"mpi.reduction_bandwidth_gbs", OverrideSide::kComm, false, 0.01,
       10000.0},
      [](const Machine& m) { return m.mpi.reduction_bandwidth_gbs; },
      [](Machine& m, double v) { m.mpi.reduction_bandwidth_gbs = v; },
  });

  return fields;
}

const std::vector<FieldImpl>& registry() {
  static const std::vector<FieldImpl> fields = build_registry();
  return fields;
}

const FieldImpl& field_impl(const std::string& name) {
  for (const auto& field : registry()) {
    if (field.meta.name == name) return field;
  }
  throw InvalidArgument("unknown override field: " + name +
                        " (see machine::override_fields)");
}

// The canonical descriptions below print every model parameter at full
// precision, one per line, so byte equality is configuration equality.
class ConfigWriter {
 public:
  ConfigWriter() { os_ << std::setprecision(17); }

  ConfigWriter& line(const std::string& key, double value) {
    os_ << key << '=' << value << '\n';
    return *this;
  }
  ConfigWriter& line(const std::string& key, const std::string& value) {
    os_ << key << '=' << value << '\n';
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::string to_string(OverrideKind kind) {
  return kind == OverrideKind::kSet ? "set" : "scale";
}

std::string to_string(OverrideSide side) {
  switch (side) {
    case OverrideSide::kCompute: return "compute";
    case OverrideSide::kComm: return "comm";
    case OverrideSide::kBoth: return "both";
  }
  return "?";
}

const std::vector<OverrideField>& override_fields() {
  static const std::vector<OverrideField> fields = [] {
    std::vector<OverrideField> out;
    out.reserve(registry().size());
    for (const auto& field : registry()) out.push_back(field.meta);
    return out;
  }();
  return fields;
}

const OverrideField& override_field(const std::string& name) {
  return field_impl(name).meta;
}

double read_field(const Machine& m, const std::string& field) {
  return field_impl(field).get(m);
}

Machine apply_overrides(const Machine& m,
                        const std::vector<Override>& overrides) {
  Machine out = m;
  for (const Override& o : overrides) {
    const FieldImpl& field = field_impl(o.field);
    if (!std::isfinite(o.value)) {
      throw InvalidArgument("override " + o.field + ": value must be finite");
    }
    double resolved = o.kind == OverrideKind::kSet ? o.value
                                                   : field.get(out) * o.value;
    if (field.meta.integral) resolved = std::round(resolved);
    if (!(resolved >= field.meta.min_value &&
          resolved <= field.meta.max_value)) {
      std::ostringstream msg;
      msg << std::setprecision(17) << "override " << o.field << ": resolved "
          << "value " << resolved << " outside [" << field.meta.min_value
          << ", " << field.meta.max_value << "]";
      throw InvalidArgument(msg.str());
    }
    field.set(out, resolved);
  }
  return out;
}

std::string describe_compute_side(const Machine& m) {
  ConfigWriter w;
  const ProcessorConfig& p = m.processor;
  w.line("processor.frequency_ghz", p.frequency_ghz)
      .line("processor.issue_width", p.issue_width)
      .line("processor.fp_latency_cycles", p.fp_latency_cycles)
      .line("processor.fp_per_cycle", p.fp_per_cycle)
      .line("processor.simd_width", p.simd_width)
      .line("processor.branch_penalty_cycles", p.branch_penalty_cycles)
      .line("processor.predictor_strength", p.predictor_strength)
      .line("processor.ooo_window_factor", p.ooo_window_factor)
      .line("processor.max_outstanding_misses", p.max_outstanding_misses)
      .line("processor.prefetch_strength", p.prefetch_strength)
      .line("processor.smt_ways", p.smt_ways)
      .line("processor.smt_issue_efficiency", p.smt_issue_efficiency)
      .line("processor.tlb_entries", p.tlb_entries)
      .line("processor.page_bytes", static_cast<double>(p.page_bytes))
      .line("processor.tlb_penalty_cycles", p.tlb_penalty_cycles)
      .line("processor.has_erat", p.has_erat ? 1.0 : 0.0)
      .line("processor.erat_entries", p.erat_entries)
      .line("processor.erat_penalty_cycles", p.erat_penalty_cycles)
      .line("processor.has_slb", p.has_slb ? 1.0 : 0.0)
      .line("processor.slb_penalty_cycles", p.slb_penalty_cycles);
  for (const auto& level : m.caches.levels()) {
    const std::string prefix = "cache." + level.name;
    w.line(prefix + ".capacity", static_cast<double>(level.capacity))
        .line(prefix + ".shared_by_cores", level.shared_by_cores)
        .line(prefix + ".latency_cycles", level.latency_cycles)
        .line(prefix + ".line_bytes", static_cast<double>(level.line_bytes));
  }
  const MemoryConfig& mem = m.caches.memory();
  w.line("memory.latency_cycles", mem.latency_cycles)
      .line("memory.remote_latency_cycles", mem.remote_latency_cycles)
      .line("memory.node_bandwidth_gbs", mem.node_bandwidth_gbs)
      .line("memory.sockets", mem.sockets)
      .line("memory_per_core", static_cast<double>(m.memory_per_core))
      .line("cores_per_node", m.cores_per_node)
      .line("os_jitter", m.os_jitter);
  return w.str();
}

std::string describe_comm_side(const Machine& m) {
  ConfigWriter w;
  const net::NetworkConfig& n = m.network;
  w.line("network.kind", net::to_string(n.kind))
      .line("network.link_bandwidth_gbs", n.link_bandwidth_gbs)
      .line("network.base_latency", n.base_latency)
      .line("network.per_hop_latency", n.per_hop_latency)
      .line("network.fat_tree_radix", n.fat_tree_radix)
      .line("network.torus_dims", std::to_string(n.torus_dims[0]) + "x" +
                                      std::to_string(n.torus_dims[1]) + "x" +
                                      std::to_string(n.torus_dims[2]))
      .line("network.has_collective_tree", n.has_collective_tree ? 1.0 : 0.0)
      .line("network.tree_per_hop_latency", n.tree_per_hop_latency)
      .line("network.tree_bandwidth_gbs", n.tree_bandwidth_gbs)
      .line("network.intra_node_bandwidth_gbs", n.intra_node_bandwidth_gbs)
      .line("network.intra_node_latency", n.intra_node_latency)
      .line("network.contention_factor", n.contention_factor);
  const MpiLibraryConfig& mpi = m.mpi;
  w.line("mpi.send_overhead", mpi.send_overhead)
      .line("mpi.recv_overhead", mpi.recv_overhead)
      .line("mpi.nonblocking_post_overhead", mpi.nonblocking_post_overhead)
      .line("mpi.eager_threshold", static_cast<double>(mpi.eager_threshold))
      .line("mpi.rendezvous_overhead", mpi.rendezvous_overhead)
      .line("mpi.reduction_bandwidth_gbs", mpi.reduction_bandwidth_gbs)
      .line("mpi.use_collective_tree", mpi.use_collective_tree ? 1.0 : 0.0)
      .line("cores_per_node", m.cores_per_node)
      .line("os_jitter", m.os_jitter);
  return w.str();
}

std::string describe_machine_config(const Machine& m) {
  ConfigWriter w;
  w.line("total_cores", m.total_cores);
  return "#compute\n" + describe_compute_side(m) + "#comm\n" +
         describe_comm_side(m) + w.str();
}

std::string config_fingerprint(const Machine& m) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0')
     << fnv1a(describe_machine_config(m));
  return os.str();
}

}  // namespace swapp::machine
