// Machine models: processor microarchitecture, node geometry, MPI library
// parameters, and interconnect configuration for the base and target systems
// of the paper's evaluation (Table 2).
//
// SWAPP never inspects these configurations directly when projecting — it
// only sees counter profiles and benchmark timings, exactly like the paper.
// The configurations exist so the *simulated substrate* can produce those
// profiles and ground-truth runtimes.
#pragma once

#include <string>
#include <vector>

#include "machine/cache.h"
#include "net/network.h"
#include "support/units.h"

namespace swapp::machine {

/// Simultaneous-multithreading mode, as in the paper's §4 (ST vs SMT runs on
/// the POWER systems).
enum class SmtMode { kSingleThread, kSmt };

std::string to_string(SmtMode mode);

/// Processor microarchitecture parameters — inputs to the CPI-stack model.
struct ProcessorConfig {
  std::string name;
  std::string isa;          ///< "POWER", "PPC", "x86" — documentation only
  double frequency_ghz = 1.0;

  int issue_width = 4;      ///< sustained instructions per cycle, ideal code
  double fp_latency_cycles = 6.0;   ///< dependent FP op latency
  double fp_per_cycle = 2.0;        ///< peak FP ops issued per cycle (scalar)
  double simd_width = 1.0;          ///< additional FP throughput for
                                    ///< vectorised code (1 = no SIMD)
  double branch_penalty_cycles = 12.0;
  double predictor_strength = 0.9;  ///< fraction of "hard" branches predicted

  /// Latency-hiding ability of the out-of-order window: 0 = fully exposed
  /// miss latency (in-order), 1 = perfectly overlapped.
  double ooo_window_factor = 0.5;
  int max_outstanding_misses = 8;   ///< memory-level parallelism supported
  double prefetch_strength = 0.5;   ///< 0..1; discount on streaming misses

  int smt_ways = 1;
  /// Per-thread share of core throughput when SMT is active (e.g. 0.62 means
  /// two threads each get 62% of single-thread issue capability).
  double smt_issue_efficiency = 0.62;

  // Address translation.
  double tlb_entries = 1024;
  Bytes page_bytes = 4096;
  double tlb_penalty_cycles = 40.0;
  bool has_erat = false;            ///< POWER-family effective-to-real cache
  double erat_entries = 128;
  double erat_penalty_cycles = 12.0;
  bool has_slb = false;             ///< POWER segment lookaside buffer
  double slb_penalty_cycles = 60.0;
};

/// MPI library cost parameters (Eq. 1's library-overhead component).
struct MpiLibraryConfig {
  Seconds send_overhead = 1_us;       ///< CPU time to issue a send
  Seconds recv_overhead = 1_us;       ///< CPU time to complete a receive
  Seconds nonblocking_post_overhead = 300_ns;  ///< Isend/Irecv posting cost
  Bytes eager_threshold = 16_KiB;     ///< above this, rendezvous protocol
  Seconds rendezvous_overhead = 2_us; ///< extra handshake for large messages
  double reduction_bandwidth_gbs = 2.0;  ///< local combine speed for Reduce
  /// Whether collectives may use a dedicated tree network when the
  /// interconnect provides one (BG/P).
  bool use_collective_tree = true;
};

/// A complete system: node microarchitecture + interconnect.
struct Machine {
  std::string name;
  ProcessorConfig processor;
  CacheHierarchy caches;
  int cores_per_node = 1;
  Bytes memory_per_core = 2_GiB;
  MpiLibraryConfig mpi;
  net::NetworkConfig network;

  int total_cores = 0;  ///< size of the installation (Table 2)

  /// Relative amplitude of OS/system noise on compute phases.  Commodity
  /// clusters sit around 1–2 %; BlueGene's microkernel is famously quiet.
  /// Applied deterministically (hash of rank and call index), this is what
  /// keeps perfectly-balanced applications from showing exactly zero
  /// WaitTime, as on real systems.
  double os_jitter = 0.02;

  Seconds cycle_time() const { return cycle_seconds(processor.frequency_ghz); }
  int nodes_for_ranks(int ranks) const {
    return (ranks + cores_per_node - 1) / cores_per_node;
  }
  /// Node index hosting a rank under block placement (the paper keeps task
  /// placement identical between application and benchmark runs).
  int node_of_rank(int rank) const { return rank / cores_per_node; }
};

/// The four systems of Table 2.
Machine make_power5_hydra();     ///< TAMU Hydra, POWER5+ — the base system
Machine make_power6_575();       ///< IBM POWER6 575 cluster, InfiniBand
Machine make_bluegene_p();       ///< BG/P, 3-D torus + collective tree
Machine make_westmere_x5670();   ///< IBM iDataPlex, Intel Xeon X5670

/// All four, base first.
std::vector<Machine> all_machines();

/// Lookup by name; throws NotFound.
Machine machine_by_name(const std::string& name);

}  // namespace swapp::machine
