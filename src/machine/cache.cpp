#include "machine/cache.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace swapp::machine {

double hit_fraction(double coverage, double locality_theta) {
  SWAPP_REQUIRE(locality_theta > 0.0, "locality exponent must be positive");
  if (coverage <= 0.0) return 0.0;
  if (coverage >= 1.0) return 1.0;
  return std::pow(coverage, locality_theta);
}

CacheHierarchy::CacheHierarchy(std::vector<CacheLevelConfig> levels,
                               MemoryConfig memory)
    : levels_(std::move(levels)), memory_(memory) {
  SWAPP_REQUIRE(!levels_.empty(), "cache hierarchy needs at least one level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    SWAPP_REQUIRE(levels_[i].capacity > 0, "cache level capacity must be > 0");
    SWAPP_REQUIRE(levels_[i].shared_by_cores >= 1,
                  "shared_by_cores must be >= 1");
    if (i > 0) {
      SWAPP_REQUIRE(levels_[i].capacity >= levels_[i - 1].capacity,
                    "cache levels must be ordered smallest to largest");
    }
  }
  SWAPP_REQUIRE(memory_.sockets >= 1, "node needs at least one socket");
  SWAPP_REQUIRE(memory_.node_bandwidth_gbs > 0.0,
                "memory bandwidth must be positive");
}

Bytes CacheHierarchy::effective_capacity(std::size_t level,
                                         int active_cores) const {
  SWAPP_REQUIRE(level < levels_.size(), "cache level out of range");
  SWAPP_REQUIRE(active_cores >= 1, "active core count must be >= 1");
  const CacheLevelConfig& cfg = levels_[level];
  const int sharers = std::min(cfg.shared_by_cores, active_cores);
  return cfg.capacity / static_cast<Bytes>(std::max(sharers, 1));
}

ReloadBreakdown CacheHierarchy::reloads(Bytes working_set,
                                        double locality_theta,
                                        int active_cores,
                                        double remote_fraction) const {
  SWAPP_REQUIRE(working_set > 0, "working set must be positive");
  SWAPP_REQUIRE(remote_fraction >= 0.0 && remote_fraction <= 1.0,
                "remote fraction must be in [0,1]");

  ReloadBreakdown out;
  out.cache_fraction.resize(levels_.size(), 0.0);

  double served_below = 0.0;  // cumulative fraction served by levels so far
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const double coverage =
        static_cast<double>(effective_capacity(i, active_cores)) /
        static_cast<double>(working_set);
    const double cum = hit_fraction(coverage, locality_theta);
    out.cache_fraction[i] = std::max(0.0, cum - served_below);
    served_below = std::max(served_below, cum);
  }
  const double mem_fraction = std::max(0.0, 1.0 - served_below);
  // Remote traffic only exists on multi-socket nodes.
  const double remote = memory_.sockets > 1 ? remote_fraction : 0.0;
  out.remote_mem_fraction = mem_fraction * remote;
  out.local_mem_fraction = mem_fraction * (1.0 - remote);

  double latency = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    latency += out.cache_fraction[i] * levels_[i].latency_cycles;
  }
  latency += out.local_mem_fraction * memory_.latency_cycles;
  latency += out.remote_mem_fraction * memory_.remote_latency_cycles;
  out.average_latency_cycles = latency;
  return out;
}

}  // namespace swapp::machine
