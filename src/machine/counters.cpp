#include "machine/counters.h"

#include "support/error.h"

namespace swapp::machine {

void PmuCounters::accumulate(const PmuCounters& other) {
  const double total_instr = instructions + other.instructions;
  if (total_instr <= 0.0) return;
  const double w0 = instructions / total_instr;
  const double w1 = other.instructions / total_instr;

  const auto blend = [&](double a, double b) { return w0 * a + w1 * b; };

  cpi_completion = blend(cpi_completion, other.cpi_completion);
  cpi_stall_fp = blend(cpi_stall_fp, other.cpi_stall_fp);
  cpi_stall_mem = blend(cpi_stall_mem, other.cpi_stall_mem);
  cpi_stall_branch = blend(cpi_stall_branch, other.cpi_stall_branch);
  cpi_stall_other = blend(cpi_stall_other, other.cpi_stall_other);
  fp_per_instr = blend(fp_per_instr, other.fp_per_instr);
  fp_vector_fraction = blend(fp_vector_fraction, other.fp_vector_fraction);
  erat_miss_rate = blend(erat_miss_rate, other.erat_miss_rate);
  slb_miss_rate = blend(slb_miss_rate, other.slb_miss_rate);
  tlb_miss_rate = blend(tlb_miss_rate, other.tlb_miss_rate);
  data_from_l2_per_instr = blend(data_from_l2_per_instr,
                                 other.data_from_l2_per_instr);
  data_from_l3_per_instr = blend(data_from_l3_per_instr,
                                 other.data_from_l3_per_instr);
  data_from_local_mem_per_instr =
      blend(data_from_local_mem_per_instr, other.data_from_local_mem_per_instr);
  data_from_remote_mem_per_instr = blend(data_from_remote_mem_per_instr,
                                         other.data_from_remote_mem_per_instr);

  // Bandwidth is time-weighted, not instruction-weighted.
  const Seconds total_time = seconds + other.seconds;
  if (total_time > 0.0) {
    memory_bandwidth_gbs =
        (memory_bandwidth_gbs * seconds +
         other.memory_bandwidth_gbs * other.seconds) /
        total_time;
  }

  instructions = total_instr;
  cycles += other.cycles;
  seconds += other.seconds;
}

MetricVector MetricVector::from_counters(const PmuCounters& c) {
  MetricVector v;
  v.values = {
      c.cpi_completion,                  // 0  G1
      c.cpi_stall_fp,                    // 1  G2
      c.cpi_stall_mem,                   // 2  G2
      c.cpi_stall_branch,                // 3  G2
      c.cpi_stall_other,                 // 4  G2
      c.fp_per_instr,                    // 5  G3
      c.fp_vector_fraction,              // 6  G3
      c.erat_miss_rate,                  // 7  G4
      c.slb_miss_rate,                   // 8  G4
      c.tlb_miss_rate,                   // 9  G4
      c.data_from_l2_per_instr,          // 10 G5 (m5,1)
      c.data_from_l3_per_instr,          // 11 G5 (m5,2)
      c.data_from_local_mem_per_instr,   // 12 G5 (m5,3)
      c.data_from_remote_mem_per_instr,  // 13 G5 (m5,4)
      c.memory_bandwidth_gbs,            // 14 G6
      // Derived: memory traffic per instruction (bytes).  Under bandwidth
      // saturation the raw GB/s counter clips at the machine's ceiling and
      // stops discriminating; traffic intensity does not.
      c.instructions > 0.0
          ? c.memory_bandwidth_gbs * 1e9 * c.seconds / c.instructions
          : 0.0,                         // 15 G6
  };
  return v;
}

MetricGroup MetricVector::group_of(std::size_t index) {
  SWAPP_REQUIRE(index < kMetricCount, "metric index out of range");
  if (index == 0) return MetricGroup::kCpiCompletion;
  if (index <= 4) return MetricGroup::kCpiStall;
  if (index <= 6) return MetricGroup::kFloatingPoint;
  if (index <= 9) return MetricGroup::kTranslation;
  if (index <= 13) return MetricGroup::kDataReloads;
  return MetricGroup::kMemoryBandwidth;  // 14 and 15
}

std::vector<double> transpose_metric_major(
    const std::vector<MetricVector>& vectors) {
  const std::size_t n = vectors.size();
  std::vector<double> out(kMetricCount * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      out[i * n + k] = vectors[k].values[i];
    }
  }
  return out;
}

std::string MetricVector::name_of(std::size_t index) {
  static const std::array<const char*, kMetricCount> kNames = {
      "cpi_completion",    "cpi_stall_fp",     "cpi_stall_mem",
      "cpi_stall_branch",  "cpi_stall_other",  "fp_per_instr",
      "fp_vector_frac",    "erat_miss_rate",   "slb_miss_rate",
      "tlb_miss_rate",     "data_from_l2",     "data_from_l3",
      "data_from_lmem",    "data_from_rmem",   "mem_bandwidth_gbs",
      "mem_bytes_per_instr",
  };
  SWAPP_REQUIRE(index < kMetricCount, "metric index out of range");
  return kNames[index];
}

}  // namespace swapp::machine
