// Cache hierarchy model.
//
// The strong-scaling behaviour SWAPP's ACSM model detects (paper §3.1) comes
// from the interaction between an application's per-rank working set and the
// *effective per-core* capacity of each cache level: as the rank count grows,
// the per-rank footprint shrinks and drops into lower levels, changing the
// G5 reload metrics and eventually producing hyper-scaling.  The hierarchy
// here is analytic — a footprint-coverage model rather than a trace-driven
// simulator — which yields the same smooth m5,j(C) curves real counters show
// while remaining fast enough to evaluate millions of times.
#pragma once

#include <string>
#include <vector>

#include "support/units.h"

namespace swapp::machine {

/// Configuration of one cache level.
struct CacheLevelConfig {
  std::string name;        ///< "L1", "L2", "L3"
  Bytes capacity = 0;      ///< total capacity of one instance of this level
  int shared_by_cores = 1; ///< cores sharing one instance (1 = private)
  double latency_cycles = 1.0;  ///< load-to-use latency in core cycles
  Bytes line_bytes = 128;
};

/// Main-memory configuration for one node.
struct MemoryConfig {
  double latency_cycles = 300.0;         ///< local memory load latency
  double remote_latency_cycles = 500.0;  ///< other-socket latency (NUMA)
  double node_bandwidth_gbs = 10.0;      ///< aggregate per-node stream b/w
  int sockets = 1;                       ///< NUMA domains per node
};

/// Fraction of an access stream served at or above a given coverage ratio.
///
/// `coverage` = (effective cache capacity) / (working-set size).  The
/// locality exponent θ describes how concentrated the kernel's reuse is:
/// θ → 0 models a small hot set absorbing most accesses, θ = 1 models
/// uniform/streaming access.  The functional form min(1, coverage^θ) is the
/// standard footprint approximation.
double hit_fraction(double coverage, double locality_theta);

/// Per-level breakdown of where loads are served from.
struct ReloadBreakdown {
  /// fraction[i] = fraction of loads served by cache level i; the last two
  /// entries are local and remote memory.
  std::vector<double> cache_fraction;
  double local_mem_fraction = 0.0;
  double remote_mem_fraction = 0.0;
  /// Average load-to-use latency in cycles implied by the breakdown.
  double average_latency_cycles = 0.0;
};

class CacheHierarchy {
 public:
  CacheHierarchy(std::vector<CacheLevelConfig> levels, MemoryConfig memory);

  const std::vector<CacheLevelConfig>& levels() const noexcept {
    return levels_;
  }
  const MemoryConfig& memory() const noexcept { return memory_; }

  /// Effective capacity available to one core at level `i` when
  /// `active_cores` cores are running on the node (shared levels divide).
  Bytes effective_capacity(std::size_t level, int active_cores) const;

  /// Computes where a kernel's loads are served from.
  ///
  /// `working_set`     — per-rank footprint in bytes;
  /// `locality_theta`  — kernel locality exponent (see hit_fraction);
  /// `active_cores`    — ranks currently sharing this node;
  /// `remote_fraction` — fraction of memory traffic crossing sockets.
  ReloadBreakdown reloads(Bytes working_set, double locality_theta,
                          int active_cores, double remote_fraction) const;

 private:
  std::vector<CacheLevelConfig> levels_;
  MemoryConfig memory_;
};

}  // namespace swapp::machine
