// Hardware performance-counter abstraction.
//
// The paper's compute projection (§2.1) characterises applications and
// benchmarks through six groups of PMU metrics collected with HPMCOUNT on the
// POWER5+ base machine:
//   G1 — CPI completion cycles
//   G2 — CPI stall cycles (by cause)
//   G3 — floating-point instructions
//   G4 — address-translation (ERAT / SLB / TLB) miss rates
//   G5 — data-cache reloads: data from L2 / L3 / local / remote memory per
//        instruction (m5,1 … m5,4 — the inputs of the ACSM model, §3.1)
//   G6 — memory bandwidth
// PmuCounters is the simulated equivalent: the processor model fills every
// field from first principles when it executes a kernel.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "support/units.h"

namespace swapp::machine {

/// One execution's worth of simulated PMU data.
struct PmuCounters {
  double instructions = 0.0;
  double cycles = 0.0;
  Seconds seconds = 0.0;

  // G1 — completion component of CPI.
  double cpi_completion = 0.0;

  // G2 — stall components of CPI, split by cause.
  double cpi_stall_fp = 0.0;
  double cpi_stall_mem = 0.0;
  double cpi_stall_branch = 0.0;
  double cpi_stall_other = 0.0;

  // G3 — floating point.
  double fp_per_instr = 0.0;
  double fp_vector_fraction = 0.0;

  // G4 — address translation miss rates (per instruction).
  double erat_miss_rate = 0.0;
  double slb_miss_rate = 0.0;
  double tlb_miss_rate = 0.0;

  // G5 — data reload sources (per instruction): m5,1 … m5,4.
  double data_from_l2_per_instr = 0.0;
  double data_from_l3_per_instr = 0.0;
  double data_from_local_mem_per_instr = 0.0;
  double data_from_remote_mem_per_instr = 0.0;

  // G6 — memory bandwidth actually consumed, GB/s.
  double memory_bandwidth_gbs = 0.0;

  double total_cpi() const noexcept {
    return cpi_completion + cpi_stall_fp + cpi_stall_mem + cpi_stall_branch +
           cpi_stall_other;
  }

  /// Accumulates another sample, weighting rates by instruction counts so the
  /// result describes the combined execution.
  void accumulate(const PmuCounters& other);
};

/// Number of scalar metrics exported to the projection layer.
inline constexpr std::size_t kMetricCount = 16;

/// Metric-group ids G1..G6 (0-based).
enum class MetricGroup : int {
  kCpiCompletion = 0,
  kCpiStall = 1,
  kFloatingPoint = 2,
  kTranslation = 3,
  kDataReloads = 4,
  kMemoryBandwidth = 5,
};
inline constexpr std::size_t kMetricGroupCount = 6;

/// Flattened metric vector in a fixed order, with each entry tagged by its
/// group.  This is the representation the surrogate search operates on.
struct MetricVector {
  std::array<double, kMetricCount> values{};

  static MetricVector from_counters(const PmuCounters& c);
  /// Group of the i-th metric.
  static MetricGroup group_of(std::size_t index);
  /// Human-readable metric name (for reports and tests).
  static std::string name_of(std::size_t index);
};

/// Transposes suite-ordered metric vectors into a metric-major (SoA) array:
/// `out[i * vectors.size() + k] == vectors[k].values[i]`.  This is the layout
/// the GA evaluation engine sweeps — for each metric, the suite's values are
/// contiguous, so per-metric blends walk unit-stride memory instead of
/// hopping between `MetricVector` objects.
std::vector<double> transpose_metric_major(
    const std::vector<MetricVector>& vectors);

}  // namespace swapp::machine
