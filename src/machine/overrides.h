// What-if mutations over machine models.
//
// `swapp sweep` explores hypothetical targets by perturbing a known machine
// configuration one field at a time (paper §5 projects onto machines the user
// cannot run on; a sweep simply enumerates many of them).  This header is the
// mutation API: a registry of overridable fields — each with a stable name,
// inclusive bounds, and a projection-side classification — plus
// `apply_overrides`, which returns a mutated copy under strict validation
// (unknown field names and out-of-range resolved values throw
// InvalidArgument; nothing is silently clamped).
//
// The side classification is what makes delta-aware sweep planning possible:
// the compute projection (SPEC suite runs, ACSM/CCSM, the GA surrogate
// search) reads only kCompute/kBoth fields, and the communication projection
// (IMB tables, the MPI simulation) reads only kComm/kBoth fields.  Two
// machines with equal `describe_compute_side` strings are therefore
// interchangeable for the compute pipeline, and likewise for
// `describe_comm_side` and the comm pipeline — the sweep planner keys its
// equivalence classes on exactly these strings.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.h"

namespace swapp::machine {

/// How an override combines with the field's current value.
enum class OverrideKind {
  kSet,    ///< replace the value
  kScale,  ///< multiply the current value
};

std::string to_string(OverrideKind kind);

/// Which projection pipeline a field feeds.
enum class OverrideSide {
  kCompute,  ///< SPEC collection + compute projection only
  kComm,     ///< IMB collection + communication projection only
  kBoth,     ///< read by both (node geometry, OS noise)
};

std::string to_string(OverrideSide side);

/// One requested mutation: `field` names a registry entry, `value` is either
/// the new value (kSet) or the multiplier (kScale).
struct Override {
  std::string field;
  OverrideKind kind = OverrideKind::kSet;
  double value = 1.0;
};

/// Registry metadata for one overridable field.
struct OverrideField {
  std::string name;   ///< e.g. "memory.node_bandwidth_gbs"
  OverrideSide side = OverrideSide::kCompute;
  bool integral = false;  ///< resolved value is rounded to nearest integer
  double min_value = 0.0;  ///< inclusive bounds on the resolved value
  double max_value = 0.0;
};

/// All overridable fields, in registry (documentation) order.
const std::vector<OverrideField>& override_fields();

/// Registry lookup; throws InvalidArgument naming the unknown field.
const OverrideField& override_field(const std::string& name);

/// Reads the current value of a registry field from `m` (the value kScale
/// multiplies).  Throws InvalidArgument for unknown fields or when the
/// machine lacks the addressed cache level.
double read_field(const Machine& m, const std::string& field);

/// Returns a copy of `m` with the overrides applied in order (later entries
/// compose with earlier ones).  Each resolved value is validated against the
/// registry bounds; integral fields are rounded to the nearest integer before
/// validation.  The name is left untouched — callers that need distinct
/// cache identities rename via `config_fingerprint`.
Machine apply_overrides(const Machine& m, const std::vector<Override>& overrides);

/// Canonical serialisation of every field the compute pipeline reads:
/// processor microarchitecture, cache hierarchy, memory system,
/// memory_per_core, cores_per_node, os_jitter.  Excludes the name.
std::string describe_compute_side(const Machine& m);

/// Canonical serialisation of every field the communication pipeline reads:
/// network, MPI library, cores_per_node, os_jitter.  Excludes the name.
std::string describe_comm_side(const Machine& m);

/// Both sides plus total_cores — the full configuration, name excluded.
std::string describe_machine_config(const Machine& m);

/// Stable 16-hex-digit FNV-1a fingerprint of describe_machine_config(m).
/// Sweep expansion appends this to variant machine names so name-keyed
/// artifact caches distinguish every distinct configuration.
std::string config_fingerprint(const Machine& m);

}  // namespace swapp::machine
