// The four systems of the paper's Table 2.
//
// Parameter values are drawn from the published microarchitecture literature
// for each processor (frequencies, cache geometries, issue widths, memory
// latencies) and from vendor MPI/interconnect datasheets (link bandwidths,
// zero-byte latencies).  They do not need to be exact: SWAPP consumes the
// machines only through benchmark measurements, so what matters is that the
// *relative* characteristics — cache capacities, ISA/µarch distance from the
// POWER5+ base, interconnect speeds — are faithful.
#include "machine/machine.h"

#include "support/error.h"

namespace swapp::machine {

std::string to_string(SmtMode mode) {
  return mode == SmtMode::kSingleThread ? "ST" : "SMT";
}

Machine make_power5_hydra() {
  ProcessorConfig p;
  p.name = "POWER5+";
  p.isa = "POWER";
  p.frequency_ghz = 1.9;
  p.issue_width = 5;
  p.fp_latency_cycles = 6.0;
  p.fp_per_cycle = 4.0;  // two FPUs with FMA
  p.simd_width = 1.0;
  p.branch_penalty_cycles = 12.0;
  p.predictor_strength = 0.90;
  p.ooo_window_factor = 0.55;
  p.max_outstanding_misses = 8;
  p.prefetch_strength = 0.55;
  p.smt_ways = 2;
  p.smt_issue_efficiency = 0.62;
  p.tlb_entries = 1024;
  p.page_bytes = 4096;
  p.tlb_penalty_cycles = 45.0;
  p.has_erat = true;
  p.erat_entries = 128;
  p.erat_penalty_cycles = 13.0;
  p.has_slb = true;
  p.slb_penalty_cycles = 70.0;

  CacheHierarchy caches(
      {
          {.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
           .latency_cycles = 4.0, .line_bytes = 128},
          {.name = "L2", .capacity = 1920_KiB, .shared_by_cores = 2,
           .latency_cycles = 14.0, .line_bytes = 128},
          {.name = "L3", .capacity = 36_MiB, .shared_by_cores = 2,
           .latency_cycles = 90.0, .line_bytes = 128},  // 256B lines, 128B sectors
      },
      MemoryConfig{.latency_cycles = 230.0,
                   .remote_latency_cycles = 340.0,
                   .node_bandwidth_gbs = 12.0,
                   .sockets = 8});  // 8 dual-core DCMs per 16-way node

  net::NetworkConfig nw;
  nw.kind = net::TopologyKind::kFederation;
  nw.link_bandwidth_gbs = 2.0;
  nw.base_latency = 4.2_us;
  nw.per_hop_latency = 300_ns;
  nw.fat_tree_radix = 16;
  nw.intra_node_bandwidth_gbs = 6.0;
  nw.intra_node_latency = 500_ns;
  nw.contention_factor = 1.6;

  MpiLibraryConfig mpi;
  mpi.send_overhead = 1.6_us;
  mpi.recv_overhead = 1.6_us;
  mpi.nonblocking_post_overhead = 350_ns;
  mpi.eager_threshold = 16_KiB;
  mpi.rendezvous_overhead = 2.4_us;
  mpi.reduction_bandwidth_gbs = 1.5;

  return Machine{.name = "TAMU Hydra (POWER5+)",
                 .processor = p,
                 .caches = caches,
                 .cores_per_node = 16,
                 .memory_per_core = 2_GiB,
                 .mpi = mpi,
                 .network = nw,
                 .total_cores = 832,
                 .os_jitter = 0.020};
}

Machine make_power6_575() {
  ProcessorConfig p;
  p.name = "POWER6";
  p.isa = "POWER";
  p.frequency_ghz = 4.7;
  p.issue_width = 5;
  p.fp_latency_cycles = 7.0;
  p.fp_per_cycle = 4.0;
  p.simd_width = 1.0;
  p.branch_penalty_cycles = 16.0;
  p.predictor_strength = 0.92;
  p.ooo_window_factor = 0.35;  // largely in-order pipeline
  p.max_outstanding_misses = 10;
  p.prefetch_strength = 0.75;  // strong hardware stream prefetch
  p.smt_ways = 2;
  p.smt_issue_efficiency = 0.64;
  p.tlb_entries = 1024;
  p.page_bytes = 4096;
  p.tlb_penalty_cycles = 60.0;
  p.has_erat = true;
  p.erat_entries = 128;
  p.erat_penalty_cycles = 14.0;
  p.has_slb = true;
  p.slb_penalty_cycles = 80.0;

  CacheHierarchy caches(
      {
          {.name = "L1", .capacity = 64_KiB, .shared_by_cores = 1,
           .latency_cycles = 4.0, .line_bytes = 128},
          {.name = "L2", .capacity = 4_MiB, .shared_by_cores = 1,
           .latency_cycles = 26.0, .line_bytes = 128},
          {.name = "L3", .capacity = 32_MiB, .shared_by_cores = 2,
           .latency_cycles = 130.0, .line_bytes = 128},
      },
      MemoryConfig{.latency_cycles = 420.0,
                   .remote_latency_cycles = 580.0,
                   .node_bandwidth_gbs = 40.0,
                   .sockets = 16});  // 16 dual-core chips per 32-way node

  net::NetworkConfig nw;
  nw.kind = net::TopologyKind::kFatTree;
  nw.link_bandwidth_gbs = 1.8;  // 4x DDR InfiniBand
  nw.base_latency = 2.4_us;
  nw.per_hop_latency = 150_ns;
  nw.fat_tree_radix = 16;
  nw.intra_node_bandwidth_gbs = 10.0;
  nw.intra_node_latency = 400_ns;
  nw.contention_factor = 1.5;

  MpiLibraryConfig mpi;
  mpi.send_overhead = 1.1_us;
  mpi.recv_overhead = 1.1_us;
  mpi.nonblocking_post_overhead = 250_ns;
  mpi.eager_threshold = 16_KiB;
  mpi.rendezvous_overhead = 1.8_us;
  mpi.reduction_bandwidth_gbs = 3.0;

  return Machine{.name = "IBM POWER6 575",
                 .processor = p,
                 .caches = caches,
                 .cores_per_node = 32,
                 .memory_per_core = 4_GiB,
                 .mpi = mpi,
                 .network = nw,
                 .total_cores = 128,
                 .os_jitter = 0.015};
}

Machine make_bluegene_p() {
  ProcessorConfig p;
  p.name = "PowerPC 450";
  p.isa = "PPC";
  p.frequency_ghz = 0.85;
  p.issue_width = 2;
  p.fp_latency_cycles = 5.0;
  p.fp_per_cycle = 2.0;
  p.simd_width = 2.0;  // "double hummer" dual FPU
  p.branch_penalty_cycles = 5.0;
  p.predictor_strength = 0.85;
  p.ooo_window_factor = 0.25;  // in-order embedded core
  p.max_outstanding_misses = 4;
  p.prefetch_strength = 0.65;  // L2 stream prefetch engines
  p.smt_ways = 1;
  p.smt_issue_efficiency = 1.0;
  p.tlb_entries = 64;
  p.page_bytes = 64_KiB;  // CNK maps compute memory with large pages
  p.tlb_penalty_cycles = 30.0;
  p.has_erat = false;
  p.has_slb = false;

  CacheHierarchy caches(
      {
          {.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
           .latency_cycles = 4.0, .line_bytes = 32},
          {.name = "L2", .capacity = 2_MiB, .shared_by_cores = 4,
           .latency_cycles = 12.0, .line_bytes = 128},
          {.name = "L3", .capacity = 8_MiB, .shared_by_cores = 4,
           .latency_cycles = 50.0, .line_bytes = 128},
      },
      MemoryConfig{.latency_cycles = 104.0,
                   .remote_latency_cycles = 104.0,
                   .node_bandwidth_gbs = 13.6,
                   .sockets = 1});

  net::NetworkConfig nw;
  nw.kind = net::TopologyKind::kTorus3D;
  nw.link_bandwidth_gbs = 0.425;  // 3.4 Gb/s per torus link
  nw.base_latency = 2.8_us;
  nw.per_hop_latency = 100_ns;
  nw.has_collective_tree = true;
  nw.tree_per_hop_latency = 60_ns;
  nw.tree_bandwidth_gbs = 0.82;
  nw.intra_node_bandwidth_gbs = 3.0;
  nw.intra_node_latency = 300_ns;
  nw.contention_factor = 1.3;  // torus spreads dense traffic well

  MpiLibraryConfig mpi;
  mpi.send_overhead = 2.4_us;  // slow core pays more per call
  mpi.recv_overhead = 2.4_us;
  mpi.nonblocking_post_overhead = 600_ns;
  mpi.eager_threshold = 4_KiB;
  mpi.rendezvous_overhead = 3.2_us;
  mpi.reduction_bandwidth_gbs = 0.8;
  mpi.use_collective_tree = true;

  return Machine{.name = "IBM BlueGene/P",
                 .processor = p,
                 .caches = caches,
                 .cores_per_node = 4,  // "Virtual Node" mode, as in the paper
                 .memory_per_core = 1_GiB,
                 .mpi = mpi,
                 .network = nw,
                 .total_cores = 4096,
                 .os_jitter = 0.003};
}

Machine make_westmere_x5670() {
  ProcessorConfig p;
  p.name = "Xeon X5670 (Westmere)";
  p.isa = "x86";
  p.frequency_ghz = 2.93;
  p.issue_width = 4;
  p.fp_latency_cycles = 5.0;
  p.fp_per_cycle = 2.0;
  p.simd_width = 2.0;  // SSE packed double
  p.branch_penalty_cycles = 17.0;
  p.predictor_strength = 0.95;
  p.ooo_window_factor = 0.80;  // deep out-of-order window
  p.max_outstanding_misses = 10;
  p.prefetch_strength = 0.85;
  p.smt_ways = 2;
  p.smt_issue_efficiency = 0.58;
  p.tlb_entries = 512;
  p.page_bytes = 4096;
  p.tlb_penalty_cycles = 30.0;
  p.has_erat = false;
  p.has_slb = false;

  CacheHierarchy caches(
      {
          {.name = "L1", .capacity = 32_KiB, .shared_by_cores = 1,
           .latency_cycles = 4.0, .line_bytes = 64},
          {.name = "L2", .capacity = 256_KiB, .shared_by_cores = 1,
           .latency_cycles = 10.0, .line_bytes = 64},
          {.name = "L3", .capacity = 12_MiB, .shared_by_cores = 6,
           .latency_cycles = 42.0, .line_bytes = 64},
      },
      MemoryConfig{.latency_cycles = 190.0,
                   .remote_latency_cycles = 310.0,
                   .node_bandwidth_gbs = 50.0,  // 2 sockets, 3-channel DDR3
                   .sockets = 2});

  net::NetworkConfig nw;
  nw.kind = net::TopologyKind::kFatTree;
  nw.link_bandwidth_gbs = 3.2;  // 4x QDR InfiniBand
  nw.base_latency = 1.7_us;
  nw.per_hop_latency = 100_ns;
  nw.fat_tree_radix = 18;
  nw.intra_node_bandwidth_gbs = 5.0;
  nw.intra_node_latency = 350_ns;
  nw.contention_factor = 1.5;

  MpiLibraryConfig mpi;
  mpi.send_overhead = 0.9_us;
  mpi.recv_overhead = 0.9_us;
  mpi.nonblocking_post_overhead = 200_ns;
  mpi.eager_threshold = 16_KiB;
  mpi.rendezvous_overhead = 1.4_us;
  mpi.reduction_bandwidth_gbs = 3.5;

  return Machine{.name = "IBM iDataPlex (Westmere X5670)",
                 .processor = p,
                 .caches = caches,
                 .cores_per_node = 12,
                 .memory_per_core = 2_GiB,
                 .mpi = mpi,
                 .network = nw,
                 .total_cores = 768,
                 .os_jitter = 0.022};
}

std::vector<Machine> all_machines() {
  return {make_power5_hydra(), make_power6_575(), make_bluegene_p(),
          make_westmere_x5670()};
}

Machine machine_by_name(const std::string& name) {
  for (Machine& m : all_machines()) {
    if (m.name == name) return m;
  }
  throw NotFound("unknown machine: " + name);
}

}  // namespace swapp::machine
